//! Systematic detection sweep: corrupt every class of position in a
//! full-checksum product (each data block, checksum rows, checksum
//! columns), across magnitudes, and verify the checking kernel's
//! detect/locate behaviour position by position.

use aabft_core::check::CheckReport;
use aabft_core::encoding::{encode_columns, encode_rows};
use aabft_core::kernels::buffers::PMaxBuffers;
use aabft_core::kernels::check::{CheckKernel, REPORT_WORDS};
use aabft_core::pmax::PMaxTable;
use aabft_gpu_sim::device::Device;
use aabft_gpu_sim::mem::DeviceBuffer;
use aabft_matrix::gen::InputClass;
use aabft_matrix::{gemm, Matrix};
use aabft_numerics::RoundingModel;
use rand::SeedableRng;

#[allow(dead_code)] // bs kept for readability of fixture construction
struct Fixture {
    acc: aabft_core::encoding::ColumnChecksummed,
    brc: aabft_core::encoding::RowChecksummed,
    clean: Matrix<f64>,
    pm_a: PMaxBuffers,
    pm_b: PMaxBuffers,
    n: usize,
    bs: usize,
}

fn fixture(n: usize, bs: usize, seed: u64) -> Fixture {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let a = InputClass::UNIT.generate(n, &mut rng);
    let b = InputClass::UNIT.generate(n, &mut rng);
    let acc = encode_columns(&a, bs, 1, 1);
    let brc = encode_rows(&b, bs, 1, 1);
    let clean = gemm::multiply(&acc.matrix, &brc.matrix);
    let ta = PMaxTable::of_rows(&acc.matrix, 2);
    let tb = PMaxTable::of_cols(&brc.matrix, 2);
    let pm_a = PMaxBuffers::new(acc.matrix.rows(), 1, 2);
    let pm_b = PMaxBuffers::new(brc.matrix.cols(), 1, 2);
    for line in 0..acc.matrix.rows() {
        for s in 0..2 {
            pm_a.final_vals.set(pm_a.final_index(line, s), ta.values(line)[s]);
            pm_a.final_idxs.set(pm_a.final_index(line, s), ta.indices(line)[s] as f64);
        }
    }
    for line in 0..brc.matrix.cols() {
        for s in 0..2 {
            pm_b.final_vals.set(pm_b.final_index(line, s), tb.values(line)[s]);
            pm_b.final_idxs.set(pm_b.final_index(line, s), tb.indices(line)[s] as f64);
        }
    }
    Fixture { acc, brc, clean, pm_a, pm_b, n, bs }
}

fn check(f: &Fixture, corrupted: &Matrix<f64>) -> CheckReport {
    let dc = DeviceBuffer::from_matrix(corrupted);
    let report =
        DeviceBuffer::zeros(REPORT_WORDS * f.acc.rows.blocks * f.brc.cols.blocks);
    let kernel = CheckKernel::new(
        &dc,
        &f.pm_a,
        &f.pm_b,
        &report,
        f.acc.rows,
        f.brc.cols,
        f.n,
        3.0,
        RoundingModel::binary64(),
    );
    Device::with_defaults().launch(kernel.grid(), &kernel);
    CheckReport::from_raw(&report.to_vec(), f.acc.rows, f.brc.cols)
}

#[test]
fn every_data_position_is_located_exactly() {
    let f = fixture(16, 4, 1);
    // Stride over all data positions.
    for i in (0..16).step_by(3) {
        for j in (0..16).step_by(5) {
            let mut c = f.clean.clone();
            c[(i, j)] += 1e-3;
            let report = check(&f, &c);
            assert_eq!(report.located, vec![(i, j)], "position ({i},{j})");
            assert!(report.single_error());
        }
    }
}

#[test]
fn every_checksum_row_position_detects_without_location() {
    let f = fixture(16, 4, 2);
    for block in 0..4 {
        let cs = f.acc.rows.checksum_line(block);
        for j in (0..16).step_by(4) {
            let mut c = f.clean.clone();
            c[(cs, j)] += 1e-3;
            let report = check(&f, &c);
            assert!(report.errors_detected(), "cs row {block}, col {j}");
            assert!(report.located.is_empty(), "cs row corruption has no intersection");
            assert_eq!(report.col_mismatches, vec![(block, j)]);
        }
    }
}

#[test]
fn every_checksum_col_position_detects_without_location() {
    let f = fixture(16, 4, 3);
    for block in 0..4 {
        let cs = f.brc.cols.checksum_line(block);
        for i in (0..16).step_by(4) {
            let mut c = f.clean.clone();
            c[(i, cs)] += 1e-3;
            let report = check(&f, &c);
            assert!(report.errors_detected(), "cs col {block}, row {i}");
            assert!(report.located.is_empty());
            assert_eq!(report.row_mismatches, vec![(i, block)]);
        }
    }
}

#[test]
fn magnitude_staircase_has_single_threshold() {
    // Sweeping the corruption magnitude from far below to far above the
    // bound must produce a monotone detected/undetected staircase.
    let f = fixture(16, 4, 4);
    let mut last_detected = false;
    let mut transitions = 0;
    for exp in -18..-2 {
        let mut c = f.clean.clone();
        c[(5, 7)] += (10.0f64).powi(exp);
        let detected = check(&f, &c).errors_detected();
        if detected != last_detected {
            transitions += 1;
            assert!(detected, "detection must not turn off as magnitude grows");
        }
        last_detected = detected;
    }
    assert_eq!(transitions, 1, "exactly one off->on transition");
    assert!(last_detected, "the largest corruption must be detected");
}

#[test]
fn two_errors_in_a_row_produce_two_column_mismatches() {
    let f = fixture(16, 4, 5);
    let mut c = f.clean.clone();
    c[(5, 2)] += 1e-3;
    c[(5, 9)] += 1e-3;
    let report = check(&f, &c);
    // Columns 2 (block 0) and 9 (block 2) flagged; row 5 flagged in both
    // block-columns; intersections give both corrupted coordinates.
    assert_eq!(report.col_mismatches.len(), 2);
    assert!(report.located.contains(&(5, 2)));
    assert!(report.located.contains(&(5, 9)));
    assert!(!report.single_error());
}

#[test]
fn diagonal_pair_in_one_block_yields_ambiguous_square() {
    // Classic ABFT ambiguity: errors at (r1,c1) and (r2,c2) in the same
    // block light up rows {r1,r2} x cols {c1,c2} — four intersections.
    let f = fixture(16, 4, 6);
    let mut c = f.clean.clone();
    c[(1, 2)] += 1e-3;
    c[(2, 1)] += 1e-3;
    let report = check(&f, &c);
    assert_eq!(report.located.len(), 4, "{:?}", report.located);
    for loc in [(1, 2), (2, 1), (1, 1), (2, 2)] {
        assert!(report.located.contains(&loc));
    }
}
