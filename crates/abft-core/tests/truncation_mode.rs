//! End-to-end tests of the truncation rounding mode (paper Section IV-D:
//! the model applies to truncation "with only minor changes"): the GEMM
//! kernel executes bit-exact round-toward-zero arithmetic and the pipeline
//! checks with the truncation-model bounds.

use aabft_core::{AAbftConfig, AAbftGemm};
use aabft_gpu_sim::kernels::gemm::{GemmKernel, GemmTiling};
use aabft_gpu_sim::mem::DeviceBuffer;
use aabft_gpu_sim::Device;
use aabft_matrix::gen::InputClass;
use aabft_matrix::Matrix;
use aabft_numerics::rounding::{add_with_mode, mul_with_mode};
use aabft_numerics::RoundingMode;
use rand::SeedableRng;

fn tiling() -> GemmTiling {
    GemmTiling { bm: 16, bn: 16, bk: 8, rx: 4, ry: 4 }
}

/// Host reference GEMM with per-operation truncation in the kernel's
/// accumulation order (k-major, like the device kernel's tile loop).
fn host_truncated_gemm(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
    let (m, n, q) = (a.rows(), a.cols(), b.cols());
    let mode = RoundingMode::Truncation;
    let mut c = Matrix::zeros(m, q);
    for i in 0..m {
        for j in 0..q {
            let mut acc = 0.0;
            for k in 0..n {
                let p = mul_with_mode(a[(i, k)], b[(k, j)], mode);
                acc = add_with_mode(acc, p, mode);
            }
            // The kernel's final merge is also a (truncating) addition.
            c[(i, j)] = add_with_mode(0.0, acc, mode);
        }
    }
    c
}

#[test]
fn truncating_kernel_is_bit_exact() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let a = InputClass::UNIT.generate(32, &mut rng);
    let b = InputClass::UNIT.generate(32, &mut rng);
    let device = Device::with_defaults();
    let (da, db) = (DeviceBuffer::from_matrix(&a), DeviceBuffer::from_matrix(&b));
    let dc = DeviceBuffer::zeros(32 * 32);
    let kernel = GemmKernel::new(&da, &db, &dc, 32, 32, 32, tiling())
        .with_rounding(RoundingMode::Truncation);
    device.launch(kernel.grid(), &kernel);
    let got = dc.to_matrix(32, 32);
    let expect = host_truncated_gemm(&a, &b);
    assert_eq!(got.max_abs_diff(&expect), 0.0, "bit-exact truncation required");
}

#[test]
fn truncated_results_never_exceed_nearest_in_magnitude_drift() {
    // Truncation systematically undershoots sums of same-signed products;
    // verify the drift direction on an all-positive multiplication.
    let a = Matrix::from_fn(32, 32, |i, j| 0.1 + ((i * j) as f64 * 0.001));
    let device = Device::with_defaults();
    let (da, db) = (DeviceBuffer::from_matrix(&a), DeviceBuffer::from_matrix(&a));
    let dc_t = DeviceBuffer::zeros(32 * 32);
    let kt = GemmKernel::new(&da, &db, &dc_t, 32, 32, 32, tiling())
        .with_rounding(RoundingMode::Truncation);
    device.launch(kt.grid(), &kt);
    let dc_n = DeviceBuffer::zeros(32 * 32);
    let kn = GemmKernel::new(&da, &db, &dc_n, 32, 32, 32, tiling());
    device.launch(kn.grid(), &kn);
    let t = dc_t.to_matrix(32, 32);
    let n = dc_n.to_matrix(32, 32);
    let mut undershoots = 0;
    for (x, y) in t.as_slice().iter().zip(n.as_slice()) {
        assert!(x <= y, "truncation of positive sums cannot exceed nearest");
        if x < y {
            undershoots += 1;
        }
    }
    assert!(undershoots > 500, "drift should be visible in most elements: {undershoots}");
}

#[test]
fn pipeline_with_truncation_model_has_no_false_positives() {
    let config = AAbftConfig::builder()
        .block_size(8)
        .tiling(tiling())
        .rounding_mode(RoundingMode::Truncation)
        .build().expect("valid config");
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for trial in 0..5 {
        let a = InputClass::UNIT.generate(48, &mut rng);
        let b = InputClass::UNIT.generate(48, &mut rng);
        let outcome = AAbftGemm::new(config).multiply(&Device::with_defaults(), &a, &b);
        assert!(
            !outcome.errors_detected(),
            "trial {trial}: truncation-model bounds must cover truncation noise: {:?}",
            outcome.report
        );
    }
}

#[test]
fn truncation_model_bounds_are_wider() {
    use aabft_core::bounds::checksum_epsilon;
    use aabft_numerics::RoundingModel;
    let rn = RoundingModel::binary64();
    let tr = RoundingModel::binary64().with_rounding(RoundingMode::Truncation);
    // The truncation model's nonzero mean drift makes its confidence radius
    // strictly larger for the same (n, y).
    for n in [64usize, 512, 4096] {
        let e_rn = checksum_epsilon(n, 1.0, 3.0, &rn);
        let e_tr = checksum_epsilon(n, 1.0, 3.0, &tr);
        assert!(e_tr > e_rn, "n = {n}: {e_tr:e} <= {e_rn:e}");
    }
}

#[test]
#[should_panic(expected = "truncating fused")]
fn truncating_fma_is_rejected() {
    AAbftConfig::builder()
        .mul_mode(aabft_numerics::MulMode::Fused)
        .rounding_mode(RoundingMode::Truncation)
        .build().expect("valid config");
}
