//! A-ABFT: Autonomous Algorithm-Based Fault Tolerance for matrix
//! multiplications — the core scheme of Braun, Halder & Wunderlich
//! (DSN 2014), reproduced on a deterministic GPU simulator.
//!
//! A-ABFT protects `C = A · B` with partitioned checksums ([`encoding`]) and
//! — its contribution — determines the rounding-error bounds needed to
//! compare floating-point checksums *autonomously at runtime*: no
//! calibration runs, no user-supplied tolerances. The bounds come from a
//! probabilistic rounding-error model ([`bounds`], building on
//! `aabft_numerics::model`) evaluated with a data-driven upper bound on the
//! intermediate products obtained from the `p` largest absolute values per
//! row/column ([`pmax`]).
//!
//! The GPU realisation ([`kernels`], orchestrated by [`AAbftGemm`] in
//! [`aabft`]) follows the paper's four steps: fused encode+p-max kernels,
//! the blocked multiplication, a p-max reduction, and the checking kernel
//! that evaluates bounds, recomputes reference checksums and compares.
//!
//! # Quick start
//!
//! ```
//! use aabft_core::{AAbftConfig, AAbftGemm};
//! use aabft_gpu_sim::Device;
//! use aabft_matrix::Matrix;
//!
//! let a = Matrix::from_fn(32, 32, |i, j| ((i + j) as f64 * 0.1).sin());
//! let b = Matrix::from_fn(32, 32, |i, j| ((i * 2 + j) as f64 * 0.1).cos());
//!
//! let gemm = AAbftGemm::new(AAbftConfig::builder().block_size(8).build().expect("valid config"));
//! let outcome = gemm.multiply(&Device::with_defaults(), &a, &b);
//!
//! assert!(!outcome.errors_detected());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aabft;
pub mod batch;
pub mod bounds;
pub mod check;
pub mod classify;
pub mod config;
pub mod correct;
pub mod encoding;
pub mod error;
pub mod error_map;
pub mod gemv;
pub mod heal;
pub mod kernels;
pub mod lu;
pub mod pmax;
pub mod recover;
pub mod weighted;

pub use aabft::{AAbftGemm, AAbftOutcome, GemmPlan, MultiplyRun, RunBuffers};
pub use batch::{BatchGemm, GemmRequest, ProtectionPolicy};
pub use check::CheckReport;
pub use classify::ErrorClass;
pub use config::AAbftConfig;
pub use correct::Correction;
pub use error::AbftError;
pub use heal::{HealedOutcome, SelfHealingGemm, DEFAULT_HEAL_BUDGET};
pub use recover::{RecoveryAction, RecoveryOutcome, RecoveryPolicy};
pub use pmax::PMaxTable;
