//! The complete A-ABFT protected matrix multiplication (paper Section V).
//!
//! Pipeline, exactly as the paper stages it:
//!
//! 1. encoding kernels — checksum encoding fused with the per-block p-max
//!    search, for `A` (column checksums) and `B` (row checksums);
//! 2. the block-based multiplication kernel over the augmented operands;
//! 3. reduction of the block-wise p-max partials to global per-line tables;
//! 4. the checking kernel — autonomous rounding-error bounds, reference
//!    checksums and comparison.
//!
//! The host then decodes the report and (optionally) repairs located single
//! errors.
//!
//! Entry points: [`AAbftGemm::execute`] runs the whole pipeline on an
//! [`ExecCtx`] (device + stream + observability) and returns a typed error
//! on shape mismatch; [`AAbftGemm::multiply`] is the historical convenience
//! wrapper on the default stream. The pipeline is also exposed *staged* —
//! [`AAbftGemm::begin`] returns a [`MultiplyRun`] whose phase methods the
//! batch engine ([`crate::batch`]) interleaves across requests on separate
//! streams, reusing pooled [`RunBuffers`].

use crate::check::CheckReport;
use crate::config::AAbftConfig;
use crate::correct::Correction;
use crate::encoding::{AugmentedLayout, FullChecksummed};
use crate::error::AbftError;
use crate::kernels::buffers::PMaxBuffers;
use crate::kernels::check::{CheckKernel, DIAG_WORDS, REPORT_WORDS};
use crate::kernels::encode::{EncodeColumnsKernel, EncodeRowsKernel};
use crate::kernels::reduce::ReducePMaxKernel;
use crate::recover::{apply_policy, RecomputeBlocksKernel, RecoveryOutcome};
use aabft_gpu_sim::device::{Device, Kernel};
use aabft_gpu_sim::kernels::gemm::GemmKernel;
use aabft_gpu_sim::mem::DeviceBuffer;
use aabft_gpu_sim::pack::PackPool;
use aabft_gpu_sim::{ConfigError, ExecCtx};
use aabft_matrix::Matrix;

/// Smoothing factor for the `abft.fault_rate_ewma` gauge: each check
/// verdict contributes a 0/1 "flagged" sample with this weight, so the
/// gauge tracks the recent per-check detected-fault probability over
/// roughly the last `1/α = 10` checks.
const FAULT_RATE_EWMA_ALPHA: f64 = 0.1;

/// Feeds one check verdict into the online fault-rate estimator
/// (`abft.fault_rate_ewma`): an EWMA of the flagged/clean bit, seeded by
/// the first sample. Plain runs sample once per multiply (in
/// `conclude`); the self-healing loop samples every decoded verdict,
/// including re-checks after repair. The read-modify-write is not
/// atomic; under a rayon campaign concurrent updates may drop samples,
/// which only slows convergence — the gauge always stays a convex
/// combination of 0/1 samples, hence within [0, 1].
pub(crate) fn observe_fault_rate(metrics: &aabft_obs::Metrics, flagged: bool) {
    let sample = f64::from(u8::from(flagged));
    let ewma = match metrics.gauge("abft.fault_rate_ewma") {
        Some(prev) => prev + FAULT_RATE_EWMA_ALPHA * (sample - prev),
        None => sample,
    };
    metrics.gauge_set("abft.fault_rate_ewma", ewma);
}

/// Result of one protected multiplication.
#[derive(Debug)]
pub struct AAbftOutcome {
    /// The caller-visible product (corrected when correction is enabled).
    pub product: Matrix<f64>,
    /// The raw full-checksum product with its layouts.
    pub full: FullChecksummed,
    /// Decoded checksum-check findings.
    pub report: CheckReport,
    /// Corrections applied (empty unless enabled and errors were located).
    pub corrections: Vec<Correction>,
    /// Result blocks recomputed from the operands (only under
    /// [`crate::recover::RecoveryPolicy::CorrectOrRecompute`]).
    pub recomputed_blocks: Vec<(usize, usize)>,
}

impl AAbftOutcome {
    /// `true` if the check flagged any checksum.
    pub fn errors_detected(&self) -> bool {
        self.report.errors_detected()
    }
}

/// Shape-dependent execution plan for operands `m × n · n × q` under a
/// fixed configuration: the augmented axis layouts and the padded inner
/// extent. Pure geometry — the batch engine caches plans keyed by
/// `(m, n, q, BS)` so repeated shapes skip the layout computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmPlan {
    /// Row-axis layout (from `A`).
    pub rows: AugmentedLayout,
    /// Padded inner extent.
    pub inner: usize,
    /// Column-axis layout (from `B`).
    pub cols: AugmentedLayout,
}

/// The device buffers one protected multiplication works in. Sized by a
/// [`GemmPlan`], so the batch engine pools them per plan key and reuses
/// them across requests of the same shape ([`RunBuffers::reset`] rezeros
/// between uses).
#[derive(Debug)]
pub struct RunBuffers {
    /// Augmented `A` operand (`rows.total × inner`).
    pub a: DeviceBuffer,
    /// Augmented `B` operand (`inner × cols.total`).
    pub b: DeviceBuffer,
    /// Augmented product (`rows.total × cols.total`).
    pub c: DeviceBuffer,
    /// p-max buffers for `A`'s rows.
    pub pmax_a: PMaxBuffers,
    /// p-max buffers for `B`'s columns.
    pub pmax_b: PMaxBuffers,
    /// Check-report words per result block.
    pub report: DeviceBuffer,
    /// Check diagnostics words per result block.
    pub diag: DeviceBuffer,
    /// Pack-panel pool for the clean-path GEMM engine. Pooled `RunBuffers`
    /// carry their panels with them, so the batch engine's per-plan buffer
    /// pool reuses pack allocations across requests of the same shape.
    pub pack: PackPool,
}

impl RunBuffers {
    /// Allocates zeroed buffers sized for `plan` with `p` tracked maxima.
    pub fn for_plan(plan: &GemmPlan, p: usize) -> Self {
        let bs = plan.rows.block_size;
        RunBuffers {
            a: DeviceBuffer::zeros(plan.rows.total * plan.inner),
            b: DeviceBuffer::zeros(plan.inner * plan.cols.total),
            c: DeviceBuffer::zeros(plan.rows.total * plan.cols.total),
            pmax_a: PMaxBuffers::new(plan.rows.total, plan.inner / bs, p),
            pmax_b: PMaxBuffers::new(plan.cols.total, plan.inner / bs, p),
            report: DeviceBuffer::zeros(REPORT_WORDS * plan.rows.blocks * plan.cols.blocks),
            diag: DeviceBuffer::zeros(DIAG_WORDS * plan.rows.blocks * plan.cols.blocks),
            pack: PackPool::new(),
        }
    }

    /// `true` if these buffers fit `plan` with `p` tracked maxima exactly.
    pub fn fits(&self, plan: &GemmPlan, p: usize) -> bool {
        let bs = plan.rows.block_size;
        self.a.len() == plan.rows.total * plan.inner
            && self.b.len() == plan.inner * plan.cols.total
            && self.c.len() == plan.rows.total * plan.cols.total
            && self.pmax_a.lines == plan.rows.total
            && self.pmax_a.blocks == plan.inner / bs
            && self.pmax_a.p == p
            && self.pmax_b.lines == plan.cols.total
            && self.report.len() == REPORT_WORDS * plan.rows.blocks * plan.cols.blocks
    }

    /// Rezeros every buffer (before reusing pooled buffers for a new
    /// request).
    pub fn reset(&self) {
        self.a.clear();
        self.b.clear();
        self.c.clear();
        self.pmax_a.partial_vals.clear();
        self.pmax_a.partial_idxs.clear();
        self.pmax_a.final_vals.clear();
        self.pmax_a.final_idxs.clear();
        self.pmax_b.partial_vals.clear();
        self.pmax_b.partial_idxs.clear();
        self.pmax_b.final_vals.clear();
        self.pmax_b.final_idxs.clear();
        self.report.clear();
        self.diag.clear();
    }
}

/// The A-ABFT protected GEMM operator.
///
/// # Examples
///
/// ```
/// use aabft_core::{AAbftConfig, AAbftGemm};
/// use aabft_gpu_sim::Device;
/// use aabft_matrix::Matrix;
///
/// let a = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.3).sin());
/// let b = Matrix::from_fn(8, 8, |i, j| ((i * 2 + j) as f64 * 0.2).cos());
/// let config = AAbftConfig::builder().block_size(4).build().unwrap();
/// let gemm = AAbftGemm::new(config);
/// let device = Device::with_defaults();
/// let outcome = gemm.multiply(&device, &a, &b);
/// assert!(!outcome.errors_detected()); // fault-free run, no false positives
/// assert_eq!(outcome.product.shape(), (8, 8));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AAbftGemm {
    config: AAbftConfig,
}

impl Default for AAbftGemm {
    /// The paper's evaluation configuration ([`AAbftConfig::default`]).
    fn default() -> Self {
        AAbftGemm { config: AAbftConfig::default() }
    }
}

impl AAbftGemm {
    /// Creates the operator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; [`AAbftGemm::try_new`] is
    /// the non-panicking variant.
    pub fn new(config: AAbftConfig) -> Self {
        match Self::try_new(config) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates the operator, rejecting invalid configurations with a typed
    /// error.
    pub fn try_new(config: AAbftConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(AAbftGemm { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &AAbftConfig {
        &self.config
    }

    /// Axis layouts and padded inner extent for operand shapes `m × n · n × q`.
    pub fn layouts(&self, m: usize, n: usize, q: usize) -> (AugmentedLayout, usize, AugmentedLayout) {
        let bs = self.config.block_size;
        let t = self.config.tiling;
        let rows = AugmentedLayout::new(m, bs, t.bm);
        let cols = AugmentedLayout::new(q, bs, t.bn);
        let inner = n.div_ceil(lcm(bs, t.bk)) * lcm(bs, t.bk);
        (rows, inner, cols)
    }

    /// The execution plan for operand shapes `m × n · n × q`.
    pub fn plan(&self, m: usize, n: usize, q: usize) -> GemmPlan {
        let (rows, inner, cols) = self.layouts(m, n, q);
        GemmPlan { rows, inner, cols }
    }

    /// Runs the protected multiplication `C = A · B` on `device` (default
    /// stream, device observability) — the convenience form of
    /// [`AAbftGemm::execute`].
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn multiply(&self, device: &Device, a: &Matrix<f64>, b: &Matrix<f64>) -> AAbftOutcome {
        match self.execute(&ExecCtx::new(device), a, b) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the protected multiplication `C = A · B` on an execution
    /// context (device + stream + observability sink).
    ///
    /// Rejects mismatched operand shapes with a typed error instead of
    /// panicking.
    pub fn execute(
        &self,
        ctx: &ExecCtx<'_>,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) -> Result<AAbftOutcome, AbftError> {
        let _pipeline = aabft_obs::span!(
            ctx.obs,
            "abft",
            "aabft_multiply",
            "m" => a.rows() as u64,
            "n" => a.cols() as u64,
            "q" => b.cols() as u64,
            "p" => self.config.p as u64,
        );
        let run = self.begin(ctx, a, b)?;
        run.encode_and_gemm(ctx);
        run.reduce(ctx);
        run.check(ctx);
        let (outcome, _bufs) = run.finish(ctx);
        Ok(outcome)
    }

    /// Starts a staged multiplication: checks shapes, allocates fresh
    /// [`RunBuffers`] and uploads the operands. The caller then drives
    /// [`MultiplyRun::encode`], [`MultiplyRun::gemm`],
    /// [`MultiplyRun::reduce`], [`MultiplyRun::check`] and
    /// [`MultiplyRun::finish`] — in that order.
    pub fn begin(
        &self,
        ctx: &ExecCtx<'_>,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) -> Result<MultiplyRun, AbftError> {
        if a.cols() != b.rows() {
            return Err(AbftError::ShapeMismatch {
                op: "multiply",
                left: a.shape(),
                right: b.shape(),
            });
        }
        let plan = self.plan(a.rows(), a.cols(), b.cols());
        let bufs = RunBuffers::for_plan(&plan, self.config.p);
        self.begin_with(ctx, a, b, bufs)
    }

    /// [`AAbftGemm::begin`] with caller-provided (pooled) buffers, which
    /// are rezeroed and refilled in place.
    ///
    /// # Panics
    ///
    /// Panics if `bufs` was not sized for these operands' plan (a pool
    /// bookkeeping bug, not user input).
    pub fn begin_with(
        &self,
        ctx: &ExecCtx<'_>,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
        bufs: RunBuffers,
    ) -> Result<MultiplyRun, AbftError> {
        if a.cols() != b.rows() {
            return Err(AbftError::ShapeMismatch {
                op: "multiply",
                left: a.shape(),
                right: b.shape(),
            });
        }
        let (m, n, q) = (a.rows(), a.cols(), b.cols());
        let plan = self.plan(m, n, q);
        assert!(bufs.fits(&plan, self.config.p), "run buffers do not fit the plan");

        // Upload operands into their augmented, padded layouts (checksum
        // regions zeroed; the encoding kernels fill them).
        let _s = aabft_obs::span!(ctx.obs, "phase", "upload");
        bufs.reset();
        for i in 0..m {
            bufs.a.write_slice(i * plan.inner, a.row(i));
        }
        for i in 0..n {
            bufs.b.write_slice(i * plan.cols.total, b.row(i));
        }
        let run = MultiplyRun {
            config: self.config,
            m,
            n,
            q,
            plan,
            bufs,
            launch_base: ctx.device.launches_issued(),
        };
        run.land_memory_faults(ctx, "upload");
        Ok(run)
    }
}

/// In-flight state of one staged protected multiplication (see
/// [`AAbftGemm::begin`]). Phase methods must be called in pipeline order on
/// the same stream; different runs on different streams may have their
/// phases interleaved freely — that is exactly what the batch engine does.
#[derive(Debug)]
pub struct MultiplyRun {
    config: AAbftConfig,
    m: usize,
    n: usize,
    q: usize,
    plan: GemmPlan,
    bufs: RunBuffers,
    /// Device launch-sequence frontier when this run began; the distance
    /// from here to a completed check is the run's detection latency in
    /// launches (on a shared device, interleaved runs' launches count —
    /// that is the real distance to detection the host observes).
    launch_base: u64,
}

impl MultiplyRun {
    /// The plan this run was laid out with.
    pub fn plan(&self) -> &GemmPlan {
        &self.plan
    }

    /// Gives armed memory-at-rest faults ([`aabft_gpu_sim::MemoryFaultPlan`])
    /// their chance to land after `phase`. A pure host-side hook: no kernel
    /// launch, no span, so the observability and launch-count contracts of a
    /// fault-free run are untouched.
    fn land_memory_faults(&self, ctx: &ExecCtx<'_>, phase: &str) {
        ctx.device.apply_memory_faults(
            phase,
            &[("a", &self.bufs.a), ("b", &self.bufs.b), ("c", &self.bufs.c)],
        );
    }

    /// Step 1: encoding + per-block p-max for both operands.
    pub fn encode(&self, ctx: &ExecCtx<'_>) {
        let _s = aabft_obs::span!(ctx.obs, "phase", "encode");
        let encode_a =
            EncodeColumnsKernel::new(&self.bufs.a, &self.bufs.pmax_a, self.plan.rows, self.plan.inner);
        ctx.launch(encode_a.grid(), &encode_a);
        let encode_b =
            EncodeRowsKernel::new(&self.bufs.b, &self.bufs.pmax_b, self.plan.cols, self.plan.inner);
        ctx.launch(encode_b.grid(), &encode_b);
        self.land_memory_faults(ctx, "encode");
    }

    /// The multiplication kernel over this run's augmented operands,
    /// wired to the run's pack-panel pool and the device's clean engine
    /// (the per-device [`DeviceConfig`] choice).
    ///
    /// [`DeviceConfig`]: aabft_gpu_sim::device::DeviceConfig
    fn gemm_kernel(&self, ctx: &ExecCtx<'_>) -> GemmKernel<'_> {
        GemmKernel::new(
            &self.bufs.a,
            &self.bufs.b,
            &self.bufs.c,
            self.plan.rows.total,
            self.plan.inner,
            self.plan.cols.total,
            self.config.tiling,
        )
        .with_mul_mode(self.config.mul_mode)
        .with_rounding(self.config.rounding)
        .with_pack_pool(&self.bufs.pack)
        .with_clean_engine(ctx.device.clean_engine())
    }

    /// Step 2: the multiplication over the augmented operands.
    pub fn gemm(&self, ctx: &ExecCtx<'_>) {
        let _s = aabft_obs::span!(ctx.obs, "phase", "gemm");
        let gemm = self.gemm_kernel(ctx);
        ctx.launch(gemm.grid(), &gemm);
        self.land_memory_faults(ctx, "gemm");
    }

    /// Steps 1+2 as one fused dispatch: both encode kernels run as the
    /// first stage and the packed GEMM as the second of a single
    /// [`aabft_gpu_sim::Device::launch_fused_on`] call, dropping the clean
    /// path of a protected multiply from 6 dispatches to 4 (the analogue
    /// of paper Alg. 1 fusing encoding with the p-max search). Falls back
    /// to the classic separate [`MultiplyRun::encode`] +
    /// [`MultiplyRun::gemm`] phases whenever any fault plan is armed, the
    /// instrumented path is forced, or the GEMM configuration has no clean
    /// body — campaigns keep the exact 6-launch shape (and the
    /// inter-phase memory-fault landing points) they calibrate against.
    pub fn encode_and_gemm(&self, ctx: &ExecCtx<'_>) {
        let gemm = self.gemm_kernel(ctx);
        if !ctx.device.fusion_viable() || !gemm.supports_clean_path() {
            self.encode(ctx);
            self.gemm(ctx);
            return;
        }
        let _se = aabft_obs::span!(ctx.obs, "phase", "encode");
        let _sg = aabft_obs::span!(ctx.obs, "phase", "gemm");
        let encode_a =
            EncodeColumnsKernel::new(&self.bufs.a, &self.bufs.pmax_a, self.plan.rows, self.plan.inner);
        let encode_b =
            EncodeRowsKernel::new(&self.bufs.b, &self.bufs.pmax_b, self.plan.cols, self.plan.inner);
        ctx.launch_fused(&[
            &[(encode_a.grid(), &encode_a as &dyn Kernel), (encode_b.grid(), &encode_b)],
            &[(gemm.grid(), &gemm)],
        ]);
        // Parity with the separate phases: nothing is armed here (fusion
        // viability was just checked), so these are no-ops, but the hook
        // order stays identical.
        self.land_memory_faults(ctx, "encode");
        self.land_memory_faults(ctx, "gemm");
    }

    /// Step 3: global p-max reduction (the paper overlaps this with the
    /// multiplication; the performance model charges it separately).
    pub fn reduce(&self, ctx: &ExecCtx<'_>) {
        let _s = aabft_obs::span!(ctx.obs, "phase", "pmax_reduce");
        let reduce_a = ReducePMaxKernel::new(&self.bufs.pmax_a);
        ctx.launch(reduce_a.grid(), &reduce_a);
        let reduce_b = ReducePMaxKernel::new(&self.bufs.pmax_b);
        ctx.launch(reduce_b.grid(), &reduce_b);
        self.land_memory_faults(ctx, "pmax_reduce");
    }

    /// Step 4: bounds + reference checksums + comparison. The diagnostics
    /// buffer captures each block's worst residual against its autonomous
    /// bound for the metrics histograms emitted by
    /// [`MultiplyRun::finish`].
    pub fn check(&self, ctx: &ExecCtx<'_>) {
        let _s = aabft_obs::span!(ctx.obs, "phase", "check");
        let check = CheckKernel::new(
            &self.bufs.c,
            &self.bufs.pmax_a,
            &self.bufs.pmax_b,
            &self.bufs.report,
            self.plan.rows,
            self.plan.cols,
            self.plan.inner,
            self.config.omega,
            self.config.rounding_model(),
        )
        .with_diag(&self.bufs.diag);
        ctx.launch(check.grid(), &check);
        // Detection latency: launches issued between pipeline start and
        // the comparison that could flag. Heal re-checks observe again at
        // their larger distance, so the histogram's tail shows how much
        // of the ladder ran before the verdict.
        ctx.obs.metrics.observe(
            "check.detection_latency_launches",
            ctx.device.launches_issued().saturating_sub(self.launch_base) as f64,
        );
        self.land_memory_faults(ctx, "check");
    }

    /// Host epilogue: decode the report, apply the recovery policy, strip
    /// to the caller's shape and emit the per-multiplication metrics.
    /// Returns the outcome together with the buffers, so pooled buffers
    /// can be recycled.
    pub fn finish(self, ctx: &ExecCtx<'_>) -> (AAbftOutcome, RunBuffers) {
        let _s = aabft_obs::span!(ctx.obs, "phase", "recover");
        let report = self.decode_report();
        let GemmPlan { rows, inner, cols } = self.plan;
        let config = self.config;
        let bufs = &self.bufs;
        let mut full =
            FullChecksummed { matrix: bufs.c.to_matrix(rows.total, cols.total), rows, cols };
        let RecoveryOutcome { corrections, recomputed_blocks } =
            apply_policy(config.recovery, &mut full, &report, |blocks, prod| {
                // Selective block recompute on the device, then refresh the
                // host copy of the product.
                let kernel = RecomputeBlocksKernel::new(
                    &bufs.a,
                    &bufs.b,
                    &bufs.c,
                    inner,
                    cols.total,
                    config.block_size,
                    rows.data,
                    cols.data,
                    blocks,
                );
                ctx.launch(kernel.grid(), &kernel);
                prod.matrix = bufs.c.to_matrix(rows.total, cols.total);
            });
        drop(_s);
        self.conclude(ctx, Some(full), report, corrections, recomputed_blocks)
    }

    /// Like [`MultiplyRun::finish`] but for the self-healing executor, which
    /// has already run its own recovery ladder: no policy is applied, the
    /// repair history is taken as given and the product is read back as-is.
    pub(crate) fn finish_healed(
        self,
        ctx: &ExecCtx<'_>,
        report: CheckReport,
        corrections: Vec<Correction>,
        recomputed_blocks: Vec<(usize, usize)>,
    ) -> (AAbftOutcome, RunBuffers) {
        self.conclude(ctx, None, report, corrections, recomputed_blocks)
    }

    /// Epilogue for an unprotected run (no reduce/check phases were
    /// issued): reads the product back and strips it to the caller's
    /// shape without decoding the report buffer — it holds stale data
    /// from whatever run last used these pooled buffers. No detector
    /// metrics are emitted; the outcome carries an empty report, so
    /// `errors_detected()` is `false` by construction, meaning
    /// "unverified", not "verified clean".
    pub(crate) fn finish_unchecked(self, ctx: &ExecCtx<'_>) -> (AAbftOutcome, RunBuffers) {
        let _s = aabft_obs::span!(ctx.obs, "phase", "readback");
        let MultiplyRun { m, q, plan, bufs, .. } = self;
        let GemmPlan { rows, cols, .. } = plan;
        let full =
            FullChecksummed { matrix: bufs.c.to_matrix(rows.total, cols.total), rows, cols };
        let product = full.matrix.block(0, 0, m, q);
        ctx.obs.metrics.counter_inc("abft.unprotected_multiplies");
        (
            AAbftOutcome {
                product,
                full,
                report: CheckReport::default(),
                corrections: Vec::new(),
                recomputed_blocks: Vec::new(),
            },
            bufs,
        )
    }

    /// Shared tail of [`MultiplyRun::finish`]/[`MultiplyRun::finish_healed`]:
    /// strip to the caller's shape and emit the per-multiplication metrics.
    fn conclude(
        self,
        ctx: &ExecCtx<'_>,
        full: Option<FullChecksummed>,
        report: CheckReport,
        corrections: Vec<Correction>,
        recomputed_blocks: Vec<(usize, usize)>,
    ) -> (AAbftOutcome, RunBuffers) {
        // `finish` passes the readback it already holds; `finish_healed`
        // passes None — which also tells us the healing loop owns the
        // fault-rate samples for this run.
        let sample_fault_rate = full.is_some();
        let MultiplyRun { config, m, q, plan, bufs, .. } = self;
        let GemmPlan { rows, cols, .. } = plan;
        let full = full.unwrap_or_else(|| FullChecksummed {
            matrix: bufs.c.to_matrix(rows.total, cols.total),
            rows,
            cols,
        });
        let product = full.matrix.block(0, 0, m, q);

        // ABFT-domain metrics: one sample per protected multiplication.
        let metrics = &ctx.obs.metrics;
        metrics.counter_inc("abft.multiplies");
        metrics.counter_add("abft.detections", u64::from(report.errors_detected()));
        metrics.counter_add(
            "abft.mismatches",
            (report.col_mismatches.len() + report.row_mismatches.len()) as u64,
        );
        metrics.counter_add("abft.located", report.located.len() as u64);
        metrics.counter_add("abft.corrections", corrections.len() as u64);
        metrics.counter_add("abft.recomputed_blocks", recomputed_blocks.len() as u64);
        metrics.gauge_set("abft.pmax_p", config.p as f64);
        let mut eps_lo = f64::INFINITY;
        let mut eps_hi = 0.0_f64;
        for block in bufs.diag.to_vec().chunks_exact(DIAG_WORDS) {
            metrics.observe("check.residual", block[0]);
            metrics.observe("check.bound_y", block[1]);
            metrics.observe("check.epsilon", block[2]);
            // Detector headroom: the fraction of its autonomous tolerance
            // ε the block's worst residual consumed. Passing blocks
            // (residual ≤ ε) feed `check.headroom`, whose p99 stays
            // strictly below 1 on a healthy run; flagged blocks feed
            // `check.exceedance` instead, so fault campaigns cannot smear
            // the headroom tail they are supposed to leave intact.
            let (resid, eps) = (block[0], block[2]);
            if eps > 0.0 {
                if resid <= eps {
                    metrics.observe("check.headroom", resid / eps);
                } else {
                    metrics.observe("check.exceedance", resid / eps);
                }
                eps_lo = eps_lo.min(eps);
                eps_hi = eps_hi.max(eps);
            }
        }
        // Epsilon drift: spread of the per-block autonomous tolerances
        // within one multiply (max ε / min ε ≥ 1). A drifting bound —
        // e.g. a p-max estimate degrading across blocks — widens this.
        if eps_lo.is_finite() && eps_lo > 0.0 {
            metrics.observe("check.epsilon_drift", eps_hi / eps_lo);
        }
        // Plain runs sample the fault-rate estimator here, with the check
        // verdict recovery acted on. Healed runs sampled every decoded
        // verdict inside the healing loop already — their `report` is the
        // final clean re-check, which the loop has sampled, so sampling
        // again would double-count it.
        if sample_fault_rate {
            observe_fault_rate(metrics, report.errors_detected());
        }

        (AAbftOutcome { product, full, report, corrections, recomputed_blocks }, bufs)
    }

    // ---- self-healing executor hooks (crate-internal) ----------------------

    /// Decodes the current contents of the report buffer.
    pub(crate) fn decode_report(&self) -> CheckReport {
        CheckReport::from_raw(&self.bufs.report.to_vec(), self.plan.rows, self.plan.cols)
    }

    /// Rezeros the report/diagnostic buffers so the check can be re-run
    /// after a repair.
    pub(crate) fn clear_check(&self) {
        self.bufs.report.clear();
        self.bufs.diag.clear();
    }

    /// Rung 0 of the recovery ladder: repairs the single located error from
    /// the checksums on the host and writes the repaired elements back into
    /// the device product, so the next check pass verifies the repair.
    pub(crate) fn correct_on_device(&self, report: &CheckReport) -> Vec<Correction> {
        let GemmPlan { rows, cols, .. } = self.plan;
        let mut full =
            FullChecksummed { matrix: self.bufs.c.to_matrix(rows.total, cols.total), rows, cols };
        let applied = crate::correct::correct_located_errors(&mut full, report);
        for c in &applied {
            self.bufs.c.set(c.row * cols.total + c.col, c.after);
        }
        applied
    }

    /// Rung 1: recomputes the given result blocks (plus their checksum
    /// segments) from the operand buffers on the device.
    pub(crate) fn recompute_on_device(&self, ctx: &ExecCtx<'_>, blocks: &[(usize, usize)]) {
        let GemmPlan { rows, inner, cols } = self.plan;
        let kernel = RecomputeBlocksKernel::new(
            &self.bufs.a,
            &self.bufs.b,
            &self.bufs.c,
            inner,
            cols.total,
            self.config.block_size,
            rows.data,
            cols.data,
            blocks,
        );
        ctx.launch(kernel.grid(), &kernel);
    }

    /// Rung 2: rezeros every buffer and re-uploads the operands, exactly as
    /// [`AAbftGemm::begin_with`] does — the caller then re-runs
    /// encode/gemm/reduce before re-checking.
    pub(crate) fn reupload(&self, ctx: &ExecCtx<'_>, a: &Matrix<f64>, b: &Matrix<f64>) {
        assert_eq!((a.rows(), a.cols(), b.cols()), (self.m, self.n, self.q), "reupload shape");
        let _s = aabft_obs::span!(ctx.obs, "phase", "upload");
        self.bufs.reset();
        for i in 0..self.m {
            self.bufs.a.write_slice(i * self.plan.inner, a.row(i));
        }
        for i in 0..self.n {
            self.bufs.b.write_slice(i * self.plan.cols.total, b.row(i));
        }
        self.land_memory_faults(ctx, "upload");
    }

    /// Abandons the run (budget exhausted), returning the buffers for
    /// recycling without releasing any product.
    pub(crate) fn into_buffers(self) -> RunBuffers {
        self.bufs
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple (used for inner-dimension padding).
fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_gpu_sim::inject::{FaultSite, InjectionPlan};
    use aabft_gpu_sim::kernels::gemm::GemmTiling;
    use aabft_matrix::gemm::multiply as host_multiply;

    fn small_config() -> AAbftConfig {
        AAbftConfig::builder()
            .block_size(4)
            .tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
            .build()
            .expect("valid test config")
    }

    fn inputs(m: usize, n: usize, q: usize) -> (Matrix<f64>, Matrix<f64>) {
        (
            Matrix::from_fn(m, n, |i, j| ((i * 3 + j * 7) as f64 * 0.19).sin()),
            Matrix::from_fn(n, q, |i, j| ((i * 11 + j) as f64 * 0.23).cos()),
        )
    }

    #[test]
    fn clean_multiply_matches_reference_and_reports_clean() {
        let (a, b) = inputs(16, 16, 16);
        let outcome = AAbftGemm::new(small_config()).multiply(&Device::with_defaults(), &a, &b);
        assert!(!outcome.errors_detected(), "report: {:?}", outcome.report);
        let expect = host_multiply(&a, &b);
        assert!(outcome.product.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn non_square_and_non_aligned_shapes() {
        let (a, b) = inputs(10, 13, 18);
        let outcome = AAbftGemm::new(small_config()).multiply(&Device::with_defaults(), &a, &b);
        assert!(!outcome.errors_detected());
        assert_eq!(outcome.product.shape(), (10, 18));
        assert!(outcome.product.approx_eq(&host_multiply(&a, &b), 1e-12));
    }

    #[test]
    fn execute_rejects_shape_mismatch_with_typed_error() {
        let (a, _) = inputs(8, 8, 8);
        let (_, b) = inputs(8, 12, 8);
        let device = Device::with_defaults();
        let err = AAbftGemm::new(small_config())
            .execute(&ExecCtx::new(&device), &a, &b)
            .unwrap_err();
        assert!(matches!(err, AbftError::ShapeMismatch { op: "multiply", .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "inner dimensions must agree")]
    fn multiply_convenience_still_panics_on_shape_mismatch() {
        let (a, _) = inputs(8, 8, 8);
        let (_, b) = inputs(8, 12, 8);
        AAbftGemm::new(small_config()).multiply(&Device::with_defaults(), &a, &b);
    }

    #[test]
    fn execute_on_a_non_default_stream_matches_multiply_bitwise() {
        let (a, b) = inputs(16, 16, 16);
        let gemm = AAbftGemm::new(small_config());
        let base = gemm.multiply(&Device::with_defaults(), &a, &b);
        let device = Device::with_defaults();
        let stream = device.create_stream();
        let streamed = gemm.execute(&ExecCtx::on_stream(&device, stream), &a, &b).unwrap();
        assert_eq!(base.product, streamed.product, "streams must not change results");
        let log = device.take_log();
        assert!(log.iter().all(|r| r.stream == stream.raw()), "launches carry the stream");
    }

    #[test]
    fn pooled_buffers_reproduce_fresh_buffers_bitwise() {
        let (a, b) = inputs(16, 16, 16);
        let gemm = AAbftGemm::new(small_config());
        let device = Device::with_defaults();
        let ctx = ExecCtx::new(&device);
        let fresh = gemm.execute(&ctx, &a, &b).unwrap();

        // Run a different multiplication into the buffers, then reuse them.
        let plan = gemm.plan(16, 16, 16);
        let bufs = RunBuffers::for_plan(&plan, gemm.config().p);
        let (c, d) = inputs(16, 16, 16);
        let run = gemm.begin_with(&ctx, &d, &c, bufs).unwrap();
        run.encode(&ctx);
        run.gemm(&ctx);
        run.reduce(&ctx);
        run.check(&ctx);
        let (_, recycled) = run.finish(&ctx);

        let run = gemm.begin_with(&ctx, &a, &b, recycled).unwrap();
        run.encode(&ctx);
        run.gemm(&ctx);
        run.reduce(&ctx);
        run.check(&ctx);
        let (reused, _) = run.finish(&ctx);
        assert_eq!(fresh.product, reused.product, "pooled buffers must be bit-identical");
        assert!(!reused.errors_detected());
    }

    #[test]
    fn injected_fault_is_detected_and_located() {
        let (a, b) = inputs(16, 16, 16);
        let device = Device::with_defaults();
        // Flip a high exponent bit of a final-merge addition on SM 0 — an
        // unmissable error in one element. (A mantissa flip of a
        // zero-valued operand would be legitimately masked.)
        device.arm_injection(InjectionPlan {
            sm: 0,
            site: FaultSite::FinalAdd,
            module: 0,
            k_injection: 3,
            mask: 1 << 62,
        });
        let outcome = AAbftGemm::new(small_config()).multiply(&device, &a, &b);
        assert!(device.disarm_injection(), "fault must strike");
        assert!(outcome.errors_detected(), "fault must be detected");
        // Verify the located coordinate really is a corrupted element.
        let expect = host_multiply(&a, &b);
        if let Some(&(i, j)) = outcome.report.located.first() {
            if i < 16 && j < 16 {
                assert!(
                    (outcome.product[(i, j)] - expect[(i, j)]).abs() > 1e-12,
                    "located element should differ"
                );
            }
        }
    }

    #[test]
    fn correction_restores_the_product() {
        let (a, b) = inputs(16, 16, 16);
        let device = Device::with_defaults();
        // SM 1 runs grid block (1, 0): rows 0-7, columns 8-15 — data region.
        device.arm_injection(InjectionPlan {
            sm: 1,
            site: FaultSite::FinalAdd,
            module: 0,
            k_injection: 3,
            mask: 1 << 51,
        });
        let config = AAbftConfig::builder()
            .block_size(4)
            .tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
            .correct(true)
            .build()
            .expect("valid test config");
        let outcome = AAbftGemm::new(config).multiply(&device, &a, &b);
        assert!(device.disarm_injection());
        if outcome.report.single_error() {
            assert_eq!(outcome.corrections.len(), 1);
            let expect = host_multiply(&a, &b);
            assert!(
                outcome.product.approx_eq(&expect, 1e-11),
                "corrected product should match reference, max diff {}",
                outcome.product.max_abs_diff(&expect)
            );
        }
    }

    #[test]
    fn multiply_reports_metrics_and_phase_spans() {
        let (a, b) = inputs(16, 16, 16);
        let mut device = Device::with_defaults();
        let obs = aabft_obs::Obs::new_shared();
        obs.recorder.set_enabled(true);
        device.set_obs(obs.clone());
        let outcome = AAbftGemm::new(small_config()).multiply(&device, &a, &b);
        assert!(!outcome.errors_detected());

        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("abft.multiplies"), 1);
        assert_eq!(snap.counter("abft.detections"), 0);
        // encode A, encode B, gemm, reduce A, reduce B, check.
        assert_eq!(snap.counter("sim.launches"), 6);

        // One residual/bound/epsilon sample per 4x4 block of the product.
        let resid = obs.metrics.histogram("check.residual").expect("residual histogram");
        assert_eq!(resid.count, 16);
        let eps = obs.metrics.histogram("check.epsilon").expect("epsilon histogram");
        assert!(resid.max <= eps.max, "clean-run residuals stay within tolerance");

        // Detector-health telemetry: every block passed, so each one
        // contributes a headroom sample strictly below 1, no exceedance
        // samples exist, epsilon drift is >= 1, the check observed its
        // latency in launches (6-launch pipeline, check last), and the
        // clean run seeds the fault-rate EWMA at zero.
        let headroom = obs.metrics.histogram("check.headroom").expect("headroom histogram");
        assert_eq!(headroom.count, 16);
        assert!(headroom.max < 1.0, "clean-run headroom max {}", headroom.max);
        assert!(headroom.p99() < 1.0, "clean-run headroom p99 {}", headroom.p99());
        assert!(obs.metrics.histogram("check.exceedance").is_none());
        let drift = obs.metrics.histogram("check.epsilon_drift").expect("drift histogram");
        assert_eq!(drift.count, 1);
        assert!(drift.min >= 1.0);
        let latency = obs
            .metrics
            .histogram("check.detection_latency_launches")
            .expect("latency histogram");
        assert_eq!(latency.count, 1);
        assert_eq!(latency.max, 6.0);
        assert_eq!(obs.metrics.gauge("abft.fault_rate_ewma"), Some(0.0));

        let spans = obs.recorder.spans();
        assert!(spans.iter().any(|s| s.cat == "abft" && s.name == "aabft_multiply"));
        for phase in ["upload", "encode", "gemm", "pmax_reduce", "check", "recover"] {
            assert!(
                spans.iter().any(|s| s.cat == "phase" && s.name == phase),
                "missing phase span {phase}"
            );
        }
        assert_eq!(spans.iter().filter(|s| s.cat == "kernel").count(), 6);
    }

    #[test]
    fn lcm_helper() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(32, 8), 32);
        assert_eq!(lcm(1, 7), 7);
    }
}
