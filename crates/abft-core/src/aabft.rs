//! The complete A-ABFT protected matrix multiplication (paper Section V).
//!
//! Pipeline, exactly as the paper stages it:
//!
//! 1. encoding kernels — checksum encoding fused with the per-block p-max
//!    search, for `A` (column checksums) and `B` (row checksums);
//! 2. the block-based multiplication kernel over the augmented operands;
//! 3. reduction of the block-wise p-max partials to global per-line tables;
//! 4. the checking kernel — autonomous rounding-error bounds, reference
//!    checksums and comparison.
//!
//! The host then decodes the report and (optionally) repairs located single
//! errors.

use crate::check::CheckReport;
use crate::config::AAbftConfig;
use crate::correct::Correction;
use crate::encoding::{AugmentedLayout, FullChecksummed};
use crate::recover::{apply_policy, RecomputeBlocksKernel, RecoveryOutcome};
use crate::kernels::buffers::PMaxBuffers;
use crate::kernels::check::{CheckKernel, DIAG_WORDS, REPORT_WORDS};
use crate::kernels::encode::{EncodeColumnsKernel, EncodeRowsKernel};
use crate::kernels::reduce::ReducePMaxKernel;
use aabft_gpu_sim::device::Device;
use aabft_gpu_sim::kernels::gemm::GemmKernel;
use aabft_gpu_sim::mem::DeviceBuffer;
use aabft_matrix::Matrix;

/// Result of one protected multiplication.
#[derive(Debug)]
pub struct AAbftOutcome {
    /// The caller-visible product (corrected when correction is enabled).
    pub product: Matrix<f64>,
    /// The raw full-checksum product with its layouts.
    pub full: FullChecksummed,
    /// Decoded checksum-check findings.
    pub report: CheckReport,
    /// Corrections applied (empty unless enabled and errors were located).
    pub corrections: Vec<Correction>,
    /// Result blocks recomputed from the operands (only under
    /// [`crate::recover::RecoveryPolicy::CorrectOrRecompute`]).
    pub recomputed_blocks: Vec<(usize, usize)>,
}

impl AAbftOutcome {
    /// `true` if the check flagged any checksum.
    pub fn errors_detected(&self) -> bool {
        self.report.errors_detected()
    }
}

/// The A-ABFT protected GEMM operator.
///
/// # Examples
///
/// ```
/// use aabft_core::{AAbftConfig, AAbftGemm};
/// use aabft_gpu_sim::Device;
/// use aabft_matrix::Matrix;
///
/// let a = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.3).sin());
/// let b = Matrix::from_fn(8, 8, |i, j| ((i * 2 + j) as f64 * 0.2).cos());
/// let config = AAbftConfig::builder().block_size(4).build();
/// let gemm = AAbftGemm::new(config);
/// let device = Device::with_defaults();
/// let outcome = gemm.multiply(&device, &a, &b);
/// assert!(!outcome.errors_detected()); // fault-free run, no false positives
/// assert_eq!(outcome.product.shape(), (8, 8));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AAbftGemm {
    config: AAbftConfig,
}

impl AAbftGemm {
    /// Creates the operator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: AAbftConfig) -> Self {
        config.validate();
        AAbftGemm { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &AAbftConfig {
        &self.config
    }

    /// Axis layouts and padded inner extent for operand shapes `m × n · n × q`.
    pub fn layouts(&self, m: usize, n: usize, q: usize) -> (AugmentedLayout, usize, AugmentedLayout) {
        let bs = self.config.block_size;
        let t = self.config.tiling;
        let rows = AugmentedLayout::new(m, bs, t.bm);
        let cols = AugmentedLayout::new(q, bs, t.bn);
        let inner = n.div_ceil(lcm(bs, t.bk)) * lcm(bs, t.bk);
        (rows, inner, cols)
    }

    /// Runs the protected multiplication `C = A · B` on `device`.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn multiply(&self, device: &Device, a: &Matrix<f64>, b: &Matrix<f64>) -> AAbftOutcome {
        assert_eq!(
            a.cols(),
            b.rows(),
            "inner dimensions must agree: {:?} x {:?}",
            a.shape(),
            b.shape()
        );
        let (m, n, q) = (a.rows(), a.cols(), b.cols());
        let (rows, inner, cols) = self.layouts(m, n, q);
        let bs = self.config.block_size;
        let p = self.config.p;
        let obs = device.obs().clone();
        let _pipeline = aabft_obs::span!(
            obs,
            "abft",
            "aabft_multiply",
            "m" => m as u64,
            "n" => n as u64,
            "q" => q as u64,
            "p" => p as u64,
        );

        // Upload operands into their augmented, padded layouts (checksum
        // regions zeroed; the encoding kernels fill them).
        let (a_buf, b_buf) = {
            let _s = aabft_obs::span!(obs, "phase", "upload");
            let a_buf = {
                let mut aug = Matrix::zeros(rows.total, inner);
                for i in 0..m {
                    aug.row_mut(i)[..n].copy_from_slice(a.row(i));
                }
                DeviceBuffer::from_matrix(&aug)
            };
            let b_buf = {
                let mut aug = Matrix::zeros(inner, cols.total);
                for i in 0..n {
                    aug.row_mut(i)[..q].copy_from_slice(b.row(i));
                }
                DeviceBuffer::from_matrix(&aug)
            };
            (a_buf, b_buf)
        };

        // Step 1: encoding + per-block p-max.
        let pmax_a = PMaxBuffers::new(rows.total, inner / bs, p);
        let pmax_b = PMaxBuffers::new(cols.total, inner / bs, p);
        {
            let _s = aabft_obs::span!(obs, "phase", "encode");
            let encode_a = EncodeColumnsKernel::new(&a_buf, &pmax_a, rows, inner);
            device.launch(encode_a.grid(), &encode_a);
            let encode_b = EncodeRowsKernel::new(&b_buf, &pmax_b, cols, inner);
            device.launch(encode_b.grid(), &encode_b);
        }

        // Step 2: the multiplication over the augmented operands.
        let c_buf = DeviceBuffer::zeros(rows.total * cols.total);
        {
            let _s = aabft_obs::span!(obs, "phase", "gemm");
            let gemm = GemmKernel::new(
                &a_buf,
                &b_buf,
                &c_buf,
                rows.total,
                inner,
                cols.total,
                self.config.tiling,
            )
            .with_mul_mode(self.config.mul_mode)
            .with_rounding(self.config.rounding);
            device.launch(gemm.grid(), &gemm);
        }

        // Step 3: global p-max reduction (the paper overlaps this with the
        // multiplication; the performance model charges it separately).
        {
            let _s = aabft_obs::span!(obs, "phase", "pmax_reduce");
            let reduce_a = ReducePMaxKernel::new(&pmax_a);
            device.launch(reduce_a.grid(), &reduce_a);
            let reduce_b = ReducePMaxKernel::new(&pmax_b);
            device.launch(reduce_b.grid(), &reduce_b);
        }

        // Step 4: bounds + reference checksums + comparison. The diagnostics
        // buffer captures each block's worst residual against its autonomous
        // bound for the metrics histograms below.
        let report_buf = DeviceBuffer::zeros(REPORT_WORDS * rows.blocks * cols.blocks);
        let diag_buf = DeviceBuffer::zeros(DIAG_WORDS * rows.blocks * cols.blocks);
        {
            let _s = aabft_obs::span!(obs, "phase", "check");
            let check = CheckKernel::new(
                &c_buf,
                &pmax_a,
                &pmax_b,
                &report_buf,
                rows,
                cols,
                inner,
                self.config.omega,
                self.config.rounding_model(),
            )
            .with_diag(&diag_buf);
            device.launch(check.grid(), &check);
        }

        // Host epilogue: decode, apply the recovery policy, strip to the
        // caller's shape.
        let _s = aabft_obs::span!(obs, "phase", "recover");
        let report = CheckReport::from_raw(&report_buf.to_vec(), rows, cols);
        let mut full = FullChecksummed {
            matrix: c_buf.to_matrix(rows.total, cols.total),
            rows,
            cols,
        };
        let RecoveryOutcome { corrections, recomputed_blocks } =
            apply_policy(self.config.recovery, &mut full, &report, |blocks, prod| {
                // Selective block recompute on the device, then refresh the
                // host copy of the product.
                let kernel = RecomputeBlocksKernel::new(
                    &a_buf,
                    &b_buf,
                    &c_buf,
                    inner,
                    cols.total,
                    bs,
                    rows.data,
                    cols.data,
                    blocks,
                );
                device.launch(kernel.grid(), &kernel);
                prod.matrix = c_buf.to_matrix(rows.total, cols.total);
            });
        drop(_s);
        let product = full.matrix.block(0, 0, m, q);

        // ABFT-domain metrics: one sample per protected multiplication.
        let metrics = &obs.metrics;
        metrics.counter_inc("abft.multiplies");
        metrics.counter_add("abft.detections", u64::from(report.errors_detected()));
        metrics.counter_add(
            "abft.mismatches",
            (report.col_mismatches.len() + report.row_mismatches.len()) as u64,
        );
        metrics.counter_add("abft.located", report.located.len() as u64);
        metrics.counter_add("abft.corrections", corrections.len() as u64);
        metrics.counter_add("abft.recomputed_blocks", recomputed_blocks.len() as u64);
        metrics.gauge_set("abft.pmax_p", p as f64);
        for block in diag_buf.to_vec().chunks_exact(DIAG_WORDS) {
            metrics.observe("check.residual", block[0]);
            metrics.observe("check.bound_y", block[1]);
            metrics.observe("check.epsilon", block[2]);
        }

        AAbftOutcome { product, full, report, corrections, recomputed_blocks }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple (used for inner-dimension padding).
fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_gpu_sim::inject::{FaultSite, InjectionPlan};
    use aabft_gpu_sim::kernels::gemm::GemmTiling;
    use aabft_matrix::gemm::multiply as host_multiply;

    fn small_config() -> AAbftConfig {
        AAbftConfig::builder()
            .block_size(4)
            .tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
            .build()
    }

    fn inputs(m: usize, n: usize, q: usize) -> (Matrix<f64>, Matrix<f64>) {
        (
            Matrix::from_fn(m, n, |i, j| ((i * 3 + j * 7) as f64 * 0.19).sin()),
            Matrix::from_fn(n, q, |i, j| ((i * 11 + j) as f64 * 0.23).cos()),
        )
    }

    #[test]
    fn clean_multiply_matches_reference_and_reports_clean() {
        let (a, b) = inputs(16, 16, 16);
        let outcome = AAbftGemm::new(small_config()).multiply(&Device::with_defaults(), &a, &b);
        assert!(!outcome.errors_detected(), "report: {:?}", outcome.report);
        let expect = host_multiply(&a, &b);
        assert!(outcome.product.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn non_square_and_non_aligned_shapes() {
        let (a, b) = inputs(10, 13, 18);
        let outcome = AAbftGemm::new(small_config()).multiply(&Device::with_defaults(), &a, &b);
        assert!(!outcome.errors_detected());
        assert_eq!(outcome.product.shape(), (10, 18));
        assert!(outcome.product.approx_eq(&host_multiply(&a, &b), 1e-12));
    }

    #[test]
    fn injected_fault_is_detected_and_located() {
        let (a, b) = inputs(16, 16, 16);
        let device = Device::with_defaults();
        // Flip a high exponent bit of a final-merge addition on SM 0 — an
        // unmissable error in one element. (A mantissa flip of a
        // zero-valued operand would be legitimately masked.)
        device.arm_injection(InjectionPlan {
            sm: 0,
            site: FaultSite::FinalAdd,
            module: 0,
            k_injection: 3,
            mask: 1 << 62,
        });
        let outcome = AAbftGemm::new(small_config()).multiply(&device, &a, &b);
        assert!(device.disarm_injection(), "fault must strike");
        assert!(outcome.errors_detected(), "fault must be detected");
        // Verify the located coordinate really is a corrupted element.
        let expect = host_multiply(&a, &b);
        if let Some(&(i, j)) = outcome.report.located.first() {
            if i < 16 && j < 16 {
                assert!(
                    (outcome.product[(i, j)] - expect[(i, j)]).abs() > 1e-12,
                    "located element should differ"
                );
            }
        }
    }

    #[test]
    fn correction_restores_the_product() {
        let (a, b) = inputs(16, 16, 16);
        let device = Device::with_defaults();
        // SM 1 runs grid block (1, 0): rows 0-7, columns 8-15 — data region.
        device.arm_injection(InjectionPlan {
            sm: 1,
            site: FaultSite::FinalAdd,
            module: 0,
            k_injection: 3,
            mask: 1 << 51,
        });
        let config = AAbftConfig::builder()
            .block_size(4)
            .tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
            .correct(true)
            .build();
        let outcome = AAbftGemm::new(config).multiply(&device, &a, &b);
        assert!(device.disarm_injection());
        if outcome.report.single_error() {
            assert_eq!(outcome.corrections.len(), 1);
            let expect = host_multiply(&a, &b);
            assert!(
                outcome.product.approx_eq(&expect, 1e-11),
                "corrected product should match reference, max diff {}",
                outcome.product.max_abs_diff(&expect)
            );
        }
    }

    #[test]
    fn multiply_reports_metrics_and_phase_spans() {
        let (a, b) = inputs(16, 16, 16);
        let mut device = Device::with_defaults();
        let obs = aabft_obs::Obs::new_shared();
        obs.recorder.set_enabled(true);
        device.set_obs(obs.clone());
        let outcome = AAbftGemm::new(small_config()).multiply(&device, &a, &b);
        assert!(!outcome.errors_detected());

        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("abft.multiplies"), 1);
        assert_eq!(snap.counter("abft.detections"), 0);
        // encode A, encode B, gemm, reduce A, reduce B, check.
        assert_eq!(snap.counter("sim.launches"), 6);

        // One residual/bound/epsilon sample per 4x4 block of the product.
        let resid = obs.metrics.histogram("check.residual").expect("residual histogram");
        assert_eq!(resid.count, 16);
        let eps = obs.metrics.histogram("check.epsilon").expect("epsilon histogram");
        assert!(resid.max <= eps.max, "clean-run residuals stay within tolerance");

        let spans = obs.recorder.spans();
        assert!(spans.iter().any(|s| s.cat == "abft" && s.name == "aabft_multiply"));
        for phase in ["upload", "encode", "gemm", "pmax_reduce", "check", "recover"] {
            assert!(
                spans.iter().any(|s| s.cat == "phase" && s.name == phase),
                "missing phase span {phase}"
            );
        }
        assert_eq!(spans.iter().filter(|s| s.cat == "kernel").count(), 6);
    }

    #[test]
    fn lcm_helper() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(32, 8), 32);
        assert_eq!(lcm(1, 7), 7);
    }
}
