//! A-ABFT-protected LU decomposition (extension).
//!
//! ABFT for LU goes back to Huang & Abraham \[10\] and Jou & Abraham \[11\]:
//! encode `A` with a column-checksum row and eliminate the checksum row
//! alongside the data rows. The invariant maintained by Gaussian
//! elimination is that after eliminating column `k`, the checksum row holds
//! the column sums of the *active trailing submatrix* — so the factorization
//! can be checked at every step (or periodically) without reference to the
//! original matrix. Partial pivoting permutes only active data rows, which
//! leaves the invariant intact.
//!
//! What A-ABFT adds — exactly as for GEMM — is the *autonomous runtime
//! bound* for those floating-point checksum comparisons: after `k`
//! elimination steps each element has accumulated an inner-product-shaped
//! rounding error of length `k`, bounded by Eq. 46 with a running magnitude
//! bound; the comparison sums `n − k` of them, which scales the bound by
//! that count (conservative, like the paper's summation analysis).

use crate::bounds::checksum_epsilon;
use aabft_matrix::Matrix;
use aabft_numerics::RoundingModel;

/// Result of a protected LU factorization.
#[derive(Debug, Clone)]
pub struct LuOutcome {
    /// Unit-lower-triangular factor.
    pub l: Matrix<f64>,
    /// Upper-triangular factor.
    pub u: Matrix<f64>,
    /// Row permutation: `perm[i]` is the original row now at position `i`
    /// (i.e. `P·A = L·U` with `(P·A)[i] = A[perm[i]]`).
    pub perm: Vec<usize>,
    /// Steps at which a checksum comparison exceeded its bound, with the
    /// offending column.
    pub violations: Vec<LuViolation>,
}

/// One checksum violation during elimination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LuViolation {
    /// Elimination step (column) after which the mismatch was seen.
    pub step: usize,
    /// Column whose active sum disagreed with the checksum row.
    pub col: usize,
    /// Magnitude of the disagreement.
    pub residual: f64,
    /// The bound it exceeded.
    pub bound: f64,
}

impl LuOutcome {
    /// `true` if any step's check failed.
    pub fn errors_detected(&self) -> bool {
        !self.violations.is_empty()
    }

    /// Reconstructs `P·A` from the factors (for verification).
    pub fn reconstruct(&self) -> Matrix<f64> {
        aabft_matrix::gemm::multiply(&self.l, &self.u)
    }
}

/// Configuration of the protected factorization.
#[derive(Debug, Clone, Copy)]
pub struct LuConfig {
    /// Check the invariant every `check_every` elimination steps (1 = every
    /// step; larger values amortise the O(active²) comparison work).
    pub check_every: usize,
    /// Confidence scaling of the bound.
    pub omega: f64,
    /// Rounding model of the arithmetic.
    pub model: RoundingModel,
}

impl Default for LuConfig {
    fn default() -> Self {
        LuConfig { check_every: 8, omega: 3.0, model: RoundingModel::binary64() }
    }
}

/// Fault hook for testing: called after each elimination step with the step
/// index and the working matrix (data rows + checksum row); may corrupt it.
pub type LuFaultHook<'a> = dyn FnMut(usize, &mut Matrix<f64>) + 'a;

/// Protected LU factorization with partial pivoting, checked with
/// autonomous bounds. See the module docs for the scheme.
///
/// # Panics
///
/// Panics if `a` is not square or a pivot underflows to zero (singular
/// matrix).
///
/// # Examples
///
/// ```
/// use aabft_core::lu::{protected_lu, LuConfig};
/// use aabft_matrix::Matrix;
///
/// // Diagonally dominant => well-conditioned for elimination.
/// let a = Matrix::from_fn(16, 16, |i, j| {
///     if i == j { 20.0 } else { ((i * 3 + j) as f64 * 0.7).sin() }
/// });
/// let lu = protected_lu(&a, &LuConfig::default(), &mut |_, _| {});
/// assert!(!lu.errors_detected());
/// ```
pub fn protected_lu(a: &Matrix<f64>, config: &LuConfig, fault_hook: &mut LuFaultHook<'_>) -> LuOutcome {
    assert!(a.is_square(), "protected_lu requires a square matrix");
    assert!(config.check_every > 0, "check_every must be positive");
    let n = a.rows();

    // Working matrix: n data rows + 1 checksum row.
    let mut w = Matrix::zeros(n + 1, n);
    for i in 0..n {
        w.row_mut(i).copy_from_slice(a.row(i));
    }
    for j in 0..n {
        let mut s = 0.0;
        for i in 0..n {
            s += a[(i, j)];
        }
        w[(n, j)] = s;
    }

    let mut l = Matrix::zeros(n, n);
    let mut perm: Vec<usize> = (0..n).collect();
    let mut violations = Vec::new();
    // Running magnitude bound for the probabilistic model: the largest
    // |l_ik * u_kj| product seen so far (refreshed each step).
    let mut y_running = 0.0f64;

    for k in 0..n {
        // Partial pivot among active data rows (never the checksum row).
        let pivot_row = (k..n)
            .max_by(|&r, &s| {
                w[(r, k)].abs().partial_cmp(&w[(s, k)].abs()).expect("finite elements")
            })
            .expect("non-empty active range");
        assert!(w[(pivot_row, k)] != 0.0, "singular matrix: zero pivot at step {k}");
        if pivot_row != k {
            for j in 0..n {
                let tmp = w[(k, j)];
                w[(k, j)] = w[(pivot_row, j)];
                w[(pivot_row, j)] = tmp;
            }
            perm.swap(k, pivot_row);
            // Swap the already-computed multiplier rows of L as well.
            for j in 0..k {
                let tmp = l[(k, j)];
                l[(k, j)] = l[(pivot_row, j)];
                l[(pivot_row, j)] = tmp;
            }
        }

        // Eliminate column k from the data rows below and the checksum row.
        let pivot = w[(k, k)];
        for i in k + 1..=n {
            let m = w[(i, k)] / pivot;
            if i < n {
                l[(i, k)] = m;
            }
            for j in k..n {
                let update = m * w[(k, j)];
                y_running = y_running.max(update.abs());
                w[(i, j)] -= update;
            }
        }
        l[(k, k)] = 1.0;

        fault_hook(k, &mut w);

        // Periodic invariant check: for every trailing column, the active
        // rows must sum to the checksum row within the accumulated bound.
        let last = k + 1 == n;
        if (k + 1) % config.check_every == 0 || last {
            let active = n - (k + 1);
            for j in k + 1..n {
                let mut reference = 0.0;
                for i in k + 1..n {
                    reference += w[(i, j)];
                }
                let residual = (reference - w[(n, j)]).abs();
                // Per-element accumulated error ~ inner product of length
                // k+1 bounded by y_running; the comparison sums `active`
                // of them plus the checksum row's own (heavier) history.
                let per_element = checksum_epsilon(k + 1, y_running, config.omega, &config.model);
                let bound = per_element * (active as f64 + 1.0).max(1.0);
                if residual > bound {
                    violations.push(LuViolation { step: k, col: j, residual, bound });
                }
            }
        }
    }

    let mut u = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            u[(i, j)] = w[(i, j)];
        }
    }
    LuOutcome { l, u, perm, violations }
}

/// Convenience: factor and verify the reconstruction against `P·A`.
/// Returns the outcome plus the max reconstruction deviation.
pub fn protected_lu_verified(a: &Matrix<f64>, config: &LuConfig) -> (LuOutcome, f64) {
    let outcome = protected_lu(a, config, &mut |_, _| {});
    let pa = Matrix::from_fn(a.rows(), a.cols(), |i, j| a[(outcome.perm[i], j)]);
    let dev = outcome.reconstruct().max_abs_diff(&pa);
    (outcome, dev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_matrix::gen::InputClass;
    use rand::SeedableRng;

    fn dominant(n: usize, seed: u64) -> Matrix<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let base = InputClass::UNIT.generate(n, &mut rng);
        Matrix::from_fn(n, n, |i, j| if i == j { n as f64 } else { base[(i, j)] })
    }

    #[test]
    fn clean_factorization_verifies_and_is_quiet() {
        for n in [8usize, 16, 33, 64] {
            let a = dominant(n, n as u64);
            let (outcome, dev) = protected_lu_verified(&a, &LuConfig::default());
            assert!(!outcome.errors_detected(), "n={n}: {:?}", outcome.violations);
            assert!(dev < 1e-10 * n as f64, "n={n}: reconstruction dev {dev}");
        }
    }

    #[test]
    fn random_matrices_with_pivoting_are_quiet() {
        // General (not diagonally dominant) matrices need pivoting; the
        // checks must still pass cleanly.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for trial in 0..5 {
            let a = InputClass::UNIT.generate(32, &mut rng);
            let config = LuConfig { check_every: 1, ..Default::default() };
            let (outcome, dev) = protected_lu_verified(&a, &config);
            assert!(
                !outcome.errors_detected(),
                "trial {trial}: false positives {:?}",
                outcome.violations
            );
            assert!(dev < 1e-9, "trial {trial}: dev {dev}");
        }
    }

    #[test]
    fn l_and_u_have_triangular_shape() {
        let a = dominant(16, 9);
        let (outcome, _) = protected_lu_verified(&a, &LuConfig::default());
        for i in 0..16 {
            assert_eq!(outcome.l[(i, i)], 1.0, "unit diagonal");
            for j in i + 1..16 {
                assert_eq!(outcome.l[(i, j)], 0.0, "L upper part");
            }
            for j in 0..i {
                assert_eq!(outcome.u[(i, j)], 0.0, "U lower part");
            }
        }
    }

    #[test]
    fn injected_corruption_is_detected() {
        let a = dominant(32, 4);
        let config = LuConfig { check_every: 1, ..Default::default() };
        // Corrupt one trailing element right after step 10.
        let mut hook = |step: usize, w: &mut Matrix<f64>| {
            if step == 10 {
                w[(20, 25)] += 1e-4;
            }
        };
        let outcome = protected_lu(&a, &config, &mut hook);
        assert!(outcome.errors_detected(), "corruption must be flagged");
        let first = outcome.violations[0];
        assert_eq!(first.step, 10, "detected at the corrupted step");
        assert_eq!(first.col, 25, "detected in the corrupted column");
    }

    #[test]
    fn corruption_far_below_bound_is_tolerated() {
        let a = dominant(32, 5);
        let config = LuConfig { check_every: 1, ..Default::default() };
        let mut hook = |step: usize, w: &mut Matrix<f64>| {
            if step == 10 {
                w[(20, 25)] += 1e-18;
            }
        };
        let outcome = protected_lu(&a, &config, &mut hook);
        assert!(!outcome.errors_detected(), "{:?}", outcome.violations);
    }

    #[test]
    fn periodic_checking_still_catches_late_errors() {
        let a = dominant(32, 6);
        let config = LuConfig { check_every: 8, ..Default::default() };
        let mut hook = |step: usize, w: &mut Matrix<f64>| {
            if step == 9 {
                w[(28, 30)] += 1e-3;
            }
        };
        let outcome = protected_lu(&a, &config, &mut hook);
        assert!(outcome.errors_detected());
        // Next check boundary at step 15 (k+1 divisible by 8).
        assert!(outcome.violations[0].step >= 9);
    }

    #[test]
    fn corrupted_checksum_row_is_also_flagged() {
        let a = dominant(32, 7);
        let n = 32;
        let config = LuConfig { check_every: 1, ..Default::default() };
        let mut hook = move |step: usize, w: &mut Matrix<f64>| {
            if step == 5 {
                w[(n, 12)] *= 1.0 + 1e-6;
            }
        };
        let outcome = protected_lu(&a, &config, &mut hook);
        assert!(outcome.errors_detected());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rectangular_panics() {
        protected_lu(&Matrix::zeros(3, 4), &LuConfig::default(), &mut |_, _| {});
    }
}
