//! Partitioned checksum encoding (paper Section II, Eq. 1–3, Fig. 1).
//!
//! A-ABFT encodes `BS × BS` sub-matrices: every block-row of `A` receives a
//! column-checksum row (the sums of its `BS` rows), and every block-column
//! of `B` receives a row-checksum column. The checksummed matrices then go
//! through the *unmodified* multiplication, producing a full-checksum result
//! whose checksum rows/columns can be re-derived from the data and compared.
//!
//! ## Augmented layout
//!
//! The encoded operand is stored as a plain matrix with the checksum rows
//! (columns) appended after the data region, followed by zero padding up to
//! the GEMM tile multiple:
//!
//! ```text
//! A_cc (rows):  [ data (m, BS-padded) | checksum rows (m/BS) | zero pad ]
//! B_rc (cols):  [ data (q, BS-padded) | checksum cols (q/BS) | zero pad ]
//! ```
//!
//! Row order does not change any dot product, so this is numerically
//! identical to the interleaved layout of Fig. 1 while keeping the GEMM
//! tiling independent of `BS`.

use aabft_matrix::Matrix;

/// Geometry of an augmented (checksummed, padded) operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AugmentedLayout {
    /// Original (caller-visible) extent along the checksummed axis.
    pub orig: usize,
    /// Data extent after padding to a multiple of `BS`.
    pub data: usize,
    /// Number of checksum lines (`data / BS`).
    pub blocks: usize,
    /// Total extent including zero padding to `tile` granularity.
    pub total: usize,
    /// Partitioned-encoding block size.
    pub block_size: usize,
}

impl AugmentedLayout {
    /// Computes the layout for an axis of original extent `orig`, block size
    /// `bs` and GEMM tile granularity `tile`.
    ///
    /// # Panics
    ///
    /// Panics if `bs == 0`, `tile == 0` or `orig == 0`.
    pub fn new(orig: usize, bs: usize, tile: usize) -> Self {
        assert!(orig > 0 && bs > 0 && tile > 0, "layout extents must be positive");
        let data = orig.div_ceil(bs) * bs;
        let blocks = data / bs;
        let augmented = data + blocks;
        let total = augmented.div_ceil(tile) * tile;
        AugmentedLayout { orig, data, blocks, total, block_size: bs }
    }

    /// Index of block `i`'s checksum line.
    pub fn checksum_line(&self, block: usize) -> usize {
        assert!(block < self.blocks, "block {block} out of {}", self.blocks);
        self.data + block
    }

    /// The block containing data line `line`.
    pub fn block_of(&self, line: usize) -> usize {
        assert!(line < self.data, "data line {line} out of {}", self.data);
        line / self.block_size
    }
}

/// Column-checksummed `A` operand: data rows, then per-block-row checksum
/// rows, then zero padding (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnChecksummed {
    /// The augmented matrix (`rows.total × cols`).
    pub matrix: Matrix<f64>,
    /// Row-axis layout.
    pub rows: AugmentedLayout,
    /// Inner (column) extent after padding.
    pub cols: usize,
}

/// Row-checksummed `B` operand: data columns, then per-block-column checksum
/// columns, then zero padding.
#[derive(Debug, Clone, PartialEq)]
pub struct RowChecksummed {
    /// The augmented matrix (`rows × cols.total`).
    pub matrix: Matrix<f64>,
    /// Inner (row) extent after padding.
    pub rows: usize,
    /// Column-axis layout.
    pub cols: AugmentedLayout,
}

/// Encodes `A` (shape `m × n`) into a column-checksum matrix `A_cc`
/// (Eq. 1 with partitioned encoding): checksum row `I` holds
/// `Σ_{i ∈ block I} a_{i,j}` for every column `j`.
///
/// `row_tile` is the GEMM tile granularity for the row axis; `inner_tile`
/// pads `n`.
///
/// This is the host reference implementation; the GPU encoding kernel
/// (Algorithm 1) computes the same sums on-device and is tested against it.
///
/// # Examples
///
/// ```
/// use aabft_core::encoding::encode_columns;
/// use aabft_matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
/// let acc = encode_columns(&a, 2, 1, 1);
/// // Single 2x2 block: checksum row = column sums.
/// assert_eq!(acc.matrix[(2, 0)], 4.0);
/// assert_eq!(acc.matrix[(2, 1)], 6.0);
/// ```
pub fn encode_columns(a: &Matrix<f64>, bs: usize, row_tile: usize, inner_tile: usize) -> ColumnChecksummed {
    let rows = AugmentedLayout::new(a.rows(), bs, row_tile);
    let cols = a.cols().div_ceil(inner_tile) * inner_tile;
    let mut m = Matrix::zeros(rows.total, cols);
    for i in 0..a.rows() {
        m.row_mut(i)[..a.cols()].copy_from_slice(a.row(i));
    }
    for block in 0..rows.blocks {
        let cs = rows.checksum_line(block);
        for j in 0..cols {
            let mut s = 0.0;
            for i in block * bs..(block + 1) * bs {
                s += m[(i, j)];
            }
            m[(cs, j)] = s;
        }
    }
    ColumnChecksummed { matrix: m, rows, cols }
}

/// Encodes `B` (shape `n × q`) into a row-checksum matrix `B_rc` (Eq. 2 with
/// partitioned encoding): checksum column `J` holds `Σ_{j ∈ block J} b_{i,j}`
/// for every row `i`.
pub fn encode_rows(b: &Matrix<f64>, bs: usize, col_tile: usize, inner_tile: usize) -> RowChecksummed {
    let cols = AugmentedLayout::new(b.cols(), bs, col_tile);
    let rows = b.rows().div_ceil(inner_tile) * inner_tile;
    let mut m = Matrix::zeros(rows, cols.total);
    for i in 0..b.rows() {
        m.row_mut(i)[..b.cols()].copy_from_slice(b.row(i));
    }
    for block in 0..cols.blocks {
        let cs = cols.checksum_line(block);
        for i in 0..rows {
            let mut s = 0.0;
            for j in block * bs..(block + 1) * bs {
                s += m[(i, j)];
            }
            m[(i, cs)] = s;
        }
    }
    RowChecksummed { matrix: m, rows, cols }
}

/// A full-checksum product `C_fc = A_cc · B_rc` (Eq. 3) together with its
/// axis layouts; produced by the multiplication step of the pipeline.
#[derive(Debug, Clone)]
pub struct FullChecksummed {
    /// The augmented product (`rows.total × cols.total`).
    pub matrix: Matrix<f64>,
    /// Row-axis layout (from `A_cc`).
    pub rows: AugmentedLayout,
    /// Column-axis layout (from `B_rc`).
    pub cols: AugmentedLayout,
}

impl FullChecksummed {
    /// Extracts the caller-visible `orig × orig` data region.
    pub fn data(&self) -> Matrix<f64> {
        self.matrix.block(0, 0, self.rows.orig, self.cols.orig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_matrix::gemm::multiply;

    #[test]
    fn layout_exact_fit() {
        let l = AugmentedLayout::new(64, 32, 32);
        assert_eq!(l.data, 64);
        assert_eq!(l.blocks, 2);
        assert_eq!(l.total, 96); // 64 + 2 -> pad to 96
        assert_eq!(l.checksum_line(1), 65);
        assert_eq!(l.block_of(63), 1);
    }

    #[test]
    fn layout_with_padding() {
        let l = AugmentedLayout::new(50, 32, 32);
        assert_eq!(l.data, 64);
        assert_eq!(l.blocks, 2);
        assert_eq!(l.total, 96);
    }

    #[test]
    fn column_checksums_sum_block_rows() {
        let a: Matrix = Matrix::from_fn(8, 6, |i, j| (i * 6 + j) as f64);
        let acc = encode_columns(&a, 4, 1, 1);
        assert_eq!(acc.rows.blocks, 2);
        for block in 0..2 {
            for j in 0..6 {
                let expect: f64 = (block * 4..block * 4 + 4).map(|i| a[(i, j)]).sum();
                assert_eq!(acc.matrix[(acc.rows.checksum_line(block), j)], expect);
            }
        }
    }

    #[test]
    fn row_checksums_sum_block_cols() {
        let b: Matrix = Matrix::from_fn(5, 8, |i, j| ((i + 1) * (j + 2)) as f64);
        let brc = encode_rows(&b, 4, 1, 1);
        assert_eq!(brc.cols.blocks, 2);
        for block in 0..2 {
            for i in 0..5 {
                let expect: f64 = (block * 4..block * 4 + 4).map(|j| b[(i, j)]).sum();
                assert_eq!(brc.matrix[(i, brc.cols.checksum_line(block))], expect);
            }
        }
    }

    #[test]
    fn padding_regions_are_zero() {
        let a: Matrix = Matrix::from_fn(5, 5, |_, _| 1.0);
        let acc = encode_columns(&a, 4, 8, 8);
        // data padded to 8 rows, 2 blocks, augmented 10 -> total 16.
        assert_eq!(acc.rows.total, 16);
        assert_eq!(acc.cols, 8);
        // Rows 10.. and cols 5.. are zero.
        for i in 10..16 {
            for j in 0..8 {
                assert_eq!(acc.matrix[(i, j)], 0.0);
            }
        }
        for i in 0..5 {
            for j in 5..8 {
                assert_eq!(acc.matrix[(i, j)], 0.0);
            }
        }
        // Checksum of the second (partially padded) block counts only the
        // one real row.
        assert_eq!(acc.matrix[(acc.rows.checksum_line(1), 0)], 1.0);
    }

    #[test]
    fn checksums_survive_multiplication() {
        // The defining ABFT property: multiplying the encoded operands
        // yields a product whose checksum rows equal the block-column-sums
        // of its data rows (up to rounding).
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i * 3 + j) as f64 * 0.17).sin());
        let b: Matrix = Matrix::from_fn(8, 8, |i, j| ((i + 5 * j) as f64 * 0.11).cos());
        let acc = encode_columns(&a, 4, 1, 1);
        let brc = encode_rows(&b, 4, 1, 1);
        let c = multiply(&acc.matrix, &brc.matrix);
        for block in 0..2 {
            let cs = acc.rows.checksum_line(block);
            for j in 0..8 {
                let recomputed: f64 = (block * 4..block * 4 + 4).map(|i| c[(i, j)]).sum();
                assert!(
                    (recomputed - c[(cs, j)]).abs() < 1e-13,
                    "block {block} col {j}: {recomputed} vs {}",
                    c[(cs, j)]
                );
            }
        }
        for block in 0..2 {
            let cs = brc.cols.checksum_line(block);
            for i in 0..8 {
                let recomputed: f64 = (block * 4..block * 4 + 4).map(|j| c[(i, j)]).sum();
                assert!((recomputed - c[(i, cs)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        AugmentedLayout::new(0, 4, 4);
    }
}
