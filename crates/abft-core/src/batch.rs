//! Multi-stream batched execution of protected multiplications.
//!
//! [`BatchGemm`] accepts N protected-GEMM requests and runs them through
//! the A-ABFT pipeline with three forms of reuse/overlap a loop of
//! [`AAbftGemm::multiply`] calls cannot get:
//!
//! * **plan caching** — augmented layouts are computed once per distinct
//!   `(m, n, q, BS)` and reused for every request of that shape;
//! * **buffer pooling** — device buffers ([`RunBuffers`]) are recycled
//!   across requests of the same shape instead of reallocated;
//! * **stream overlap** — requests are spread round-robin over a set of
//!   streams and their encode/gemm/reduce/check phases are issued
//!   interleaved, so the stream scheduler
//!   ([`aabft_gpu_sim::PerfModel::schedule`]) overlaps different requests'
//!   kernels on the device's SMs in the modelled timeline.
//!
//! Kernels execute functionally at issue time, so batching never changes
//! numeric results: the products are bit-identical to sequential execution
//! (a property the tests pin down). Host epilogues (report decoding,
//! correction) run in parallel under the rayon shim — except under
//! [`RecoveryPolicy::CorrectOrRecompute`], where the epilogue launches
//! recompute kernels and stays sequential to keep the launch log
//! deterministic.

use crate::aabft::{AAbftGemm, AAbftOutcome, GemmPlan, MultiplyRun, RunBuffers};
use crate::error::AbftError;
use crate::heal::{heal_run, HealedOutcome, DEFAULT_HEAL_BUDGET};
use crate::recover::RecoveryPolicy;
use aabft_gpu_sim::device::Device;
use aabft_gpu_sim::stream::{ExecCtx, StreamId};
use aabft_matrix::Matrix;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashMap;

/// Cache key of a request shape: `(m, n, q, block_size)`.
pub type PlanKey = (usize, usize, usize, usize);

/// Batched protected-GEMM service (see the module docs).
///
/// # Examples
///
/// ```
/// use aabft_core::{AAbftConfig, AAbftGemm, BatchGemm};
/// use aabft_gpu_sim::Device;
/// use aabft_matrix::Matrix;
///
/// let config = AAbftConfig::builder().block_size(4).build().unwrap();
/// let batch = BatchGemm::new(AAbftGemm::new(config)).with_streams(4);
/// let device = Device::with_defaults();
/// let requests: Vec<_> = (0..6)
///     .map(|r| {
///         (
///             Matrix::from_fn(8, 8, |i, j| ((r + i + j) as f64 * 0.1).sin()),
///             Matrix::from_fn(8, 8, |i, j| ((r + i * 2 + j) as f64 * 0.1).cos()),
///         )
///     })
///     .collect();
/// let outcomes = batch.execute(&device, &requests).unwrap();
/// assert_eq!(outcomes.len(), 6);
/// assert!(outcomes.iter().all(|o| !o.errors_detected()));
/// ```
#[derive(Debug)]
pub struct BatchGemm {
    gemm: AAbftGemm,
    streams: usize,
    heal_budget: u32,
    plans: Mutex<HashMap<PlanKey, GemmPlan>>,
    pool: Mutex<HashMap<PlanKey, Vec<RunBuffers>>>,
}

impl BatchGemm {
    /// Default number of streams requests are spread over.
    pub const DEFAULT_STREAMS: usize = 8;

    /// Creates the service around a configured A-ABFT operator.
    pub fn new(gemm: AAbftGemm) -> Self {
        BatchGemm {
            gemm,
            streams: Self::DEFAULT_STREAMS,
            heal_budget: DEFAULT_HEAL_BUDGET,
            plans: Mutex::new(HashMap::new()),
            pool: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the number of streams requests are spread over (at least 1).
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams.max(1);
        self
    }

    /// Sets the per-request self-healing retry budget used by
    /// [`BatchGemm::execute_verified`]. A budget of 0 makes any detected
    /// error immediately unrecoverable for its request.
    pub fn with_heal_budget(mut self, budget: u32) -> Self {
        self.heal_budget = budget;
        self
    }

    /// The underlying protected-GEMM operator.
    pub fn gemm(&self) -> &AAbftGemm {
        &self.gemm
    }

    /// Number of pooled buffer sets currently available for reuse.
    pub fn pooled_buffers(&self) -> usize {
        self.pool.lock().values().map(Vec::len).sum()
    }

    fn plan_for(&self, key: PlanKey, obs: &aabft_obs::Obs) -> GemmPlan {
        let mut plans = self.plans.lock();
        match plans.get(&key) {
            Some(&plan) => {
                obs.metrics.counter_inc("batch.plan_hits");
                plan
            }
            None => {
                obs.metrics.counter_inc("batch.plan_misses");
                let plan = self.gemm.plan(key.0, key.1, key.2);
                plans.insert(key, plan);
                plan
            }
        }
    }

    fn buffers_for(&self, key: PlanKey, plan: &GemmPlan, obs: &aabft_obs::Obs) -> RunBuffers {
        if let Some(bufs) = self.pool.lock().get_mut(&key).and_then(Vec::pop) {
            obs.metrics.counter_inc("batch.buffer_reuses");
            return bufs;
        }
        obs.metrics.counter_inc("batch.buffer_allocs");
        RunBuffers::for_plan(plan, self.gemm.config().p)
    }

    /// Executes `requests` (pairs `(A, B)`, each computing `C = A · B`)
    /// and returns their outcomes in request order.
    ///
    /// Rejects any shape-mismatched request with a typed error before a
    /// single kernel is issued.
    pub fn execute(
        &self,
        device: &Device,
        requests: &[(Matrix<f64>, Matrix<f64>)],
    ) -> Result<Vec<AAbftOutcome>, AbftError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        for (a, b) in requests {
            if a.cols() != b.rows() {
                return Err(AbftError::ShapeMismatch {
                    op: "batch",
                    left: a.shape(),
                    right: b.shape(),
                });
            }
        }

        let obs = device.obs().clone();
        let bs = self.gemm.config().block_size;
        let streams: Vec<StreamId> =
            (0..self.streams.min(requests.len())).map(|_| device.create_stream()).collect();
        let _batch = aabft_obs::span!(
            obs,
            "batch",
            "batch_execute",
            "requests" => requests.len() as u64,
            "streams" => streams.len() as u64,
        );
        obs.metrics.counter_add("batch.requests", requests.len() as u64);
        obs.metrics.gauge_set("batch.streams", streams.len() as f64);

        // Upload phase (host-side): plan lookup, pooled buffers, operand
        // upload. Each request gets a per-request span carrying its stream.
        let mut keys = Vec::with_capacity(requests.len());
        let mut runs: Vec<(StreamId, MultiplyRun)> = Vec::with_capacity(requests.len());
        for (i, (a, b)) in requests.iter().enumerate() {
            let stream = streams[i % streams.len()];
            let ctx = ExecCtx::on_stream(device, stream);
            let _req = aabft_obs::span!(
                obs,
                "batch",
                "request",
                "request" => i as u64,
                "stream" => stream.raw(),
                "m" => a.rows() as u64,
                "n" => a.cols() as u64,
                "q" => b.cols() as u64,
            );
            obs.metrics.counter_inc(&format!("batch.stream.{}.requests", stream.raw()));
            let key: PlanKey = (a.rows(), a.cols(), b.cols(), bs);
            let plan = self.plan_for(key, &obs);
            let bufs = self.buffers_for(key, &plan, &obs);
            keys.push(key);
            runs.push((stream, self.gemm.begin_with(&ctx, a, b, bufs)?));
        }

        // Issue the device phases interleaved across requests: all fused
        // encode+gemm dispatches, then all reductions, then all checks.
        // Each request's launches stay ordered on its own stream; requests
        // on different streams overlap in the modelled timeline (which
        // follows the per-stream dependency edges, not issue order).
        for (stream, run) in &runs {
            run.encode_and_gemm(&ExecCtx::on_stream(device, *stream));
        }
        for (stream, run) in &runs {
            run.reduce(&ExecCtx::on_stream(device, *stream));
        }
        for (stream, run) in &runs {
            run.check(&ExecCtx::on_stream(device, *stream));
        }

        // Host epilogue. Parallel under the rayon shim, except when the
        // recovery policy launches recompute kernels — then sequential, so
        // the launch log (and the modelled timeline) stays deterministic.
        let sequential_epilogue =
            self.gemm.config().recovery == RecoveryPolicy::CorrectOrRecompute;
        let finished: Vec<(AAbftOutcome, RunBuffers)> = if sequential_epilogue {
            runs.into_iter()
                .map(|(stream, run)| run.finish(&ExecCtx::on_stream(device, stream)))
                .collect()
        } else {
            let slots: Vec<Mutex<Option<(StreamId, MultiplyRun)>>> =
                runs.into_iter().map(|r| Mutex::new(Some(r))).collect();
            (0..slots.len())
                .into_par_iter()
                .map(|i| {
                    let (stream, run) = slots[i].lock().take().expect("each slot taken once");
                    run.finish(&ExecCtx::on_stream(device, stream))
                })
                .collect()
        };

        let mut outcomes = Vec::with_capacity(finished.len());
        let mut pool = self.pool.lock();
        for ((outcome, bufs), key) in finished.into_iter().zip(keys) {
            pool.entry(key).or_default().push(bufs);
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }

    /// Executes `requests` under the verified self-healing executor
    /// ([`crate::heal::SelfHealingGemm`] semantics) with **fault isolation**:
    /// every request gets its own `Result` slot, in request order.
    ///
    /// A request whose shape is invalid, or whose recovery exhausts the
    /// heal budget ([`BatchGemm::with_heal_budget`]), fails alone with a
    /// typed error — sibling requests' results are unaffected (the device
    /// phases run on per-request streams and disjoint buffers, so a
    /// poisoned request cannot perturb another's product). Pooled buffers
    /// are recycled on both the success and the failure path.
    pub fn execute_verified(
        &self,
        device: &Device,
        requests: &[(Matrix<f64>, Matrix<f64>)],
    ) -> Vec<Result<HealedOutcome, AbftError>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let obs = device.obs().clone();
        let bs = self.gemm.config().block_size;
        let streams: Vec<StreamId> =
            (0..self.streams.min(requests.len())).map(|_| device.create_stream()).collect();
        let _batch = aabft_obs::span!(
            obs,
            "batch",
            "batch_execute_verified",
            "requests" => requests.len() as u64,
            "streams" => streams.len() as u64,
            "budget" => u64::from(self.heal_budget),
        );
        obs.metrics.counter_add("batch.requests", requests.len() as u64);
        obs.metrics.gauge_set("batch.streams", streams.len() as f64);

        // Upload phase: a shape-mismatched request fails in place *before*
        // pulling pooled buffers, so it cannot strand or consume pool
        // capacity; the remaining requests proceed normally.
        let mut results: Vec<Option<Result<HealedOutcome, AbftError>>> =
            requests.iter().map(|_| None).collect();
        let mut runs: Vec<(usize, StreamId, PlanKey, MultiplyRun)> =
            Vec::with_capacity(requests.len());
        for (i, (a, b)) in requests.iter().enumerate() {
            if a.cols() != b.rows() {
                results[i] = Some(Err(AbftError::ShapeMismatch {
                    op: "batch",
                    left: a.shape(),
                    right: b.shape(),
                }));
                continue;
            }
            let stream = streams[i % streams.len()];
            let ctx = ExecCtx::on_stream(device, stream);
            let _req = aabft_obs::span!(
                obs,
                "batch",
                "request",
                "request" => i as u64,
                "stream" => stream.raw(),
                "m" => a.rows() as u64,
                "n" => a.cols() as u64,
                "q" => b.cols() as u64,
            );
            obs.metrics.counter_inc(&format!("batch.stream.{}.requests", stream.raw()));
            let key: PlanKey = (a.rows(), a.cols(), b.cols(), bs);
            let plan = self.plan_for(key, &obs);
            let bufs = self.buffers_for(key, &plan, &obs);
            match self.gemm.begin_with(&ctx, a, b, bufs) {
                Ok(run) => runs.push((i, stream, key, run)),
                Err(e) => results[i] = Some(Err(e)),
            }
        }

        // Device phases interleaved across the valid requests, exactly as
        // in [`BatchGemm::execute`].
        for (_, stream, _, run) in &runs {
            run.encode_and_gemm(&ExecCtx::on_stream(device, *stream));
        }
        for (_, stream, _, run) in &runs {
            run.reduce(&ExecCtx::on_stream(device, *stream));
        }
        for (_, stream, _, run) in &runs {
            run.check(&ExecCtx::on_stream(device, *stream));
        }

        // Verified epilogue: each request runs its own healing loop on its
        // own stream. Sequential, because healing may launch repair kernels
        // and the launch log must stay deterministic. The buffers come back
        // on *both* paths — an unrecoverable request still returns its
        // pooled buffers instead of leaking them.
        for (i, stream, key, run) in runs {
            let ctx = ExecCtx::on_stream(device, stream);
            let (a, b) = &requests[i];
            let (result, bufs) = heal_run(&self.gemm, self.heal_budget, &ctx, a, b, run);
            match &result {
                Ok(_) => obs.metrics.counter_inc("batch.verified_requests"),
                Err(_) => obs.metrics.counter_inc("batch.unrecovered"),
            }
            self.pool.lock().entry(key).or_default().push(bufs);
            results[i] = Some(result);
        }

        results
            .into_iter()
            .map(|r| r.expect("every request slot is filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AAbftConfig;
    use aabft_gpu_sim::kernels::gemm::GemmTiling;
    use aabft_gpu_sim::PerfModel;

    fn small_gemm() -> AAbftGemm {
        AAbftGemm::new(
            AAbftConfig::builder()
                .block_size(4)
                .tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
                .build()
                .expect("valid test config"),
        )
    }

    fn requests(n: usize) -> Vec<(Matrix<f64>, Matrix<f64>)> {
        (0..n)
            .map(|r| {
                (
                    Matrix::from_fn(16, 16, |i, j| ((r * 5 + i * 3 + j) as f64 * 0.17).sin()),
                    Matrix::from_fn(16, 16, |i, j| ((r * 7 + i + j * 2) as f64 * 0.13).cos()),
                )
            })
            .collect()
    }

    #[test]
    fn batch_is_bit_identical_to_sequential() {
        let reqs = requests(6);
        let gemm = small_gemm();
        let sequential: Vec<_> = {
            let device = Device::with_defaults();
            reqs.iter().map(|(a, b)| gemm.multiply(&device, a, b)).collect()
        };
        let batched = BatchGemm::new(gemm)
            .with_streams(3)
            .execute(&Device::with_defaults(), &reqs)
            .unwrap();
        for (s, b) in sequential.iter().zip(&batched) {
            assert_eq!(s.product, b.product, "batching must not change results");
            assert_eq!(s.report, b.report);
        }
    }

    #[test]
    fn plans_and_buffers_are_reused_across_rounds() {
        let batch = BatchGemm::new(small_gemm()).with_streams(2);
        let mut device = Device::with_defaults();
        let obs = aabft_obs::Obs::new_shared();
        device.set_obs(obs.clone());

        let reqs = requests(4);
        batch.execute(&device, &reqs).unwrap();
        assert_eq!(obs.metrics.counter("batch.plan_misses"), 1, "one distinct shape");
        assert_eq!(obs.metrics.counter("batch.plan_hits"), 3);
        assert_eq!(obs.metrics.counter("batch.buffer_allocs"), 4);
        assert_eq!(batch.pooled_buffers(), 4);

        batch.execute(&device, &reqs).unwrap();
        assert_eq!(obs.metrics.counter("batch.plan_misses"), 1, "plan cache hit");
        assert_eq!(obs.metrics.counter("batch.buffer_reuses"), 4, "buffers recycled");
        assert_eq!(obs.metrics.counter("batch.requests"), 8);
    }

    #[test]
    fn batched_timeline_beats_sequential() {
        let reqs = requests(8);
        let gemm = small_gemm();
        let model = PerfModel::k20c();

        let device = Device::with_defaults();
        for (a, b) in &reqs {
            gemm.multiply(&device, a, b);
        }
        let sequential = model.pipeline_time(&device.take_log());

        let device = Device::with_defaults();
        BatchGemm::new(gemm).with_streams(8).execute(&device, &reqs).unwrap();
        let log = device.take_log();
        let batched = model.stream_makespan(&log, device.config().num_sms);
        assert!(
            batched < sequential / 1.5,
            "batched {batched} vs sequential {sequential}"
        );
    }

    #[test]
    fn verified_batch_matches_plain_batch_when_fault_free() {
        let reqs = requests(5);
        let batch = BatchGemm::new(small_gemm()).with_streams(3);
        let plain = batch.execute(&Device::with_defaults(), &reqs).unwrap();
        let verified = batch.execute_verified(&Device::with_defaults(), &reqs);
        assert_eq!(verified.len(), 5);
        for (p, v) in plain.iter().zip(&verified) {
            let healed = v.as_ref().expect("fault-free request verifies");
            assert_eq!(healed.attempts, 0);
            assert_eq!(p.product, healed.outcome.product, "verified path must be bit-identical");
        }
    }

    #[test]
    fn exhausted_request_fails_alone_without_poisoning_siblings() {
        use aabft_gpu_sim::MemoryFaultPlan;

        let reqs = requests(4);
        let clean = BatchGemm::new(small_gemm())
            .with_streams(2)
            .execute(&Device::with_defaults(), &reqs)
            .unwrap();

        // The fault fires once, at the first "gemm" phase boundary — i.e.
        // deterministically in request 0's product buffer (data region,
        // high exponent bit: unmissable).
        let arm = |device: &Device| {
            let plan = small_gemm().plan(16, 16, 16);
            device.arm_memory_fault(MemoryFaultPlan {
                buffer: "c",
                word: 2 * plan.cols.total + 3,
                mask: 1 << 62,
                after_phase: "gemm",
            });
        };

        // Budget 0: the poisoned request is immediately unrecoverable. It
        // must fail alone; siblings stay bit-identical to the clean batch,
        // and its pooled buffers come back for reuse.
        let batch = BatchGemm::new(small_gemm()).with_streams(2).with_heal_budget(0);
        let device = Device::with_defaults();
        arm(&device);
        let results = batch.execute_verified(&device, &reqs);
        assert_eq!(device.disarm_count(), 1, "memory fault must land");
        match &results[0] {
            Err(AbftError::Unrecovered { attempts: 0, residual }) => {
                assert!(residual.errors_detected());
            }
            other => panic!("request 0 should be unrecovered, got {other:?}"),
        }
        for (i, clean_outcome) in clean.iter().enumerate().skip(1) {
            let healed = results[i].as_ref().expect("sibling requests verify");
            assert_eq!(healed.attempts, 0, "siblings see no faults");
            assert_eq!(
                clean_outcome.product, healed.outcome.product,
                "sibling request {i} must be bit-identical to the clean batch"
            );
        }
        assert_eq!(batch.pooled_buffers(), 4, "failed request's buffers are recycled");

        // Default budget: the same fault heals and every request verifies.
        let batch = BatchGemm::new(small_gemm()).with_streams(2);
        let device = Device::with_defaults();
        arm(&device);
        let results = batch.execute_verified(&device, &reqs);
        assert_eq!(device.disarm_count(), 1);
        let healed = results[0].as_ref().expect("poisoned request heals under budget");
        assert!(healed.attempts > 0);
        // Checksum-based repair reconstructs the element through a different
        // rounding path, so request 0 matches to tolerance, not bitwise.
        assert!(
            clean[0].product.approx_eq(&healed.outcome.product, 1e-11),
            "healed to the clean product, max diff {}",
            clean[0].product.max_abs_diff(&healed.outcome.product)
        );
        for (i, clean_outcome) in clean.iter().enumerate().skip(1) {
            assert_eq!(clean_outcome.product, results[i].as_ref().unwrap().outcome.product);
        }
    }

    #[test]
    fn mismatched_request_fails_in_place_in_verified_mode() {
        let batch = BatchGemm::new(small_gemm());
        let device = Device::with_defaults();
        let good = requests(1).remove(0);
        let bad = (Matrix::zeros(16, 16), Matrix::zeros(12, 16));
        let results = batch.execute_verified(&device, &[bad, good]);
        assert!(matches!(results[0], Err(AbftError::ShapeMismatch { op: "batch", .. })));
        assert!(results[1].is_ok(), "valid sibling still runs");
        assert_eq!(batch.pooled_buffers(), 1, "only the valid request consumed buffers");
    }

    #[test]
    fn mismatched_request_is_rejected_before_any_launch() {
        let batch = BatchGemm::new(small_gemm());
        let device = Device::with_defaults();
        let good = requests(1).remove(0);
        let bad = (Matrix::zeros(16, 16), Matrix::zeros(12, 16));
        let err = batch.execute(&device, &[good, bad]).unwrap_err();
        assert!(matches!(err, AbftError::ShapeMismatch { op: "batch", .. }), "{err}");
        assert!(device.take_log().is_empty(), "no kernels issued");
    }
}
