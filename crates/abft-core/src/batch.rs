//! Multi-stream batched execution of protected multiplications.
//!
//! [`BatchGemm`] accepts N GEMM requests ([`GemmRequest`]) and runs them
//! through the A-ABFT pipeline with four forms of reuse/overlap a loop of
//! [`AAbftGemm::multiply`] calls cannot get:
//!
//! * **plan caching** — augmented layouts are computed once per distinct
//!   `(m, n, q, BS)` and reused for every request of that shape;
//! * **buffer pooling** — device buffers ([`RunBuffers`]) are recycled
//!   across requests of the same shape instead of reallocated;
//! * **stream overlap** — requests are spread round-robin over a set of
//!   streams, so the stream scheduler
//!   ([`aabft_gpu_sim::PerfModel::schedule`]) overlaps different requests'
//!   kernels on the device's SMs in the modelled timeline;
//! * **macro-parallel dispatch** — on a fault-free device every request's
//!   device phases run on a separate worker thread (whole-request
//!   dispatch), so N requests use N host workers end to end instead of
//!   funneling through one thread pool launch by launch. Whenever any
//!   fault plan is armed or the instrumented path is forced, the batch
//!   falls back to the sequential interleaved issue order, which keeps
//!   memory-fault landing points and the launch log exactly as campaigns
//!   calibrate them.
//!
//! Kernels execute functionally at issue time, so batching never changes
//! numeric results: the products are bit-identical to sequential execution
//! whatever the worker count or arrival order (a property the tests pin
//! down). Host epilogues (report decoding, correction) run in parallel
//! under the rayon shim — except when a request heals or the policy is
//! [`RecoveryPolicy::CorrectOrRecompute`], where the epilogue launches
//! recovery kernels and stays sequential to keep the launch log
//! deterministic.
//!
//! Each request carries a [`ProtectionPolicy`] choosing its pipeline:
//! unprotected (multiply only), plain A-ABFT detection, or verified
//! self-healing with a per-request budget. Plain `(A, B)` pairs convert
//! into requests with the default policy, so untyped call sites migrate
//! mechanically.

use crate::aabft::{AAbftGemm, AAbftOutcome, GemmPlan, MultiplyRun, RunBuffers};
use crate::error::AbftError;
use crate::heal::{heal_run, HealedOutcome, DEFAULT_HEAL_BUDGET};
use crate::recover::{RecoveryAction, RecoveryPolicy};
use aabft_gpu_sim::device::Device;
use aabft_gpu_sim::stream::{ExecCtx, StreamId};
use aabft_matrix::Matrix;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashMap;

/// Cache key of a request shape: `(m, n, q, block_size)`.
pub type PlanKey = (usize, usize, usize, usize);

/// Per-request fault-tolerance policy: what the batch engine owes this
/// multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtectionPolicy {
    /// Multiply only: no checksum verification runs (the reduce and check
    /// phases are skipped). The outcome's report is empty by construction
    /// — `errors_detected()` returning `false` means "unverified", not
    /// "verified clean".
    Unprotected,
    /// The full A-ABFT detection pipeline (encode → multiply → p-max
    /// reduce → autonomous check), with the operator's recovery policy
    /// applied in the epilogue. The default, and the semantics untyped
    /// `(A, B)` call sites get.
    #[default]
    AAbft,
    /// Verified self-healing ([`crate::heal::SelfHealingGemm`] semantics)
    /// with a per-request retry budget overriding the batch-level
    /// [`BatchGemm::with_heal_budget`] default.
    SelfHealing {
        /// Recovery attempts before the request fails with
        /// [`AbftError::Unrecovered`]; 0 makes any detected error
        /// immediately unrecoverable.
        budget: u32,
    },
}

/// One typed batch-admission request: compute `C = A · B` under `policy`.
///
/// # Examples
///
/// ```
/// use aabft_core::{GemmRequest, ProtectionPolicy};
/// use aabft_matrix::Matrix;
///
/// let a = Matrix::from_fn(8, 8, |i, j| (i + j) as f64);
/// let b = Matrix::from_fn(8, 8, |i, j| (i * j) as f64);
/// // Default policy is full A-ABFT detection…
/// let protected = GemmRequest::new(a.clone(), b.clone());
/// assert_eq!(protected.policy, ProtectionPolicy::AAbft);
/// // …and plain pairs convert mechanically.
/// let from_pair: GemmRequest = (a.clone(), b.clone()).into();
/// assert_eq!(from_pair.policy, ProtectionPolicy::AAbft);
/// // Per-request overrides:
/// let fast = GemmRequest::new(a, b).with_policy(ProtectionPolicy::Unprotected);
/// assert_eq!(fast.policy, ProtectionPolicy::Unprotected);
/// ```
#[derive(Debug, Clone)]
pub struct GemmRequest {
    /// Left operand (`m × n`).
    pub a: Matrix<f64>,
    /// Right operand (`n × q`).
    pub b: Matrix<f64>,
    /// Fault-tolerance policy for this request.
    pub policy: ProtectionPolicy,
}

impl GemmRequest {
    /// A request under the default policy ([`ProtectionPolicy::AAbft`]).
    pub fn new(a: Matrix<f64>, b: Matrix<f64>) -> Self {
        GemmRequest { a, b, policy: ProtectionPolicy::default() }
    }

    /// Overrides the policy.
    pub fn with_policy(mut self, policy: ProtectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Whether the verification phases (reduce, check) run for this
    /// request.
    fn verified_phases(&self) -> bool {
        self.policy != ProtectionPolicy::Unprotected
    }
}

impl From<(Matrix<f64>, Matrix<f64>)> for GemmRequest {
    fn from((a, b): (Matrix<f64>, Matrix<f64>)) -> Self {
        GemmRequest::new(a, b)
    }
}

/// Borrowed pairs clone their operands — the migration path for call
/// sites holding `&[(Matrix, Matrix)]`. Pass owned requests to avoid the
/// copies.
impl From<&(Matrix<f64>, Matrix<f64>)> for GemmRequest {
    fn from((a, b): &(Matrix<f64>, Matrix<f64>)) -> Self {
        GemmRequest::new(a.clone(), b.clone())
    }
}

impl From<&GemmRequest> for GemmRequest {
    fn from(req: &GemmRequest) -> Self {
        req.clone()
    }
}

/// Batched protected-GEMM service (see the module docs).
///
/// # Examples
///
/// ```
/// use aabft_core::{AAbftConfig, AAbftGemm, BatchGemm, GemmRequest, ProtectionPolicy};
/// use aabft_gpu_sim::Device;
/// use aabft_matrix::Matrix;
///
/// let config = AAbftConfig::builder().block_size(4).build().unwrap();
/// let batch = BatchGemm::new(AAbftGemm::new(config)).with_streams(4);
/// let device = Device::with_defaults();
/// let requests: Vec<GemmRequest> = (0..6)
///     .map(|r| {
///         let a = Matrix::from_fn(8, 8, |i, j| ((r + i + j) as f64 * 0.1).sin());
///         let b = Matrix::from_fn(8, 8, |i, j| ((r + i * 2 + j) as f64 * 0.1).cos());
///         // Every third request skips verification.
///         let policy = if r % 3 == 0 {
///             ProtectionPolicy::Unprotected
///         } else {
///             ProtectionPolicy::AAbft
///         };
///         GemmRequest::new(a, b).with_policy(policy)
///     })
///     .collect();
/// let outcomes = batch.execute(&device, requests).unwrap();
/// assert_eq!(outcomes.len(), 6);
/// assert!(outcomes.iter().all(|o| !o.errors_detected()));
/// ```
#[derive(Debug)]
pub struct BatchGemm {
    gemm: AAbftGemm,
    streams: usize,
    heal_budget: u32,
    plans: Mutex<HashMap<PlanKey, GemmPlan>>,
    pool: Mutex<HashMap<PlanKey, Vec<RunBuffers>>>,
}

impl BatchGemm {
    /// Default number of streams requests are spread over.
    pub const DEFAULT_STREAMS: usize = 8;

    /// Creates the service around a configured A-ABFT operator.
    pub fn new(gemm: AAbftGemm) -> Self {
        BatchGemm {
            gemm,
            streams: Self::DEFAULT_STREAMS,
            heal_budget: DEFAULT_HEAL_BUDGET,
            plans: Mutex::new(HashMap::new()),
            pool: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the number of streams requests are spread over (at least 1).
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams.max(1);
        self
    }

    /// Sets the per-request self-healing retry budget used by
    /// [`BatchGemm::execute_verified`] for requests that do not carry
    /// their own ([`ProtectionPolicy::SelfHealing`]). A budget of 0 makes
    /// any detected error immediately unrecoverable for its request.
    pub fn with_heal_budget(mut self, budget: u32) -> Self {
        self.heal_budget = budget;
        self
    }

    /// The underlying protected-GEMM operator.
    pub fn gemm(&self) -> &AAbftGemm {
        &self.gemm
    }

    /// Number of pooled buffer sets currently available for reuse.
    pub fn pooled_buffers(&self) -> usize {
        self.pool.lock().values().map(Vec::len).sum()
    }

    fn plan_for(&self, key: PlanKey, obs: &aabft_obs::Obs) -> GemmPlan {
        let mut plans = self.plans.lock();
        match plans.get(&key) {
            Some(&plan) => {
                obs.metrics.counter_inc("batch.plan_hits");
                plan
            }
            None => {
                obs.metrics.counter_inc("batch.plan_misses");
                let plan = self.gemm.plan(key.0, key.1, key.2);
                plans.insert(key, plan);
                plan
            }
        }
    }

    fn buffers_for(&self, key: PlanKey, plan: &GemmPlan, obs: &aabft_obs::Obs) -> RunBuffers {
        if let Some(bufs) = self.pool.lock().get_mut(&key).and_then(Vec::pop) {
            obs.metrics.counter_inc("batch.buffer_reuses");
            return bufs;
        }
        obs.metrics.counter_inc("batch.buffer_allocs");
        RunBuffers::for_plan(plan, self.gemm.config().p)
    }

    /// Issues the device phases of every admitted run.
    ///
    /// On a fault-free device ([`Device::fusion_viable`]) this is the
    /// macro-parallel path: requests are dispatched whole onto worker
    /// threads in three phase waves — every request's fused encode+gemm,
    /// then (for verifying policies) every reduction, then every check.
    /// Within a wave each worker runs its requests' full phase; the
    /// nested-parallelism guard in the rayon shim keeps each launch's
    /// block loop serial on its worker, so request-level parallelism owns
    /// the thread budget. The waves keep launches phase-grouped in the
    /// log, which is what the stream scheduler's greedy seq-order pass
    /// packs best (and exactly the order a single worker produces).
    ///
    /// With any fault plan armed (or instrumentation forced) the same
    /// phase order is issued sequentially from the host thread,
    /// preserving the exact pre-macro-parallel launch order and the
    /// inter-phase memory-fault landing points campaigns calibrate
    /// against.
    fn run_device_phases(
        &self,
        device: &Device,
        runs: &[(StreamId, MultiplyRun)],
        policies: &[&GemmRequest],
    ) {
        debug_assert_eq!(runs.len(), policies.len());
        if device.fusion_viable() {
            let wave = |phase: fn(&MultiplyRun, &ExecCtx<'_>), verified_only: bool| {
                let _dispatched: Vec<()> = (0..runs.len())
                    .into_par_iter()
                    .map(|i| {
                        if verified_only && !policies[i].verified_phases() {
                            return;
                        }
                        let (stream, run) = &runs[i];
                        phase(run, &ExecCtx::on_stream(device, *stream));
                    })
                    .collect();
            };
            wave(MultiplyRun::encode_and_gemm, false);
            wave(MultiplyRun::reduce, true);
            wave(MultiplyRun::check, true);
            return;
        }
        for (stream, run) in runs {
            run.encode_and_gemm(&ExecCtx::on_stream(device, *stream));
        }
        for ((stream, run), req) in runs.iter().zip(policies) {
            if req.verified_phases() {
                run.reduce(&ExecCtx::on_stream(device, *stream));
            }
        }
        for ((stream, run), req) in runs.iter().zip(policies) {
            if req.verified_phases() {
                run.check(&ExecCtx::on_stream(device, *stream));
            }
        }
    }

    /// Epilogue of one request under its policy, for [`BatchGemm::execute`].
    fn finish_one(
        &self,
        device: &Device,
        stream: StreamId,
        run: MultiplyRun,
        req: &GemmRequest,
    ) -> (Result<AAbftOutcome, AbftError>, RunBuffers) {
        let ctx = ExecCtx::on_stream(device, stream);
        match req.policy {
            ProtectionPolicy::Unprotected => {
                let (outcome, bufs) = run.finish_unchecked(&ctx);
                (Ok(outcome), bufs)
            }
            ProtectionPolicy::AAbft => {
                let (outcome, bufs) = run.finish(&ctx);
                (Ok(outcome), bufs)
            }
            ProtectionPolicy::SelfHealing { budget } => {
                let (result, bufs) = heal_run(&self.gemm, budget, &ctx, &req.a, &req.b, run);
                (result.map(|healed| healed.outcome), bufs)
            }
        }
    }

    /// Executes `requests` and returns their outcomes in request order.
    ///
    /// Accepts anything that converts into [`GemmRequest`]s — typed
    /// requests, or plain `(A, B)` pairs (owned or borrowed), which get
    /// the default [`ProtectionPolicy::AAbft`].
    ///
    /// Rejects any shape-mismatched request with a typed error before a
    /// single kernel is issued; this all-or-nothing surface also fails
    /// wholesale when a [`ProtectionPolicy::SelfHealing`] request
    /// exhausts its budget (per-request fault isolation lives in
    /// [`BatchGemm::execute_verified`]). Sibling outcomes are computed
    /// and their buffers pooled before the error returns.
    pub fn execute<I>(&self, device: &Device, requests: I) -> Result<Vec<AAbftOutcome>, AbftError>
    where
        I: IntoIterator,
        I::Item: Into<GemmRequest>,
    {
        let requests: Vec<GemmRequest> = requests.into_iter().map(Into::into).collect();
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        for req in &requests {
            if req.a.cols() != req.b.rows() {
                return Err(AbftError::ShapeMismatch {
                    op: "batch",
                    left: req.a.shape(),
                    right: req.b.shape(),
                });
            }
        }

        let obs = device.obs().clone();
        let bs = self.gemm.config().block_size;
        let streams: Vec<StreamId> =
            (0..self.streams.min(requests.len())).map(|_| device.create_stream()).collect();
        let _batch = aabft_obs::span!(
            obs,
            "batch",
            "batch_execute",
            "requests" => requests.len() as u64,
            "streams" => streams.len() as u64,
        );
        obs.metrics.counter_add("batch.requests", requests.len() as u64);
        obs.metrics.gauge_set("batch.streams", streams.len() as f64);

        // Upload phase (host-side): plan lookup, pooled buffers, operand
        // upload. Sequential so the plan/pool cache counters stay
        // deterministic whatever the worker count. Each request gets a
        // per-request span carrying its stream.
        let mut keys = Vec::with_capacity(requests.len());
        let mut runs: Vec<(StreamId, MultiplyRun)> = Vec::with_capacity(requests.len());
        for (i, req) in requests.iter().enumerate() {
            let stream = streams[i % streams.len()];
            let ctx = ExecCtx::on_stream(device, stream);
            let _req = aabft_obs::span!(
                obs,
                "batch",
                "request",
                "request" => i as u64,
                "stream" => stream.raw(),
                "m" => req.a.rows() as u64,
                "n" => req.a.cols() as u64,
                "q" => req.b.cols() as u64,
            );
            obs.metrics.counter_inc(&format!("batch.stream.{}.requests", stream.raw()));
            let key: PlanKey = (req.a.rows(), req.a.cols(), req.b.cols(), bs);
            let plan = self.plan_for(key, &obs);
            let bufs = self.buffers_for(key, &plan, &obs);
            keys.push(key);
            runs.push((stream, self.gemm.begin_with(&ctx, &req.a, &req.b, bufs)?));
        }

        let policies: Vec<&GemmRequest> = requests.iter().collect();
        self.run_device_phases(device, &runs, &policies);

        // Host epilogue. Parallel under the rayon shim, except when a
        // request may launch recovery kernels (self-healing policies, or
        // the operator-wide CorrectOrRecompute) — then sequential, so the
        // launch log (and the modelled timeline) stays deterministic.
        let sequential_epilogue = self.gemm.config().recovery == RecoveryPolicy::CorrectOrRecompute
            || requests.iter().any(|r| matches!(r.policy, ProtectionPolicy::SelfHealing { .. }));
        let finished: Vec<(Result<AAbftOutcome, AbftError>, RunBuffers)> = if sequential_epilogue {
            runs.into_iter()
                .zip(&requests)
                .map(|((stream, run), req)| self.finish_one(device, stream, run, req))
                .collect()
        } else {
            let slots: Vec<Mutex<Option<(StreamId, MultiplyRun)>>> =
                runs.into_iter().map(|r| Mutex::new(Some(r))).collect();
            (0..slots.len())
                .into_par_iter()
                .map(|i| {
                    let (stream, run) = slots[i].lock().take().expect("each slot taken once");
                    self.finish_one(device, stream, run, &requests[i])
                })
                .collect()
        };

        // Pool every request's buffers — including those of a failed
        // self-healing request — before propagating the first error.
        let mut outcomes = Vec::with_capacity(finished.len());
        let mut first_err = None;
        let mut pool = self.pool.lock();
        for ((result, bufs), key) in finished.into_iter().zip(keys) {
            pool.entry(key).or_default().push(bufs);
            match result {
                Ok(outcome) => outcomes.push(outcome),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        drop(pool);
        match first_err {
            None => Ok(outcomes),
            Some(e) => Err(e),
        }
    }

    /// Executes `requests` with **fault isolation**: every request gets
    /// its own `Result` slot, in request order.
    ///
    /// Verifying requests run the self-healing executor
    /// ([`crate::heal::SelfHealingGemm`] semantics) — under the batch
    /// budget ([`BatchGemm::with_heal_budget`]) for the default policy,
    /// or their own for [`ProtectionPolicy::SelfHealing`].
    /// [`ProtectionPolicy::Unprotected`] requests skip verification and
    /// report `attempts == 0` with an empty outcome report.
    ///
    /// A request whose shape is invalid, or whose recovery exhausts its
    /// budget, fails alone with a typed error — sibling requests'
    /// results are unaffected (the device phases run on per-request
    /// streams and disjoint buffers, so a poisoned request cannot
    /// perturb another's product). Pooled buffers are recycled on both
    /// the success and the failure path.
    pub fn execute_verified<I>(
        &self,
        device: &Device,
        requests: I,
    ) -> Vec<Result<HealedOutcome, AbftError>>
    where
        I: IntoIterator,
        I::Item: Into<GemmRequest>,
    {
        let requests: Vec<GemmRequest> = requests.into_iter().map(Into::into).collect();
        if requests.is_empty() {
            return Vec::new();
        }
        let obs = device.obs().clone();
        let bs = self.gemm.config().block_size;
        let streams: Vec<StreamId> =
            (0..self.streams.min(requests.len())).map(|_| device.create_stream()).collect();
        let _batch = aabft_obs::span!(
            obs,
            "batch",
            "batch_execute_verified",
            "requests" => requests.len() as u64,
            "streams" => streams.len() as u64,
            "budget" => u64::from(self.heal_budget),
        );
        obs.metrics.counter_add("batch.requests", requests.len() as u64);
        obs.metrics.gauge_set("batch.streams", streams.len() as f64);

        // Upload phase: a shape-mismatched request fails in place *before*
        // pulling pooled buffers, so it cannot strand or consume pool
        // capacity; the remaining requests proceed normally.
        let mut results: Vec<Option<Result<HealedOutcome, AbftError>>> =
            requests.iter().map(|_| None).collect();
        let mut runs: Vec<(usize, StreamId, PlanKey, MultiplyRun)> =
            Vec::with_capacity(requests.len());
        for (i, req) in requests.iter().enumerate() {
            if req.a.cols() != req.b.rows() {
                results[i] = Some(Err(AbftError::ShapeMismatch {
                    op: "batch",
                    left: req.a.shape(),
                    right: req.b.shape(),
                }));
                continue;
            }
            let stream = streams[i % streams.len()];
            let ctx = ExecCtx::on_stream(device, stream);
            let _req = aabft_obs::span!(
                obs,
                "batch",
                "request",
                "request" => i as u64,
                "stream" => stream.raw(),
                "m" => req.a.rows() as u64,
                "n" => req.a.cols() as u64,
                "q" => req.b.cols() as u64,
            );
            obs.metrics.counter_inc(&format!("batch.stream.{}.requests", stream.raw()));
            let key: PlanKey = (req.a.rows(), req.a.cols(), req.b.cols(), bs);
            let plan = self.plan_for(key, &obs);
            let bufs = self.buffers_for(key, &plan, &obs);
            match self.gemm.begin_with(&ctx, &req.a, &req.b, bufs) {
                Ok(run) => runs.push((i, stream, key, run)),
                Err(e) => results[i] = Some(Err(e)),
            }
        }

        // Device phases over the admitted runs, macro-parallel when the
        // device is fault-free — same dispatch policy as
        // [`BatchGemm::run_device_phases`], over `(stream, &run)` views
        // because the runs stay in their `(index, key)` context here.
        let policies: Vec<&GemmRequest> = runs.iter().map(|&(i, ..)| &requests[i]).collect();
        {
            let pairs: Vec<(StreamId, &MultiplyRun)> =
                runs.iter().map(|(_, s, _, r)| (*s, r)).collect();
            if device.fusion_viable() {
                let wave = |phase: fn(&MultiplyRun, &ExecCtx<'_>), verified_only: bool| {
                    let _dispatched: Vec<()> = (0..pairs.len())
                        .into_par_iter()
                        .map(|j| {
                            if verified_only && !policies[j].verified_phases() {
                                return;
                            }
                            let (stream, run) = pairs[j];
                            phase(run, &ExecCtx::on_stream(device, stream));
                        })
                        .collect();
                };
                wave(MultiplyRun::encode_and_gemm, false);
                wave(MultiplyRun::reduce, true);
                wave(MultiplyRun::check, true);
            } else {
                for &(stream, run) in &pairs {
                    run.encode_and_gemm(&ExecCtx::on_stream(device, stream));
                }
                for (&(stream, run), req) in pairs.iter().zip(&policies) {
                    if req.verified_phases() {
                        run.reduce(&ExecCtx::on_stream(device, stream));
                    }
                }
                for (&(stream, run), req) in pairs.iter().zip(&policies) {
                    if req.verified_phases() {
                        run.check(&ExecCtx::on_stream(device, stream));
                    }
                }
            }
        }

        // Verified epilogue: each request runs its own healing loop on its
        // own stream. Sequential, because healing may launch repair kernels
        // and the launch log must stay deterministic. The buffers come back
        // on *both* paths — an unrecoverable request still returns its
        // pooled buffers instead of leaking them.
        for (i, stream, key, run) in runs {
            let ctx = ExecCtx::on_stream(device, stream);
            let req = &requests[i];
            let (result, bufs) = match req.policy {
                ProtectionPolicy::Unprotected => {
                    let (outcome, bufs) = run.finish_unchecked(&ctx);
                    obs.metrics.counter_inc("batch.unprotected_requests");
                    (
                        Ok(HealedOutcome {
                            outcome,
                            attempts: 0,
                            escalations: 0,
                            // Nothing was checked, so nothing needed repair
                            // — by decree, not by verification.
                            action: RecoveryAction::NoneNeeded,
                        }),
                        bufs,
                    )
                }
                ProtectionPolicy::AAbft => {
                    heal_run(&self.gemm, self.heal_budget, &ctx, &req.a, &req.b, run)
                }
                ProtectionPolicy::SelfHealing { budget } => {
                    heal_run(&self.gemm, budget, &ctx, &req.a, &req.b, run)
                }
            };
            if req.verified_phases() {
                match &result {
                    Ok(_) => obs.metrics.counter_inc("batch.verified_requests"),
                    Err(_) => obs.metrics.counter_inc("batch.unrecovered"),
                }
            }
            self.pool.lock().entry(key).or_default().push(bufs);
            results[i] = Some(result);
        }

        results
            .into_iter()
            .map(|r| r.expect("every request slot is filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AAbftConfig;
    use aabft_gpu_sim::kernels::gemm::GemmTiling;
    use aabft_gpu_sim::PerfModel;

    fn small_gemm() -> AAbftGemm {
        AAbftGemm::new(
            AAbftConfig::builder()
                .block_size(4)
                .tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
                .build()
                .expect("valid test config"),
        )
    }

    fn requests(n: usize) -> Vec<(Matrix<f64>, Matrix<f64>)> {
        (0..n)
            .map(|r| {
                (
                    Matrix::from_fn(16, 16, |i, j| ((r * 5 + i * 3 + j) as f64 * 0.17).sin()),
                    Matrix::from_fn(16, 16, |i, j| ((r * 7 + i + j * 2) as f64 * 0.13).cos()),
                )
            })
            .collect()
    }

    #[test]
    fn batch_is_bit_identical_to_sequential() {
        let reqs = requests(6);
        let gemm = small_gemm();
        let sequential: Vec<_> = {
            let device = Device::with_defaults();
            reqs.iter().map(|(a, b)| gemm.multiply(&device, a, b)).collect()
        };
        let batched = BatchGemm::new(gemm)
            .with_streams(3)
            .execute(&Device::with_defaults(), &reqs)
            .unwrap();
        for (s, b) in sequential.iter().zip(&batched) {
            assert_eq!(s.product, b.product, "batching must not change results");
            assert_eq!(s.report, b.report);
        }
    }

    #[test]
    fn plans_and_buffers_are_reused_across_rounds() {
        let batch = BatchGemm::new(small_gemm()).with_streams(2);
        let mut device = Device::with_defaults();
        let obs = aabft_obs::Obs::new_shared();
        device.set_obs(obs.clone());

        let reqs = requests(4);
        batch.execute(&device, &reqs).unwrap();
        assert_eq!(obs.metrics.counter("batch.plan_misses"), 1, "one distinct shape");
        assert_eq!(obs.metrics.counter("batch.plan_hits"), 3);
        assert_eq!(obs.metrics.counter("batch.buffer_allocs"), 4);
        assert_eq!(batch.pooled_buffers(), 4);

        batch.execute(&device, &reqs).unwrap();
        assert_eq!(obs.metrics.counter("batch.plan_misses"), 1, "plan cache hit");
        assert_eq!(obs.metrics.counter("batch.buffer_reuses"), 4, "buffers recycled");
        assert_eq!(obs.metrics.counter("batch.requests"), 8);
    }

    #[test]
    fn batched_timeline_beats_sequential() {
        let reqs = requests(8);
        let gemm = small_gemm();
        let model = PerfModel::k20c();

        let device = Device::with_defaults();
        for (a, b) in &reqs {
            gemm.multiply(&device, a, b);
        }
        let sequential = model.pipeline_time(&device.take_log());

        let device = Device::with_defaults();
        BatchGemm::new(gemm).with_streams(8).execute(&device, &reqs).unwrap();
        let log = device.take_log();
        let batched = model.stream_makespan(&log, device.config().num_sms);
        assert!(
            batched < sequential / 1.5,
            "batched {batched} vs sequential {sequential}"
        );
    }

    #[test]
    fn verified_batch_matches_plain_batch_when_fault_free() {
        let reqs = requests(5);
        let batch = BatchGemm::new(small_gemm()).with_streams(3);
        let plain = batch.execute(&Device::with_defaults(), &reqs).unwrap();
        let verified = batch.execute_verified(&Device::with_defaults(), &reqs);
        assert_eq!(verified.len(), 5);
        for (p, v) in plain.iter().zip(&verified) {
            let healed = v.as_ref().expect("fault-free request verifies");
            assert_eq!(healed.attempts, 0);
            assert_eq!(p.product, healed.outcome.product, "verified path must be bit-identical");
        }
    }

    #[test]
    fn outcomes_are_independent_of_worker_count_and_arrival_order() {
        let reqs = requests(6);
        let batch = BatchGemm::new(small_gemm()).with_streams(3);
        let baseline = batch.execute(&Device::with_defaults(), &reqs).unwrap();

        for workers in [1usize, 2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(workers).build().unwrap();

            let outcomes =
                pool.install(|| batch.execute(&Device::with_defaults(), &reqs).unwrap());
            for (i, (base, out)) in baseline.iter().zip(&outcomes).enumerate() {
                assert_eq!(
                    base.product, out.product,
                    "request {i} product drifted under {workers} workers"
                );
                assert_eq!(base.report, out.report);
            }

            // Arrival order: the same requests submitted reversed come back
            // reversed — each outcome is a pure function of its request.
            let mut reversed = reqs.clone();
            reversed.reverse();
            let outcomes =
                pool.install(|| batch.execute(&Device::with_defaults(), &reversed).unwrap());
            for (i, out) in outcomes.iter().enumerate() {
                let base = &baseline[reqs.len() - 1 - i];
                assert_eq!(
                    base.product, out.product,
                    "request {i} depends on arrival order under {workers} workers"
                );
                assert_eq!(base.report, out.report);
            }
        }
    }

    #[test]
    fn policies_select_pipeline_per_request() {
        let reqs = requests(2);
        let batch = BatchGemm::new(small_gemm()).with_streams(2);
        let protected = batch.execute(&Device::with_defaults(), &reqs).unwrap();

        // Same operands, first request unprotected: its product's data
        // region is bit-identical (same multiply kernel), its report is
        // empty, and it files fewer launches (no reduce, no check).
        let device = Device::with_defaults();
        let typed: Vec<GemmRequest> = reqs
            .iter()
            .enumerate()
            .map(|(i, pair)| {
                let req = GemmRequest::from(pair);
                if i == 0 {
                    req.with_policy(ProtectionPolicy::Unprotected)
                } else {
                    req
                }
            })
            .collect();
        let outcomes = batch.execute(&device, typed).unwrap();
        let log = device.take_log();
        assert_eq!(outcomes[0].product, protected[0].product);
        assert_eq!(outcomes[1].product, protected[1].product);
        assert!(!outcomes[0].errors_detected());
        assert!(outcomes[0].report.col_mismatches.is_empty());
        // Protected request: encode ×2 + gemm + reduce ×2 + check = 6
        // records; unprotected: encode ×2 + gemm = 3.
        assert_eq!(log.len(), 9, "3 unprotected + 6 protected launch records");
        assert_eq!(log.iter().filter(|r| r.phase == "check").count(), 1);
        assert_eq!(log.iter().filter(|r| r.phase == "pmax_reduce").count(), 2);

        // Verified surface: an unprotected request reports a no-op heal.
        let verified = batch.execute_verified(&Device::with_defaults(), {
            let mut t: Vec<GemmRequest> = reqs.iter().map(GemmRequest::from).collect();
            t[0].policy = ProtectionPolicy::Unprotected;
            t[1].policy = ProtectionPolicy::SelfHealing { budget: 2 };
            t
        });
        let unprotected = verified[0].as_ref().unwrap();
        assert_eq!(unprotected.attempts, 0);
        assert_eq!(unprotected.action, RecoveryAction::NoneNeeded);
        assert_eq!(unprotected.outcome.product, protected[0].product);
        let healed = verified[1].as_ref().unwrap();
        assert_eq!(healed.attempts, 0, "fault-free self-healing request verifies clean");
        assert_eq!(healed.outcome.product, protected[1].product);
    }

    #[test]
    fn budget_zero_policy_fails_fast_without_recovery_launches() {
        use aabft_gpu_sim::MemoryFaultPlan;

        let reqs = requests(3);
        let clean = BatchGemm::new(small_gemm()).execute(&Device::with_defaults(), &reqs).unwrap();

        // The engine keeps its default budget; only request 0 opts into
        // budget 0, so the fail-fast below is the per-request policy, not
        // an engine-wide setting. One stream: the first "gemm" boundary —
        // where the fault lands — is deterministically request 0's.
        let batch = BatchGemm::new(small_gemm()).with_streams(1);
        let device = Device::with_defaults();
        let plan = small_gemm().plan(16, 16, 16);
        device.arm_memory_fault(MemoryFaultPlan {
            buffer: "c",
            word: 2 * plan.cols.total + 3,
            mask: 1 << 62,
            after_phase: "gemm",
        });
        let typed: Vec<GemmRequest> = reqs
            .iter()
            .enumerate()
            .map(|(i, pair)| {
                let req = GemmRequest::from(pair);
                if i == 0 {
                    req.with_policy(ProtectionPolicy::SelfHealing { budget: 0 })
                } else {
                    req
                }
            })
            .collect();
        let results = batch.execute_verified(&device, typed);
        assert_eq!(device.disarm_count(), 1, "memory fault must land");
        match &results[0] {
            Err(AbftError::Unrecovered { attempts: 0, residual }) => {
                assert!(residual.errors_detected());
            }
            other => panic!("request 0 should fail fast, got {other:?}"),
        }
        // Fail-fast means zero recovery work was launched: three protected
        // first runs file 6 records each and no recompute kernel appears.
        let log = device.take_log();
        assert_eq!(log.len(), 18, "no launches beyond the three first runs");
        assert!(log.iter().all(|r| r.phase != "recompute"), "no recompute attempts");
        for (i, clean_outcome) in clean.iter().enumerate().skip(1) {
            let healed = results[i].as_ref().expect("sibling requests verify");
            assert_eq!(healed.attempts, 0);
            assert_eq!(
                clean_outcome.product, healed.outcome.product,
                "sibling request {i} must stay bit-identical to the clean batch"
            );
        }
    }

    #[test]
    fn exhausted_request_fails_alone_without_poisoning_siblings() {
        use aabft_gpu_sim::MemoryFaultPlan;

        let reqs = requests(4);
        let clean = BatchGemm::new(small_gemm())
            .with_streams(2)
            .execute(&Device::with_defaults(), &reqs)
            .unwrap();

        // The fault fires once, at the first "gemm" phase boundary — i.e.
        // deterministically in request 0's product buffer (data region,
        // high exponent bit: unmissable).
        let arm = |device: &Device| {
            let plan = small_gemm().plan(16, 16, 16);
            device.arm_memory_fault(MemoryFaultPlan {
                buffer: "c",
                word: 2 * plan.cols.total + 3,
                mask: 1 << 62,
                after_phase: "gemm",
            });
        };

        // Budget 0: the poisoned request is immediately unrecoverable. It
        // must fail alone; siblings stay bit-identical to the clean batch,
        // and its pooled buffers come back for reuse.
        let batch = BatchGemm::new(small_gemm()).with_streams(2).with_heal_budget(0);
        let device = Device::with_defaults();
        arm(&device);
        let results = batch.execute_verified(&device, &reqs);
        assert_eq!(device.disarm_count(), 1, "memory fault must land");
        match &results[0] {
            Err(AbftError::Unrecovered { attempts: 0, residual }) => {
                assert!(residual.errors_detected());
            }
            other => panic!("request 0 should be unrecovered, got {other:?}"),
        }
        for (i, clean_outcome) in clean.iter().enumerate().skip(1) {
            let healed = results[i].as_ref().expect("sibling requests verify");
            assert_eq!(healed.attempts, 0, "siblings see no faults");
            assert_eq!(
                clean_outcome.product, healed.outcome.product,
                "sibling request {i} must be bit-identical to the clean batch"
            );
        }
        assert_eq!(batch.pooled_buffers(), 4, "failed request's buffers are recycled");

        // Default budget: the same fault heals and every request verifies.
        let batch = BatchGemm::new(small_gemm()).with_streams(2);
        let device = Device::with_defaults();
        arm(&device);
        let results = batch.execute_verified(&device, &reqs);
        assert_eq!(device.disarm_count(), 1);
        let healed = results[0].as_ref().expect("poisoned request heals under budget");
        assert!(healed.attempts > 0);
        // Checksum-based repair reconstructs the element through a different
        // rounding path, so request 0 matches to tolerance, not bitwise.
        assert!(
            clean[0].product.approx_eq(&healed.outcome.product, 1e-11),
            "healed to the clean product, max diff {}",
            clean[0].product.max_abs_diff(&healed.outcome.product)
        );
        for (i, clean_outcome) in clean.iter().enumerate().skip(1) {
            assert_eq!(clean_outcome.product, results[i].as_ref().unwrap().outcome.product);
        }
    }

    #[test]
    fn mismatched_request_fails_in_place_in_verified_mode() {
        let batch = BatchGemm::new(small_gemm());
        let device = Device::with_defaults();
        let good = requests(1).remove(0);
        let bad = (Matrix::zeros(16, 16), Matrix::zeros(12, 16));
        let results = batch.execute_verified(&device, &[bad, good]);
        assert!(matches!(results[0], Err(AbftError::ShapeMismatch { op: "batch", .. })));
        assert!(results[1].is_ok(), "valid sibling still runs");
        assert_eq!(batch.pooled_buffers(), 1, "only the valid request consumed buffers");
    }

    #[test]
    fn mismatched_request_is_rejected_before_any_launch() {
        let batch = BatchGemm::new(small_gemm());
        let device = Device::with_defaults();
        let good = requests(1).remove(0);
        let bad = (Matrix::zeros(16, 16), Matrix::zeros(12, 16));
        let err = batch.execute(&device, &[good, bad]).unwrap_err();
        assert!(matches!(err, AbftError::ShapeMismatch { op: "batch", .. }), "{err}");
        assert!(device.take_log().is_empty(), "no kernels issued");
    }
}
