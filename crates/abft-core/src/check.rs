//! Host-side decoding of the checking kernel's report.
//!
//! The checking kernel writes one row- and one column-mismatch bitmap per
//! `BS × BS` result block. This module turns those bitmaps into a
//! [`CheckReport`]: global mismatch coordinates and the located errors at
//! row/column intersections (the ABFT localisation rule of Section II).

use crate::encoding::AugmentedLayout;
use crate::kernels::check::REPORT_WORDS;

/// Decoded outcome of a checksum check.
///
/// # Examples
///
/// ```
/// use aabft_core::check::CheckReport;
/// use aabft_core::encoding::AugmentedLayout;
///
/// let rows = AugmentedLayout::new(8, 4, 1);
/// let cols = AugmentedLayout::new(8, 4, 1);
/// // Block (1,1) flags local column 2 and local row 1.
/// let mut raw = vec![0.0; 8];
/// raw[6] = (1u64 << 2) as f64;
/// raw[7] = (1u64 << 1) as f64;
/// let report = CheckReport::from_raw(&raw, rows, cols);
/// assert!(report.errors_detected());
/// assert_eq!(report.located, vec![(5, 6)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckReport {
    /// Column-checksum mismatches as `(block_row, global_column)`.
    pub col_mismatches: Vec<(usize, usize)>,
    /// Row-checksum mismatches as `(global_row, block_column)`.
    pub row_mismatches: Vec<(usize, usize)>,
    /// Errors located at the intersection of a mismatching row and column
    /// within the same block, as global `(row, column)` data coordinates.
    pub located: Vec<(usize, usize)>,
}

impl CheckReport {
    /// Decodes the raw report buffer (as downloaded from the device).
    ///
    /// # Panics
    ///
    /// Panics if the buffer length doesn't match the block grid.
    pub fn from_raw(raw: &[f64], rows: AugmentedLayout, cols: AugmentedLayout) -> Self {
        assert_eq!(
            raw.len(),
            REPORT_WORDS * rows.blocks * cols.blocks,
            "report buffer length mismatch"
        );
        let bs = rows.block_size;
        let mut report = CheckReport::default();
        for bi in 0..rows.blocks {
            for bj in 0..cols.blocks {
                let slot = (bi * cols.blocks + bj) * REPORT_WORDS;
                let col_mask = raw[slot] as u64;
                let row_mask = raw[slot + 1] as u64;
                for t in 0..bs {
                    if col_mask >> t & 1 == 1 {
                        report.col_mismatches.push((bi, bj * bs + t));
                    }
                    if row_mask >> t & 1 == 1 {
                        report.row_mismatches.push((bi * bs + t, bj));
                    }
                }
                for tr in 0..bs {
                    if row_mask >> tr & 1 == 0 {
                        continue;
                    }
                    for tc in 0..bs {
                        if col_mask >> tc & 1 == 1 {
                            report.located.push((bi * bs + tr, bj * bs + tc));
                        }
                    }
                }
            }
        }
        report
    }

    /// `true` if any checksum mismatched.
    pub fn errors_detected(&self) -> bool {
        !self.col_mismatches.is_empty() || !self.row_mismatches.is_empty()
    }

    /// `true` if exactly one error was located (the single-error-correction
    /// precondition).
    pub fn single_error(&self) -> bool {
        self.located.len() == 1
            && self.col_mismatches.len() == 1
            && self.row_mismatches.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layouts() -> (AugmentedLayout, AugmentedLayout) {
        (AugmentedLayout::new(8, 4, 1), AugmentedLayout::new(8, 4, 1))
    }

    #[test]
    fn empty_report() {
        let (r, c) = layouts();
        let report = CheckReport::from_raw(&[0.0; 8], r, c);
        assert!(!report.errors_detected());
        assert!(report.located.is_empty());
        assert!(!report.single_error());
    }

    #[test]
    fn single_intersection() {
        let (r, c) = layouts();
        let mut raw = vec![0.0; 8];
        raw[0] = (1u64 << 3) as f64; // block (0,0), column 3
        raw[1] = (1u64 << 0) as f64; // block (0,0), row 0
        let report = CheckReport::from_raw(&raw, r, c);
        assert_eq!(report.col_mismatches, vec![(0, 3)]);
        assert_eq!(report.row_mismatches, vec![(0, 0)]);
        assert_eq!(report.located, vec![(0, 3)]);
        assert!(report.single_error());
    }

    #[test]
    fn column_only_mismatch_is_detected_but_not_located() {
        let (r, c) = layouts();
        let mut raw = vec![0.0; 8];
        raw[2] = 1.0; // block (0,1): column 4
        let report = CheckReport::from_raw(&raw, r, c);
        assert!(report.errors_detected());
        assert!(report.located.is_empty());
    }

    #[test]
    fn cross_block_mismatches_do_not_intersect() {
        let (r, c) = layouts();
        let mut raw = vec![0.0; 8];
        raw[0] = 1.0; // block (0,0) col 0
        raw[7] = 1.0; // block (1,1) row 4
        let report = CheckReport::from_raw(&raw, r, c);
        assert_eq!(report.col_mismatches.len(), 1);
        assert_eq!(report.row_mismatches.len(), 1);
        assert!(report.located.is_empty(), "different blocks must not intersect");
    }
}
