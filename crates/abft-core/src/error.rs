//! Typed errors of the protected-multiplication entry points.
//!
//! User-input failure paths (bad configurations, operand shape mismatches)
//! surface as [`AbftError`] from the `try_*`/`execute` entry points instead
//! of panicking, so services embedding the scheme can report them. Internal
//! invariants (kernel index arithmetic, buffer layout contracts) keep their
//! asserts — those are programmer errors, not user input.

use crate::check::CheckReport;
use aabft_gpu_sim::ConfigError;
use std::fmt;

/// An error from a protected-multiplication entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbftError {
    /// A configuration parameter failed validation.
    Config(ConfigError),
    /// Operand shapes are incompatible with the requested operation.
    ShapeMismatch {
        /// The operation that rejected the shapes (e.g. `"multiply"`).
        op: &'static str,
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand (`(rows, 1)` for vectors).
        right: (usize, usize),
    },
    /// The self-healing executor exhausted its retry budget without
    /// producing a product that passes the check. The fail-safe: no result
    /// is released, and the final residual report says what still mismatched.
    Unrecovered {
        /// Recovery attempts performed before giving up.
        attempts: u32,
        /// The check report of the last (failed) verification pass.
        residual: CheckReport,
    },
}

impl fmt::Display for AbftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbftError::Config(e) => write!(f, "configuration error: {e}"),
            AbftError::ShapeMismatch { op, left, right } => write!(
                f,
                "{op}: inner dimensions must agree: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            AbftError::Unrecovered { attempts, residual } => write!(
                f,
                "self-healing retry budget exhausted after {attempts} attempt(s): \
                 {} column / {} row mismatches remain; no product released",
                residual.col_mismatches.len(),
                residual.row_mismatches.len()
            ),
        }
    }
}

impl std::error::Error for AbftError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AbftError::Config(e) => Some(e),
            AbftError::ShapeMismatch { .. } | AbftError::Unrecovered { .. } => None,
        }
    }
}

impl From<ConfigError> for AbftError {
    fn from(e: ConfigError) -> Self {
        AbftError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let c: AbftError = ConfigError::new("p", 0usize, "positive").into();
        assert!(c.to_string().contains("invalid p"));
        assert!(std::error::Error::source(&c).is_some());

        let s = AbftError::ShapeMismatch { op: "multiply", left: (4, 3), right: (5, 2) };
        assert_eq!(s.to_string(), "multiply: inner dimensions must agree: 4x3 vs 5x2");
        assert!(std::error::Error::source(&s).is_none());

        let u = AbftError::Unrecovered {
            attempts: 4,
            residual: CheckReport {
                col_mismatches: vec![(0, 1), (1, 2)],
                row_mismatches: vec![(3, 0)],
                located: vec![],
            },
        };
        let msg = u.to_string();
        assert!(msg.contains("after 4 attempt(s)"), "{msg}");
        assert!(msg.contains("2 column / 1 row"), "{msg}");
        assert!(std::error::Error::source(&u).is_none());
    }
}
