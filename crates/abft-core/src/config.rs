//! Configuration of the A-ABFT protected multiplication.

use crate::recover::RecoveryPolicy;
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_gpu_sim::ConfigError;
use aabft_numerics::{MulMode, RoundingMode, RoundingModel};

/// Parameters of the A-ABFT scheme (paper Sections II, IV-E and V).
///
/// Construct via [`AAbftConfig::builder`] or use `Default` (the paper's
/// evaluation setting: `BS = 32`, `p = 2`, `ω = 3`, separate mul/add in
/// double precision).
///
/// # Examples
///
/// ```
/// use aabft_core::AAbftConfig;
///
/// let config = AAbftConfig::builder().block_size(16).p(4).omega(2.0).build().unwrap();
/// assert_eq!(config.block_size, 16);
/// assert_eq!(config.p, 4);
/// // Invalid parameters come back as typed errors, not panics.
/// assert!(AAbftConfig::builder().block_size(0).build().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AAbftConfig {
    /// Partitioned-encoding block size `BS` (Fig. 1). Each `BS × BS`
    /// sub-matrix gets its own checksum row/column segment.
    pub block_size: usize,
    /// Number of largest absolute values tracked per row/column for the
    /// upper-bound determination (Section IV-E).
    pub p: usize,
    /// Confidence-interval scaling `ω` of Eq. 7 (the paper reports its
    /// results at the conservative `3σ`).
    pub omega: f64,
    /// Floating-point execution mode of the multiplication kernel.
    pub mul_mode: MulMode,
    /// Rounding behaviour of the multiplication kernel's arithmetic.
    pub rounding: RoundingMode,
    /// GEMM tile shape used by the multiplication kernel.
    pub tiling: GemmTiling,
    /// What to do about flagged errors (report / repair / recompute).
    pub recovery: RecoveryPolicy,
}

impl Default for AAbftConfig {
    fn default() -> Self {
        AAbftConfig {
            block_size: 32,
            p: 2,
            omega: 3.0,
            mul_mode: MulMode::Separate,
            rounding: RoundingMode::Nearest,
            tiling: GemmTiling::default(),
            recovery: RecoveryPolicy::ReportOnly,
        }
    }
}

impl AAbftConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> AAbftConfigBuilder {
        AAbftConfigBuilder { config: AAbftConfig::default() }
    }

    /// The rounding model matching this configuration (binary64 hardware
    /// with the configured multiply mode).
    pub fn rounding_model(&self) -> RoundingModel {
        let m = RoundingModel::binary64().with_rounding(self.rounding);
        match self.mul_mode {
            MulMode::Separate => m,
            MulMode::Fused => m.with_fma(),
        }
    }

    /// Checks invariants, returning a typed error naming the offending
    /// parameter: `block_size` must be in `1..=52` (mismatch bitmaps must
    /// fit exactly in an f64 mantissa), `p` in `1..=block_size`, `omega`
    /// positive and finite, the tiling well-shaped, and the rounding/mul
    /// mode combination supported.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.block_size == 0 || self.block_size > 52 {
            return Err(ConfigError::new("block_size", self.block_size, "in 1..=52"));
        }
        if self.p == 0 || self.p > self.block_size {
            return Err(ConfigError::new("p", self.p, "in 1..=block_size"));
        }
        if !(self.omega > 0.0 && self.omega.is_finite()) {
            return Err(ConfigError::new("omega", self.omega, "positive and finite"));
        }
        self.tiling.check()?;
        if self.tiling.modules() > 64 {
            return Err(ConfigError::new(
                "tiling",
                format!("{} modules", self.tiling.modules()),
                "at most 64 modules (device default)",
            ));
        }
        if self.rounding == RoundingMode::Truncation && self.mul_mode == MulMode::Fused {
            return Err(ConfigError::new(
                "mul_mode",
                "truncating fused multiply-add",
                "a supported rounding/mul-mode combination",
            ));
        }
        Ok(())
    }
}

/// Builder for [`AAbftConfig`].
#[derive(Debug, Clone)]
pub struct AAbftConfigBuilder {
    config: AAbftConfig,
}

impl AAbftConfigBuilder {
    /// Sets the partitioned-encoding block size `BS`.
    pub fn block_size(mut self, bs: usize) -> Self {
        self.config.block_size = bs;
        self
    }

    /// Sets the number of tracked largest absolute values `p`.
    pub fn p(mut self, p: usize) -> Self {
        self.config.p = p;
        self
    }

    /// Sets the confidence scaling `ω`.
    pub fn omega(mut self, omega: f64) -> Self {
        self.config.omega = omega;
        self
    }

    /// Sets the multiplication mode (separate vs fused multiply-add).
    pub fn mul_mode(mut self, mode: MulMode) -> Self {
        self.config.mul_mode = mode;
        self
    }

    /// Sets the rounding mode of the multiplication arithmetic.
    pub fn rounding_mode(mut self, mode: RoundingMode) -> Self {
        self.config.rounding = mode;
        self
    }

    /// Sets the GEMM tiling.
    pub fn tiling(mut self, tiling: GemmTiling) -> Self {
        self.config.tiling = tiling;
        self
    }

    /// Enables single-error correction (shorthand for
    /// [`RecoveryPolicy::CorrectSingle`]).
    pub fn correct(mut self, correct: bool) -> Self {
        self.config.recovery =
            if correct { RecoveryPolicy::CorrectSingle } else { RecoveryPolicy::ReportOnly };
        self
    }

    /// Sets the full recovery policy.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.config.recovery = policy;
        self
    }

    /// Finalises the configuration, rejecting invalid parameters with a
    /// typed error (see [`AAbftConfig::validate`]).
    pub fn build(self) -> Result<AAbftConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setting() {
        let c = AAbftConfig::default();
        assert_eq!(c.block_size, 32);
        assert_eq!(c.p, 2);
        assert_eq!(c.omega, 3.0);
        assert_eq!(c.mul_mode, MulMode::Separate);
        c.validate().unwrap();
    }

    #[test]
    fn builder_sets_fields() {
        let c =
            AAbftConfig::builder().block_size(8).p(3).omega(1.0).correct(true).build().unwrap();
        assert_eq!(
            (c.block_size, c.p, c.omega, c.recovery),
            (8, 3, 1.0, RecoveryPolicy::CorrectSingle)
        );
    }

    #[test]
    fn fma_rounding_model() {
        let c = AAbftConfig::builder().mul_mode(MulMode::Fused).build().unwrap();
        assert_eq!(c.rounding_model().mul_mode, MulMode::Fused);
    }

    #[test]
    fn builder_rejects_invalid_parameters_with_typed_errors() {
        let e = AAbftConfig::builder().block_size(4).p(5).build().unwrap_err();
        assert_eq!(e.param, "p");
        let e = AAbftConfig::builder().block_size(64).build().unwrap_err();
        assert_eq!(e.param, "block_size");
        let e = AAbftConfig::builder().block_size(0).build().unwrap_err();
        assert_eq!(e.param, "block_size");
        let e = AAbftConfig::builder().omega(f64::NAN).build().unwrap_err();
        assert_eq!(e.param, "omega");
        let e = AAbftConfig::builder()
            .mul_mode(MulMode::Fused)
            .rounding_mode(RoundingMode::Truncation)
            .build()
            .unwrap_err();
        assert_eq!(e.param, "mul_mode");
        let e = AAbftConfig::builder()
            .tiling(GemmTiling { bm: 7, bn: 8, bk: 4, rx: 2, ry: 2 })
            .build()
            .unwrap_err();
        assert_eq!(e.param, "tiling.bm");
    }
}
