//! Rounding-error analyses as a by-product (paper Section I: "A-ABFT is
//! able to deliver error functions or rounding error analyses for the
//! performed operation with little additional overhead").
//!
//! Two granularities:
//!
//! * [`bound_map`] — the closed-form `ω·σ` bound per result element from
//!   the same p-max tables the checking kernel already owns (essentially
//!   free at runtime);
//! * [`model_sigma_map`] — the data-driven model standard deviation per
//!   element (walks every inner product; an offline analysis tool).

use crate::bounds::checksum_epsilon;
use crate::pmax::{upper_bound_y, PMaxTable};
use aabft_matrix::Matrix;
use aabft_numerics::RoundingModel;

/// Closed-form rounding-error bound for every element of `C = A · B`, from
/// per-row/per-column p-max tables (the by-product available after any
/// A-ABFT multiplication).
///
/// `pmax_a` must have one line per row of `A`, `pmax_b` one line per column
/// of `B`; `inner` is the inner dimension.
///
/// # Panics
///
/// Panics if the tables are smaller than the requested map.
///
/// # Examples
///
/// ```
/// use aabft_core::error_map::bound_map;
/// use aabft_core::pmax::PMaxTable;
/// use aabft_matrix::Matrix;
/// use aabft_numerics::RoundingModel;
///
/// let a = Matrix::from_fn(4, 8, |i, j| ((i + j) as f64 * 0.3).sin());
/// let b = Matrix::from_fn(8, 4, |i, j| ((i * 2 + j) as f64 * 0.2).cos());
/// let ta = PMaxTable::of_rows(&a, 2);
/// let tb = PMaxTable::of_cols(&b, 2);
/// let map = bound_map(&ta, &tb, 8, 3.0, &RoundingModel::binary64());
/// assert_eq!(map.shape(), (4, 4));
/// assert!(map.as_slice().iter().all(|&e| e > 0.0));
/// ```
pub fn bound_map(
    pmax_a: &PMaxTable,
    pmax_b: &PMaxTable,
    inner: usize,
    omega: f64,
    model: &RoundingModel,
) -> Matrix<f64> {
    Matrix::from_fn(pmax_a.lines(), pmax_b.lines(), |i, j| {
        let y = upper_bound_y(
            pmax_a.values(i),
            pmax_a.indices(i),
            pmax_b.values(j),
            pmax_b.indices(j),
        );
        checksum_epsilon(inner, y, omega, model)
    })
}

/// Data-driven model `σ` for every element of `C = A · B`: evaluates the
/// probabilistic model on each element's actual operands (Eq. 30–33 with
/// measured intermediate exponents). Quadratic-times-`n` work — an offline
/// analysis, not a runtime kernel.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn model_sigma_map(a: &Matrix<f64>, b: &Matrix<f64>, model: &RoundingModel) -> Matrix<f64> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let bt = b.transpose();
    Matrix::from_fn(a.rows(), b.cols(), |i, j| {
        model.inner_product_moments(a.row(i), bt.row(j)).std_dev()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_numerics::exact::dot_rounding_error;

    fn inputs() -> (Matrix<f64>, Matrix<f64>) {
        (
            Matrix::from_fn(8, 32, |i, j| ((i * 5 + j * 3) as f64 * 0.11).sin()),
            Matrix::from_fn(32, 8, |i, j| ((i + 7 * j) as f64 * 0.13).cos()),
        )
    }

    #[test]
    fn bound_map_covers_model_map() {
        let (a, b) = inputs();
        let model = RoundingModel::binary64();
        let ta = PMaxTable::of_rows(&a, 2);
        let tb = PMaxTable::of_cols(&b, 2);
        let bounds = bound_map(&ta, &tb, 32, 3.0, &model);
        let sigmas = model_sigma_map(&a, &b, &model);
        for i in 0..8 {
            for j in 0..8 {
                assert!(
                    bounds[(i, j)] >= sigmas[(i, j)],
                    "closed form must dominate the data-driven sigma at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn model_map_covers_actual_errors() {
        let (a, b) = inputs();
        let model = RoundingModel::binary64();
        let sigmas = model_sigma_map(&a, &b, &model);
        let bt = b.transpose();
        for i in 0..8 {
            for j in 0..8 {
                let (_, err) = dot_rounding_error(a.row(i), bt.row(j));
                assert!(
                    err.abs() <= 6.0 * sigmas[(i, j)] + 1e-300,
                    "({i},{j}): err {err:e} vs sigma {:e}",
                    sigmas[(i, j)]
                );
            }
        }
    }

    #[test]
    fn maps_scale_with_data_magnitude() {
        let (a, b) = inputs();
        let scaled_a = Matrix::from_fn(8, 32, |i, j| a[(i, j)] * 1000.0);
        let model = RoundingModel::binary64();
        let base = model_sigma_map(&a, &b, &model);
        let big = model_sigma_map(&scaled_a, &b, &model);
        for (x, y) in base.as_slice().iter().zip(big.as_slice()) {
            if *x > 0.0 {
                let ratio = y / x;
                assert!((500.0..2000.0).contains(&ratio), "ratio {ratio}");
            }
        }
    }
}
