//! Weighted checksums (extension; Jou & Abraham, the paper's Ref. \[11\]).
//!
//! A second checksum line per block with weights `w_i = i + 1` lets a single
//! error be *located within its block line* from the two deviations alone:
//! if element `i` of a block column is off by `δ`, the plain checksum
//! deviates by `δ` and the weighted one by `(i+1)·δ`, so the ratio recovers
//! `i` — no intersecting row checksum needed. The rounding-error bound for
//! the weighted comparison follows the same closed form with the upper
//! bound scaled by the largest weight (products `w_i·a_i·b_k` are bounded
//! by `BS·y`).
//!
//! This module is an extension beyond the DSN'14 paper (which uses plain
//! partitioned checksums in both directions); it demonstrates that the
//! autonomous bound determination composes with other encoding schemes.

use crate::bounds::checksum_epsilon;
use crate::encoding::AugmentedLayout;
use crate::pmax::{upper_bound_y, PMaxTable};
use aabft_matrix::{gemm, Matrix};
use aabft_numerics::RoundingModel;

/// Weighted-checksum-encoded `A`: per block-row, a plain checksum row
/// followed by a weighted checksum row.
#[derive(Debug, Clone)]
pub struct WeightedColumnChecksummed {
    /// Augmented matrix: data rows, then per-block `[plain; weighted]`
    /// checksum row pairs.
    pub matrix: Matrix<f64>,
    /// Data-row layout (checksum lines described below instead).
    pub rows: AugmentedLayout,
}

impl WeightedColumnChecksummed {
    /// Row index of block `b`'s plain checksum row.
    pub fn plain_line(&self, block: usize) -> usize {
        self.rows.data + 2 * block
    }

    /// Row index of block `b`'s weighted checksum row.
    pub fn weighted_line(&self, block: usize) -> usize {
        self.rows.data + 2 * block + 1
    }

    /// Total rows of the augmented matrix.
    pub fn total_rows(&self) -> usize {
        self.rows.data + 2 * self.rows.blocks
    }
}

/// Encodes `A` with plain + weighted column checksums per `bs`-row block.
///
/// # Panics
///
/// Panics if `bs == 0`.
///
/// # Examples
///
/// ```
/// use aabft_core::weighted::encode_weighted_columns;
/// use aabft_matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
/// let enc = encode_weighted_columns(&a, 2);
/// assert_eq!(enc.matrix[(enc.plain_line(0), 0)], 4.0);     // 1 + 3
/// assert_eq!(enc.matrix[(enc.weighted_line(0), 0)], 7.0);  // 1*1 + 2*3
/// ```
pub fn encode_weighted_columns(a: &Matrix<f64>, bs: usize) -> WeightedColumnChecksummed {
    let rows = AugmentedLayout::new(a.rows(), bs, 1);
    let total = rows.data + 2 * rows.blocks;
    let mut m = Matrix::zeros(total, a.cols());
    for i in 0..a.rows() {
        m.row_mut(i)[..a.cols()].copy_from_slice(a.row(i));
    }
    for block in 0..rows.blocks {
        for j in 0..a.cols() {
            let mut plain = 0.0;
            let mut weighted = 0.0;
            for (w, i) in (block * bs..(block + 1) * bs).enumerate() {
                let v = m[(i, j)];
                plain += v;
                weighted += (w as f64 + 1.0) * v;
            }
            m[(rows.data + 2 * block, j)] = plain;
            m[(rows.data + 2 * block + 1, j)] = weighted;
        }
    }
    WeightedColumnChecksummed { matrix: m, rows }
}

/// One located-and-quantified error from a weighted check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedFinding {
    /// Global row of the suspect element.
    pub row: usize,
    /// Global column of the suspect element.
    pub col: usize,
    /// Estimated error magnitude `δ` (signed; subtract to repair).
    pub delta: f64,
}

/// Checks a product of a weighted-encoded `A` against plain `B` using the
/// autonomous A-ABFT bounds, locating single per-block-column errors from
/// the plain/weighted deviation ratio.
///
/// `c` must be the product `enc.matrix · b` (shape `enc.total_rows() ×
/// b.cols()`); `pmax_b` the per-column top-p table of `b`; `inner` the
/// multiplication's inner dimension.
///
/// Returns the findings (empty = clean).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn check_weighted(
    enc: &WeightedColumnChecksummed,
    c: &Matrix<f64>,
    pmax_a: &PMaxTable,
    pmax_b: &PMaxTable,
    inner: usize,
    omega: f64,
    model: &RoundingModel,
) -> Vec<WeightedFinding> {
    assert_eq!(c.rows(), enc.total_rows(), "product rows mismatch");
    let bs = enc.rows.block_size;
    let mut findings = Vec::new();
    for block in 0..enc.rows.blocks {
        let plain_line = enc.plain_line(block);
        let weighted_line = enc.weighted_line(block);
        for j in 0..c.cols() {
            // Reference sums over the block's data rows of the product.
            let mut reference = 0.0;
            let mut weighted_ref = 0.0;
            for (w, i) in (block * bs..(block + 1) * bs).enumerate() {
                reference += c[(i, j)];
                weighted_ref += (w as f64 + 1.0) * c[(i, j)];
            }
            let plain_delta = reference - c[(plain_line, j)];
            let weighted_delta = weighted_ref - c[(weighted_line, j)];

            // Autonomous bounds: plain uses y from the plain checksum row;
            // weighted products are at most bs times larger.
            let y_plain = upper_bound_y(
                pmax_a.values(plain_line),
                pmax_a.indices(plain_line),
                pmax_b.values(j),
                pmax_b.indices(j),
            );
            let eps_plain = checksum_epsilon(inner, y_plain, omega, model);
            let eps_weighted = checksum_epsilon(inner, y_plain * bs as f64, omega, model);

            if plain_delta.abs() > eps_plain {
                // Locate via the ratio; round to the nearest weight.
                let ratio = weighted_delta / plain_delta;
                let w = ratio.round();
                if (1.0..=bs as f64).contains(&w)
                    && (weighted_delta - w * plain_delta).abs() <= eps_weighted
                {
                    findings.push(WeightedFinding {
                        row: block * bs + (w as usize - 1),
                        col: j,
                        delta: plain_delta,
                    });
                } else {
                    // Inconsistent ratio: multiple errors in this block
                    // column; flag without location (row = data extent).
                    findings.push(WeightedFinding {
                        row: enc.rows.data,
                        col: j,
                        delta: plain_delta,
                    });
                }
            } else if weighted_delta.abs() > eps_weighted {
                // Weighted checksum itself corrupted (or an error exactly
                // cancelling in the plain sum — needs weight > bound ratio).
                findings.push(WeightedFinding { row: enc.rows.data, col: j, delta: 0.0 });
            }
        }
    }
    findings
}

/// Repairs every located [`WeightedFinding`] in place (skips unlocated
/// ones). Returns the number of repairs.
pub fn correct_weighted(c: &mut Matrix<f64>, enc: &WeightedColumnChecksummed, findings: &[WeightedFinding]) -> usize {
    let mut applied = 0;
    for f in findings {
        if f.row < enc.rows.data {
            c[(f.row, f.col)] -= f.delta;
            applied += 1;
        }
    }
    applied
}

/// Convenience: encode, multiply (host reference order), check, correct.
/// Returns the corrected product data region and the findings.
pub fn weighted_protected_multiply(
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    bs: usize,
    p: usize,
    omega: f64,
) -> (Matrix<f64>, Vec<WeightedFinding>) {
    let enc = encode_weighted_columns(a, bs);
    let c = gemm::multiply(&enc.matrix, b);
    let pmax_a = PMaxTable::of_rows(&enc.matrix, p);
    let pmax_b = PMaxTable::of_cols(b, p);
    let model = RoundingModel::binary64();
    let findings = check_weighted(&enc, &c, &pmax_a, &pmax_b, a.cols(), omega, &model);
    let mut fixed = c;
    correct_weighted(&mut fixed, &enc, &findings);
    (fixed.block(0, 0, a.rows(), b.cols()), findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize) -> (Matrix<f64>, Matrix<f64>) {
        (
            Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) as f64 * 0.13).sin()),
            Matrix::from_fn(n, n, |i, j| ((i + 11 * j) as f64 * 0.29).cos()),
        )
    }

    #[test]
    fn encoding_weights_are_exact() {
        let a: Matrix = Matrix::from_fn(8, 4, |i, j| (i * 4 + j) as f64);
        let enc = encode_weighted_columns(&a, 4);
        assert_eq!(enc.total_rows(), 8 + 4);
        for block in 0..2 {
            for j in 0..4 {
                let plain: f64 = (block * 4..block * 4 + 4).map(|i| a[(i, j)]).sum();
                let weighted: f64 = (block * 4..block * 4 + 4)
                    .enumerate()
                    .map(|(w, i)| (w as f64 + 1.0) * a[(i, j)])
                    .sum();
                assert_eq!(enc.matrix[(enc.plain_line(block), j)], plain);
                assert_eq!(enc.matrix[(enc.weighted_line(block), j)], weighted);
            }
        }
    }

    #[test]
    fn clean_product_has_no_findings() {
        let (a, b) = inputs(16);
        let (product, findings) = weighted_protected_multiply(&a, &b, 4, 2, 3.0);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(product.approx_eq(&gemm::multiply(&a, &b), 1e-12));
    }

    #[test]
    fn single_error_is_located_by_ratio_alone() {
        let (a, b) = inputs(16);
        let enc = encode_weighted_columns(&a, 4);
        let mut c = gemm::multiply(&enc.matrix, &b);
        c[(6, 3)] += 1e-3; // data element error, block 1, local row 2
        let pmax_a = PMaxTable::of_rows(&enc.matrix, 2);
        let pmax_b = PMaxTable::of_cols(&b, 2);
        let findings = check_weighted(
            &enc,
            &c,
            &pmax_a,
            &pmax_b,
            16,
            3.0,
            &RoundingModel::binary64(),
        );
        assert_eq!(findings.len(), 1);
        assert_eq!((findings[0].row, findings[0].col), (6, 3));
        assert!((findings[0].delta - 1e-3).abs() < 1e-10);
        // And the repair restores the clean value.
        let clean = gemm::multiply(&enc.matrix, &b);
        assert_eq!(correct_weighted(&mut c, &enc, &findings), 1);
        assert!((c[(6, 3)] - clean[(6, 3)]).abs() < 1e-12);
    }

    #[test]
    fn double_error_in_one_block_column_is_flagged_unlocated() {
        let (a, b) = inputs(16);
        let enc = encode_weighted_columns(&a, 4);
        let mut c = gemm::multiply(&enc.matrix, &b);
        c[(4, 3)] += 1e-3;
        c[(6, 3)] -= 2e-3;
        let pmax_a = PMaxTable::of_rows(&enc.matrix, 2);
        let pmax_b = PMaxTable::of_cols(&b, 2);
        let findings = check_weighted(
            &enc,
            &c,
            &pmax_a,
            &pmax_b,
            16,
            3.0,
            &RoundingModel::binary64(),
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].row, enc.rows.data, "must be flagged as unlocated");
    }

    #[test]
    fn error_cancelling_in_plain_sum_is_caught_by_weighted() {
        // Two equal-and-opposite errors cancel in the plain checksum but
        // not in the weighted one.
        let (a, b) = inputs(16);
        let enc = encode_weighted_columns(&a, 4);
        let mut c = gemm::multiply(&enc.matrix, &b);
        c[(4, 2)] += 1e-3;
        c[(5, 2)] -= 1e-3;
        let pmax_a = PMaxTable::of_rows(&enc.matrix, 2);
        let pmax_b = PMaxTable::of_cols(&b, 2);
        let findings = check_weighted(
            &enc,
            &c,
            &pmax_a,
            &pmax_b,
            16,
            3.0,
            &RoundingModel::binary64(),
        );
        assert_eq!(findings.len(), 1, "weighted checksum must catch the cancellation");
        assert_eq!(findings[0].row, enc.rows.data);
    }

    #[test]
    fn large_single_fault_repairs_exactly() {
        let (a, b) = inputs(32);
        let enc = encode_weighted_columns(&a, 8);
        let mut c = gemm::multiply(&enc.matrix, &b);
        let clean = c.clone();
        c[(17, 9)] *= 1024.0; // exponent-style corruption
        let pmax_a = PMaxTable::of_rows(&enc.matrix, 2);
        let pmax_b = PMaxTable::of_cols(&b, 2);
        let findings = check_weighted(
            &enc,
            &c,
            &pmax_a,
            &pmax_b,
            32,
            3.0,
            &RoundingModel::binary64(),
        );
        assert_eq!(findings.len(), 1);
        assert_eq!((findings[0].row, findings[0].col), (17, 9));
        correct_weighted(&mut c, &enc, &findings);
        assert!(
            (c[(17, 9)] - clean[(17, 9)]).abs() <= 1e-9 * clean[(17, 9)].abs().max(1.0),
            "repair residual too large"
        );
    }
}
