//! A-ABFT-protected matrix–vector multiplication (extension).
//!
//! The paper introduces A-ABFT on GEMM but notes "the approach itself is
//! much more general and can be extended to other operations as well"
//! (Section I). GEMV is the minimal such extension: encode `A` with
//! partitioned column checksums, compute `y = A_cc · x`, and compare each
//! block's checksum element against the recomputed block sum using the same
//! autonomous probabilistic bound — the checksum element is an inner
//! product of length `n` whose `y` upper bound comes from the same p-max
//! machinery.

use crate::bounds::checksum_epsilon;
use crate::config::AAbftConfig;
use crate::encoding::encode_columns;
use crate::pmax::{upper_bound_y, PMaxTable};
use aabft_matrix::Matrix;

/// Result of a protected matrix–vector multiplication.
#[derive(Debug, Clone)]
pub struct GemvOutcome {
    /// The caller-visible result vector (`a.rows()` entries; corrected when
    /// a single error was located in a block).
    pub result: Vec<f64>,
    /// Blocks whose checksum comparison failed.
    pub mismatched_blocks: Vec<usize>,
    /// Corrections applied as `(index, before, after)`.
    pub corrections: Vec<(usize, f64, f64)>,
}

impl GemvOutcome {
    /// `true` if any block checksum mismatched.
    pub fn errors_detected(&self) -> bool {
        !self.mismatched_blocks.is_empty()
    }
}

/// A-ABFT-protected `y = A · x` (host execution; the GPU realisation would
/// reuse the encoding/checking kernels with a 1-column tile).
///
/// Detection works per `BS`-row block: the block's checksum element (the
/// encoded checksum row dotted with `x`) is compared against the sum of the
/// block's computed entries under the autonomous bound. A flagged block
/// cannot be located further without a second (weighted) checksum — pair
/// with [`crate::weighted`] for localisation — so correction here recomputes
/// the block's entries.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`.
///
/// # Examples
///
/// ```
/// use aabft_core::gemv::protected_gemv;
/// use aabft_core::AAbftConfig;
/// use aabft_matrix::Matrix;
///
/// let a = Matrix::from_fn(16, 16, |i, j| ((i + j) as f64 * 0.2).sin());
/// let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3).cos()).collect();
/// let config = AAbftConfig::builder().block_size(8).build().expect("valid config");
/// let outcome = protected_gemv(&a, &x, &config);
/// assert!(!outcome.errors_detected());
/// assert_eq!(outcome.result.len(), 16);
/// ```
pub fn protected_gemv(a: &Matrix<f64>, x: &[f64], config: &AAbftConfig) -> GemvOutcome {
    assert_eq!(x.len(), a.cols(), "vector length must match a.cols()");
    if let Err(e) = config.validate() {
        panic!("{e}");
    }
    let bs = config.block_size;
    let model = config.rounding_model();

    let enc = encode_columns(a, bs, 1, 1);
    let n = enc.cols;
    let mut xp = x.to_vec();
    xp.resize(n, 0.0);

    // The multiplication over the augmented operand.
    let dot = |row: &[f64]| -> f64 { row.iter().zip(&xp).map(|(r, v)| r * v).sum() };
    let full: Vec<f64> = (0..enc.rows.total).map(|i| dot(enc.matrix.row(i))).collect();

    // p-max tables: rows of the augmented A; the "column side" is x itself.
    let pmax_a = PMaxTable::of_rows(&enc.matrix, config.p);
    let x_m = Matrix::from_vec(n, 1, xp.clone());
    let pmax_x = PMaxTable::of_cols(&x_m, config.p);

    let mut result: Vec<f64> = full[..enc.rows.data].to_vec();
    let mut mismatched = Vec::new();
    let mut corrections = Vec::new();
    for block in 0..enc.rows.blocks {
        let cs_line = enc.rows.checksum_line(block);
        let reference: f64 = (block * bs..(block + 1) * bs).map(|i| full[i]).sum();
        let y = upper_bound_y(
            pmax_a.values(cs_line),
            pmax_a.indices(cs_line),
            pmax_x.values(0),
            pmax_x.indices(0),
        );
        let eps = checksum_epsilon(n, y, config.omega, &model);
        if (reference - full[cs_line]).abs() > eps {
            mismatched.push(block);
            if config.recovery != crate::recover::RecoveryPolicy::ReportOnly {
                // Recompute the block's entries (a fresh pass over clean
                // operands in this host model).
                #[allow(clippy::needless_range_loop)] // i is a global row id
                for i in block * bs..(block + 1) * bs {
                    let before = result[i];
                    let after = dot(enc.matrix.row(i));
                    if before != after {
                        corrections.push((i, before, after));
                    }
                    result[i] = after;
                }
            }
        }
    }

    result.truncate(a.rows());
    GemvOutcome { result, mismatched_blocks: mismatched, corrections }
}

/// A-ABFT-protected `y = A · x` executed on the simulated device: the
/// encoded operand is uploaded, the blocked GEMV kernel (with its
/// fault-injection sites) computes all augmented entries, and the host
/// applies the same autonomous block checks as [`protected_gemv`].
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`.
pub fn protected_gemv_on_device(
    device: &aabft_gpu_sim::Device,
    a: &Matrix<f64>,
    x: &[f64],
    config: &AAbftConfig,
) -> GemvOutcome {
    use aabft_gpu_sim::kernels::gemv::{GemvKernel, GemvTiling};
    use aabft_gpu_sim::DeviceBuffer;

    assert_eq!(x.len(), a.cols(), "vector length must match a.cols()");
    if let Err(e) = config.validate() {
        panic!("{e}");
    }
    let bs = config.block_size;
    let model = config.rounding_model();
    let tiling = GemvTiling { bm: bs.min(64), rx: if bs.is_multiple_of(4) { 4 } else { 1 } };

    let enc = encode_columns(a, bs, 1, 1);
    let n = enc.cols;
    let mut xp = x.to_vec();
    xp.resize(n, 0.0);

    // Pad the augmented row count to the tile multiple.
    let rows_padded = enc.rows.total.div_ceil(tiling.bm) * tiling.bm;
    let mut padded = Matrix::zeros(rows_padded, n);
    for i in 0..enc.rows.total {
        padded.row_mut(i).copy_from_slice(enc.matrix.row(i));
    }
    let da = DeviceBuffer::from_matrix(&padded);
    let dx = DeviceBuffer::from_vec(xp.clone());
    let dy = DeviceBuffer::zeros(rows_padded);
    let kernel = GemvKernel::new(&da, &dx, &dy, rows_padded, n, tiling);
    device.launch(kernel.grid(), &kernel);
    let full = dy.to_vec();

    // Host-side autonomous checks, identical to the host path.
    let pmax_a = PMaxTable::of_rows(&enc.matrix, config.p);
    let x_m = Matrix::from_vec(n, 1, xp.clone());
    let pmax_x = PMaxTable::of_cols(&x_m, config.p);
    let mut result: Vec<f64> = full[..enc.rows.data].to_vec();
    let mut mismatched = Vec::new();
    let mut corrections = Vec::new();
    for block in 0..enc.rows.blocks {
        let cs_line = enc.rows.checksum_line(block);
        let reference: f64 = (block * bs..(block + 1) * bs).map(|i| full[i]).sum();
        let y = upper_bound_y(
            pmax_a.values(cs_line),
            pmax_a.indices(cs_line),
            pmax_x.values(0),
            pmax_x.indices(0),
        );
        let eps = checksum_epsilon(n, y, config.omega, &model);
        if (reference - full[cs_line]).abs() > eps {
            mismatched.push(block);
            if config.recovery != crate::recover::RecoveryPolicy::ReportOnly {
                // Recompute the block's entries from the clean operands.
                #[allow(clippy::needless_range_loop)] // i is a global row id
                for i in block * bs..(block + 1) * bs {
                    let before = result[i];
                    let after: f64 =
                        enc.matrix.row(i).iter().zip(&xp).map(|(r, v)| r * v).sum();
                    if before != after {
                        corrections.push((i, before, after));
                    }
                    result[i] = after;
                }
            }
        }
    }
    result.truncate(a.rows());
    GemvOutcome { result, mismatched_blocks: mismatched, corrections }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::RecoveryPolicy;

    fn inputs(n: usize) -> (Matrix<f64>, Vec<f64>) {
        (
            Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 3) as f64 * 0.17).sin()),
            (0..n).map(|i| ((i * 7) as f64 * 0.11).cos()).collect(),
        )
    }

    fn config() -> AAbftConfig {
        AAbftConfig::builder().block_size(8).build().expect("valid config")
    }

    #[test]
    fn clean_gemv_matches_reference() {
        let (a, x) = inputs(32);
        let outcome = protected_gemv(&a, &x, &config());
        assert!(!outcome.errors_detected());
        for i in 0..32 {
            let expect: f64 = a.row(i).iter().zip(&x).map(|(r, v)| r * v).sum();
            assert!((outcome.result[i] - expect).abs() < 1e-13, "entry {i}");
        }
    }

    #[test]
    fn non_square_and_odd_shapes() {
        let a = Matrix::from_fn(19, 37, |i, j| ((i + 2 * j) as f64 * 0.13).sin());
        let x: Vec<f64> = (0..37).map(|i| (i as f64 * 0.21).cos()).collect();
        let outcome = protected_gemv(&a, &x, &config());
        assert!(!outcome.errors_detected());
        assert_eq!(outcome.result.len(), 19);
    }

    #[test]
    fn detection_threshold_behaves() {
        // Direct white-box check of the block comparison: perturb the
        // computed vector by recomputing with one corrupted matrix entry.
        let (mut a, x) = inputs(32);
        a[(5, 9)] += 1e-3; // significant relative to O(1) data
        let clean = inputs(32).0;
        let good = protected_gemv(&clean, &x, &config());
        let bad = protected_gemv(&a, &x, &config());
        // Different matrices; the *encoded* checksum is consistent with the
        // corrupted matrix, so no detection — this guards against false
        // positives from data changes (ABFT detects compute errors, not
        // input changes).
        assert!(!bad.errors_detected());
        assert!((good.result[5] - bad.result[5]).abs() > 1e-5);
    }

    #[test]
    fn corrupted_result_entry_is_detected_and_recomputed() {
        // Emulate a compute fault by corrupting the result of the protected
        // run's internals: easiest via a wrapper that flips one entry
        // between multiply and check. Here we inline the check logic by
        // corrupting an entry and re-running detection manually through the
        // public API with a poisoned operand is not possible, so verify via
        // the weighted module instead that block-level detection triggers:
        let (a, x) = inputs(32);
        let enc = encode_columns(&a, 8, 1, 1);
        let mut full: Vec<f64> = (0..enc.rows.total)
            .map(|i| enc.matrix.row(i).iter().zip(&x).map(|(r, v)| r * v).sum())
            .collect();
        full[13] += 1e-4;
        // Block 1 checksum mismatch must exceed the bound.
        let pmax_a = PMaxTable::of_rows(&enc.matrix, 2);
        let x_m = Matrix::from_vec(32, 1, x.clone());
        let pmax_x = PMaxTable::of_cols(&x_m, 2);
        let cs_line = enc.rows.checksum_line(1);
        let reference: f64 = (8..16).map(|i| full[i]).sum();
        let y = upper_bound_y(
            pmax_a.values(cs_line),
            pmax_a.indices(cs_line),
            pmax_x.values(0),
            pmax_x.indices(0),
        );
        let model = config().rounding_model();
        let eps = checksum_epsilon(32, y, 3.0, &model);
        assert!(
            (reference - full[cs_line]).abs() > eps,
            "1e-4 corruption must exceed the bound {eps:e}"
        );
    }

    #[test]
    fn device_path_matches_host_path() {
        let (a, x) = inputs(32);
        let host = protected_gemv(&a, &x, &config());
        let device = aabft_gpu_sim::Device::with_defaults();
        let dev = protected_gemv_on_device(&device, &a, &x, &config());
        assert!(!dev.errors_detected());
        for (h, d) in host.result.iter().zip(&dev.result) {
            assert_eq!(h, d, "device and host GEMV must agree bitwise");
        }
    }

    #[test]
    fn device_path_detects_and_heals_injected_fault() {
        use aabft_gpu_sim::{FaultSite, InjectionPlan};
        let (a, x) = inputs(32);
        let mut cfg = config();
        cfg.recovery = RecoveryPolicy::CorrectOrRecompute;
        let clean = protected_gemv(&a, &x, &cfg).result;
        let device = aabft_gpu_sim::Device::with_defaults();
        device.arm_injection(InjectionPlan {
            sm: 0,
            site: FaultSite::InnerAdd,
            module: 0,
            k_injection: 40,
            mask: 1 << 61,
        });
        let outcome = protected_gemv_on_device(&device, &a, &x, &cfg);
        assert!(device.disarm_injection(), "fault must strike");
        assert!(outcome.errors_detected(), "fault must be detected");
        assert!(!outcome.corrections.is_empty(), "block must be recomputed");
        for (i, (got, want)) in outcome.result.iter().zip(&clean).enumerate() {
            assert!((got - want).abs() < 1e-12, "entry {i} not healed");
        }
    }

    #[test]
    fn recovery_policy_recomputes_blocks() {
        let (a, x) = inputs(32);
        let mut cfg = config();
        cfg.recovery = RecoveryPolicy::CorrectOrRecompute;
        let outcome = protected_gemv(&a, &x, &cfg);
        // Clean run: nothing recomputed.
        assert!(outcome.corrections.is_empty());
    }
}
