//! Closed-form probabilistic rounding-error bounds
//! (paper Sections IV-B to IV-E).
//!
//! For a checksum element computed as an inner product of length `n` whose
//! intermediate products are bounded by `y`, the model yields a standard
//! deviation for the accumulated rounding error (Eq. 28 for plain sums,
//! Eq. 46 for inner products); the comparison threshold is the confidence
//! radius `EV + ω·σ` (Eq. 7). These formulas are what the checking kernel
//! evaluates at runtime — closed-form in `n` and `y`, no calibration runs.

use aabft_numerics::{Moments, MulMode, RoundingModel};

/// `σ` of the rounding error of a summation of `n` addends bounded by
/// `|s_k| ≤ k·y` (Eq. 28): `sqrt(n(n+1)(2n+1)/48) · y · 2^-t`.
///
/// # Examples
///
/// ```
/// use aabft_core::bounds::sum_sigma;
/// use aabft_numerics::RoundingModel;
///
/// let s = sum_sigma(1000, 1.0, &RoundingModel::binary64());
/// assert!(s > 0.0 && s < 1e-9);
/// ```
pub fn sum_sigma(n: usize, y: f64, model: &RoundingModel) -> f64 {
    if n < 2 || y == 0.0 {
        return 0.0;
    }
    // Var_Sum <= Var(beta_add) * sum_k (k y)^2 (Eq. 25-26 relaxed with
    // s_k <= k y); with the paper's RN constant Var(beta) = 2^-2t/8 this is
    // exactly Eq. 28. Written against the model's moments it covers the
    // truncation constants too (Section IV-D).
    let n = n as f64;
    let series = n * (n + 1.0) * (2.0 * n + 1.0) / 6.0;
    (model.beta_add().variance * series).sqrt() * y
}

/// `σ` of the rounding error of an inner product of length `n` with
/// products bounded by `y` (Eq. 46):
/// `sqrt((n(n+1)(n+1/2) + 2n)/24) · 2^-t · y`.
///
/// Under fused multiply-add the multiplication contributes no rounding
/// (Section IV-D) and the bound reduces to [`sum_sigma`].
pub fn inner_product_sigma(n: usize, y: f64, model: &RoundingModel) -> f64 {
    if n == 0 || y == 0.0 {
        return 0.0;
    }
    if model.mul_mode == MulMode::Fused {
        return sum_sigma(n, y, model);
    }
    // Var_InProd = Var_Sum + n * Var(beta_mul) * y^2 (Eq. 33-41); with the
    // RN constants this is exactly Eq. 46.
    let nf = n as f64;
    let series = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 6.0;
    ((model.beta_add().variance * series + nf * model.beta_mul().variance) * y * y).sqrt()
}

/// Expectation value of the inner product's rounding error: the
/// multiplication bias `n · y · EV(β_mul)` (Eq. 42-43; `(n/3)·2^-2t·y`
/// under symmetric rounding) plus the summation drift
/// `EV(β_add) · y · Σk` — zero under symmetric rounding (Eq. 22) but the
/// *dominant first-order term* under truncation, whose per-step bias
/// accumulates over the partial sums.
pub fn inner_product_mean(n: usize, y: f64, model: &RoundingModel) -> f64 {
    let nf = n as f64;
    let sum_drift = model.beta_add().mean * y * (nf * (nf + 1.0) / 2.0);
    let mul_bias = if model.mul_mode == MulMode::Fused {
        0.0
    } else {
        nf * y * model.beta_mul().mean
    };
    sum_drift + mul_bias
}

/// Closed-form model moments for a checksum inner product.
pub fn inner_product_bound_moments(n: usize, y: f64, model: &RoundingModel) -> Moments {
    let sigma = inner_product_sigma(n, y, model);
    Moments { mean: inner_product_mean(n, y, model), variance: sigma * sigma }
}

/// The comparison threshold `ε` used by the checking kernel
/// (`calculateEpsilon` in Algorithm 2): confidence radius `|EV| + ω·σ` of
/// the checksum element's modelled rounding error.
///
/// # Examples
///
/// ```
/// use aabft_core::bounds::checksum_epsilon;
/// use aabft_numerics::RoundingModel;
///
/// let model = RoundingModel::binary64();
/// let eps = checksum_epsilon(512, 1.0, 3.0, &model);
/// // Conservative but tight: far above one ulp, far below any significant
/// // error.
/// assert!(eps > 1e-15 && eps < 1e-9);
/// ```
pub fn checksum_epsilon(n: usize, y: f64, omega: f64, model: &RoundingModel) -> f64 {
    inner_product_bound_moments(n, y, model).confidence_radius(omega)
}

/// Tightened variance using the *actual* running magnitudes of the
/// summation (Eq. 26 before the `s_k ≤ k·y` relaxation): callers that have
/// the intermediate sums can obtain a bound that tracks the data rather
/// than the worst case. Exposed for the ablation study; the runtime kernel
/// uses the closed form above, as the paper does.
pub fn running_sum_sigma(partial_sums: &[f64], model: &RoundingModel) -> f64 {
    let u2 = (2.0f64).powi(-2 * model.t as i32);
    let var: f64 = partial_sums.iter().skip(1).map(|&s| s * s).sum::<f64>() * u2 / 8.0;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_numerics::RoundingModel;

    fn m64() -> RoundingModel {
        RoundingModel::binary64()
    }

    #[test]
    fn sigma_grows_superlinearly_with_n() {
        let s1 = inner_product_sigma(100, 1.0, &m64());
        let s2 = inner_product_sigma(1000, 1.0, &m64());
        // ~ n^{3/2} growth.
        assert!(s2 / s1 > 20.0 && s2 / s1 < 50.0, "ratio {}", s2 / s1);
    }

    #[test]
    fn sigma_scales_linearly_with_y() {
        let s1 = inner_product_sigma(256, 1.0, &m64());
        let s2 = inner_product_sigma(256, 10.0, &m64());
        assert!((s2 - 10.0 * s1).abs() < 1e-20);
    }

    #[test]
    fn fma_bound_is_tighter() {
        let sep = inner_product_sigma(256, 1.0, &m64());
        let fma = inner_product_sigma(256, 1.0, &m64().with_fma());
        assert!(fma < sep);
        assert_eq!(fma, sum_sigma(256, 1.0, &m64()));
    }

    #[test]
    fn epsilon_scales_with_omega() {
        let e1 = checksum_epsilon(256, 1.0, 1.0, &m64());
        let e3 = checksum_epsilon(256, 1.0, 3.0, &m64());
        // mean term is ~2^-2t, vanishing: e3 ≈ 3 e1.
        assert!((e3 / e1 - 3.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs_give_zero() {
        assert_eq!(sum_sigma(1, 1.0, &m64()), 0.0);
        assert_eq!(sum_sigma(100, 0.0, &m64()), 0.0);
        assert_eq!(inner_product_sigma(0, 1.0, &m64()), 0.0);
    }

    #[test]
    fn matches_paper_order_of_magnitude() {
        // Paper Table II, n = 512, inputs in [-1, 1]: A-ABFT average bound
        // 1.68e-11 with 3 sigma and y from checksum-row products (|a_cs|
        // reaches ~sqrt(BS)-ish sums). With y = 1 the raw formula gives a
        // few 1e-13 — within two orders of the paper and far above the
        // actual 2.25e-14 rounding error, far below SEA's 8.58e-10.
        let eps = checksum_epsilon(512, 1.0, 3.0, &m64());
        assert!(eps > 1e-13 && eps < 1e-11, "eps = {eps:e}");
    }

    #[test]
    fn running_sum_tighter_than_worst_case() {
        // Alternating-sign data keeps partial sums small: the data-driven
        // bound must be far below the k*y worst case.
        let n = 1000;
        let mut partials = Vec::with_capacity(n);
        let mut s = 0.0;
        for k in 0..n {
            s += if k % 2 == 0 { 1.0 } else { -1.0 };
            partials.push(s);
        }
        let tight = running_sum_sigma(&partials, &m64());
        let loose = sum_sigma(n, 1.0, &m64());
        assert!(tight < loose / 100.0, "tight {tight} loose {loose}");
    }

    #[test]
    fn bound_covers_actual_checksum_error_empirically() {
        use aabft_numerics::exact::dot_rounding_error;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let model = m64();
        let n = 256;
        for _ in 0..100 {
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let y = a.iter().zip(&b).map(|(x, v)| (x * v).abs()).fold(0.0f64, f64::max);
            let (_, err) = dot_rounding_error(&a, &b);
            let eps = checksum_epsilon(n, y, 3.0, &model);
            assert!(err.abs() <= eps, "err {err:e} above bound {eps:e}");
        }
    }
}
