//! Recovery policies: what to do once the check has flagged errors.
//!
//! Algorithm 2 ends with "write back error location or start correction".
//! Correction by checksum reconstruction only works for a *single located*
//! error per block column; anything else — multiple errors, mismatches
//! without an intersection, corrupted checksum elements — needs recomputing
//! the affected result blocks (the standard ABFT recovery ladder). This
//! module implements that ladder on the simulator: selective block
//! recomputation launches fresh multiplication work for exactly the flagged
//! blocks.

use crate::check::CheckReport;
use crate::correct::{correct_located_errors, Correction};
use crate::encoding::FullChecksummed;
use aabft_gpu_sim::device::{BlockCtx, Kernel};
use aabft_gpu_sim::dim::{BlockIdx, GridDim};
use aabft_gpu_sim::mem::DeviceBuffer;
use aabft_gpu_sim::stats::KernelStats;

/// What the pipeline should do about flagged errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Report only; leave the product as computed.
    #[default]
    ReportOnly,
    /// Repair single located errors from the checksums; leave anything more
    /// complex flagged but uncorrected.
    CorrectSingle,
    /// Repair single located errors; recompute every result block with
    /// unexplained mismatches from the (re-encoded) operands.
    CorrectOrRecompute,
}

/// The strongest repair action a (self-healing) run performed, ordered by
/// escalation rung: checksum-reconstruction correction, selective block
/// recomputation, full re-run, or giving up. Campaign reports aggregate
/// these into per-scope recovery columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryAction {
    /// The check passed without any repair.
    NoneNeeded,
    /// A single located error was repaired from the checksums.
    Corrected,
    /// Flagged blocks were recomputed from the operands.
    Recomputed,
    /// The whole multiply was re-run from re-uploaded operands.
    Reran,
    /// The retry budget ran out; no verified product exists.
    Unrecovered,
}

impl RecoveryAction {
    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryAction::NoneNeeded => "none",
            RecoveryAction::Corrected => "corrected",
            RecoveryAction::Recomputed => "recomputed",
            RecoveryAction::Reran => "reran",
            RecoveryAction::Unrecovered => "unrecovered",
        }
    }
}

/// Summary of one recovery pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryOutcome {
    /// Checksum-reconstruction repairs applied.
    pub corrections: Vec<Correction>,
    /// `(block_row, block_col)` blocks recomputed from the operands.
    pub recomputed_blocks: Vec<(usize, usize)>,
}

impl RecoveryOutcome {
    /// `true` if nothing was repaired or recomputed.
    pub fn is_empty(&self) -> bool {
        self.corrections.is_empty() && self.recomputed_blocks.is_empty()
    }
}

/// Modelled utilization of the selective recompute kernel (dense compute,
/// GEMM-class).
pub const RECOMPUTE_UTILIZATION: f64 = 0.896;

/// Kernel recomputing a list of `BS × BS` result blocks (including their
/// checksum row/column segments) directly from the augmented operands.
/// Grid: one thread block per flagged result block.
#[derive(Debug)]
pub struct RecomputeBlocksKernel<'a> {
    a: &'a DeviceBuffer,
    b: &'a DeviceBuffer,
    c: &'a DeviceBuffer,
    inner: usize,
    c_width: usize,
    bs: usize,
    cs_row_base: usize,
    cs_col_base: usize,
    targets: &'a [(usize, usize)],
}

impl<'a> RecomputeBlocksKernel<'a> {
    /// Creates the selective recompute over augmented operand buffers
    /// (`A'` is `rows_total × inner`, `B'` is `inner × c_width`).
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty (nothing to launch).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        a: &'a DeviceBuffer,
        b: &'a DeviceBuffer,
        c: &'a DeviceBuffer,
        inner: usize,
        c_width: usize,
        bs: usize,
        cs_row_base: usize,
        cs_col_base: usize,
        targets: &'a [(usize, usize)],
    ) -> Self {
        assert!(!targets.is_empty(), "no blocks to recompute");
        RecomputeBlocksKernel { a, b, c, inner, c_width, bs, cs_row_base, cs_col_base, targets }
    }

    /// Launch grid: one block per flagged result block.
    pub fn grid(&self) -> GridDim {
        GridDim::linear_1d(self.targets.len())
    }

    fn dot(&self, ctx: &mut BlockCtx<'_>, row: usize, col: usize) -> f64 {
        let mut s = 0.0;
        for k in 0..self.inner {
            let av = ctx.load(self.a, row * self.inner + k);
            let bv = ctx.load(self.b, k * self.c_width + col);
            let p = ctx.mul(av, bv);
            s = ctx.add(s, p);
        }
        s
    }
}

impl Kernel for RecomputeBlocksKernel<'_> {
    fn name(&self) -> &'static str {
        "aabft_recompute_blocks"
    }
    fn phase(&self) -> &'static str {
        "recompute"
    }

    fn utilization(&self) -> f64 {
        RECOMPUTE_UTILIZATION
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let (bi, bj) = self.targets[ctx.block().x];
        let bs = self.bs;
        ctx.declare_threads(bs);
        // Data elements of the block.
        for i in 0..bs {
            for j in 0..bs {
                let (row, col) = (bi * bs + i, bj * bs + j);
                let v = self.dot(ctx, row, col);
                ctx.store(self.c, row * self.c_width + col, v);
            }
        }
        // The block's checksum row segment and checksum column segment.
        let cs_row = self.cs_row_base + bi;
        for j in 0..bs {
            let col = bj * bs + j;
            let v = self.dot(ctx, cs_row, col);
            ctx.store(self.c, cs_row * self.c_width + col, v);
        }
        let cs_col = self.cs_col_base + bj;
        for i in 0..bs {
            let row = bi * bs + i;
            let v = self.dot(ctx, row, cs_col);
            ctx.store(self.c, row * self.c_width + cs_col, v);
        }
    }

    fn supports_clean_path(&self) -> bool {
        true
    }

    fn run_block_clean(&self, block: BlockIdx, stats: &mut KernelStats) {
        let (bi, bj) = self.targets[block.x];
        let bs = self.bs;
        let dot = |row: usize, col: usize| {
            let mut s = 0.0;
            for k in 0..self.inner {
                s += self.a.get(row * self.inner + k) * self.b.get(k * self.c_width + col);
            }
            s
        };
        for i in 0..bs {
            for j in 0..bs {
                let (row, col) = (bi * bs + i, bj * bs + j);
                self.c.set(row * self.c_width + col, dot(row, col));
            }
        }
        let cs_row = self.cs_row_base + bi;
        for j in 0..bs {
            let col = bj * bs + j;
            self.c.set(cs_row * self.c_width + col, dot(cs_row, col));
        }
        let cs_col = self.cs_col_base + bj;
        for i in 0..bs {
            let row = bi * bs + i;
            self.c.set(row * self.c_width + cs_col, dot(row, cs_col));
        }

        // bs² data dots + bs checksum-row dots + bs checksum-column dots,
        // each `inner` (2 loads, mul, add) long plus one store.
        let d = (bs * bs + 2 * bs) as u64;
        let inner = self.inner as u64;
        stats.threads += bs as u64;
        stats.gmem_loads += 2 * d * inner;
        stats.gmem_stores += d;
        stats.fmul += d * inner;
        stats.fadd += d * inner;
        stats.fpu_ticks += 2 * d * inner;
    }
}

/// Applies `policy` to a checked product. `recompute` is invoked with the
/// list of blocks that need recomputation (only under
/// [`RecoveryPolicy::CorrectOrRecompute`]); it is expected to overwrite
/// those blocks in the product (the pipeline wires it to
/// [`RecomputeBlocksKernel`]).
pub fn apply_policy(
    policy: RecoveryPolicy,
    product: &mut FullChecksummed,
    report: &CheckReport,
    recompute: impl FnOnce(&[(usize, usize)], &mut FullChecksummed),
) -> RecoveryOutcome {
    let mut outcome = RecoveryOutcome::default();
    if policy == RecoveryPolicy::ReportOnly || !report.errors_detected() {
        return outcome;
    }

    // Single located errors are cheap to repair from checksums. Apply the
    // reconstruction only when it is unambiguous: one mismatching column
    // per located row and vice versa (the classic ABFT condition).
    if report.single_error() {
        outcome.corrections = correct_located_errors(product, report);
        return outcome;
    }

    if policy == RecoveryPolicy::CorrectOrRecompute {
        let blocks = flagged_blocks(report, product.rows.block_size);
        recompute(&blocks, product);
        outcome.recomputed_blocks = blocks;
    }
    outcome
}

/// The sorted, deduplicated `(block_row, block_col)` result blocks touched
/// by any mismatch in `report` — the recompute target set of the recovery
/// ladder's second rung.
pub fn flagged_blocks(report: &CheckReport, bs: usize) -> Vec<(usize, usize)> {
    let mut blocks: Vec<(usize, usize)> = Vec::new();
    for &(bi, col) in &report.col_mismatches {
        blocks.push((bi, col / bs));
    }
    for &(row, bj) in &report.row_mismatches {
        blocks.push((row / bs, bj));
    }
    blocks.sort_unstable();
    blocks.dedup();
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{encode_columns, encode_rows};
    use aabft_matrix::{gemm, Matrix};

    fn product_with_layouts(n: usize, bs: usize) -> (FullChecksummed, Matrix<f64>, Matrix<f64>) {
        let a: Matrix = Matrix::from_fn(n, n, |i, j| ((i * 3 + j) as f64 * 0.23).sin());
        let b: Matrix = Matrix::from_fn(n, n, |i, j| ((i + 5 * j) as f64 * 0.19).cos());
        let acc = encode_columns(&a, bs, 1, 1);
        let brc = encode_rows(&b, bs, 1, 1);
        let c = gemm::multiply(&acc.matrix, &brc.matrix);
        (
            FullChecksummed { matrix: c, rows: acc.rows, cols: brc.cols },
            acc.matrix,
            brc.matrix,
        )
    }

    #[test]
    fn report_only_touches_nothing() {
        let (mut product, ..) = product_with_layouts(8, 4);
        let before = product.matrix.clone();
        let report = CheckReport {
            col_mismatches: vec![(0, 1)],
            row_mismatches: vec![(1, 0)],
            located: vec![(1, 1)],
        };
        let out = apply_policy(RecoveryPolicy::ReportOnly, &mut product, &report, |_, _| {
            panic!("must not recompute")
        });
        assert!(out.is_empty());
        assert_eq!(product.matrix, before);
    }

    #[test]
    fn single_error_goes_through_correction() {
        let (mut product, ..) = product_with_layouts(8, 4);
        let clean = product.matrix.clone();
        product.matrix[(1, 1)] += 0.5;
        let report = CheckReport {
            col_mismatches: vec![(0, 1)],
            row_mismatches: vec![(1, 0)],
            located: vec![(1, 1)],
        };
        let out = apply_policy(RecoveryPolicy::CorrectSingle, &mut product, &report, |_, _| {
            panic!("single error must not recompute")
        });
        assert_eq!(out.corrections.len(), 1);
        assert!((product.matrix[(1, 1)] - clean[(1, 1)]).abs() < 1e-13);
    }

    #[test]
    fn multi_error_triggers_block_recompute() {
        let (mut product, a_aug, b_aug) = product_with_layouts(8, 4);
        let clean = product.matrix.clone();
        // Two errors in the same column of block (0, 0): no unique
        // intersection, correction impossible.
        product.matrix[(0, 1)] += 0.5;
        product.matrix[(2, 1)] += 0.25;
        let report = CheckReport {
            col_mismatches: vec![(0, 1)],
            row_mismatches: vec![(0, 0), (2, 0)],
            located: vec![(0, 1), (2, 1)],
        };
        let out = apply_policy(
            RecoveryPolicy::CorrectOrRecompute,
            &mut product,
            &report,
            |blocks, prod| {
                // Host recompute stand-in: redo the flagged blocks from the
                // augmented operands.
                for &(bi, bj) in blocks {
                    for i in bi * 4..(bi + 1) * 4 {
                        for j in bj * 4..(bj + 1) * 4 {
                            let mut s = 0.0;
                            for k in 0..a_aug.cols() {
                                s += a_aug[(i, k)] * b_aug[(k, j)];
                            }
                            prod.matrix[(i, j)] = s;
                        }
                    }
                }
            },
        );
        assert_eq!(out.recomputed_blocks, vec![(0, 0)]);
        assert!(out.corrections.is_empty());
        assert_eq!(product.matrix, clean, "recompute must restore the block exactly");
    }

    #[test]
    fn flagged_blocks_dedups_and_sorts() {
        let report = CheckReport {
            col_mismatches: vec![(1, 6), (0, 1)],
            row_mismatches: vec![(5, 1), (1, 0)],
            located: vec![],
        };
        assert_eq!(flagged_blocks(&report, 4), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn recovery_actions_order_by_escalation_rung() {
        use RecoveryAction::*;
        assert!(NoneNeeded < Corrected);
        assert!(Corrected < Recomputed);
        assert!(Recomputed < Reran);
        assert!(Reran < Unrecovered);
        assert_eq!(Recomputed.label(), "recomputed");
    }

    #[test]
    fn recompute_kernel_restores_blocks_on_device() {
        use aabft_gpu_sim::Device;
        let bs = 4;
        let (product, a_aug, b_aug) = product_with_layouts(8, bs);
        let clean = product.matrix.clone();
        let mut corrupted = clean.clone();
        corrupted[(5, 6)] += 2.0;
        corrupted[(6, 5)] -= 1.0;

        let da = DeviceBuffer::from_matrix(&a_aug);
        let db = DeviceBuffer::from_matrix(&b_aug);
        let dc = DeviceBuffer::from_matrix(&corrupted);
        let targets = [(1usize, 1usize)];
        let kernel = RecomputeBlocksKernel::new(
            &da,
            &db,
            &dc,
            a_aug.cols(),
            b_aug.cols(),
            bs,
            product.rows.data,
            product.cols.data,
            &targets,
        );
        Device::with_defaults().launch(kernel.grid(), &kernel);
        let result = dc.to_matrix(clean.rows(), clean.cols());
        // The recomputed block matches the clean product bitwise only if
        // the summation order matches; we recompute sequentially like the
        // reference, so tolerances are tiny.
        assert!(result.approx_eq(&clean, 1e-13), "max diff {}", result.max_abs_diff(&clean));
    }
}
