//! Verified self-healing execution: re-check after every repair, escalate
//! on failure, fail safe when the budget runs out.
//!
//! The paper's Algorithm 2 ends at "write back error location or start
//! correction", and the plain recovery ladder ([`crate::recover`]) trusts
//! whatever repair it applies. That trust is misplaced once the fault model
//! covers the whole pipeline: the checker can be the corrupted party, a
//! checksum element can be the corrupted party (so "correcting" against it
//! *introduces* an error), and a repair kernel can itself be struck.
//!
//! [`SelfHealingGemm`] closes the loop. After the initial check, it runs a
//! bounded retry loop; every attempt applies one rung of the escalation
//! ladder and then **re-runs the check kernel** before believing anything:
//!
//! 1. rung 0 — repair a single located error from the checksums
//!    ([`crate::correct`]);
//! 2. rung 1 — recompute every flagged block from the operand buffers
//!    ([`crate::recover::RecomputeBlocksKernel`]);
//! 3. rung 2 — re-upload the operands and re-run
//!    encode → multiply → reduce wholesale;
//! 4. fail-safe — give up with [`AbftError::Unrecovered`] carrying the
//!    residual report; no unverified product is ever released.
//!
//! A failed re-check raises the floor: the next attempt starts at the rung
//! above the one that just failed, so a corrupted checksum (which makes
//! rung 0 "repair" the wrong element — the re-check catches it via the
//! other axis' checksum) escalates to recomputation, and corrupted operand
//! or p-max state (which recomputation inherits) escalates to the full
//! re-run.
//!
//! Every attempt emits a `recover`-category span plus the
//! `recovery.attempts` / `recovery.escalations` / `recovery.verified_ok` /
//! `recovery.unrecovered` counters.

use crate::aabft::{AAbftGemm, AAbftOutcome, MultiplyRun, RunBuffers};
use crate::error::AbftError;
use crate::recover::{flagged_blocks, RecoveryAction};
use aabft_gpu_sim::ExecCtx;
use aabft_matrix::Matrix;

/// Default retry budget: enough for correct → recompute → re-run → one
/// spare verification-driven retry under the single-fault model.
pub const DEFAULT_HEAL_BUDGET: u32 = 4;

/// A verified, self-healed protected multiplication.
#[derive(Debug)]
pub struct HealedOutcome {
    /// The verified outcome. Its `report` is the final (clean) check
    /// report; the repair history lives in `corrections` /
    /// `recomputed_blocks`.
    pub outcome: AAbftOutcome,
    /// Recovery attempts performed (0 for a clean first check).
    pub attempts: u32,
    /// Times the ladder moved to a higher rung than the previous attempt.
    pub escalations: u32,
    /// The strongest repair rung used.
    pub action: RecoveryAction,
}

impl HealedOutcome {
    /// `true` if the run needed any repair at all.
    pub fn healed(&self) -> bool {
        self.attempts > 0
    }
}

/// The verified self-healing executor around [`AAbftGemm`].
///
/// # Examples
///
/// ```
/// use aabft_core::{AAbftConfig, AAbftGemm, SelfHealingGemm};
/// use aabft_gpu_sim::Device;
/// use aabft_matrix::Matrix;
///
/// let a = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.3).sin());
/// let b = Matrix::from_fn(8, 8, |i, j| ((i * 2 + j) as f64 * 0.2).cos());
/// let config = AAbftConfig::builder().block_size(4).build().unwrap();
/// let heal = SelfHealingGemm::new(AAbftGemm::new(config));
/// let healed = heal.multiply(&Device::with_defaults(), &a, &b).unwrap();
/// assert_eq!(healed.attempts, 0); // fault-free: verified on the first check
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SelfHealingGemm {
    gemm: AAbftGemm,
    budget: u32,
}

impl SelfHealingGemm {
    /// Wraps a protected GEMM with the default retry budget.
    pub fn new(gemm: AAbftGemm) -> Self {
        SelfHealingGemm { gemm, budget: DEFAULT_HEAL_BUDGET }
    }

    /// Sets the retry budget (attempts before [`AbftError::Unrecovered`]).
    /// A budget of 0 means any detected error is immediately unrecoverable.
    pub fn with_budget(mut self, budget: u32) -> Self {
        self.budget = budget;
        self
    }

    /// The wrapped operator.
    pub fn gemm(&self) -> &AAbftGemm {
        &self.gemm
    }

    /// The retry budget.
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// Convenience wrapper running on the device's default stream.
    pub fn multiply(
        &self,
        device: &aabft_gpu_sim::Device,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) -> Result<HealedOutcome, AbftError> {
        self.execute(&ExecCtx::new(device), a, b)
    }

    /// Runs the protected multiplication and heals it until the check
    /// passes or the budget is exhausted. On success every released product
    /// has passed the check *after* the last repair; on budget exhaustion
    /// returns [`AbftError::Unrecovered`] and no product.
    pub fn execute(
        &self,
        ctx: &ExecCtx<'_>,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) -> Result<HealedOutcome, AbftError> {
        let _pipeline = aabft_obs::span!(
            ctx.obs,
            "abft",
            "selfheal_multiply",
            "m" => a.rows() as u64,
            "n" => a.cols() as u64,
            "q" => b.cols() as u64,
            "budget" => self.budget as u64,
        );
        let run = self.gemm.begin(ctx, a, b)?;
        run.encode_and_gemm(ctx);
        run.reduce(ctx);
        run.check(ctx);
        let (result, _bufs) = heal_run(&self.gemm, self.budget, ctx, a, b, run);
        result
    }
}

/// The healing loop over an already-checked [`MultiplyRun`]. Returns the
/// result together with the run's buffers so pooled buffers survive both
/// the success and the fail-safe path (the batch engine depends on that).
pub(crate) fn heal_run(
    gemm: &AAbftGemm,
    budget: u32,
    ctx: &ExecCtx<'_>,
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    run: MultiplyRun,
) -> (Result<HealedOutcome, AbftError>, RunBuffers) {
    let metrics = &ctx.obs.metrics;
    let bs = gemm.config().block_size;
    let mut attempts = 0u32;
    let mut escalations = 0u32;
    // The ladder floor: a failed attempt at rung r raises it to r + 1, so
    // the loop never retries a rung the re-check has already disproven.
    let mut floor = 0u32;
    let mut prev_rung: Option<u32> = None;
    let mut action = RecoveryAction::NoneNeeded;
    let mut corrections = Vec::new();
    let mut recomputed: Vec<(usize, usize)> = Vec::new();

    loop {
        let report = run.decode_report();
        crate::aabft::observe_fault_rate(metrics, report.errors_detected());
        if !report.errors_detected() {
            metrics.counter_inc("recovery.verified_ok");
            let (outcome, bufs) = run.finish_healed(ctx, report, corrections, recomputed);
            return (Ok(HealedOutcome { outcome, attempts, escalations, action }), bufs);
        }
        if attempts >= budget {
            metrics.counter_inc("recovery.unrecovered");
            return (
                Err(AbftError::Unrecovered { attempts, residual: report }),
                run.into_buffers(),
            );
        }

        attempts += 1;
        metrics.counter_inc("recovery.attempts");
        // Rung 0 only applies to an unambiguous single located error; any
        // other report starts at recomputation.
        let rung = if floor == 0 && report.single_error() { 0 } else { floor.clamp(1, 2) };
        if prev_rung.is_some_and(|p| rung > p) {
            escalations += 1;
            metrics.counter_inc("recovery.escalations");
        }
        let span = aabft_obs::span!(
            ctx.obs,
            "recover",
            "heal_attempt",
            "attempt" => attempts as u64,
            "rung" => rung as u64,
            "col_mismatches" => report.col_mismatches.len() as u64,
            "row_mismatches" => report.row_mismatches.len() as u64,
        );
        match rung {
            0 => {
                corrections.extend(run.correct_on_device(&report));
                action = action.max(RecoveryAction::Corrected);
            }
            1 => {
                let blocks = flagged_blocks(&report, bs);
                run.recompute_on_device(ctx, &blocks);
                recomputed.extend(blocks);
                recomputed.sort_unstable();
                recomputed.dedup();
                action = action.max(RecoveryAction::Recomputed);
            }
            _ => {
                // Wholesale re-run: earlier partial repairs are superseded
                // by the recomputed product, so the history resets.
                run.reupload(ctx, a, b);
                run.encode_and_gemm(ctx);
                run.reduce(ctx);
                corrections.clear();
                recomputed.clear();
                action = action.max(RecoveryAction::Reran);
            }
        }
        drop(span);
        prev_rung = Some(rung);
        floor = rung + 1;
        // Verify the repair: nothing is believed until the checker agrees.
        run.clear_check();
        run.check(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AAbftConfig;
    use aabft_gpu_sim::inject::{FaultSite, InjectionPlan};
    use aabft_gpu_sim::kernels::gemm::GemmTiling;
    use aabft_gpu_sim::{Device, FaultScope, KernelFaultPlan, MemoryFaultPlan};
    use aabft_matrix::gemm::multiply as host_multiply;

    fn small_heal() -> SelfHealingGemm {
        let config = AAbftConfig::builder()
            .block_size(4)
            .tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
            .build()
            .expect("valid test config");
        SelfHealingGemm::new(AAbftGemm::new(config))
    }

    fn inputs(n: usize) -> (Matrix<f64>, Matrix<f64>) {
        (
            Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 7) as f64 * 0.19).sin()),
            Matrix::from_fn(n, n, |i, j| ((i * 11 + j) as f64 * 0.23).cos()),
        )
    }

    #[test]
    fn clean_run_verifies_on_first_check() {
        let (a, b) = inputs(16);
        let device = Device::with_defaults();
        let healed = small_heal().multiply(&device, &a, &b).unwrap();
        assert_eq!(healed.attempts, 0);
        assert_eq!(healed.escalations, 0);
        assert_eq!(healed.action, RecoveryAction::NoneNeeded);
        assert!(healed.outcome.product.approx_eq(&host_multiply(&a, &b), 1e-12));
    }

    #[test]
    fn gemm_fault_is_healed_and_verified() {
        let (a, b) = inputs(16);
        let device = Device::with_defaults();
        device.arm_injection(InjectionPlan {
            sm: 0,
            site: FaultSite::FinalAdd,
            module: 0,
            k_injection: 3,
            mask: 1 << 62,
        });
        let healed = small_heal().multiply(&device, &a, &b).unwrap();
        assert!(device.disarm_injection(), "fault must strike");
        assert!(healed.healed(), "fault must require healing");
        assert!(healed.action > RecoveryAction::NoneNeeded);
        assert!(
            healed.outcome.product.approx_eq(&host_multiply(&a, &b), 1e-11),
            "healed product must match the reference, max diff {}",
            healed.outcome.product.max_abs_diff(&host_multiply(&a, &b))
        );
        assert!(!healed.outcome.report.errors_detected(), "final report is clean");
    }

    #[test]
    fn corrupted_checksum_row_in_memory_is_healed() {
        let (a, b) = inputs(16);
        let device = Device::with_defaults();
        let heal = small_heal();
        let plan = heal.gemm().plan(16, 16, 16);
        // Flip a high exponent bit of a checksum-row element of the product
        // after the multiply: the "trusted" checksum is the corrupted party.
        let word = plan.rows.checksum_line(0) * plan.cols.total + 1;
        device.arm_memory_fault(MemoryFaultPlan {
            buffer: "c",
            word,
            mask: 1 << 62,
            after_phase: "gemm",
        });
        let healed = heal.multiply(&device, &a, &b).unwrap();
        assert_eq!(device.disarm_count(), 1, "memory fault must land");
        assert!(healed.healed());
        assert!(healed.outcome.product.approx_eq(&host_multiply(&a, &b), 1e-11));
        assert!(!healed.outcome.report.errors_detected());
    }

    #[test]
    fn check_kernel_fault_self_heals_via_recheck() {
        let (a, b) = inputs(16);
        let device = Device::with_defaults();
        // Strike the checker itself: whatever it mis-flags (or mis-computes)
        // is re-verified by the next clean check pass.
        device.arm_kernel_fault(KernelFaultPlan {
            scope: FaultScope::Check,
            sm: 0,
            k_injection: 7,
            mask: 1 << 62,
        });
        let healed = small_heal().multiply(&device, &a, &b).unwrap();
        assert!(healed.outcome.product.approx_eq(&host_multiply(&a, &b), 1e-11));
        assert!(!healed.outcome.report.errors_detected());
    }

    #[test]
    fn budget_zero_fails_safe_with_residual_report() {
        let (a, b) = inputs(16);
        let device = Device::with_defaults();
        device.arm_injection(InjectionPlan {
            sm: 0,
            site: FaultSite::FinalAdd,
            module: 0,
            k_injection: 3,
            mask: 1 << 62,
        });
        let err = small_heal().with_budget(0).multiply(&device, &a, &b).unwrap_err();
        match err {
            AbftError::Unrecovered { attempts, residual } => {
                assert_eq!(attempts, 0);
                assert!(residual.errors_detected(), "residual report carries the mismatches");
            }
            other => panic!("expected Unrecovered, got {other:?}"),
        }
    }

    #[test]
    fn healing_emits_recovery_counters_and_spans() {
        let (a, b) = inputs(16);
        let mut device = Device::with_defaults();
        let obs = aabft_obs::Obs::new_shared();
        obs.recorder.set_enabled(true);
        device.set_obs(obs.clone());
        device.arm_injection(InjectionPlan {
            sm: 0,
            site: FaultSite::FinalAdd,
            module: 0,
            k_injection: 3,
            mask: 1 << 62,
        });
        let healed = small_heal().multiply(&device, &a, &b).unwrap();
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("recovery.attempts"), healed.attempts as u64);
        assert_eq!(snap.counter("recovery.verified_ok"), 1);
        assert_eq!(snap.counter("recovery.escalations"), healed.escalations as u64);
        assert_eq!(snap.counter("recovery.unrecovered"), 0);
        let spans = obs.recorder.spans();
        assert!(spans.iter().any(|s| s.cat == "abft" && s.name == "selfheal_multiply"));
        assert_eq!(
            spans.iter().filter(|s| s.cat == "recover" && s.name == "heal_attempt").count(),
            healed.attempts as usize
        );
    }
}
