//! Single-error correction from checksum deltas.
//!
//! ABFT locates an error at the intersection of a mismatching checksum row
//! and column; the erroneous element is then repaired by subtracting the
//! column checksum's deviation (the checksum that went *through* the
//! multiplication is trusted; the recomputed reference contains the error).

use crate::check::CheckReport;
use crate::encoding::FullChecksummed;

/// One applied repair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correction {
    /// Repaired element's global row.
    pub row: usize,
    /// Repaired element's global column.
    pub col: usize,
    /// Value before the repair.
    pub before: f64,
    /// Value after the repair.
    pub after: f64,
}

/// Repairs every located error in `product` using its column-checksum
/// deltas. Returns the applied corrections (empty when nothing was located).
///
/// Corrections are exact up to the rounding error of the checksum dot
/// products — far below any critical error by construction of the bounds.
pub fn correct_located_errors(product: &mut FullChecksummed, report: &CheckReport) -> Vec<Correction> {
    let bs = product.rows.block_size;
    let mut applied = Vec::with_capacity(report.located.len());
    for &(row, col) in &report.located {
        let block_i = row / bs;
        let cs_line = product.rows.checksum_line(block_i);
        // Reconstruct from the trusted checksum minus the block's *other*
        // elements. (Subtracting the checksum delta from the faulty value
        // would cancel catastrophically when the corruption is many orders
        // of magnitude above the data.)
        let mut others = 0.0;
        for i in block_i * bs..(block_i + 1) * bs {
            if i != row {
                others += product.matrix[(i, col)];
            }
        }
        let before = product.matrix[(row, col)];
        let after = product.matrix[(cs_line, col)] - others;
        product.matrix[(row, col)] = after;
        applied.push(Correction { row, col, before, after });
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::CheckReport;
    use crate::encoding::{encode_columns, encode_rows, FullChecksummed};
    use aabft_matrix::{gemm, Matrix};

    fn clean_product(n: usize, bs: usize) -> FullChecksummed {
        let a: Matrix = Matrix::from_fn(n, n, |i, j| ((i * 3 + j) as f64 * 0.21).sin());
        let b: Matrix = Matrix::from_fn(n, n, |i, j| ((i + 4 * j) as f64 * 0.17).cos());
        let acc = encode_columns(&a, bs, 1, 1);
        let brc = encode_rows(&b, bs, 1, 1);
        FullChecksummed {
            matrix: gemm::multiply(&acc.matrix, &brc.matrix),
            rows: acc.rows,
            cols: brc.cols,
        }
    }

    #[test]
    fn repairs_injected_error() {
        let mut product = clean_product(8, 4);
        let clean = product.matrix.clone();
        product.matrix[(5, 6)] += 0.125; // exactly representable corruption
        let report = CheckReport {
            col_mismatches: vec![(1, 6)],
            row_mismatches: vec![(5, 1)],
            located: vec![(5, 6)],
        };
        let applied = correct_located_errors(&mut product, &report);
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].row, 5);
        assert_eq!(applied[0].col, 6);
        // The repair must restore the clean value up to checksum rounding.
        assert!(
            (product.matrix[(5, 6)] - clean[(5, 6)]).abs() < 1e-13,
            "repaired to {} expected {}",
            product.matrix[(5, 6)],
            clean[(5, 6)]
        );
    }

    #[test]
    fn no_located_errors_is_a_no_op() {
        let mut product = clean_product(8, 4);
        let before = product.matrix.clone();
        let applied = correct_located_errors(&mut product, &CheckReport::default());
        assert!(applied.is_empty());
        assert_eq!(product.matrix, before);
    }
}
