//! Single-error correction from checksum deltas.
//!
//! ABFT locates an error at the intersection of a mismatching checksum row
//! and column; the erroneous element is then repaired by subtracting the
//! column checksum's deviation (the checksum that went *through* the
//! multiplication is trusted; the recomputed reference contains the error).

use crate::check::CheckReport;
use crate::encoding::FullChecksummed;

/// One applied repair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correction {
    /// Repaired element's global row.
    pub row: usize,
    /// Repaired element's global column.
    pub col: usize,
    /// Value before the repair.
    pub before: f64,
    /// Value after the repair.
    pub after: f64,
}

/// Repairs every located error in `product` using its column-checksum
/// deltas. Returns the applied corrections (empty when nothing was located).
///
/// Corrections are exact up to the rounding error of the checksum dot
/// products — far below any critical error by construction of the bounds.
pub fn correct_located_errors(product: &mut FullChecksummed, report: &CheckReport) -> Vec<Correction> {
    let bs = product.rows.block_size;
    let mut applied = Vec::with_capacity(report.located.len());
    for &(row, col) in &report.located {
        let block_i = row / bs;
        let cs_line = product.rows.checksum_line(block_i);
        // Reconstruct from the trusted checksum minus the block's *other*
        // elements. (Subtracting the checksum delta from the faulty value
        // would cancel catastrophically when the corruption is many orders
        // of magnitude above the data.)
        let mut others = 0.0;
        for i in block_i * bs..(block_i + 1) * bs {
            if i != row {
                others += product.matrix[(i, col)];
            }
        }
        let before = product.matrix[(row, col)];
        let after = product.matrix[(cs_line, col)] - others;
        product.matrix[(row, col)] = after;
        applied.push(Correction { row, col, before, after });
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::CheckReport;
    use crate::encoding::{encode_columns, encode_rows, FullChecksummed};
    use aabft_matrix::{gemm, Matrix};

    fn clean_product(n: usize, bs: usize) -> FullChecksummed {
        let a: Matrix = Matrix::from_fn(n, n, |i, j| ((i * 3 + j) as f64 * 0.21).sin());
        let b: Matrix = Matrix::from_fn(n, n, |i, j| ((i + 4 * j) as f64 * 0.17).cos());
        let acc = encode_columns(&a, bs, 1, 1);
        let brc = encode_rows(&b, bs, 1, 1);
        FullChecksummed {
            matrix: gemm::multiply(&acc.matrix, &brc.matrix),
            rows: acc.rows,
            cols: brc.cols,
        }
    }

    #[test]
    fn repairs_injected_error() {
        let mut product = clean_product(8, 4);
        let clean = product.matrix.clone();
        product.matrix[(5, 6)] += 0.125; // exactly representable corruption
        let report = CheckReport {
            col_mismatches: vec![(1, 6)],
            row_mismatches: vec![(5, 1)],
            located: vec![(5, 6)],
        };
        let applied = correct_located_errors(&mut product, &report);
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].row, 5);
        assert_eq!(applied[0].col, 6);
        // The repair must restore the clean value up to checksum rounding.
        assert!(
            (product.matrix[(5, 6)] - clean[(5, 6)]).abs() < 1e-13,
            "repaired to {} expected {}",
            product.matrix[(5, 6)],
            clean[(5, 6)]
        );
    }

    #[test]
    fn no_located_errors_is_a_no_op() {
        let mut product = clean_product(8, 4);
        let before = product.matrix.clone();
        let applied = correct_located_errors(&mut product, &CheckReport::default());
        assert!(applied.is_empty());
        assert_eq!(product.matrix, before);
    }

    #[test]
    fn checksum_element_corruption_is_never_corrected_against() {
        use crate::recover::{apply_policy, RecoveryPolicy};

        // Corrupt a *checksum* element, not a data element. The column
        // checksum mismatches but no data row does, so there is no located
        // intersection — the classic single-error condition fails and the
        // correction path must not "repair" a (clean) data element against
        // the corrupted checksum.
        let mut product = clean_product(8, 4);
        let clean = product.matrix.clone();
        let cs_line = product.rows.checksum_line(0);
        product.matrix[(cs_line, 6)] += 3.0;
        let report = CheckReport {
            col_mismatches: vec![(0, 6)],
            row_mismatches: vec![],
            located: vec![],
        };
        assert!(!report.single_error());
        let out = apply_policy(RecoveryPolicy::CorrectSingle, &mut product, &report, |_, _| {
            panic!("CorrectSingle must not recompute")
        });
        assert!(out.corrections.is_empty());
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(product.matrix[(i, j)], clean[(i, j)], "data region untouched");
            }
        }
    }

    #[test]
    fn two_errors_in_one_block_column_fall_through_to_recompute() {
        use crate::recover::{apply_policy, flagged_blocks, RecoveryPolicy};

        // Two corrupted elements in the same column of block (0, 0): one
        // column mismatch, two row mismatches. Reconstruction from the
        // column checksum would fold each error into the other's repair
        // ("others" contains the sibling corruption), so correction must
        // never run — the report is ambiguous and the policy escalates.
        let mut product = clean_product(8, 4);
        let clean = product.matrix.clone();
        product.matrix[(0, 1)] += 0.5;
        product.matrix[(2, 1)] += 0.25;
        let report = CheckReport {
            col_mismatches: vec![(0, 1)],
            row_mismatches: vec![(0, 0), (2, 0)],
            located: vec![(0, 1), (2, 1)],
        };
        assert!(!report.single_error());

        // Sanity-check the hazard: blind reconstruction would mis-correct.
        let mut blind = FullChecksummed {
            matrix: product.matrix.clone(),
            rows: product.rows,
            cols: product.cols,
        };
        let applied = correct_located_errors(&mut blind, &report);
        assert_eq!(applied.len(), 2);
        assert!(
            (blind.matrix[(0, 1)] - clean[(0, 1)]).abs() > 0.1,
            "blind reconstruction absorbs the sibling error — exactly why it must not run"
        );

        // The policy takes the recompute path instead and repairs exactly.
        let out = apply_policy(
            RecoveryPolicy::CorrectOrRecompute,
            &mut product,
            &report,
            |blocks, prod| {
                assert_eq!(blocks, flagged_blocks(&report, 4).as_slice());
                for i in 0..4 {
                    for j in 0..4 {
                        prod.matrix[(i, j)] = clean[(i, j)];
                    }
                }
            },
        );
        assert!(out.corrections.is_empty(), "ambiguous report must never be 'corrected'");
        assert_eq!(out.recomputed_blocks, vec![(0, 0)]);
        assert_eq!(product.matrix, clean);
    }

    #[test]
    fn correction_survives_corruption_many_orders_above_the_data() {
        // Reconstruction subtracts the block's *other* elements from the
        // trusted checksum — all of data magnitude — so the corrupted value
        // (~1e15 above the data) never enters the arithmetic and cannot
        // cancel catastrophically.
        let mut product = clean_product(8, 4);
        let clean = product.matrix.clone();
        product.matrix[(5, 6)] += 1.0e15;
        let report = CheckReport {
            col_mismatches: vec![(1, 6)],
            row_mismatches: vec![(5, 1)],
            located: vec![(5, 6)],
        };
        let applied = correct_located_errors(&mut product, &report);
        assert_eq!(applied.len(), 1);
        assert!((applied[0].before - clean[(5, 6)]).abs() > 1.0e14);
        assert!(
            (product.matrix[(5, 6)] - clean[(5, 6)]).abs() < 1e-12,
            "repaired to {} expected {}",
            product.matrix[(5, 6)],
            clean[(5, 6)]
        );
    }
}
