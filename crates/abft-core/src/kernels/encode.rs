//! Checksum-encoding kernels fused with the p-max search — the simulator
//! counterpart of the paper's Algorithm 1.
//!
//! One `BS × 1`-thread block processes one `BS × BS` sub-matrix: it first
//! accumulates the block's checksum line (replacing visited elements by
//! their absolute values in shared memory, Fig. 2), then performs `p`
//! scan-and-zero rounds to extract the largest absolute values and their
//! indices per line, including the checksum line itself (Fig. 3). Partials
//! land in [`PMaxBuffers`] for the subsequent reduction.

use super::buffers::PMaxBuffers;
use crate::encoding::AugmentedLayout;
use aabft_gpu_sim::device::{BlockCtx, Kernel};
use aabft_gpu_sim::dim::{BlockIdx, GridDim};
use aabft_gpu_sim::mem::{DeviceBuffer, SharedTile};
use aabft_gpu_sim::stats::KernelStats;
use std::cell::RefCell;

/// Modelled utilization of the `BS × 1`-thread encoding kernels: low
/// occupancy and strided access keep them far from peak (the paper's
/// motivation for fusing them with the p-max search).
pub const ENCODE_UTILIZATION: f64 = 0.008;

/// Per-worker-thread encode scratch (the `BS × BS` absolute-value tile, the
/// checksum accumulators and the checksum-line copy), reused across blocks
/// instead of reallocated per `run_block`.
#[derive(Debug)]
struct EncodeScratch {
    tile: SharedTile,
    sums: Vec<f64>,
    cs_abs: Vec<f64>,
}

impl EncodeScratch {
    const fn new() -> Self {
        EncodeScratch { tile: SharedTile::empty(), sums: Vec::new(), cs_abs: Vec::new() }
    }

    fn reset(&mut self, bs: usize) {
        self.tile.reset(bs, bs);
        self.sums.clear();
        self.sums.resize(bs, 0.0);
    }
}

thread_local! {
    static SCRATCH: RefCell<EncodeScratch> = const { RefCell::new(EncodeScratch::new()) };
}

/// Closed-form per-block stats of either encoding kernel: one add + one abs
/// per element, then `p` scan-and-zero rounds over the tile and the checksum
/// line (derivation in DESIGN.md §11).
fn encode_block_stats(stats: &mut KernelStats, bs: u64, p: u64) {
    stats.threads += bs;
    stats.gmem_loads += bs * bs;
    stats.gmem_stores += bs + p * (2 * bs + 2);
    stats.fadd += bs * bs;
    stats.fcmp += bs * bs + p * (bs * bs + bs);
    stats.smem_accesses += bs * bs + bs + p * bs * bs;
    stats.fpu_ticks += 2 * bs * bs + p * (bs * bs + bs);
}

/// Encoding kernel for the `A` operand: writes the per-block-row column
/// checksums into the augmented matrix and emits p-max partials per
/// augmented row (Algorithm 1).
#[derive(Debug)]
pub struct EncodeColumnsKernel<'a> {
    a: &'a DeviceBuffer,
    pmax: &'a PMaxBuffers,
    rows: AugmentedLayout,
    cols: usize,
}

impl<'a> EncodeColumnsKernel<'a> {
    /// Creates the kernel over the augmented `A` buffer (`rows.total ×
    /// cols`, data present, checksum rows to be written).
    ///
    /// # Panics
    ///
    /// Panics if buffer/layout extents are inconsistent.
    pub fn new(a: &'a DeviceBuffer, pmax: &'a PMaxBuffers, rows: AugmentedLayout, cols: usize) -> Self {
        assert_eq!(a.len(), rows.total * cols, "A buffer size mismatch");
        assert_eq!(cols % rows.block_size, 0, "cols must be a multiple of BS");
        assert_eq!(pmax.blocks, cols / rows.block_size, "pmax blocks mismatch");
        assert!(pmax.lines >= rows.data + rows.blocks, "pmax lines too small");
        EncodeColumnsKernel { a, pmax, rows, cols }
    }

    /// Launch grid: one block per `BS × BS` sub-matrix of the data region.
    pub fn grid(&self) -> GridDim {
        GridDim::new(self.cols / self.rows.block_size, self.rows.blocks)
    }
}

impl Kernel for EncodeColumnsKernel<'_> {
    fn name(&self) -> &'static str {
        "aabft_encode_a"
    }
    fn phase(&self) -> &'static str {
        "encode"
    }

    fn utilization(&self) -> f64 {
        ENCODE_UTILIZATION
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let bs = self.rows.block_size;
        let block_i = ctx.block().y;
        let block_k = ctx.block().x;
        let (row0, col0) = (block_i * bs, block_k * bs);
        ctx.declare_threads(bs);

        SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        scratch.reset(bs);
        let EncodeScratch { tile, sums, cs_abs } = &mut *scratch;

        // Phase 1 (Fig. 2): accumulate column checksums top to bottom,
        // replacing visited elements by their absolute values in shared
        // memory. Thread `tid` owns column `col0 + tid`.
        for i in 0..bs {
            for (tid, sum) in sums.iter_mut().enumerate() {
                let v = ctx.load(self.a, (row0 + i) * self.cols + col0 + tid);
                *sum = ctx.add(*sum, v);
                tile.set(i, tid, ctx.abs(v));
            }
        }
        ctx.note_smem((bs * bs) as u64);
        for (tid, &sum) in sums.iter().enumerate() {
            ctx.store(self.a, self.rows.checksum_line(block_i) * self.cols + col0 + tid, sum);
        }

        // Phase 2 (Fig. 3): p rounds of scan-and-zero per row; thread `tid`
        // owns row `row0 + tid`. The checksum line participates through its
        // absolute values (Alg. 1's `localSums` / `maxSum`).
        cs_abs.clear();
        cs_abs.extend(sums.iter().map(|&s| s.abs()));
        ctx.note_smem(bs as u64);
        for slot in 0..self.pmax.p {
            for tid in 0..bs {
                let mut max_val = 0.0f64;
                let mut max_j = 0usize;
                for j in 0..bs {
                    let v = tile.get(tid, j);
                    if ctx.max(max_val, v) > max_val {
                        max_val = v;
                        max_j = j;
                    }
                }
                let line = row0 + tid;
                let pi = self.pmax.partial_index(line, block_k, slot);
                ctx.store(&self.pmax.partial_vals, pi, max_val);
                ctx.store(&self.pmax.partial_idxs, pi, (col0 + max_j) as f64);
                tile.set(tid, max_j, 0.0);
            }
            ctx.note_smem((bs * bs) as u64);
            // Checksum line's own max (maxReduce over localSums in Alg. 1).
            let mut max_val = 0.0f64;
            let mut max_j = 0usize;
            for (j, &v) in cs_abs.iter().enumerate() {
                if ctx.max(max_val, v) > max_val {
                    max_val = v;
                    max_j = j;
                }
            }
            let line = self.rows.checksum_line(block_i);
            let pi = self.pmax.partial_index(line, block_k, slot);
            ctx.store(&self.pmax.partial_vals, pi, max_val);
            ctx.store(&self.pmax.partial_idxs, pi, (col0 + max_j) as f64);
            cs_abs[max_j] = 0.0;
        }
        });
    }

    fn supports_clean_path(&self) -> bool {
        true
    }

    fn run_block_clean(&self, block: BlockIdx, stats: &mut KernelStats) {
        let bs = self.rows.block_size;
        let block_i = block.y;
        let block_k = block.x;
        let (row0, col0) = (block_i * bs, block_k * bs);

        SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            scratch.reset(bs);
            let EncodeScratch { tile, sums, cs_abs } = &mut *scratch;
            let tile = tile.as_mut_slice();

            for i in 0..bs {
                for (tid, sum) in sums.iter_mut().enumerate() {
                    let v = self.a.get((row0 + i) * self.cols + col0 + tid);
                    *sum += v;
                    tile[i * bs + tid] = v.abs();
                }
            }
            for (tid, &sum) in sums.iter().enumerate() {
                self.a.set(self.rows.checksum_line(block_i) * self.cols + col0 + tid, sum);
            }

            cs_abs.clear();
            cs_abs.extend(sums.iter().map(|&s| s.abs()));
            for slot in 0..self.pmax.p {
                for tid in 0..bs {
                    let mut max_val = 0.0f64;
                    let mut max_j = 0usize;
                    for (j, &v) in tile[tid * bs..(tid + 1) * bs].iter().enumerate() {
                        // Same max-scan predicate as the instrumented path.
                        if max_val.max(v) > max_val {
                            max_val = v;
                            max_j = j;
                        }
                    }
                    let pi = self.pmax.partial_index(row0 + tid, block_k, slot);
                    self.pmax.partial_vals.set(pi, max_val);
                    self.pmax.partial_idxs.set(pi, (col0 + max_j) as f64);
                    tile[tid * bs + max_j] = 0.0;
                }
                let mut max_val = 0.0f64;
                let mut max_j = 0usize;
                for (j, &v) in cs_abs.iter().enumerate() {
                    if max_val.max(v) > max_val {
                        max_val = v;
                        max_j = j;
                    }
                }
                let pi =
                    self.pmax.partial_index(self.rows.checksum_line(block_i), block_k, slot);
                self.pmax.partial_vals.set(pi, max_val);
                self.pmax.partial_idxs.set(pi, (col0 + max_j) as f64);
                cs_abs[max_j] = 0.0;
            }
        });

        encode_block_stats(stats, bs as u64, self.pmax.p as u64);
    }
}

/// Encoding kernel for the `B` operand: writes the per-block-column row
/// checksums and emits p-max partials per augmented column (the row-checksum
/// mirror of Algorithm 1).
#[derive(Debug)]
pub struct EncodeRowsKernel<'a> {
    b: &'a DeviceBuffer,
    pmax: &'a PMaxBuffers,
    cols: AugmentedLayout,
    rows: usize,
}

impl<'a> EncodeRowsKernel<'a> {
    /// Creates the kernel over the augmented `B` buffer (`rows ×
    /// cols.total`, data present, checksum columns to be written).
    ///
    /// # Panics
    ///
    /// Panics if buffer/layout extents are inconsistent.
    pub fn new(b: &'a DeviceBuffer, pmax: &'a PMaxBuffers, cols: AugmentedLayout, rows: usize) -> Self {
        assert_eq!(b.len(), rows * cols.total, "B buffer size mismatch");
        assert_eq!(rows % cols.block_size, 0, "rows must be a multiple of BS");
        assert_eq!(pmax.blocks, rows / cols.block_size, "pmax blocks mismatch");
        assert!(pmax.lines >= cols.data + cols.blocks, "pmax lines too small");
        EncodeRowsKernel { b, pmax, cols, rows }
    }

    /// Launch grid: one block per `BS × BS` sub-matrix of the data region.
    pub fn grid(&self) -> GridDim {
        GridDim::new(self.cols.blocks, self.rows / self.cols.block_size)
    }
}

impl Kernel for EncodeRowsKernel<'_> {
    fn name(&self) -> &'static str {
        "aabft_encode_b"
    }
    fn phase(&self) -> &'static str {
        "encode"
    }

    fn utilization(&self) -> f64 {
        ENCODE_UTILIZATION
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let bs = self.cols.block_size;
        let block_k = ctx.block().y; // row-block of B
        let block_j = ctx.block().x; // column-block of B
        let (row0, col0) = (block_k * bs, block_j * bs);
        let width = self.cols.total;
        ctx.declare_threads(bs);

        SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        scratch.reset(bs);
        let EncodeScratch { tile, sums, cs_abs } = &mut *scratch;

        // Phase 1: row checksums; thread `tid` owns row `row0 + tid`.
        for j in 0..bs {
            for (tid, sum) in sums.iter_mut().enumerate() {
                let v = ctx.load(self.b, (row0 + tid) * width + col0 + j);
                *sum = ctx.add(*sum, v);
                tile.set(tid, j, ctx.abs(v));
            }
        }
        ctx.note_smem((bs * bs) as u64);
        for (tid, &sum) in sums.iter().enumerate() {
            ctx.store(self.b, (row0 + tid) * width + self.cols.checksum_line(block_j), sum);
        }

        // Phase 2: p-max per column; thread `tid` owns column `col0 + tid`.
        cs_abs.clear();
        cs_abs.extend(sums.iter().map(|&s| s.abs()));
        ctx.note_smem(bs as u64);
        for slot in 0..self.pmax.p {
            for tid in 0..bs {
                let mut max_val = 0.0f64;
                let mut max_i = 0usize;
                for i in 0..bs {
                    let v = tile.get(i, tid);
                    if ctx.max(max_val, v) > max_val {
                        max_val = v;
                        max_i = i;
                    }
                }
                let line = col0 + tid;
                let pi = self.pmax.partial_index(line, block_k, slot);
                ctx.store(&self.pmax.partial_vals, pi, max_val);
                ctx.store(&self.pmax.partial_idxs, pi, (row0 + max_i) as f64);
                tile.set(max_i, tid, 0.0);
            }
            ctx.note_smem((bs * bs) as u64);
            // Checksum column's own max.
            let mut max_val = 0.0f64;
            let mut max_i = 0usize;
            for (i, &v) in cs_abs.iter().enumerate() {
                if ctx.max(max_val, v) > max_val {
                    max_val = v;
                    max_i = i;
                }
            }
            let line = self.cols.checksum_line(block_j);
            let pi = self.pmax.partial_index(line, block_k, slot);
            ctx.store(&self.pmax.partial_vals, pi, max_val);
            ctx.store(&self.pmax.partial_idxs, pi, (row0 + max_i) as f64);
            cs_abs[max_i] = 0.0;
        }
        });
    }

    fn supports_clean_path(&self) -> bool {
        true
    }

    fn run_block_clean(&self, block: BlockIdx, stats: &mut KernelStats) {
        let bs = self.cols.block_size;
        let block_k = block.y;
        let block_j = block.x;
        let (row0, col0) = (block_k * bs, block_j * bs);
        let width = self.cols.total;

        SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            scratch.reset(bs);
            let EncodeScratch { tile, sums, cs_abs } = &mut *scratch;
            let tile = tile.as_mut_slice();

            for j in 0..bs {
                for (tid, sum) in sums.iter_mut().enumerate() {
                    let v = self.b.get((row0 + tid) * width + col0 + j);
                    *sum += v;
                    tile[tid * bs + j] = v.abs();
                }
            }
            for (tid, &sum) in sums.iter().enumerate() {
                self.b.set((row0 + tid) * width + self.cols.checksum_line(block_j), sum);
            }

            cs_abs.clear();
            cs_abs.extend(sums.iter().map(|&s| s.abs()));
            for slot in 0..self.pmax.p {
                for tid in 0..bs {
                    let mut max_val = 0.0f64;
                    let mut max_i = 0usize;
                    for i in 0..bs {
                        let v = tile[i * bs + tid];
                        if max_val.max(v) > max_val {
                            max_val = v;
                            max_i = i;
                        }
                    }
                    let pi = self.pmax.partial_index(col0 + tid, block_k, slot);
                    self.pmax.partial_vals.set(pi, max_val);
                    self.pmax.partial_idxs.set(pi, (row0 + max_i) as f64);
                    tile[max_i * bs + tid] = 0.0;
                }
                let mut max_val = 0.0f64;
                let mut max_i = 0usize;
                for (i, &v) in cs_abs.iter().enumerate() {
                    if max_val.max(v) > max_val {
                        max_val = v;
                        max_i = i;
                    }
                }
                let pi =
                    self.pmax.partial_index(self.cols.checksum_line(block_j), block_k, slot);
                self.pmax.partial_vals.set(pi, max_val);
                self.pmax.partial_idxs.set(pi, (row0 + max_i) as f64);
                cs_abs[max_i] = 0.0;
            }
        });

        encode_block_stats(stats, bs as u64, self.pmax.p as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{encode_columns, encode_rows};
    use crate::pmax::PMaxTable;
    use aabft_gpu_sim::device::Device;
    use aabft_matrix::Matrix;

    fn upload_padded_a(a: &Matrix<f64>, bs: usize) -> (DeviceBuffer, AugmentedLayout, usize) {
        let rows = AugmentedLayout::new(a.rows(), bs, 1);
        let cols = a.cols();
        let mut m = Matrix::zeros(rows.total, cols);
        for i in 0..a.rows() {
            m.row_mut(i)[..cols].copy_from_slice(a.row(i));
        }
        (DeviceBuffer::from_matrix(&m), rows, cols)
    }

    #[test]
    fn encode_a_matches_host_reference() {
        let bs = 4;
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i * 5 + j * 3) as f64 * 0.21).sin());
        let (buf, rows, cols) = upload_padded_a(&a, bs);
        let pmax = PMaxBuffers::new(rows.total, cols / bs, 2);
        let kernel = EncodeColumnsKernel::new(&buf, &pmax, rows, cols);
        Device::with_defaults().launch(kernel.grid(), &kernel);

        let host = encode_columns(&a, bs, 1, 1);
        let device_result = buf.to_matrix(rows.total, cols);
        assert!(device_result.approx_eq(&host.matrix, 0.0), "checksums must be bit-identical");
    }

    #[test]
    fn encode_a_partials_reduce_to_host_pmax() {
        let bs = 4;
        let p = 2;
        let a: Matrix = Matrix::from_fn(8, 12, |i, j| ((i * 7 + j * 11) as f64 * 0.13).cos());
        let (buf, rows, cols) = upload_padded_a(&a, bs);
        let pmax = PMaxBuffers::new(rows.total, cols / bs, p);
        let kernel = EncodeColumnsKernel::new(&buf, &pmax, rows, cols);
        Device::with_defaults().launch(kernel.grid(), &kernel);

        // Merge partials on the host and compare against the direct table
        // over the augmented matrix.
        let vals = pmax.partial_vals.to_vec();
        let idxs = pmax.partial_idxs.to_vec();
        let mut partials = vec![Vec::new(); rows.total];
        for (line, partial) in partials.iter_mut().enumerate() {
            for b in 0..pmax.blocks {
                for s in 0..p {
                    let i = pmax.partial_index(line, b, s);
                    partial.push((vals[i], idxs[i] as usize));
                }
            }
        }
        let merged = PMaxTable::merge_partials(rows.total, p, &partials);
        let augmented = buf.to_matrix(rows.total, cols);
        let direct = PMaxTable::of_rows(&augmented, p);
        for line in 0..rows.data + rows.blocks {
            assert_eq!(merged.values(line), direct.values(line), "line {line}");
            assert_eq!(merged.indices(line), direct.indices(line), "line {line}");
        }
    }

    #[test]
    fn encode_b_matches_host_reference() {
        let bs = 4;
        let b: Matrix = Matrix::from_fn(8, 8, |i, j| ((i + 3 * j) as f64 * 0.31).sin());
        let cols = AugmentedLayout::new(b.cols(), bs, 1);
        let mut m = Matrix::zeros(b.rows(), cols.total);
        for i in 0..b.rows() {
            m.row_mut(i)[..b.cols()].copy_from_slice(b.row(i));
        }
        let buf = DeviceBuffer::from_matrix(&m);
        let pmax = PMaxBuffers::new(cols.total, b.rows() / bs, 2);
        let kernel = EncodeRowsKernel::new(&buf, &pmax, cols, b.rows());
        Device::with_defaults().launch(kernel.grid(), &kernel);

        let host = encode_rows(&b, bs, 1, 1);
        assert!(buf.to_matrix(b.rows(), cols.total).approx_eq(&host.matrix, 0.0));
    }

    #[test]
    fn encode_counts_expected_work() {
        let bs = 4;
        let a: Matrix = Matrix::from_fn(8, 8, |_, _| 1.0);
        let (buf, rows, cols) = upload_padded_a(&a, bs);
        let pmax = PMaxBuffers::new(rows.total, cols / bs, 2);
        let kernel = EncodeColumnsKernel::new(&buf, &pmax, rows, cols);
        let stats = Device::with_defaults().launch(kernel.grid(), &kernel);
        // One add and one abs per element.
        assert_eq!(stats.fadd, 64);
        assert_eq!(stats.gmem_loads, 64);
        assert!(stats.fcmp > 64, "abs + scan comparisons");
        assert_eq!(stats.blocks, 4);
    }
}
