//! Error-bound determination and checksum-checking kernel — the simulator
//! counterpart of the paper's Algorithm 2.
//!
//! One `BS × 1`-thread block checks one `BS × BS` result sub-matrix: it
//! loads the reduced p-max tables, determines the autonomous upper bound `y`
//! per checksum element (the three cases of Section IV-E), evaluates the
//! probabilistic rounding-error bound `ε` (Eq. 46 with the configured `ω`),
//! recomputes the block's reference row/column checksums from the result
//! data, and flags every checksum whose deviation exceeds its bound. The
//! per-block row/column mismatch bitmaps land in a report buffer.

use crate::bounds::checksum_epsilon;
use crate::encoding::AugmentedLayout;
use crate::kernels::buffers::PMaxBuffers;
use crate::pmax::upper_bound_y;
use aabft_gpu_sim::device::{BlockCtx, Kernel};
use aabft_gpu_sim::dim::{BlockIdx, GridDim};
use aabft_gpu_sim::mem::DeviceBuffer;
use aabft_gpu_sim::stats::KernelStats;
use aabft_numerics::RoundingModel;

/// Modelled utilization of the `BS × 1`-thread checking kernel.
pub const CHECK_UTILIZATION: f64 = 0.008;

/// Words per block in the report buffer: `[col_mask, row_mask]`.
pub const REPORT_WORDS: usize = 2;

/// Words per block in the optional diagnostics buffer:
/// `[max |reference - checksum|, max bound y, max epsilon]`.
pub const DIAG_WORDS: usize = 3;

/// The checking kernel (Algorithm 2).
#[derive(Debug)]
pub struct CheckKernel<'a> {
    c: &'a DeviceBuffer,
    pmax_a: &'a PMaxBuffers,
    pmax_b: &'a PMaxBuffers,
    report: &'a DeviceBuffer,
    diag: Option<&'a DeviceBuffer>,
    rows: AugmentedLayout,
    cols: AugmentedLayout,
    inner: usize,
    omega: f64,
    model: RoundingModel,
}

impl<'a> CheckKernel<'a> {
    /// Creates the checker over the full-checksum product buffer
    /// (`rows.total × cols.total`). `inner` is the inner dimension of the
    /// multiplication (length of the checksum dot products). The report
    /// buffer needs [`REPORT_WORDS`] words per `BS × BS` data block.
    ///
    /// # Panics
    ///
    /// Panics on any extent mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        c: &'a DeviceBuffer,
        pmax_a: &'a PMaxBuffers,
        pmax_b: &'a PMaxBuffers,
        report: &'a DeviceBuffer,
        rows: AugmentedLayout,
        cols: AugmentedLayout,
        inner: usize,
        omega: f64,
        model: RoundingModel,
    ) -> Self {
        assert_eq!(rows.block_size, cols.block_size, "row/column block sizes must agree");
        assert_eq!(c.len(), rows.total * cols.total, "C buffer size mismatch");
        assert_eq!(pmax_a.p, pmax_b.p, "pmax tables must share p");
        assert!(pmax_a.lines >= rows.data + rows.blocks, "pmax A lines too small");
        assert!(pmax_b.lines >= cols.data + cols.blocks, "pmax B lines too small");
        assert_eq!(
            report.len(),
            REPORT_WORDS * rows.blocks * cols.blocks,
            "report buffer size mismatch"
        );
        assert!(rows.block_size <= 52, "mismatch bitmaps must fit an f64 mantissa");
        CheckKernel { c, pmax_a, pmax_b, report, diag: None, rows, cols, inner, omega, model }
    }

    /// Attaches an optional per-block diagnostics buffer ([`DIAG_WORDS`]
    /// words per block). The kernel records each block's worst observed
    /// checksum residual alongside the autonomous bound `y` and the derived
    /// tolerance `ε` that judged it. The writes are a host-side diagnostic
    /// channel: they are deliberately *not* charged to the kernel's traffic
    /// counters, so enabling observability never perturbs the performance
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length doesn't match the block grid.
    pub fn with_diag(mut self, diag: &'a DeviceBuffer) -> Self {
        assert_eq!(
            diag.len(),
            DIAG_WORDS * self.rows.blocks * self.cols.blocks,
            "diag buffer size mismatch"
        );
        self.diag = Some(diag);
        self
    }

    /// Launch grid: one block per `BS × BS` data block of the product.
    pub fn grid(&self) -> GridDim {
        GridDim::new(self.cols.blocks, self.rows.blocks)
    }

    /// Loads the p-max entry for `line` from a table.
    fn load_entry(
        ctx: &mut BlockCtx<'_>,
        pm: &PMaxBuffers,
        line: usize,
    ) -> (Vec<f64>, Vec<usize>) {
        let mut vals = Vec::with_capacity(pm.p);
        let mut idxs = Vec::with_capacity(pm.p);
        for s in 0..pm.p {
            vals.push(ctx.load(&pm.final_vals, pm.final_index(line, s)));
            idxs.push(ctx.load(&pm.final_idxs, pm.final_index(line, s)) as usize);
        }
        (vals, idxs)
    }

    /// Evaluates `ε` in-kernel, accounting for the closed-form evaluation's
    /// arithmetic (a dozen scalar ops per checksum element).
    fn epsilon(&self, ctx: &mut BlockCtx<'_>, y: f64) -> f64 {
        ctx.note_ops(4, 8, 2);
        checksum_epsilon(self.inner, y, self.omega, &self.model)
    }

    /// Clean-path twin of [`CheckKernel::load_entry`] (no per-op counting).
    fn load_entry_clean(pm: &PMaxBuffers, line: usize) -> (Vec<f64>, Vec<usize>) {
        let mut vals = Vec::with_capacity(pm.p);
        let mut idxs = Vec::with_capacity(pm.p);
        for s in 0..pm.p {
            vals.push(pm.final_vals.get(pm.final_index(line, s)));
            idxs.push(pm.final_idxs.get(pm.final_index(line, s)) as usize);
        }
        (vals, idxs)
    }
}

impl Kernel for CheckKernel<'_> {
    fn name(&self) -> &'static str {
        "aabft_check"
    }
    fn phase(&self) -> &'static str {
        "check"
    }

    fn utilization(&self) -> f64 {
        CHECK_UTILIZATION
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let bs = self.rows.block_size;
        let block_j = ctx.block().x;
        let block_i = ctx.block().y;
        let (row0, col0) = (block_i * bs, block_j * bs);
        let width = self.cols.total;
        ctx.declare_threads(bs);

        // p-max entry of A's checksum row for this block-row (shared by all
        // column checks of the block).
        let cs_row_line = self.rows.checksum_line(block_i);
        let (a_cs_vals, a_cs_idxs) = Self::load_entry(ctx, self.pmax_a, cs_row_line);

        // Per-block diagnostics: worst residual / bound / tolerance seen.
        let (mut max_resid, mut max_y, mut max_eps) = (0.0f64, 0.0f64, 0.0f64);

        // Column checksums: thread `tid` checks column `col0 + tid`.
        let mut col_mask = 0u64;
        for tid in 0..bs {
            let j = col0 + tid;
            let mut reference = 0.0;
            for i in 0..bs {
                let v = ctx.load(self.c, (row0 + i) * width + j);
                reference = ctx.add(reference, v);
            }
            let checksum = ctx.load(self.c, cs_row_line * width + j);
            let (b_vals, b_idxs) = Self::load_entry(ctx, self.pmax_b, j);
            let y = upper_bound_y(&a_cs_vals, &a_cs_idxs, &b_vals, &b_idxs);
            ctx.note_ops(0, self.pmax_a.p as u64 * self.pmax_a.p as u64 + 2, 4);
            let eps = self.epsilon(ctx, y);
            let diff = ctx.sub(reference, checksum);
            max_resid = max_resid.max(diff.abs());
            max_y = max_y.max(y);
            max_eps = max_eps.max(eps);
            // A non-finite residual, bound or tolerance always counts as a
            // mismatch: `NaN > eps` is false, so without the explicit test a
            // fault corrupting an element (or the bound pipeline) to NaN/Inf
            // would sail through undetected.
            let adiff = ctx.abs(diff);
            if !(diff.is_finite() && y.is_finite() && eps.is_finite()) || adiff > eps {
                col_mask |= 1 << tid;
            }
        }

        // Row checksums: thread `tid` checks row `row0 + tid` (all data is
        // already in shared memory on real hardware; counted as smem here).
        let cs_col_line = self.cols.checksum_line(block_j);
        let (b_cs_vals, b_cs_idxs) = Self::load_entry(ctx, self.pmax_b, cs_col_line);
        ctx.note_smem((bs * bs) as u64);
        let mut row_mask = 0u64;
        for tid in 0..bs {
            let i = row0 + tid;
            let mut reference = 0.0;
            for j in 0..bs {
                let v = ctx.load(self.c, i * width + col0 + j);
                reference = ctx.add(reference, v);
            }
            let checksum = ctx.load(self.c, i * width + cs_col_line);
            let (a_vals, a_idxs) = Self::load_entry(ctx, self.pmax_a, i);
            let y = upper_bound_y(&a_vals, &a_idxs, &b_cs_vals, &b_cs_idxs);
            ctx.note_ops(0, self.pmax_a.p as u64 * self.pmax_a.p as u64 + 2, 4);
            let eps = self.epsilon(ctx, y);
            let diff = ctx.sub(reference, checksum);
            max_resid = max_resid.max(diff.abs());
            max_y = max_y.max(y);
            max_eps = max_eps.max(eps);
            // Non-finite values are mismatches by definition (see above).
            let adiff = ctx.abs(diff);
            if !(diff.is_finite() && y.is_finite() && eps.is_finite()) || adiff > eps {
                row_mask |= 1 << tid;
            }
        }

        let slot = (block_i * self.cols.blocks + block_j) * REPORT_WORDS;
        ctx.store(self.report, slot, col_mask as f64);
        ctx.store(self.report, slot + 1, row_mask as f64);
        if let Some(diag) = self.diag {
            // Diagnostic side channel: plain host writes, not modelled traffic.
            let d = (block_i * self.cols.blocks + block_j) * DIAG_WORDS;
            diag.set(d, max_resid);
            diag.set(d + 1, max_y);
            diag.set(d + 2, max_eps);
        }
    }

    fn supports_clean_path(&self) -> bool {
        true
    }

    fn run_block_clean(&self, block: BlockIdx, stats: &mut KernelStats) {
        let bs = self.rows.block_size;
        let block_j = block.x;
        let block_i = block.y;
        let (row0, col0) = (block_i * bs, block_j * bs);
        let width = self.cols.total;

        let cs_row_line = self.rows.checksum_line(block_i);
        let (a_cs_vals, a_cs_idxs) = Self::load_entry_clean(self.pmax_a, cs_row_line);
        let (mut max_resid, mut max_y, mut max_eps) = (0.0f64, 0.0f64, 0.0f64);

        let mut col_mask = 0u64;
        for tid in 0..bs {
            let j = col0 + tid;
            let mut reference = 0.0;
            for i in 0..bs {
                reference += self.c.get((row0 + i) * width + j);
            }
            let checksum = self.c.get(cs_row_line * width + j);
            let (b_vals, b_idxs) = Self::load_entry_clean(self.pmax_b, j);
            let y = upper_bound_y(&a_cs_vals, &a_cs_idxs, &b_vals, &b_idxs);
            let eps = checksum_epsilon(self.inner, y, self.omega, &self.model);
            let diff = reference - checksum;
            max_resid = max_resid.max(diff.abs());
            max_y = max_y.max(y);
            max_eps = max_eps.max(eps);
            if !(diff.is_finite() && y.is_finite() && eps.is_finite()) || diff.abs() > eps {
                col_mask |= 1 << tid;
            }
        }

        let cs_col_line = self.cols.checksum_line(block_j);
        let (b_cs_vals, b_cs_idxs) = Self::load_entry_clean(self.pmax_b, cs_col_line);
        let mut row_mask = 0u64;
        for tid in 0..bs {
            let i = row0 + tid;
            let mut reference = 0.0;
            for j in 0..bs {
                reference += self.c.get(i * width + col0 + j);
            }
            let checksum = self.c.get(i * width + cs_col_line);
            let (a_vals, a_idxs) = Self::load_entry_clean(self.pmax_a, i);
            let y = upper_bound_y(&a_vals, &a_idxs, &b_cs_vals, &b_cs_idxs);
            let eps = checksum_epsilon(self.inner, y, self.omega, &self.model);
            let diff = reference - checksum;
            max_resid = max_resid.max(diff.abs());
            max_y = max_y.max(y);
            max_eps = max_eps.max(eps);
            if !(diff.is_finite() && y.is_finite() && eps.is_finite()) || diff.abs() > eps {
                row_mask |= 1 << tid;
            }
        }

        let slot = (block_i * self.cols.blocks + block_j) * REPORT_WORDS;
        self.report.set(slot, col_mask as f64);
        self.report.set(slot + 1, row_mask as f64);
        if let Some(diag) = self.diag {
            let d = (block_i * self.cols.blocks + block_j) * DIAG_WORDS;
            diag.set(d, max_resid);
            diag.set(d + 1, max_y);
            diag.set(d + 2, max_eps);
        }

        // Closed-form per-block stats: 2·bs checksum lines, each bs reference
        // adds, one checksum load, one p-max entry, the bound/ε evaluation
        // (note_ops: p²+2 fmul + 4 fcmp for y, then 4/8/2 for ε) and the
        // residual sub + abs (DESIGN.md §11).
        let (bs, p) = (bs as u64, self.pmax_a.p as u64);
        stats.threads += bs;
        stats.gmem_loads += 4 * p + 2 * bs * (bs + 1 + 2 * p);
        stats.gmem_stores += 2;
        stats.fadd += 2 * bs * (bs + 5);
        stats.fmul += 2 * bs * (p * p + 10);
        stats.fcmp += 2 * bs * 7;
        stats.smem_accesses += bs * bs;
        stats.fpu_ticks += 2 * bs * (bs + 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{encode_columns, encode_rows};
    use crate::pmax::PMaxTable;
    use aabft_gpu_sim::device::Device;
    use aabft_matrix::{gemm, Matrix};

    /// Builds a checked product for an error-free multiplication and returns
    /// the report masks.
    fn run_check(c: &Matrix<f64>, rows: AugmentedLayout, cols: AugmentedLayout, a_aug: &Matrix<f64>, b_aug: &Matrix<f64>, p: usize, omega: f64) -> (Vec<f64>, Vec<f64>) {
        let pm_a_table = PMaxTable::of_rows(a_aug, p);
        let pm_b_table = PMaxTable::of_cols(b_aug, p);
        let pm_a = PMaxBuffers::new(a_aug.rows(), 1, p);
        let pm_b = PMaxBuffers::new(b_aug.cols(), 1, p);
        for line in 0..a_aug.rows() {
            for s in 0..p {
                pm_a.final_vals.set(pm_a.final_index(line, s), pm_a_table.values(line)[s]);
                pm_a.final_idxs.set(pm_a.final_index(line, s), pm_a_table.indices(line)[s] as f64);
            }
        }
        for line in 0..b_aug.cols() {
            for s in 0..p {
                pm_b.final_vals.set(pm_b.final_index(line, s), pm_b_table.values(line)[s]);
                pm_b.final_idxs.set(pm_b.final_index(line, s), pm_b_table.indices(line)[s] as f64);
            }
        }
        let dc = DeviceBuffer::from_matrix(c);
        let report = DeviceBuffer::zeros(REPORT_WORDS * rows.blocks * cols.blocks);
        let diag = DeviceBuffer::zeros(DIAG_WORDS * rows.blocks * cols.blocks);
        let kernel = CheckKernel::new(
            &dc,
            &pm_a,
            &pm_b,
            &report,
            rows,
            cols,
            a_aug.cols(),
            omega,
            RoundingModel::binary64(),
        )
        .with_diag(&diag);
        Device::with_defaults().launch(kernel.grid(), &kernel);
        (report.to_vec(), diag.to_vec())
    }

    #[test]
    fn clean_product_produces_no_mismatches() {
        let bs = 4;
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i * 3 + j * 5) as f64 * 0.19).sin());
        let b: Matrix = Matrix::from_fn(8, 8, |i, j| ((i * 7 + j) as f64 * 0.23).cos());
        let acc = encode_columns(&a, bs, 1, 1);
        let brc = encode_rows(&b, bs, 1, 1);
        let c = gemm::multiply(&acc.matrix, &brc.matrix);
        let (report, diag) = run_check(&c, acc.rows, brc.cols, &acc.matrix, &brc.matrix, 2, 3.0);
        assert!(report.iter().all(|&m| m == 0.0), "false positives: {report:?}");
        // Every block's diagnostics are self-consistent: residual within the
        // tolerance, and a positive bound/tolerance for non-trivial data.
        assert_eq!(diag.len(), DIAG_WORDS * acc.rows.blocks * brc.cols.blocks);
        for block in diag.chunks_exact(DIAG_WORDS) {
            let (resid, y, eps) = (block[0], block[1], block[2]);
            assert!(resid <= eps, "clean block residual {resid} must be within eps {eps}");
            assert!(y > 0.0 && eps > 0.0);
        }
    }

    #[test]
    fn corrupted_element_is_flagged_at_intersection() {
        let bs = 4;
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.29).sin());
        let b: Matrix = Matrix::from_fn(8, 8, |i, j| ((2 * i + j) as f64 * 0.17).cos());
        let acc = encode_columns(&a, bs, 1, 1);
        let brc = encode_rows(&b, bs, 1, 1);
        let mut c = gemm::multiply(&acc.matrix, &brc.matrix);
        // Corrupt data element (5, 6): block (1, 1), local (1, 2).
        c[(5, 6)] += 1e-3;
        let (report, diag) = run_check(&c, acc.rows, brc.cols, &acc.matrix, &brc.matrix, 2, 3.0);
        // The corrupted block (1,1) of the 2x2 grid records a residual
        // above its tolerance.
        let d = 3 * DIAG_WORDS;
        assert!(diag[d] > diag[d + 2], "residual {} should exceed eps {}", diag[d], diag[d + 2]);
        // Block (1,1) is at slot (1*2+1)*2 = 6.
        let col_mask = report[6] as u64;
        let row_mask = report[7] as u64;
        assert_eq!(col_mask, 1 << 2, "column 6 is local column 2 of block 1");
        assert_eq!(row_mask, 1 << 1, "row 5 is local row 1 of block 1");
        // All other blocks are clean.
        for (i, &w) in report.iter().enumerate() {
            if i != 6 && i != 7 {
                assert_eq!(w, 0.0, "block word {i}");
            }
        }
    }

    #[test]
    fn sub_bound_error_is_tolerated() {
        let bs = 4;
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.29).sin());
        let b: Matrix = Matrix::from_fn(8, 8, |i, j| ((2 * i + j) as f64 * 0.17).cos());
        let acc = encode_columns(&a, bs, 1, 1);
        let brc = encode_rows(&b, bs, 1, 1);
        let mut c = gemm::multiply(&acc.matrix, &brc.matrix);
        // A perturbation far below the rounding bound must not trigger.
        c[(5, 6)] += 1e-18;
        let (report, _) = run_check(&c, acc.rows, brc.cols, &acc.matrix, &brc.matrix, 2, 3.0);
        assert!(report.iter().all(|&m| m == 0.0));
    }

    #[test]
    fn nan_corruption_is_flagged_not_silently_passed() {
        let bs = 4;
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.29).sin());
        let b: Matrix = Matrix::from_fn(8, 8, |i, j| ((2 * i + j) as f64 * 0.17).cos());
        let acc = encode_columns(&a, bs, 1, 1);
        let brc = encode_rows(&b, bs, 1, 1);
        let mut c = gemm::multiply(&acc.matrix, &brc.matrix);
        // Exponent-field flip producing NaN: force element (5, 6) to a value
        // with exponent 0x3ff (1.5), then flip bit 62 — the exponent becomes
        // 0x7ff with a non-zero mantissa. This is exactly the corruption an
        // `InjectionPlan { mask: 1 << 62, .. }` produces on such a value.
        c[(5, 6)] = f64::from_bits(1.5f64.to_bits() ^ (1 << 62));
        assert!(c[(5, 6)].is_nan());
        // Before the finiteness test, `abs(NaN) > eps` was false and the
        // corruption passed the check silently.
        let (report, _) = run_check(&c, acc.rows, brc.cols, &acc.matrix, &brc.matrix, 2, 3.0);
        let col_mask = report[6] as u64;
        let row_mask = report[7] as u64;
        assert_eq!(col_mask, 1 << 2, "NaN at column 6 must flag local column 2");
        assert_eq!(row_mask, 1 << 1, "NaN at row 5 must flag local row 1");
    }

    #[test]
    fn infinity_corruption_is_flagged() {
        let bs = 4;
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.29).sin());
        let b: Matrix = Matrix::from_fn(8, 8, |i, j| ((2 * i + j) as f64 * 0.17).cos());
        let acc = encode_columns(&a, bs, 1, 1);
        let brc = encode_rows(&b, bs, 1, 1);
        let mut c = gemm::multiply(&acc.matrix, &brc.matrix);
        // +Inf in a *checksum* element: reference - checksum = -Inf, which
        // compares false against every eps under `abs(diff) > eps`... except
        // that abs(-Inf) > eps is true; the dangerous case is Inf - Inf = NaN
        // when data and checksum both blow up. Cover plain Inf here too.
        let cs = acc.rows.checksum_line(0);
        c[(cs, 2)] = f64::INFINITY;
        let (report, _) = run_check(&c, acc.rows, brc.cols, &acc.matrix, &brc.matrix, 2, 3.0);
        assert_eq!(report[0] as u64, 1 << 2, "Inf checksum must flag its column");
    }

    #[test]
    fn corrupted_checksum_row_flags_column_only() {
        let bs = 4;
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.13).sin());
        let b: Matrix = Matrix::from_fn(8, 8, |i, j| ((i * 3 + j) as f64 * 0.07).cos());
        let acc = encode_columns(&a, bs, 1, 1);
        let brc = encode_rows(&b, bs, 1, 1);
        let mut c = gemm::multiply(&acc.matrix, &brc.matrix);
        // Corrupt a checksum-row element itself: column flagged, no data row.
        let cs = acc.rows.checksum_line(0);
        c[(cs, 2)] += 1.0;
        let (report, _) = run_check(&c, acc.rows, brc.cols, &acc.matrix, &brc.matrix, 2, 3.0);
        let col_mask = report[0] as u64;
        let row_mask = report[1] as u64;
        assert_eq!(col_mask, 1 << 2);
        assert_eq!(row_mask, 0);
    }
}
