//! Global p-max reduction kernel (pipeline step 3, Section V).
//!
//! The encoding kernels leave `blocks · p` candidates per line; this kernel
//! reduces them to the global top-`p` per line. The paper runs it
//! concurrently with the multiplication kernel; the performance model
//! accounts for it as a separate cheap launch.

use super::buffers::PMaxBuffers;
use aabft_gpu_sim::device::{BlockCtx, Kernel};
use aabft_gpu_sim::dim::{BlockIdx, GridDim};
use aabft_gpu_sim::stats::KernelStats;
use std::cell::RefCell;

/// Modelled utilization of the reduction (tiny, latency-bound kernel).
pub const REDUCE_UTILIZATION: f64 = 0.01;

thread_local! {
    /// Per-worker-thread candidate list, reused across blocks.
    static CAND: RefCell<Vec<(f64, usize)>> = const { RefCell::new(Vec::new()) };
}

/// Reduces per-block p-max partials to per-line global tables. One thread
/// block handles one line.
#[derive(Debug)]
pub struct ReducePMaxKernel<'a> {
    pmax: &'a PMaxBuffers,
}

impl<'a> ReducePMaxKernel<'a> {
    /// Creates the reduction over `pmax`.
    pub fn new(pmax: &'a PMaxBuffers) -> Self {
        ReducePMaxKernel { pmax }
    }

    /// Launch grid: one block per line.
    pub fn grid(&self) -> GridDim {
        GridDim::linear_1d(self.pmax.lines)
    }
}

impl Kernel for ReducePMaxKernel<'_> {
    fn name(&self) -> &'static str {
        "aabft_reduce_pmax"
    }
    fn phase(&self) -> &'static str {
        "pmax_reduce"
    }

    fn utilization(&self) -> f64 {
        REDUCE_UTILIZATION
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let line = ctx.block().x;
        let pm = self.pmax;
        ctx.declare_threads(pm.p);

        CAND.with(|cand| {
        let mut cand = cand.borrow_mut();
        cand.clear();
        for b in 0..pm.blocks {
            for s in 0..pm.p {
                let i = pm.partial_index(line, b, s);
                let v = ctx.load(&pm.partial_vals, i);
                let k = ctx.load(&pm.partial_idxs, i) as usize;
                cand.push((v, k));
            }
        }

        // p selection rounds (scan for max, then invalidate), first-found
        // wins ties — consistent with the encoding kernel and the host
        // reference (lower index wins because encode emits candidates in
        // ascending block order).
        for slot in 0..pm.p {
            let mut best = 0usize;
            for (j, &(v, _)) in cand.iter().enumerate() {
                let cur = cand[best].0;
                if ctx.max(cur, v) > cur {
                    best = j;
                }
            }
            let (v, k) = cand[best];
            ctx.store(&pm.final_vals, pm.final_index(line, slot), v);
            ctx.store(&pm.final_idxs, pm.final_index(line, slot), k as f64);
            cand[best].0 = -1.0; // below any absolute value
        }
        });
    }

    fn supports_clean_path(&self) -> bool {
        true
    }

    fn run_block_clean(&self, block: BlockIdx, stats: &mut KernelStats) {
        let line = block.x;
        let pm = self.pmax;

        CAND.with(|cand| {
            let mut cand = cand.borrow_mut();
            cand.clear();
            for b in 0..pm.blocks {
                for s in 0..pm.p {
                    let i = pm.partial_index(line, b, s);
                    cand.push((pm.partial_vals.get(i), pm.partial_idxs.get(i) as usize));
                }
            }
            for slot in 0..pm.p {
                let mut best = 0usize;
                for (j, &(v, _)) in cand.iter().enumerate() {
                    let cur = cand[best].0;
                    // Same max-scan predicate as the instrumented path
                    // (first-found wins ties).
                    if cur.max(v) > cur {
                        best = j;
                    }
                }
                let (v, k) = cand[best];
                pm.final_vals.set(pm.final_index(line, slot), v);
                pm.final_idxs.set(pm.final_index(line, slot), k as f64);
                cand[best].0 = -1.0;
            }
        });

        let (blocks, p) = (pm.blocks as u64, pm.p as u64);
        stats.threads += p;
        stats.gmem_loads += 2 * blocks * p;
        stats.gmem_stores += 2 * p;
        stats.fcmp += p * blocks * p;
        stats.fpu_ticks += p * blocks * p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmax::PMaxTable;
    use aabft_gpu_sim::device::Device;

    #[test]
    fn reduction_matches_host_merge() {
        let lines = 5;
        let blocks = 3;
        let p = 2;
        let pm = PMaxBuffers::new(lines, blocks, p);
        // Synthetic partials: values depend on (line, block, slot).
        let mut partials = vec![Vec::new(); lines];
        for (line, partial) in partials.iter_mut().enumerate() {
            for b in 0..blocks {
                for s in 0..p {
                    let v = ((line * 31 + b * 17 + s * 7) % 23) as f64;
                    let k = b * 10 + s;
                    pm.partial_vals.set(pm.partial_index(line, b, s), v);
                    pm.partial_idxs.set(pm.partial_index(line, b, s), k as f64);
                    partial.push((v, k));
                }
            }
        }
        let kernel = ReducePMaxKernel::new(&pm);
        Device::with_defaults().launch(kernel.grid(), &kernel);
        let device_table = pm.to_table();

        let host_table = PMaxTable::merge_partials(lines, p, &partials);
        for line in 0..lines {
            assert_eq!(device_table.values(line), host_table.values(line), "line {line}");
            // Indices may differ only on exact value ties; values above are
            // distinct per line by construction except possibly… assert both.
            assert_eq!(device_table.indices(line), host_table.indices(line), "line {line}");
        }
    }
}
