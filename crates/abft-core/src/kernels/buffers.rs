//! Device-buffer layouts shared by the A-ABFT kernels.

use crate::pmax::PMaxTable;
use aabft_gpu_sim::mem::DeviceBuffer;

/// Device-side storage for p-max search results: per-block partial
/// candidates (written by the encoding kernels) and the reduced per-line
/// tables (written by the reduction kernel).
///
/// Values and indices are stored as `f64` words (indices are exact for any
/// realistic matrix extent).
#[derive(Debug)]
pub struct PMaxBuffers {
    /// Partial values, laid out `[line][block][slot]`.
    pub partial_vals: DeviceBuffer,
    /// Partial indices (global coordinates), same layout.
    pub partial_idxs: DeviceBuffer,
    /// Reduced values, laid out `[line][slot]`.
    pub final_vals: DeviceBuffer,
    /// Reduced indices, same layout.
    pub final_idxs: DeviceBuffer,
    /// Number of lines (augmented rows of `A` / augmented columns of `B`).
    pub lines: usize,
    /// Number of `BS`-wide blocks along the searched axis.
    pub blocks: usize,
    /// Tracked values per line.
    pub p: usize,
}

impl PMaxBuffers {
    /// Allocates zeroed buffers for `lines` lines, `blocks` partial blocks
    /// and `p` tracked values.
    pub fn new(lines: usize, blocks: usize, p: usize) -> Self {
        assert!(lines > 0 && blocks > 0 && p > 0, "pmax buffer extents must be positive");
        PMaxBuffers {
            partial_vals: DeviceBuffer::zeros(lines * blocks * p),
            partial_idxs: DeviceBuffer::zeros(lines * blocks * p),
            final_vals: DeviceBuffer::zeros(lines * p),
            final_idxs: DeviceBuffer::zeros(lines * p),
            lines,
            blocks,
            p,
        }
    }

    /// Flat index of partial slot `(line, block, slot)`.
    #[inline]
    pub fn partial_index(&self, line: usize, block: usize, slot: usize) -> usize {
        debug_assert!(line < self.lines && block < self.blocks && slot < self.p);
        (line * self.blocks + block) * self.p + slot
    }

    /// Flat index of final slot `(line, slot)`.
    #[inline]
    pub fn final_index(&self, line: usize, slot: usize) -> usize {
        debug_assert!(line < self.lines && slot < self.p);
        line * self.p + slot
    }

    /// Downloads the reduced tables into a host [`PMaxTable`].
    pub fn to_table(&self) -> PMaxTable {
        let vals = self.final_vals.to_vec();
        let idxs = self.final_idxs.to_vec();
        let mut t = PMaxTable::empty(self.lines, self.p);
        for line in 0..self.lines {
            let pairs: Vec<(f64, usize)> = (0..self.p)
                .map(|s| {
                    let i = self.final_index(line, s);
                    (vals[i], idxs[i] as usize)
                })
                .collect();
            t.set_line(line, &pairs);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_disjoint() {
        let b = PMaxBuffers::new(3, 2, 2);
        let mut seen = std::collections::HashSet::new();
        for line in 0..3 {
            for block in 0..2 {
                for slot in 0..2 {
                    assert!(seen.insert(b.partial_index(line, block, slot)));
                }
            }
        }
        assert_eq!(seen.len(), 12);
        assert_eq!(b.partial_vals.len(), 12);
        assert_eq!(b.final_vals.len(), 6);
    }

    #[test]
    fn to_table_round_trip() {
        let b = PMaxBuffers::new(2, 1, 2);
        b.final_vals.set(b.final_index(1, 0), 9.0);
        b.final_idxs.set(b.final_index(1, 0), 5.0);
        let t = b.to_table();
        assert_eq!(t.values(1)[0], 9.0);
        assert_eq!(t.indices(1)[0], 5);
    }
}
