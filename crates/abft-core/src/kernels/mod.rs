//! The A-ABFT GPU kernels (paper Section V): checksum encoding fused with
//! p-max search (Algorithm 1), the global p-max reduction, and the
//! bound-determination + checking kernel (Algorithm 2). The multiplication
//! kernel itself (Algorithm 3) is the generic blocked GEMM from
//! `aabft-gpu-sim`.

pub mod buffers;
pub mod check;
pub mod encode;
pub mod reduce;
