//! Runtime error classification (paper Section VI-C).
//!
//! A-ABFT distinguishes three classes of value errors in a result element:
//! *inevitable rounding errors*, *tolerable compute errors* in the magnitude
//! of the rounding error, and *intolerable critical compute errors* beyond
//! it. The boundary is drawn with the probabilistic model evaluated on the
//! affected element's actual operands: an error is critical if it exceeds
//! `ω·σ` of the element's modelled rounding error.

use aabft_numerics::{Moments, RoundingModel};

/// The three error classes of Section VI-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Within the expected rounding noise (`≤ σ`): not an error at all.
    InevitableRounding,
    /// Beyond plain rounding noise but within `ω·σ`: differs from the
    /// correct result insignificantly.
    Tolerable,
    /// Beyond `ω·σ`: must be detected (and corrected).
    Critical,
}

/// Classifies the absolute deviation `error_abs` of a result element whose
/// modelled rounding-error moments are `moments`, at confidence `ω`.
///
/// # Examples
///
/// ```
/// use aabft_core::classify::{classify, ErrorClass};
/// use aabft_numerics::Moments;
///
/// let m = Moments { mean: 0.0, variance: 1e-28 }; // sigma = 1e-14
/// assert_eq!(classify(5e-15, &m, 3.0), ErrorClass::InevitableRounding);
/// assert_eq!(classify(2e-14, &m, 3.0), ErrorClass::Tolerable);
/// assert_eq!(classify(1e-10, &m, 3.0), ErrorClass::Critical);
/// ```
pub fn classify(error_abs: f64, moments: &Moments, omega: f64) -> ErrorClass {
    debug_assert!(error_abs >= 0.0, "classify expects an absolute error");
    let sigma = moments.std_dev();
    if error_abs <= moments.mean.abs().max(sigma) {
        ErrorClass::InevitableRounding
    } else if error_abs <= moments.confidence_radius(omega) {
        ErrorClass::Tolerable
    } else {
        ErrorClass::Critical
    }
}

/// Classifies the deviation of one result element given the operand row and
/// column that produced it: evaluates the model on the element's actual data
/// (the baseline used in the paper's fault-injection evaluation).
pub fn classify_element(
    clean: f64,
    observed: f64,
    a_row: &[f64],
    b_col: &[f64],
    model: &RoundingModel,
    omega: f64,
) -> ErrorClass {
    let moments = model.inner_product_moments(a_row, b_col);
    classify((observed - clean).abs(), &moments, omega)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_numerics::RoundingModel;

    #[test]
    fn zero_error_is_inevitable() {
        let m = Moments { mean: 0.0, variance: 1e-30 };
        assert_eq!(classify(0.0, &m, 3.0), ErrorClass::InevitableRounding);
    }

    #[test]
    fn classes_are_ordered_by_magnitude() {
        let m = Moments { mean: 0.0, variance: 1.0 };
        assert_eq!(classify(0.5, &m, 3.0), ErrorClass::InevitableRounding);
        assert_eq!(classify(2.0, &m, 3.0), ErrorClass::Tolerable);
        assert_eq!(classify(3.5, &m, 3.0), ErrorClass::Critical);
    }

    #[test]
    fn element_classification_detects_injected_magnitude() {
        let n = 128;
        let a: Vec<f64> = (0..n).map(|i| ((i * 13) as f64 * 0.1).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7) as f64 * 0.1).cos()).collect();
        let clean: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let model = RoundingModel::binary64();
        // A 1e-3 hit on an O(1) element is clearly critical.
        assert_eq!(
            classify_element(clean, clean + 1e-3, &a, &b, &model, 3.0),
            ErrorClass::Critical
        );
        // The element's own value is within rounding of itself.
        assert_eq!(
            classify_element(clean, clean, &a, &b, &model, 3.0),
            ErrorClass::InevitableRounding
        );
    }
}
