//! Tracking of the `p` largest absolute values per row/column
//! (paper Section IV-E and the second phase of Algorithm 1).
//!
//! The autonomous upper bound `y_{i,j}` for a checksum element's rounding
//! error needs, for the row of `A` and the column of `B` entering the dot
//! product, the `p` elements of largest absolute value *and their indices*.
//! The encoding kernel finds them per `BS`-wide block; a reduction merges
//! block partials into per-line global tables. This module provides the
//! table type, host reference computations, and the merge used by the
//! reduction kernel.

use aabft_matrix::Matrix;

/// Per-line table of the `p` largest absolute values and their indices,
/// sorted by descending value.
///
/// # Examples
///
/// ```
/// use aabft_core::pmax::PMaxTable;
/// use aabft_matrix::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, -5.0, 3.0][..]]);
/// let t = PMaxTable::of_rows(&m, 2);
/// assert_eq!(t.values(0), &[5.0, 3.0]);
/// assert_eq!(t.indices(0), &[1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PMaxTable {
    p: usize,
    lines: usize,
    values: Vec<f64>,
    indices: Vec<usize>,
}

impl PMaxTable {
    /// Builds the table over the rows of `m` (for the `A` operand).
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero or exceeds the row length.
    pub fn of_rows(m: &Matrix<f64>, p: usize) -> Self {
        assert!(p > 0 && p <= m.cols(), "p must be in 1..={}, got {p}", m.cols());
        let mut t = PMaxTable::empty(m.rows(), p);
        for i in 0..m.rows() {
            t.fill_line(i, m.row(i).iter().copied());
        }
        t
    }

    /// Builds the table over the columns of `m` (for the `B` operand).
    pub fn of_cols(m: &Matrix<f64>, p: usize) -> Self {
        assert!(p > 0 && p <= m.rows(), "p must be in 1..={}, got {p}", m.rows());
        let mut t = PMaxTable::empty(m.cols(), p);
        for j in 0..m.cols() {
            t.fill_line(j, m.col(j).into_iter());
        }
        t
    }

    /// Creates an all-zero table (`lines × p`).
    pub fn empty(lines: usize, p: usize) -> Self {
        assert!(p > 0 && lines > 0, "table extents must be positive");
        PMaxTable { p, lines, values: vec![0.0; lines * p], indices: vec![0; lines * p] }
    }

    fn fill_line(&mut self, line: usize, iter: impl Iterator<Item = f64>) {
        let mut pairs: Vec<(f64, usize)> =
            iter.enumerate().map(|(k, v)| (v.abs(), k)).collect();
        // Stable sort, descending by value: exact-value ties keep scan
        // order (lower index first), matching the kernel's
        // first-found-wins behaviour.
        pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite values"));
        for (slot, &(v, k)) in pairs.iter().take(self.p).enumerate() {
            self.values[line * self.p + slot] = v;
            self.indices[line * self.p + slot] = k;
        }
    }

    /// Number of tracked values per line.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of lines (rows of `A` / columns of `B`).
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Absolute values of line `i`, descending.
    pub fn values(&self, line: usize) -> &[f64] {
        assert!(line < self.lines, "line {line} out of {}", self.lines);
        &self.values[line * self.p..(line + 1) * self.p]
    }

    /// Indices matching [`PMaxTable::values`].
    pub fn indices(&self, line: usize) -> &[usize] {
        assert!(line < self.lines, "line {line} out of {}", self.lines);
        &self.indices[line * self.p..(line + 1) * self.p]
    }

    /// Overwrites line `i` with given (value, index) pairs (used when
    /// decoding the reduction kernel's output).
    ///
    /// # Panics
    ///
    /// Panics if `pairs.len() != p`.
    pub fn set_line(&mut self, line: usize, pairs: &[(f64, usize)]) {
        assert_eq!(pairs.len(), self.p, "need exactly p pairs");
        for (slot, &(v, k)) in pairs.iter().enumerate() {
            self.values[line * self.p + slot] = v;
            self.indices[line * self.p + slot] = k;
        }
    }

    /// Merges per-block partial candidate lists into the final per-line
    /// top-p (the reduction step of the pipeline, Section V step 3).
    ///
    /// `partials` holds, for each line, the concatenated `(value, index)`
    /// candidates from every block.
    pub fn merge_partials(lines: usize, p: usize, partials: &[Vec<(f64, usize)>]) -> Self {
        assert_eq!(partials.len(), lines, "need one candidate list per line");
        let mut t = PMaxTable::empty(lines, p);
        for (line, cands) in partials.iter().enumerate() {
            let mut sorted = cands.clone();
            // Stable sort: ties keep candidate (block) order, matching the
            // reduction kernel's scan.
            sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite values"));
            sorted.truncate(p);
            while sorted.len() < p {
                sorted.push((0.0, 0));
            }
            t.set_line(line, &sorted);
        }
        t
    }
}

/// The autonomous upper bound `y` for one checksum element's inner product
/// (paper Section IV-E): the maximum of the three cases over the row's and
/// column's top-`p` tables.
///
/// * indices intersect → largest `|a_s · b_s|` over the intersection;
/// * otherwise → `max(|a|)·min(|b|)` and `max(|b|)·min(|a|)` bound the
///   products of a top element with anything outside the other side's
///   top-`p`.
///
/// All three cases are combined with `max`, which yields a rigorous upper
/// bound on every `|a_k · b_k|` (Algorithm 2's `min·min` fallback is the
/// paper's cheaper — but not strictly safe — variant; we follow the
/// normative Section IV-E text).
///
/// # Panics
///
/// Panics if the tables have different `p`.
pub fn upper_bound_y(
    a_values: &[f64],
    a_indices: &[usize],
    b_values: &[f64],
    b_indices: &[usize],
) -> f64 {
    assert_eq!(a_values.len(), a_indices.len());
    assert_eq!(b_values.len(), b_indices.len());
    assert_eq!(a_values.len(), b_values.len(), "tables must share p");
    let p = a_values.len();

    // Case 1: intersection products.
    let mut y: f64 = 0.0;
    for i in 0..p {
        for j in 0..p {
            if a_indices[i] == b_indices[j] && (a_values[i] != 0.0 || b_values[j] != 0.0) {
                y = y.max(a_values[i] * b_values[j]);
            }
        }
    }
    // Cases 2 and 3: top-of-one-side times the other side's p-th value.
    // values are sorted descending, so [0] is the max and [p-1] the min.
    let max_a = a_values[0];
    let min_a = a_values[p - 1];
    let max_b = b_values[0];
    let min_b = b_values[p - 1];
    y = y.max(max_a * min_b).max(max_b * min_a);
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_cols_tables() {
        let m = Matrix::from_rows(&[
            &[1.0, -7.0, 3.0][..],
            &[-2.0, 0.5, 9.0][..],
        ]);
        let rows = PMaxTable::of_rows(&m, 2);
        assert_eq!(rows.values(0), &[7.0, 3.0]);
        assert_eq!(rows.indices(0), &[1, 2]);
        assert_eq!(rows.values(1), &[9.0, 2.0]);
        assert_eq!(rows.indices(1), &[2, 0]);

        let cols = PMaxTable::of_cols(&m, 2);
        assert_eq!(cols.values(1), &[7.0, 0.5]);
        assert_eq!(cols.indices(1), &[0, 1]);
    }

    #[test]
    fn ties_break_by_lower_index() {
        let m = Matrix::from_rows(&[&[2.0, -2.0, 2.0][..]]);
        let t = PMaxTable::of_rows(&m, 2);
        assert_eq!(t.indices(0), &[0, 1]);
    }

    #[test]
    fn merge_partials_matches_direct() {
        let m: Matrix = Matrix::from_fn(4, 12, |i, j| ((i * 31 + j * 17) as f64 * 0.37).sin());
        let direct = PMaxTable::of_rows(&m, 3);
        // Split columns into 3 blocks of 4, take per-block top-3 candidates.
        let mut partials = vec![Vec::new(); 4];
        for (i, partial) in partials.iter_mut().enumerate() {
            for b in 0..3 {
                let mut cand: Vec<(f64, usize)> =
                    (b * 4..b * 4 + 4).map(|j| (m[(i, j)].abs(), j)).collect();
                cand.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
                partial.extend(cand.into_iter().take(3));
            }
        }
        let merged = PMaxTable::merge_partials(4, 3, &partials);
        assert_eq!(merged, direct);
    }

    #[test]
    fn upper_bound_with_intersection() {
        // Shared index 5 holds the two largest values.
        let y = upper_bound_y(&[4.0, 2.0], &[5, 1], &[3.0, 1.0], &[5, 2]);
        assert_eq!(y, 12.0);
    }

    #[test]
    fn upper_bound_without_intersection() {
        // max_a * min_b = 4*1 = 4; max_b * min_a = 3*2 = 6.
        let y = upper_bound_y(&[4.0, 2.0], &[0, 1], &[3.0, 1.0], &[2, 3]);
        assert_eq!(y, 6.0);
    }

    #[test]
    fn upper_bound_is_rigorous_on_random_data() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..200 {
            let n = 64;
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            for p in [1, 2, 4, 8] {
                let am = Matrix::from_vec(1, n, a.clone());
                let bm = Matrix::from_vec(n, 1, b.clone());
                let ta = PMaxTable::of_rows(&am, p);
                let tb = PMaxTable::of_cols(&bm, p);
                let y = upper_bound_y(ta.values(0), ta.indices(0), tb.values(0), tb.indices(0));
                let true_max =
                    a.iter().zip(&b).map(|(x, v)| (x * v).abs()).fold(0.0f64, f64::max);
                assert!(
                    y >= true_max - 1e-15,
                    "p={p}: y={y} < true max {true_max}"
                );
            }
        }
    }

    #[test]
    fn larger_p_gives_tighter_or_equal_bound() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        let n = 128;
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let am = Matrix::from_vec(1, n, a);
        let bm = Matrix::from_vec(n, 1, b);
        let mut last = f64::INFINITY;
        for p in [1, 2, 4, 8, 16] {
            let ta = PMaxTable::of_rows(&am, p);
            let tb = PMaxTable::of_cols(&bm, p);
            let y = upper_bound_y(ta.values(0), ta.indices(0), tb.values(0), tb.indices(0));
            assert!(y <= last + 1e-15, "p={p}: {y} > {last}");
            last = y;
        }
    }

    #[test]
    #[should_panic(expected = "p must be")]
    fn p_zero_panics() {
        PMaxTable::of_rows(&Matrix::<f64>::zeros(1, 3), 0);
    }
}
