//! The server: per-replica dispatchers pulling costed, shape-sharded
//! waves from the admission plane through the batch engine, with retry,
//! escalation and circuit breaking around every wave.
//!
//! One OS thread per replica. Each iteration a dispatcher:
//!
//! 1. asks its breaker for admission (full wave / probe / quarantined) —
//!    quarantine transitions flip the replica's liveness in the sharded
//!    queue, so its shard affinity redistributes immediately;
//! 2. asks [`ShardedQueue::take_wave`] for the shard it should serve
//!    under the configured [`PlacePolicy`] (sweeping deadline-expired
//!    entries, which it resolves as [`ServeOutcome::DeadlineMissed`]);
//! 3. ticks the escalation ladder and applies the resulting protection
//!    floor to every request in the wave;
//! 4. runs the wave through [`BatchGemm::execute_verified`] on its own
//!    device (plan cache, buffer pools and pack pools shared across
//!    replicas through the one engine), charging the wave's calibrated
//!    cost to its inflight account for the duration and feeding the
//!    measured wall latency back into the placement plane's
//!    per-(replica, shape-class) calibration EWMA;
//! 5. resolves each result: completions resolve their ticket,
//!    `Unrecovered` results retry with exponential backoff until
//!    [`ServeConfig::max_retries`], then resolve as
//!    [`ServeOutcome::Unrecovered`] and feed the breaker.
//!
//! Shutdown closes the queue; dispatchers drain the remainder policy-free
//! (so every accepted ticket resolves) and exit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aabft_core::batch::{BatchGemm, GemmRequest, ProtectionPolicy};
use aabft_core::error::AbftError;
use aabft_core::AAbftGemm;
use aabft_gpu_sim::device::Device;
use aabft_obs::Obs;

use crate::breaker::{Admission, BreakerConfig, CircuitBreaker};
use crate::ladder::{EscalationLadder, LadderConfig};
use crate::placement::{PlacePolicy, Placement, ReplicaSpec};
use crate::queue::{Pending, ShardedQueue, Taken};
use crate::request::{Completed, DeadlineClass, Rejected, ServeOutcome, ServeRequest, Slot, Ticket};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bounded submission-queue capacity; submissions beyond it are shed
    /// with [`Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one dispatch wave.
    pub max_wave: usize,
    /// Placement policy mapping ready waves onto replicas.
    pub policy: PlacePolicy,
    /// Whether the costed policies price waves with measured-cost
    /// feedback (`modelled × calibration ratio`); `false` restores the
    /// PR-9 static analytic-model pricing. Measurements are recorded
    /// either way, so the model-error telemetry stays comparable.
    pub feedback: bool,
    /// Deadline for [`DeadlineClass::Interactive`] requests.
    pub interactive_deadline: Duration,
    /// Deadline for [`DeadlineClass::Batch`] requests.
    pub batch_deadline: Duration,
    /// Whole-request retries after an `Unrecovered` result.
    pub max_retries: u32,
    /// Base retry backoff; doubles per retry.
    pub retry_backoff: Duration,
    /// Dispatcher park time when the queue has nothing dispatchable.
    pub park: Duration,
    /// Escalation-ladder thresholds.
    pub ladder: LadderConfig,
    /// Per-replica circuit-breaker thresholds.
    pub breaker: BreakerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            max_wave: 8,
            policy: PlacePolicy::default(),
            feedback: true,
            interactive_deadline: Duration::from_millis(20),
            batch_deadline: Duration::from_millis(500),
            max_retries: 2,
            retry_backoff: Duration::from_micros(500),
            park: Duration::from_millis(1),
            ladder: LadderConfig::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// Typed startup rejection: the configuration cannot run a correct
/// server, so [`Server::start`] refuses it synchronously instead of
/// letting a dispatcher thread panic later.
#[derive(Debug)]
pub enum ServeError {
    /// A [`ServeConfig`] field is out of range.
    Config {
        /// Offending field.
        field: &'static str,
        /// The rejected value.
        got: String,
        /// What the field needs to be.
        need: &'static str,
    },
    /// A replica's device configuration failed validation.
    Replica {
        /// Replica index in the spec list.
        index: usize,
        /// The device-config error.
        source: aabft_gpu_sim::error::ConfigError,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config { field, got, need } => {
                write!(f, "invalid ServeConfig: {field} = {got} (need {need})")
            }
            ServeError::Replica { index, source } => {
                write!(f, "invalid replica spec {index}: {source}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Replica { source, .. } => Some(source),
            ServeError::Config { .. } => None,
        }
    }
}

fn validate(cfg: &ServeConfig, specs: &[ReplicaSpec]) -> Result<(), ServeError> {
    if cfg.queue_capacity == 0 {
        return Err(ServeError::Config {
            field: "queue_capacity",
            got: "0".into(),
            need: "at least 1 queued request",
        });
    }
    if cfg.max_wave == 0 {
        return Err(ServeError::Config {
            field: "max_wave",
            got: "0".into(),
            need: "at least 1 request per wave",
        });
    }
    if specs.is_empty() {
        return Err(ServeError::Config {
            field: "replicas",
            got: "[]".into(),
            need: "at least one replica spec",
        });
    }
    for (index, spec) in specs.iter().enumerate() {
        spec.device.validate().map_err(|source| ServeError::Replica { index, source })?;
    }
    Ok(())
}

/// One replica: its device, breaker, and busy-time account.
struct Replica {
    spec: ReplicaSpec,
    device: Device,
    breaker: CircuitBreaker,
    /// Cumulative wall time spent executing waves, microseconds.
    busy_us: AtomicU64,
    /// Waves dispatched (stolen or not).
    waves: AtomicU64,
    /// Waves this replica stole.
    steals: AtomicU64,
}

struct Shared {
    cfg: ServeConfig,
    queue: ShardedQueue,
    placement: Arc<Placement>,
    ladder: EscalationLadder,
    engine: BatchGemm,
    replicas: Vec<Replica>,
    obs: Arc<Obs>,
    accepted: AtomicU64,
    resolved: AtomicU64,
    /// Calibration counts already mirrored into the obs counters, so
    /// `placement.cal.{updates,cold_hits}` advance by deltas.
    cal_updates_exported: AtomicU64,
    cal_cold_exported: AtomicU64,
}

impl Shared {
    fn resolve(&self, p: Pending, outcome: ServeOutcome) {
        self.obs.metrics.counter_inc(&format!("serve.{}", outcome.label()));
        self.resolved.fetch_add(1, Ordering::Relaxed);
        p.slot.resolve(outcome);
    }

    fn resolve_expired(&self, expired: Vec<Pending>) {
        let now = Instant::now();
        for p in expired {
            let waited = now.duration_since(p.submitted);
            self.obs.metrics.observe("serve.queue_wait_ms", waited.as_secs_f64() * 1e3);
            let outcome = ServeOutcome::DeadlineMissed { class: p.class, waited };
            self.resolve(p, outcome);
        }
    }

    /// Refreshes the placement-balance gauges: total and per-shard queue
    /// depth, per-shard observed queueing delay, per-replica inflight
    /// calibrated cost, and the calibration-plane counters.
    fn refresh_gauges(&self) {
        let metrics = &self.obs.metrics;
        metrics.gauge_set("serve.queue_depth", self.queue.len() as f64);
        let depths = self.queue.shard_depths();
        metrics.gauge_set("serve.shards", depths.len() as f64);
        for d in depths {
            let (m, n, q) = d.class;
            metrics.gauge_set(&format!("serve.shard.{m}x{n}x{q}.depth"), d.depth as f64);
        }
        for (class, delay) in self.queue.queue_delays() {
            let (m, n, q) = class;
            metrics.gauge_set(&format!("serve.shard.{m}x{n}x{q}.queue_delay_us"), delay * 1e6);
        }
        for (idx, cost) in self.queue.inflight().iter().enumerate() {
            metrics.gauge_set(&format!("serve.replica.{idx}.inflight_cost"), *cost);
        }
        export_counter_delta(
            metrics,
            "placement.cal.updates",
            self.placement.cal_updates(),
            &self.cal_updates_exported,
        );
        export_counter_delta(
            metrics,
            "placement.cal.cold_hits",
            self.placement.cal_cold_hits(),
            &self.cal_cold_exported,
        );
    }
}

/// Advances a monotonic obs counter to `total` by adding the delta since
/// the last export (`exported` remembers what has been mirrored).
fn export_counter_delta(
    metrics: &aabft_obs::Metrics,
    name: &str,
    total: u64,
    exported: &AtomicU64,
) {
    let mut prev = exported.load(Ordering::Relaxed);
    while total > prev {
        match exported.compare_exchange_weak(prev, total, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {
                metrics.counter_add(name, total - prev);
                return;
            }
            Err(seen) => prev = seen,
        }
    }
}

/// The ABFT service front end over a set of heterogeneous replicas.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("replicas", &self.shared.replicas.len())
            .field("policy", &self.shared.cfg.policy)
            .field("queue_len", &self.shared.queue.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Validates `cfg` and the replica specs, builds one device per
    /// spec, and starts one dispatcher thread per replica. All devices
    /// are pointed at `obs`, so their metrics (including
    /// `abft.fault_rate_ewma`, the ladder's input) aggregate in one
    /// place.
    pub fn start(
        cfg: ServeConfig,
        gemm: AAbftGemm,
        replicas: Vec<ReplicaSpec>,
        obs: Arc<Obs>,
    ) -> Result<Server, ServeError> {
        validate(&cfg, &replicas)?;
        let replicas: Vec<Replica> = replicas
            .into_iter()
            .map(|spec| {
                let mut device = spec.build_device();
                device.set_obs(obs.clone());
                Replica {
                    spec,
                    device,
                    breaker: CircuitBreaker::new(cfg.breaker),
                    busy_us: AtomicU64::new(0),
                    waves: AtomicU64::new(0),
                    steals: AtomicU64::new(0),
                }
            })
            .collect();
        let placement = Arc::new(Placement::with_feedback(
            replicas.iter().map(|r| r.spec.clone()).collect(),
            cfg.feedback,
        ));
        let shared = Arc::new(Shared {
            cfg,
            queue: ShardedQueue::new(cfg.queue_capacity, cfg.policy, placement.clone()),
            placement,
            ladder: EscalationLadder::new(cfg.ladder),
            engine: BatchGemm::new(gemm).with_streams(cfg.max_wave),
            replicas,
            obs,
            accepted: AtomicU64::new(0),
            resolved: AtomicU64::new(0),
            cal_updates_exported: AtomicU64::new(0),
            cal_cold_exported: AtomicU64::new(0),
        });
        let workers = (0..shared.replicas.len())
            .map(|idx| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("aabft-serve-{idx}"))
                    .spawn(move || dispatch_loop(&shared, idx))
                    .expect("spawning dispatcher")
            })
            .collect();
        Ok(Server { shared, workers })
    }

    /// Admits `req` or sheds it. An `Ok` ticket is guaranteed to resolve
    /// to exactly one [`ServeOutcome`]; an `Err` means the request was
    /// never enqueued.
    pub fn submit(&self, req: ServeRequest) -> Result<Ticket, Rejected> {
        let metrics = &self.shared.obs.metrics;
        metrics.counter_inc("serve.submitted");
        if req.a.cols() != req.b.rows() {
            metrics.counter_inc("serve.rejected_shape");
            return Err(Rejected::ShapeMismatch(AbftError::ShapeMismatch {
                op: "serve",
                left: req.a.shape(),
                right: req.b.shape(),
            }));
        }
        let now = Instant::now();
        let deadline = match req.class {
            DeadlineClass::Interactive => Some(now + self.shared.cfg.interactive_deadline),
            DeadlineClass::Batch => Some(now + self.shared.cfg.batch_deadline),
            DeadlineClass::Unbounded => None,
        };
        let slot = Arc::new(Slot::default());
        let pending = Pending {
            a: req.a,
            b: req.b,
            policy: req.policy,
            class: req.class,
            slot: slot.clone(),
            submitted: now,
            deadline,
            not_before: None,
            retries: 0,
            home: 0, // stamped by the queue at admission
        };
        match self.shared.queue.submit(pending) {
            Ok(()) => {
                metrics.counter_inc("serve.accepted");
                self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                self.shared.refresh_gauges();
                Ok(Ticket { slot })
            }
            Err(rej) => {
                metrics.counter_inc("serve.shed");
                Err(rej)
            }
        }
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.shared.replicas.len()
    }

    /// Replica `idx`'s device — the chaos generator's fault-arming
    /// surface.
    pub fn device(&self, idx: usize) -> &Device {
        &self.shared.replicas[idx].device
    }

    /// Replica `idx`'s spec (as costed by the placement plane).
    pub fn replica_spec(&self, idx: usize) -> &ReplicaSpec {
        &self.shared.replicas[idx].spec
    }

    /// Cumulative wall time replica `idx` has spent executing waves.
    pub fn replica_busy(&self, idx: usize) -> Duration {
        Duration::from_micros(self.shared.replicas[idx].busy_us.load(Ordering::Relaxed))
    }

    /// Waves replica `idx` has dispatched.
    pub fn replica_waves(&self, idx: usize) -> u64 {
        self.shared.replicas[idx].waves.load(Ordering::Relaxed)
    }

    /// Waves replica `idx` stole from shards affined elsewhere.
    pub fn replica_steals(&self, idx: usize) -> u64 {
        self.shared.replicas[idx].steals.load(Ordering::Relaxed)
    }

    /// Waves stolen across all replicas.
    pub fn steals(&self) -> u64 {
        self.shared.queue.steals()
    }

    /// The placement plane — calibration snapshots
    /// ([`Placement::calibration`]) and counter surface.
    pub fn placement(&self) -> Arc<Placement> {
        self.shared.placement.clone()
    }

    /// Replica `idx`'s breaker trip count.
    pub fn breaker_trips(&self, idx: usize) -> u32 {
        self.shared.replicas[idx].breaker.trips()
    }

    /// Replica `idx`'s current breaker state.
    pub fn breaker_state(&self, idx: usize) -> crate::breaker::BreakerState {
        self.shared.replicas[idx].breaker.state()
    }

    /// The escalation ladder (shared across dispatchers).
    pub fn ladder(&self) -> &EscalationLadder {
        &self.shared.ladder
    }

    /// Requests accepted and requests resolved so far. After
    /// [`Server::shutdown`] these are equal: every accepted ticket has
    /// its terminal outcome.
    pub fn accounting(&self) -> (u64, u64) {
        (
            self.shared.accepted.load(Ordering::Relaxed),
            self.shared.resolved.load(Ordering::Relaxed),
        )
    }

    /// Current queue depth (across all shards).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Closes admission, drains every queued request to its terminal
    /// outcome, and joins the dispatchers.
    ///
    /// # Panics
    ///
    /// Propagates a dispatcher panic (none are expected; a panicked
    /// dispatcher would strand tickets).
    pub fn shutdown(self) {
        self.shared.queue.close();
        for w in self.workers {
            w.join().expect("dispatcher thread panicked");
        }
        let (accepted, resolved) = (
            self.shared.accepted.load(Ordering::Relaxed),
            self.shared.resolved.load(Ordering::Relaxed),
        );
        debug_assert_eq!(accepted, resolved, "every accepted request must resolve");
    }
}

fn dispatch_loop(shared: &Shared, idx: usize) {
    let replica = &shared.replicas[idx];
    let metrics = &shared.obs.metrics;
    // Tracks the last liveness communicated to the queue so quarantine
    // transitions redistribute shard affinity exactly once.
    let mut alive = true;
    loop {
        let max = match replica.breaker.admit() {
            Admission::Full => shared.cfg.max_wave,
            Admission::Probe => 1,
            Admission::Quarantined => {
                metrics.gauge_set(&format!("serve.replica.{idx}.quarantined"), 1.0);
                if alive {
                    alive = false;
                    shared.queue.set_alive(idx, false);
                }
                if shared.queue.is_drained() {
                    return;
                }
                std::thread::sleep(shared.cfg.park);
                continue;
            }
        };
        metrics.gauge_set(&format!("serve.replica.{idx}.quarantined"), 0.0);
        if !alive {
            alive = true;
            shared.queue.set_alive(idx, true);
        }
        match shared.queue.take_wave(idx, max, shared.cfg.park) {
            Taken::Drained => return,
            Taken::Empty { expired } => {
                shared.resolve_expired(expired);
            }
            Taken::Wave { batch, expired, cost, modelled, stolen } => {
                shared.resolve_expired(expired);
                run_wave(shared, idx, batch, cost, modelled, stolen);
            }
        }
    }
}

/// Cumulative scheduled CPU time of the calling thread, in seconds,
/// from Linux CFS accounting (`/proc/thread-self/schedstat`, first
/// field, nanoseconds). `None` off Linux or when the kernel doesn't
/// expose schedstats; callers fall back to wall time.
fn thread_runtime_s() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    let ns: u64 = stat.split_whitespace().next()?.parse().ok()?;
    Some(ns as f64 / 1e9)
}

fn run_wave(
    shared: &Shared,
    idx: usize,
    batch: Vec<Pending>,
    cost: f64,
    modelled: f64,
    stolen: bool,
) {
    let replica = &shared.replicas[idx];
    let metrics = &shared.obs.metrics;
    let level = shared.ladder.observe(metrics);
    let (m, n, q) = batch[0].shape_key();
    let _wave = aabft_obs::span!(
        shared.obs,
        "serve",
        "wave",
        "replica" => idx as u64,
        "requests" => batch.len() as u64,
        "level" => format!("{level:?}"),
        "stolen" => u64::from(stolen),
        "m" => m as u64,
        "n" => n as u64,
        "q" => q as u64,
    );
    metrics.counter_inc("serve.waves");
    metrics.counter_inc(&format!("serve.replica.{idx}.waves"));
    replica.waves.fetch_add(1, Ordering::Relaxed);
    if stolen {
        metrics.counter_inc("serve.steals");
        metrics.counter_inc(&format!("serve.replica.{idx}.steals"));
        replica.steals.fetch_add(1, Ordering::Relaxed);
    }
    metrics.observe("serve.wave_size", batch.len() as f64);
    metrics.gauge_set(&format!("serve.replica.{idx}.busy"), 1.0);

    let effective: Vec<ProtectionPolicy> =
        batch.iter().map(|p| shared.ladder.apply(p.policy, level)).collect();
    let requests: Vec<GemmRequest> = batch
        .iter()
        .zip(&effective)
        .map(|(p, &policy)| GemmRequest::new(p.a.clone(), p.b.clone()).with_policy(policy))
        .collect();
    let cpu_started = thread_runtime_s();
    let started = Instant::now();
    let results = shared.engine.execute_verified(&replica.device, requests);
    let busy = started.elapsed();
    // Close the cost loop: this wave's measured latency against its
    // pure-model price becomes one calibration sample for (replica,
    // shape class), exported as a ratio gauge. The sample wants the
    // wave's *device occupancy*, and on a host-simulated device that is
    // the dispatcher thread's CPU time, not its wall: when several
    // dispatchers share cores, wall charges this replica for time the
    // scheduler gave its peers, inflating every concurrent measurement
    // alike and compressing the very ratios calibration exists to
    // expose. Wall is the fallback where the kernel doesn't account
    // per-thread runtime.
    let cpu_busy = match (cpu_started, thread_runtime_s()) {
        (Some(before), Some(after)) if after > before => after - before,
        _ => busy.as_secs_f64(),
    };
    // The host also serializes work the simulated device would spread
    // across its SMs, so device seconds are host seconds over SM width
    // — without that normalization every replica measures alike per
    // engine and calibration would erase the fleet's legitimate
    // SM-count differences along with the spec lies.
    let device_s = cpu_busy / replica.device.config().num_sms.max(1) as f64;
    let ratio = shared.placement.record_measured(idx, (m, n, q), device_s, modelled);
    let (cm, cn, cq) = crate::placement::shape_class((m, n, q));
    metrics.gauge_set(&format!("serve.replica.{idx}.cal.{cm}x{cn}x{cq}"), ratio);
    replica.busy_us.fetch_add(busy.as_micros() as u64, Ordering::Relaxed);
    metrics.gauge_set(
        &format!("serve.replica.{idx}.busy_us"),
        replica.busy_us.load(Ordering::Relaxed) as f64,
    );
    metrics.gauge_set(&format!("serve.replica.{idx}.busy"), 0.0);
    shared.queue.finish(idx, cost);
    // Tick the ladder on this wave's own verdicts too: the dispatch-time
    // observation reads the fault EWMA from *before* the wave executed,
    // so a storm whose last faulty wave sees no successor dispatch would
    // decay away unobserved and never raise the floor.
    shared.ladder.observe(metrics);
    shared.refresh_gauges();
    // Bound memory under sustained traffic: the launch log is per-device
    // telemetry that nobody drains in service mode.
    let _ = replica.device.take_log();

    let now = Instant::now();
    for (pending, result) in batch.into_iter().zip(results) {
        match result {
            Ok(healed) => {
                replica.breaker.record_success();
                let latency = now.duration_since(pending.submitted);
                let late = pending.deadline.is_some_and(|d| now > d);
                if late {
                    metrics.counter_inc("serve.late_completions");
                }
                metrics.observe("serve.latency_ms", latency.as_secs_f64() * 1e3);
                let policy = shared.ladder.apply(pending.policy, level);
                let outcome = ServeOutcome::Completed(Completed {
                    product: healed.outcome.product,
                    policy,
                    attempts: healed.attempts,
                    retries: pending.retries,
                    late,
                    latency,
                    replica: idx,
                });
                shared.resolve(pending, outcome);
            }
            Err(err) => {
                let attempts = match err {
                    AbftError::Unrecovered { attempts, .. } => attempts,
                    // Shapes are validated at admission; anything else
                    // here is an engine invariant violation.
                    _ => {
                        metrics.counter_inc("serve.internal_errors");
                        0
                    }
                };
                let tripped = replica.breaker.record_unrecovered();
                if tripped {
                    metrics.counter_inc("serve.breaker_trips");
                }
                let mut pending = pending;
                if pending.retries < shared.cfg.max_retries {
                    pending.retries += 1;
                    let backoff = shared.cfg.retry_backoff * 2u32.pow(pending.retries - 1);
                    pending.not_before = Some(now + backoff);
                    metrics.counter_inc("serve.retries");
                    shared.queue.requeue(pending);
                } else {
                    let outcome =
                        ServeOutcome::Unrecovered { attempts, retries: pending.retries };
                    shared.resolve(pending, outcome);
                }
            }
        }
    }
}
