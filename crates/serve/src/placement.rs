//! Replica specifications and the PerfModel-costed placement plane.
//!
//! PR 8's server cloned identical devices; here replicas become
//! heterogeneous first-class citizens: each [`ReplicaSpec`] carries its
//! own [`DeviceConfig`] (SM count, clean-path engine) and a
//! [`PerfModel`] scaled to that configuration, so the dispatcher can
//! *cost* a ready wave against every replica with
//! [`PerfModel::gemm_wave_cost`] (which routes through
//! `PerfModel::schedule`/`stream_makespan`) and route heavy shapes to
//! the replicas that finish them soonest.
//!
//! Three [`PlacePolicy`] variants ride the same sharded queue:
//!
//! * `RoundRobin` — blind per-request rotation across replicas, the
//!   PR-8-equivalent baseline;
//! * `Costed` — a replica takes a shard only when it is the modelled
//!   argmin (inflight cost + wave cost) among live replicas;
//! * `CostedStealing` — costed, plus an otherwise-idle replica drains
//!   the heaviest *eligible* shard (one whose backlog outlasts the
//!   best replica's modelled drain, or whose observed queueing delay
//!   exceeds the thief's own calibrated cost) instead of parking.
//!
//! The model is analytic and therefore wrong in interesting ways — SM
//! counts drift, a replica's spec can outright lie about its clean
//! engine. So [`Placement`] closes the loop the way the paper's bound
//! determination does: *online*. Every completed wave feeds its measured
//! wall latency into a per-(replica, shape-class) EWMA of
//! measured/modelled ([`Placement::record_measured`]), and the costed
//! policies price waves with the blended cost `modelled × ratio`
//! ([`Placement::calibrated_wave_costs`]); cold classes seed from the
//! nearest calibrated class by modelled cost ([`Placement::ratio`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use aabft_gpu_sim::device::{Device, DeviceConfig};
use aabft_gpu_sim::pack::CleanEngine;
use aabft_gpu_sim::perf::PerfModel;

/// Measured clean-engine throughput ratio (DESIGN §12 / `BENCH_gemm.json`):
/// the packed microkernel sustains ~3.4× the scalar body on identical
/// inputs, so a scalar replica is modelled at `1/3.4` of the packed rates.
const SCALAR_ENGINE_SLOWDOWN: f64 = 3.4;

/// Baseline SM count the [`PerfModel::k20c`] rates describe.
const BASELINE_SMS: f64 = 13.0;

/// One replica's hardware description: device shape plus the performance
/// model placement costs it with.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// Device configuration (SM count, clean-path engine).
    pub device: DeviceConfig,
    /// Roofline model scaled to this replica's size and engine.
    pub perf: PerfModel,
    /// Engine the *model* was scaled for, when it differs from the
    /// engine the device actually runs — a deliberately mis-modelled
    /// replica (fleet-drift fixture; see [`ReplicaSpec::mis_modelled`]).
    pub claimed: Option<CleanEngine>,
}

impl Default for ReplicaSpec {
    fn default() -> Self {
        ReplicaSpec::from_device(DeviceConfig::default())
    }
}

impl ReplicaSpec {
    /// Derives the spec from a device configuration: the K20c roofline
    /// scaled by the SM-count ratio and, for the scalar clean engine, by
    /// the measured engine slowdown.
    pub fn from_device(device: DeviceConfig) -> Self {
        let sms_scale = device.num_sms as f64 / BASELINE_SMS;
        let engine_scale = engine_scale(device.clean_engine.unwrap_or(CleanEngine::Packed));
        ReplicaSpec {
            device,
            perf: PerfModel::k20c().scaled(sms_scale * engine_scale),
            claimed: None,
        }
    }

    /// A deliberately mis-modelled spec: the device *runs* whatever
    /// `device.clean_engine` says, but the placement model is scaled as
    /// if it ran `claimed`. This is the fixture for model drift — e.g. a
    /// scalar replica whose spec claims packed throughput is priced ~3.4×
    /// too cheap, and only measured-cost feedback can correct for it.
    pub fn mis_modelled(device: DeviceConfig, claimed: CleanEngine) -> Self {
        let sms_scale = device.num_sms as f64 / BASELINE_SMS;
        let actual = device.clean_engine.unwrap_or(CleanEngine::Packed);
        ReplicaSpec {
            device,
            perf: PerfModel::k20c().scaled(sms_scale * engine_scale(claimed)),
            claimed: (claimed != actual).then_some(claimed),
        }
    }

    /// `count` identical default replicas (the homogeneous PR-8 shape).
    pub fn defaults(count: usize) -> Vec<ReplicaSpec> {
        (0..count).map(|_| ReplicaSpec::default()).collect()
    }

    /// Builds this replica's device.
    pub fn build_device(&self) -> Device {
        Device::new(self.device)
    }

    /// Short label for logs and reports, e.g. `26sm:packed`; a
    /// mis-modelled replica shows both engines, e.g. `6sm:scalar@packed`
    /// (runs scalar, modelled as packed).
    pub fn label(&self) -> String {
        let engine = engine_name(self.device.clean_engine.unwrap_or(CleanEngine::Packed));
        match self.claimed {
            Some(claimed) => {
                format!("{}sm:{engine}@{}", self.device.num_sms, engine_name(claimed))
            }
            None => format!("{}sm:{engine}", self.device.num_sms),
        }
    }
}

fn engine_scale(engine: CleanEngine) -> f64 {
    match engine {
        CleanEngine::Packed => 1.0,
        CleanEngine::Scalar => 1.0 / SCALAR_ENGINE_SLOWDOWN,
    }
}

fn engine_name(engine: CleanEngine) -> &'static str {
    match engine {
        CleanEngine::Packed => "packed",
        CleanEngine::Scalar => "scalar",
    }
}

impl std::str::FromStr for ReplicaSpec {
    type Err = String;

    /// Parses the CLI spelling `SMS[:ENGINE][@CLAIMED]`, e.g. `13`,
    /// `26:packed`, `4:scalar` — or the mis-modelled form
    /// `6:scalar@packed` (device runs scalar, model priced as packed).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (spec, claimed) = match s.split_once('@') {
            Some((spec, claimed)) => (spec, Some(claimed)),
            None => (s, None),
        };
        let (sms, engine) = match spec.split_once(':') {
            Some((sms, engine)) => (sms, Some(engine)),
            None => (spec, None),
        };
        let sms: usize = sms
            .trim()
            .parse()
            .map_err(|e| format!("replica spec {s:?}: SM count: {e}"))?;
        let mut builder = DeviceConfig::builder().num_sms(sms);
        if let Some(engine) = engine {
            builder = builder.clean_engine(
                engine.trim().parse::<CleanEngine>().map_err(|e| format!("replica spec {s:?}: {e}"))?,
            );
        }
        let device = builder.build().map_err(|e| format!("replica spec {s:?}: {e}"))?;
        match claimed {
            None => Ok(ReplicaSpec::from_device(device)),
            Some(claimed) => {
                let claimed = claimed
                    .trim()
                    .parse::<CleanEngine>()
                    .map_err(|e| format!("replica spec {s:?}: claimed engine: {e}"))?;
                Ok(ReplicaSpec::mis_modelled(device, claimed))
            }
        }
    }
}

/// How the dispatcher maps ready waves onto replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacePolicy {
    /// Blind per-request rotation (the PR-8-equivalent baseline).
    RoundRobin,
    /// PerfModel-costed placement: a replica takes a shard only when it
    /// is the modelled best fit among live replicas.
    Costed,
    /// Costed placement plus work stealing for idle replicas. The
    /// default.
    #[default]
    CostedStealing,
}

impl PlacePolicy {
    /// Whether idle replicas may steal ineligible shards.
    pub fn steals(self) -> bool {
        matches!(self, PlacePolicy::CostedStealing)
    }

    /// Whether placement is modelled-cost-driven (vs blind rotation).
    pub fn costed(self) -> bool {
        !matches!(self, PlacePolicy::RoundRobin)
    }

    /// Short label for reports and JSON records.
    pub fn label(self) -> &'static str {
        match self {
            PlacePolicy::RoundRobin => "round-robin",
            PlacePolicy::Costed => "costed",
            PlacePolicy::CostedStealing => "costed-stealing",
        }
    }
}

impl std::str::FromStr for PlacePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "round-robin" | "rr" => Ok(PlacePolicy::RoundRobin),
            "costed" => Ok(PlacePolicy::Costed),
            "costed-stealing" | "stealing" => Ok(PlacePolicy::CostedStealing),
            other => Err(format!(
                "unknown placement policy {other:?} (round-robin|costed|costed-stealing)"
            )),
        }
    }
}

/// A shape's calibration (and shard) class: each dimension rounded up to
/// the next power of two, floored at 8. Calibration ratios are kept per
/// class, not per exact shape: classes pool enough samples to converge
/// quickly, while model error still varies too much across size decades
/// for a single global ratio (launch-overhead-bound 64³ and
/// compute-bound 1024³ mis-model *differently*).
pub fn shape_class(key: (usize, usize, usize)) -> (usize, usize, usize) {
    fn round(d: usize) -> usize {
        d.max(8).next_power_of_two()
    }
    (round(key.0), round(key.1), round(key.2))
}

/// EWMA smoothing for measured/modelled calibration samples. 0.25 means
/// a step change in a replica's real throughput is ~95% absorbed within
/// a dozen waves of that class, while a single noisy wall-clock sample
/// moves the ratio by a quarter of its error at most.
const CAL_ALPHA: f64 = 0.25;

/// Memo key for one costed wave: shape class `(m, n, q)` plus batch size.
type WaveKey = (usize, usize, usize, usize);

/// One replica's calibration map: shape class → EWMA of measured/modelled.
type CalMap = HashMap<(usize, usize, usize), f64>;

/// The cost oracle: per-replica modelled wave costs, memoised per shape
/// class (costs are deterministic in `(shape, count, replica)`), blended
/// online with a per-(replica, shape-class) EWMA of measured/modelled
/// latency so placement corrects model error as it serves.
#[derive(Debug)]
pub struct Placement {
    specs: Vec<ReplicaSpec>,
    cache: Mutex<HashMap<WaveKey, Vec<f64>>>,
    /// Whether calibrated (blended) costs are in effect; `false` prices
    /// on the pure analytic model (the PR-9 static behaviour).
    feedback: bool,
    /// Per-replica map: shape class → EWMA of measured/modelled.
    cal: Mutex<Vec<CalMap>>,
    cal_updates: AtomicU64,
    cal_cold_hits: AtomicU64,
}

impl Placement {
    /// A placement plane over `specs` with measured-cost feedback on.
    pub fn new(specs: Vec<ReplicaSpec>) -> Self {
        Placement::with_feedback(specs, true)
    }

    /// A placement plane with feedback explicitly on or off. Off means
    /// pure analytic-model pricing: measurements are still recorded (the
    /// telemetry stays comparable) but never blended into costs.
    pub fn with_feedback(specs: Vec<ReplicaSpec>, feedback: bool) -> Self {
        let replicas = specs.len();
        Placement {
            specs,
            cache: Mutex::new(HashMap::new()),
            feedback,
            cal: Mutex::new(vec![HashMap::new(); replicas]),
            cal_updates: AtomicU64::new(0),
            cal_cold_hits: AtomicU64::new(0),
        }
    }

    /// The replica specs, in replica-index order.
    pub fn specs(&self) -> &[ReplicaSpec] {
        &self.specs
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.specs.len()
    }

    /// Whether calibrated costs are in effect.
    pub fn feedback(&self) -> bool {
        self.feedback
    }

    /// Whether `replica` has absorbed at least one measured sample (any
    /// shape class). A cold replica's prices are pure spec — and a spec
    /// can lie — so the steal rule refuses to let a cold replica trust
    /// its own price against another replica's backlog while feedback
    /// is on.
    pub fn is_warm(&self, replica: usize) -> bool {
        !self.cal.lock().expect("placement calibration lock")[replica].is_empty()
    }

    /// Modelled cost (seconds) of a `count`-request wave of shape
    /// `(m, n, q)` on each replica, memoised. Index = replica.
    pub fn wave_costs(&self, key: (usize, usize, usize), count: usize) -> Vec<f64> {
        let count = count.max(1);
        let cache_key = (key.0, key.1, key.2, count);
        let mut cache = self.cache.lock().expect("placement cache lock");
        cache
            .entry(cache_key)
            .or_insert_with(|| {
                if count == 1 {
                    // Single requests go through the named calibration
                    // handle — the exact denominator of the ratio EWMAs.
                    return self
                        .specs
                        .iter()
                        .map(|spec| spec.perf.gemm_request_cost(key, spec.device.num_sms))
                        .collect();
                }
                let shapes = vec![key; count];
                self.specs
                    .iter()
                    .map(|spec| spec.perf.gemm_wave_cost(&shapes, spec.device.num_sms))
                    .collect()
            })
            .clone()
    }

    /// Modelled cost of one request of shape `key` on `replica`.
    pub fn request_cost(&self, key: (usize, usize, usize), replica: usize) -> f64 {
        self.wave_costs(key, 1)[replica]
    }

    /// Feeds one completed wave's measured wall latency back into the
    /// calibration store: updates the EWMA of measured/modelled for
    /// `replica` on `key`'s shape class and returns the new ratio
    /// (gauge-export surface). Degenerate samples (non-positive or
    /// non-finite on either side) are dropped.
    pub fn record_measured(
        &self,
        replica: usize,
        key: (usize, usize, usize),
        measured_s: f64,
        modelled_s: f64,
    ) -> f64 {
        let class = shape_class(key);
        if !(measured_s.is_finite() && modelled_s.is_finite())
            || measured_s <= 0.0
            || modelled_s <= 0.0
        {
            return self.ratio(replica, key);
        }
        let sample = measured_s / modelled_s;
        let mut cal = self.cal.lock().expect("calibration lock");
        let ratio = match cal[replica].get(&class) {
            Some(&prev) => prev + CAL_ALPHA * (sample - prev),
            // First sample of a class adopts the measurement outright:
            // there is no prior worth defending against one real sample.
            None => sample,
        };
        cal[replica].insert(class, ratio);
        drop(cal);
        self.cal_updates.fetch_add(1, Ordering::Relaxed);
        ratio
    }

    /// Calibration ratio for `replica` on `key`'s shape class.
    ///
    /// A cold class (never measured on this replica) seeds from the
    /// *nearest calibrated class by modelled cost* — nearest in
    /// log-space, so a cold 512³ borrows from 256³ rather than 64³ —
    /// because model error correlates with where a shape sits on the
    /// roofline, not with the shape's exact dims. A *fully cold*
    /// replica borrows the fleet's median view of the class instead:
    /// much of the measured/modelled ratio is host-wide model error
    /// shared by every replica (a slow build, an oversubscribed box),
    /// and pricing an unmeasured replica at a literal 1.0 next to warm
    /// replicas carrying that shared error makes cold replicas look
    /// artificially cheap — the argmin would dogpile whichever replica
    /// has never been measured. Only if the whole fleet is cold does
    /// the ratio fall back to 1.0 (pure model). Cold lookups count in
    /// [`Placement::cal_cold_hits`].
    pub fn ratio(&self, replica: usize, key: (usize, usize, usize)) -> f64 {
        let class = shape_class(key);
        let cal = self.cal.lock().expect("calibration lock");
        if let Some(&r) = cal[replica].get(&class) {
            return r;
        }
        self.cal_cold_hits.fetch_add(1, Ordering::Relaxed);
        if let Some(r) = self.nearest_ratio(&cal[replica], replica, class) {
            return r;
        }
        let mut borrowed: Vec<f64> = cal
            .iter()
            .enumerate()
            .filter(|&(other, _)| other != replica)
            .filter_map(|(other, map)| self.nearest_ratio(map, other, class))
            .collect();
        if borrowed.is_empty() {
            return 1.0;
        }
        borrowed.sort_unstable_by(|a, b| a.total_cmp(b));
        borrowed[borrowed.len() / 2]
    }

    /// Nearest-class ratio within one replica's calibration map, or
    /// `None` if the map is empty. Distance is log-space modelled cost
    /// on that replica.
    fn nearest_ratio(
        &self,
        map: &CalMap,
        replica: usize,
        class: (usize, usize, usize),
    ) -> Option<f64> {
        if map.is_empty() {
            return None;
        }
        if let Some(&r) = map.get(&class) {
            return Some(r);
        }
        let target = self.wave_costs(class, 1)[replica].max(f64::MIN_POSITIVE);
        let mut nearest = 1.0;
        let mut best = f64::INFINITY;
        for (&other, &ratio) in map {
            let cost = self.wave_costs(other, 1)[replica].max(f64::MIN_POSITIVE);
            let dist = (cost / target).ln().abs();
            if dist < best {
                best = dist;
                nearest = ratio;
            }
        }
        Some(nearest)
    }

    /// Blended per-replica cost of a `count`-request wave: modelled ×
    /// calibration ratio (pure modelled when feedback is off). Index =
    /// replica. This is the price the dispatcher's argmin runs on.
    pub fn calibrated_wave_costs(&self, key: (usize, usize, usize), count: usize) -> Vec<f64> {
        let modelled = self.wave_costs(key, count);
        if !self.feedback {
            return modelled;
        }
        modelled
            .iter()
            .enumerate()
            .map(|(replica, &cost)| cost * self.ratio(replica, key))
            .collect()
    }

    /// Host-wall seconds per calibrated device-second on `replica`: its
    /// SM width. The simulator's host executes a wave's per-SM work
    /// serially, so a wave priced at `c` calibrated device-seconds
    /// occupies the replica's dispatcher for about `c × sms` host
    /// seconds. The adaptive steal rule multiplies a thief's price by
    /// this before comparing it against *observed* queueing delay,
    /// which is measured in host wall seconds — without the conversion
    /// every observed delay dwarfs every device-unit price and idle
    /// replicas steal indiscriminately.
    pub fn host_scale(&self, replica: usize) -> f64 {
        self.specs[replica].device.num_sms.max(1) as f64
    }

    /// Blended cost of one request of shape `key` on `replica`.
    pub fn calibrated_request_cost(&self, key: (usize, usize, usize), replica: usize) -> f64 {
        self.calibrated_wave_costs(key, 1)[replica]
    }

    /// Snapshot of `replica`'s calibrated classes, `(class, ratio)`,
    /// sorted by class (gauge and report surface).
    pub fn calibration(&self, replica: usize) -> Vec<((usize, usize, usize), f64)> {
        let cal = self.cal.lock().expect("calibration lock");
        let mut out: Vec<_> = cal[replica].iter().map(|(&k, &v)| (k, v)).collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Calibration samples absorbed so far (`placement.cal.updates`).
    pub fn cal_updates(&self) -> u64 {
        self.cal_updates.load(Ordering::Relaxed)
    }

    /// Cold-class fallbacks taken so far (`placement.cal.cold_hits`).
    pub fn cal_cold_hits(&self) -> u64 {
        self.cal_cold_hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_and_scaling() {
        let fast: ReplicaSpec = "26:packed".parse().expect("valid spec");
        let slow: ReplicaSpec = "4:scalar".parse().expect("valid spec");
        let default: ReplicaSpec = "13".parse().expect("valid spec");
        assert_eq!(fast.device.num_sms, 26);
        assert_eq!(slow.device.clean_engine, Some(CleanEngine::Scalar));
        assert_eq!(default.device.num_sms, 13);
        assert_eq!(default.device.clean_engine, None);
        assert!(fast.perf.peak_dp_flops > default.perf.peak_dp_flops);
        assert!(slow.perf.peak_dp_flops < default.perf.peak_dp_flops);
        assert_eq!(fast.label(), "26sm:packed");

        assert!("0:packed".parse::<ReplicaSpec>().is_err(), "zero SMs rejected");
        assert!("13:vector".parse::<ReplicaSpec>().is_err(), "unknown engine rejected");
        assert!("x".parse::<ReplicaSpec>().is_err());
    }

    #[test]
    fn policy_parsing() {
        assert_eq!("rr".parse::<PlacePolicy>().unwrap(), PlacePolicy::RoundRobin);
        assert_eq!("costed".parse::<PlacePolicy>().unwrap(), PlacePolicy::Costed);
        assert_eq!(
            "costed-stealing".parse::<PlacePolicy>().unwrap(),
            PlacePolicy::CostedStealing
        );
        assert!("random".parse::<PlacePolicy>().is_err());
        assert!(PlacePolicy::CostedStealing.steals());
        assert!(!PlacePolicy::Costed.steals());
        assert!(!PlacePolicy::RoundRobin.costed());
    }

    #[test]
    fn fast_replica_wins_heavy_shapes() {
        let placement = Placement::new(vec![
            "26:packed".parse().unwrap(),
            "4:scalar".parse().unwrap(),
        ]);
        let heavy = placement.wave_costs((512, 512, 512), 4);
        assert!(
            heavy[0] < heavy[1] / 4.0,
            "26sm packed must dominate 4sm scalar on 512³: {heavy:?}"
        );
        // Memoisation returns identical vectors.
        assert_eq!(placement.wave_costs((512, 512, 512), 4), heavy);
        assert!(placement.request_cost((64, 64, 64), 0) > 0.0);
    }

    #[test]
    fn mis_modelled_spec_prices_as_claimed_engine() {
        let liar: ReplicaSpec = "6:scalar@packed".parse().expect("valid spec");
        let honest: ReplicaSpec = "6:scalar".parse().expect("valid spec");
        let packed: ReplicaSpec = "6:packed".parse().expect("valid spec");
        assert_eq!(liar.device.clean_engine, Some(CleanEngine::Scalar), "runs scalar");
        assert_eq!(liar.claimed, Some(CleanEngine::Packed));
        assert_eq!(liar.perf.peak_dp_flops, packed.perf.peak_dp_flops, "priced as packed");
        assert!(liar.perf.peak_dp_flops > honest.perf.peak_dp_flops);
        assert_eq!(liar.label(), "6sm:scalar@packed");
        // Claiming what you already are is not a lie.
        let same: ReplicaSpec = "6:packed@packed".parse().expect("valid spec");
        assert_eq!(same.claimed, None);
        assert_eq!(same.label(), "6sm:packed");
        assert!("6:scalar@vector".parse::<ReplicaSpec>().is_err());
    }

    #[test]
    fn calibration_converges_and_blends_costs() {
        let placement = Placement::new(vec!["13".parse().unwrap()]);
        let key = (256, 256, 256);
        let modelled = placement.request_cost(key, 0);
        // Cold: ratio 1.0, calibrated == modelled.
        assert_eq!(placement.ratio(0, key), 1.0);
        assert_eq!(placement.calibrated_request_cost(key, 0), modelled);
        // The replica is consistently 3× slower than modelled.
        for _ in 0..24 {
            placement.record_measured(0, key, 3.0 * modelled, modelled);
        }
        let ratio = placement.ratio(0, key);
        assert!((ratio - 3.0).abs() < 1e-9, "EWMA of a constant converges: {ratio}");
        let blended = placement.calibrated_request_cost(key, 0);
        assert!((blended - 3.0 * modelled).abs() < 1e-12 * modelled.abs().max(1.0));
        assert_eq!(placement.cal_updates(), 24);
        // Degenerate samples are dropped, not absorbed.
        placement.record_measured(0, key, 0.0, modelled);
        placement.record_measured(0, key, f64::NAN, modelled);
        assert_eq!(placement.cal_updates(), 24);
        assert!((placement.ratio(0, key) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn feedback_off_prices_on_pure_model() {
        let placement = Placement::with_feedback(vec!["13".parse().unwrap()], false);
        let key = (128, 128, 128);
        let modelled = placement.request_cost(key, 0);
        placement.record_measured(0, key, 5.0 * modelled, modelled);
        assert!(!placement.feedback());
        assert_eq!(placement.calibrated_request_cost(key, 0), modelled);
        // The measurement is still recorded for telemetry.
        assert_eq!(placement.cal_updates(), 1);
    }

    #[test]
    fn cold_class_seeds_from_nearest_calibrated_class() {
        let placement = Placement::new(vec!["13".parse().unwrap()]);
        let small = (64, 64, 64);
        let big = (512, 512, 512);
        placement.record_measured(0, small, 2.0, 1.0); // ratio 2.0 at 64³
        placement.record_measured(0, big, 8.0, 2.0); // ratio 4.0 at 512³
        // 1024³ is cold; its modelled cost is far nearer 512³'s than
        // 64³'s in log-space, so it borrows the heavy class's ratio.
        let cold = placement.ratio(0, (1024, 1024, 1024));
        assert!((cold - 4.0).abs() < 1e-9, "borrows nearest class: {cold}");
        assert!(placement.cal_cold_hits() >= 1);
        // Cold lookups never panic, whatever the shape.
        for &shape in &[(1, 1, 1), (8, 8, 8), (4096, 16, 1), (1024, 1024, 1024)] {
            let r = placement.ratio(0, shape);
            assert!(r.is_finite() && r > 0.0);
            assert!(placement.calibrated_request_cost(shape, 0).is_finite());
        }
    }

    #[test]
    fn fully_cold_replica_borrows_the_fleet_median_ratio() {
        let placement = Placement::new(vec![
            "13".parse().unwrap(),
            "13".parse().unwrap(),
            "13".parse().unwrap(),
        ]);
        let key = (256, 256, 256);
        let modelled = placement.request_cost(key, 0);
        placement.record_measured(0, key, 30.0 * modelled, modelled);
        placement.record_measured(1, key, 10.0 * modelled, modelled);
        // Replica 2 was never measured: it inherits the fleet's view of
        // the class (the shared host-wide error), not a literal 1.0
        // that would make it the argmin by default.
        let cold = placement.ratio(2, key);
        assert!((10.0..=30.0).contains(&cold), "borrows a fleet ratio: {cold}");
        assert!(placement.cal_cold_hits() >= 1);
        // Whole fleet cold: pure model.
        let fresh = Placement::new(vec!["13".parse().unwrap(), "13".parse().unwrap()]);
        assert_eq!(fresh.ratio(1, key), 1.0);
    }

    #[test]
    fn shape_class_rounds_up_with_floor() {
        assert_eq!(shape_class((48, 48, 48)), (64, 64, 64));
        assert_eq!(shape_class((3, 5, 9)), (8, 8, 16));
        assert_eq!(shape_class((64, 64, 64)), (64, 64, 64));
    }
}
