//! Replica specifications and the PerfModel-costed placement plane.
//!
//! PR 8's server cloned identical devices; here replicas become
//! heterogeneous first-class citizens: each [`ReplicaSpec`] carries its
//! own [`DeviceConfig`] (SM count, clean-path engine) and a
//! [`PerfModel`] scaled to that configuration, so the dispatcher can
//! *cost* a ready wave against every replica with
//! [`PerfModel::gemm_wave_cost`] (which routes through
//! `PerfModel::schedule`/`stream_makespan`) and route heavy shapes to
//! the replicas that finish them soonest.
//!
//! Three [`PlacePolicy`] variants ride the same sharded queue:
//!
//! * `RoundRobin` — blind per-request rotation across replicas, the
//!   PR-8-equivalent baseline;
//! * `Costed` — a replica takes a shard only when it is the modelled
//!   argmin (inflight cost + wave cost) among live replicas;
//! * `CostedStealing` — costed, plus an otherwise-idle replica drains
//!   the heaviest *eligible* shard (one whose backlog outlasts the
//!   best replica's modelled drain) instead of parking.

use std::collections::HashMap;
use std::sync::Mutex;

use aabft_gpu_sim::device::{Device, DeviceConfig};
use aabft_gpu_sim::pack::CleanEngine;
use aabft_gpu_sim::perf::PerfModel;

/// Measured clean-engine throughput ratio (DESIGN §12 / `BENCH_gemm.json`):
/// the packed microkernel sustains ~3.4× the scalar body on identical
/// inputs, so a scalar replica is modelled at `1/3.4` of the packed rates.
const SCALAR_ENGINE_SLOWDOWN: f64 = 3.4;

/// Baseline SM count the [`PerfModel::k20c`] rates describe.
const BASELINE_SMS: f64 = 13.0;

/// One replica's hardware description: device shape plus the performance
/// model placement costs it with.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// Device configuration (SM count, clean-path engine).
    pub device: DeviceConfig,
    /// Roofline model scaled to this replica's size and engine.
    pub perf: PerfModel,
}

impl Default for ReplicaSpec {
    fn default() -> Self {
        ReplicaSpec::from_device(DeviceConfig::default())
    }
}

impl ReplicaSpec {
    /// Derives the spec from a device configuration: the K20c roofline
    /// scaled by the SM-count ratio and, for the scalar clean engine, by
    /// the measured engine slowdown.
    pub fn from_device(device: DeviceConfig) -> Self {
        let sms_scale = device.num_sms as f64 / BASELINE_SMS;
        let engine_scale = match device.clean_engine.unwrap_or(CleanEngine::Packed) {
            CleanEngine::Packed => 1.0,
            CleanEngine::Scalar => 1.0 / SCALAR_ENGINE_SLOWDOWN,
        };
        ReplicaSpec {
            device,
            perf: PerfModel::k20c().scaled(sms_scale * engine_scale),
        }
    }

    /// `count` identical default replicas (the homogeneous PR-8 shape).
    pub fn defaults(count: usize) -> Vec<ReplicaSpec> {
        (0..count).map(|_| ReplicaSpec::default()).collect()
    }

    /// Builds this replica's device.
    pub fn build_device(&self) -> Device {
        Device::new(self.device)
    }

    /// Short label for logs and reports, e.g. `26sm:packed`.
    pub fn label(&self) -> String {
        let engine = match self.device.clean_engine.unwrap_or(CleanEngine::Packed) {
            CleanEngine::Packed => "packed",
            CleanEngine::Scalar => "scalar",
        };
        format!("{}sm:{engine}", self.device.num_sms)
    }
}

impl std::str::FromStr for ReplicaSpec {
    type Err = String;

    /// Parses the CLI spelling `SMS[:ENGINE]`, e.g. `13`, `26:packed`,
    /// `4:scalar`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sms, engine) = match s.split_once(':') {
            Some((sms, engine)) => (sms, Some(engine)),
            None => (s, None),
        };
        let sms: usize = sms
            .trim()
            .parse()
            .map_err(|e| format!("replica spec {s:?}: SM count: {e}"))?;
        let mut builder = DeviceConfig::builder().num_sms(sms);
        if let Some(engine) = engine {
            builder = builder.clean_engine(
                engine.trim().parse::<CleanEngine>().map_err(|e| format!("replica spec {s:?}: {e}"))?,
            );
        }
        let device = builder.build().map_err(|e| format!("replica spec {s:?}: {e}"))?;
        Ok(ReplicaSpec::from_device(device))
    }
}

/// How the dispatcher maps ready waves onto replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacePolicy {
    /// Blind per-request rotation (the PR-8-equivalent baseline).
    RoundRobin,
    /// PerfModel-costed placement: a replica takes a shard only when it
    /// is the modelled best fit among live replicas.
    Costed,
    /// Costed placement plus work stealing for idle replicas. The
    /// default.
    #[default]
    CostedStealing,
}

impl PlacePolicy {
    /// Whether idle replicas may steal ineligible shards.
    pub fn steals(self) -> bool {
        matches!(self, PlacePolicy::CostedStealing)
    }

    /// Whether placement is modelled-cost-driven (vs blind rotation).
    pub fn costed(self) -> bool {
        !matches!(self, PlacePolicy::RoundRobin)
    }

    /// Short label for reports and JSON records.
    pub fn label(self) -> &'static str {
        match self {
            PlacePolicy::RoundRobin => "round-robin",
            PlacePolicy::Costed => "costed",
            PlacePolicy::CostedStealing => "costed-stealing",
        }
    }
}

impl std::str::FromStr for PlacePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "round-robin" | "rr" => Ok(PlacePolicy::RoundRobin),
            "costed" => Ok(PlacePolicy::Costed),
            "costed-stealing" | "stealing" => Ok(PlacePolicy::CostedStealing),
            other => Err(format!(
                "unknown placement policy {other:?} (round-robin|costed|costed-stealing)"
            )),
        }
    }
}

/// Memo key for one costed wave: shape class `(m, n, q)` plus batch size.
type WaveKey = (usize, usize, usize, usize);

/// The cost oracle: per-replica modelled wave costs, memoised per shape
/// class (costs are deterministic in `(shape, count, replica)`).
#[derive(Debug)]
pub struct Placement {
    specs: Vec<ReplicaSpec>,
    cache: Mutex<HashMap<WaveKey, Vec<f64>>>,
}

impl Placement {
    /// A placement plane over `specs`.
    pub fn new(specs: Vec<ReplicaSpec>) -> Self {
        Placement { specs, cache: Mutex::new(HashMap::new()) }
    }

    /// The replica specs, in replica-index order.
    pub fn specs(&self) -> &[ReplicaSpec] {
        &self.specs
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.specs.len()
    }

    /// Modelled cost (seconds) of a `count`-request wave of shape
    /// `(m, n, q)` on each replica, memoised. Index = replica.
    pub fn wave_costs(&self, key: (usize, usize, usize), count: usize) -> Vec<f64> {
        let count = count.max(1);
        let cache_key = (key.0, key.1, key.2, count);
        let mut cache = self.cache.lock().expect("placement cache lock");
        cache
            .entry(cache_key)
            .or_insert_with(|| {
                let shapes = vec![key; count];
                self.specs
                    .iter()
                    .map(|spec| spec.perf.gemm_wave_cost(&shapes, spec.device.num_sms))
                    .collect()
            })
            .clone()
    }

    /// Modelled cost of one request of shape `key` on `replica`.
    pub fn request_cost(&self, key: (usize, usize, usize), replica: usize) -> f64 {
        self.wave_costs(key, 1)[replica]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_and_scaling() {
        let fast: ReplicaSpec = "26:packed".parse().expect("valid spec");
        let slow: ReplicaSpec = "4:scalar".parse().expect("valid spec");
        let default: ReplicaSpec = "13".parse().expect("valid spec");
        assert_eq!(fast.device.num_sms, 26);
        assert_eq!(slow.device.clean_engine, Some(CleanEngine::Scalar));
        assert_eq!(default.device.num_sms, 13);
        assert_eq!(default.device.clean_engine, None);
        assert!(fast.perf.peak_dp_flops > default.perf.peak_dp_flops);
        assert!(slow.perf.peak_dp_flops < default.perf.peak_dp_flops);
        assert_eq!(fast.label(), "26sm:packed");

        assert!("0:packed".parse::<ReplicaSpec>().is_err(), "zero SMs rejected");
        assert!("13:vector".parse::<ReplicaSpec>().is_err(), "unknown engine rejected");
        assert!("x".parse::<ReplicaSpec>().is_err());
    }

    #[test]
    fn policy_parsing() {
        assert_eq!("rr".parse::<PlacePolicy>().unwrap(), PlacePolicy::RoundRobin);
        assert_eq!("costed".parse::<PlacePolicy>().unwrap(), PlacePolicy::Costed);
        assert_eq!(
            "costed-stealing".parse::<PlacePolicy>().unwrap(),
            PlacePolicy::CostedStealing
        );
        assert!("random".parse::<PlacePolicy>().is_err());
        assert!(PlacePolicy::CostedStealing.steals());
        assert!(!PlacePolicy::Costed.steals());
        assert!(!PlacePolicy::RoundRobin.costed());
    }

    #[test]
    fn fast_replica_wins_heavy_shapes() {
        let placement = Placement::new(vec![
            "26:packed".parse().unwrap(),
            "4:scalar".parse().unwrap(),
        ]);
        let heavy = placement.wave_costs((512, 512, 512), 4);
        assert!(
            heavy[0] < heavy[1] / 4.0,
            "26sm packed must dominate 4sm scalar on 512³: {heavy:?}"
        );
        // Memoisation returns identical vectors.
        assert_eq!(placement.wave_costs((512, 512, 512), 4), heavy);
        assert!(placement.request_cost((64, 64, 64), 0) > 0.0);
    }
}
