//! The EWMA-fault-rate-driven escalation ladder.
//!
//! The heal/check pipeline maintains the `abft.fault_rate_ewma` gauge
//! (one 0/1 sample per check verdict, α = 0.1). The ladder reads that
//! gauge once per dispatch wave and maps it to a protection *floor*
//! applied to every tenant's requested policy:
//!
//! * `Base` — requests run as submitted;
//! * `Verify` — `Unprotected` tenants are upgraded to full A-ABFT
//!   detection (nobody runs unverified while faults are being seen);
//! * `Heal` — everything runs under the self-healing executor with the
//!   ladder's budget (tenants with a larger own budget keep it).
//!
//! Escalation is immediate on threshold crossing; de-escalation steps
//! down one level only after [`LadderConfig::quiet_ticks`] consecutive
//! quiet observations, so a storm's tail cannot flap the floor. An
//! *absent* gauge (no verified wave has reported yet) is distinguished
//! from a measured zero: the ladder holds rather than treating silence
//! as quiet, so a fleet serving only `Unprotected` traffic cannot
//! silently de-escalate.

use std::sync::Mutex;

use aabft_core::batch::ProtectionPolicy;
use aabft_obs::Metrics;

/// Protection floor levels, weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderLevel {
    /// Requested policies pass through unchanged.
    Base,
    /// Every request at least verifies (A-ABFT detection).
    Verify,
    /// Every request runs self-healing.
    Heal,
}

impl LadderLevel {
    fn as_index(self) -> u32 {
        match self {
            LadderLevel::Base => 0,
            LadderLevel::Verify => 1,
            LadderLevel::Heal => 2,
        }
    }

    fn step_down(self) -> LadderLevel {
        match self {
            LadderLevel::Heal => LadderLevel::Verify,
            _ => LadderLevel::Base,
        }
    }
}

/// Ladder thresholds and hysteresis.
#[derive(Debug, Clone, Copy)]
pub struct LadderConfig {
    /// EWMA at or above which the floor rises to [`LadderLevel::Verify`].
    pub escalate_verify: f64,
    /// EWMA at or above which the floor rises to [`LadderLevel::Heal`].
    pub escalate_heal: f64,
    /// EWMA below which an observation counts as quiet.
    pub deescalate_below: f64,
    /// Consecutive quiet observations required to step down one level.
    pub quiet_ticks: u32,
    /// Heal budget imposed at [`LadderLevel::Heal`] (a tenant's larger
    /// own budget wins).
    pub heal_budget: u32,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            escalate_verify: 0.05,
            escalate_heal: 0.20,
            deescalate_below: 0.02,
            quiet_ticks: 8,
            heal_budget: aabft_core::heal::DEFAULT_HEAL_BUDGET,
        }
    }
}

#[derive(Debug)]
struct State {
    level: LadderLevel,
    quiet: u32,
    peak: LadderLevel,
}

/// Shared ladder state; one instance per server, observed by every
/// dispatcher.
#[derive(Debug)]
pub struct EscalationLadder {
    cfg: LadderConfig,
    state: Mutex<State>,
}

impl EscalationLadder {
    /// A ladder starting at [`LadderLevel::Base`].
    pub fn new(cfg: LadderConfig) -> Self {
        let state = State { level: LadderLevel::Base, quiet: 0, peak: LadderLevel::Base };
        EscalationLadder { cfg, state: Mutex::new(state) }
    }

    /// The current floor.
    pub fn level(&self) -> LadderLevel {
        self.state.lock().expect("ladder lock").level
    }

    /// The strongest floor reached so far (report surface).
    pub fn peak(&self) -> LadderLevel {
        self.state.lock().expect("ladder lock").peak
    }

    /// One control tick: reads `abft.fault_rate_ewma` from `metrics`,
    /// moves the floor, and mirrors it into the `serve.ladder_level`
    /// gauge plus `serve.escalations` / `serve.deescalations` counters.
    /// Returns the floor to use for the wave being built.
    ///
    /// An *absent* gauge is not a measured zero: it means no verified
    /// wave has published a verdict yet (e.g. the fleet is serving only
    /// `Unprotected` traffic), so the ladder holds its level and the
    /// quiet streak does not advance — silence is no evidence of health.
    pub fn observe(&self, metrics: &Metrics) -> LadderLevel {
        let Some(ewma) = metrics.gauge("abft.fault_rate_ewma") else {
            let state = self.state.lock().expect("ladder lock");
            metrics.gauge_set("serve.ladder_level", f64::from(state.level.as_index()));
            metrics.gauge_set("serve.ladder_peak", f64::from(state.peak.as_index()));
            return state.level;
        };
        let mut state = self.state.lock().expect("ladder lock");

        let target = if ewma >= self.cfg.escalate_heal {
            Some(LadderLevel::Heal)
        } else if ewma >= self.cfg.escalate_verify {
            Some(LadderLevel::Verify)
        } else {
            None
        };
        match target {
            Some(t) if t > state.level => {
                metrics.counter_add("serve.escalations", t.as_index() as u64 - state.level.as_index() as u64);
                state.level = t;
                state.quiet = 0;
            }
            Some(_) => state.quiet = 0,
            None if ewma < self.cfg.deescalate_below => {
                state.quiet += 1;
                if state.quiet >= self.cfg.quiet_ticks && state.level > LadderLevel::Base {
                    state.level = state.level.step_down();
                    state.quiet = 0;
                    metrics.counter_inc("serve.deescalations");
                }
            }
            // Between the quiet band and the verify threshold: hold.
            None => state.quiet = 0,
        }
        if state.level > state.peak {
            state.peak = state.level;
        }
        metrics.gauge_set("serve.ladder_level", f64::from(state.level.as_index()));
        metrics.gauge_set("serve.ladder_peak", f64::from(state.peak.as_index()));
        state.level
    }

    /// Applies floor `level` to a tenant's requested policy. Never
    /// weakens the request.
    pub fn apply(&self, requested: ProtectionPolicy, level: LadderLevel) -> ProtectionPolicy {
        match level {
            LadderLevel::Base => requested,
            LadderLevel::Verify => match requested {
                ProtectionPolicy::Unprotected => ProtectionPolicy::AAbft,
                other => other,
            },
            LadderLevel::Heal => match requested {
                ProtectionPolicy::SelfHealing { budget } => ProtectionPolicy::SelfHealing {
                    budget: budget.max(self.cfg.heal_budget),
                },
                _ => ProtectionPolicy::SelfHealing { budget: self.cfg.heal_budget },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> EscalationLadder {
        EscalationLadder::new(LadderConfig { quiet_ticks: 2, ..LadderConfig::default() })
    }

    fn tick(l: &EscalationLadder, m: &Metrics, ewma: f64) -> LadderLevel {
        m.gauge_set("abft.fault_rate_ewma", ewma);
        l.observe(m)
    }

    #[test]
    fn escalates_immediately_and_deescalates_after_quiet_window() {
        let l = ladder();
        let m = Metrics::new();
        assert_eq!(l.observe(&m), LadderLevel::Base); // no gauge yet
        assert_eq!(tick(&l, &m, 0.06), LadderLevel::Verify);
        assert_eq!(tick(&l, &m, 0.30), LadderLevel::Heal);
        assert_eq!(m.counter("serve.escalations"), 2);
        assert_eq!(l.peak(), LadderLevel::Heal);

        // One quiet tick holds; the second steps down one level at a time.
        assert_eq!(tick(&l, &m, 0.0), LadderLevel::Heal);
        assert_eq!(tick(&l, &m, 0.0), LadderLevel::Verify);
        assert_eq!(tick(&l, &m, 0.0), LadderLevel::Verify);
        assert_eq!(tick(&l, &m, 0.0), LadderLevel::Base);
        assert_eq!(m.counter("serve.deescalations"), 2);
        assert_eq!(l.peak(), LadderLevel::Heal, "peak is sticky");
    }

    #[test]
    fn mid_band_resets_the_quiet_streak() {
        let l = ladder();
        let m = Metrics::new();
        assert_eq!(tick(&l, &m, 0.25), LadderLevel::Heal);
        assert_eq!(tick(&l, &m, 0.0), LadderLevel::Heal);
        // 0.03 is quiet-band-adjacent but not quiet: streak resets.
        assert_eq!(tick(&l, &m, 0.03), LadderLevel::Heal);
        assert_eq!(tick(&l, &m, 0.0), LadderLevel::Heal);
        assert_eq!(tick(&l, &m, 0.0), LadderLevel::Verify);
    }

    #[test]
    fn base_to_heal_jump_counts_both_rungs() {
        let l = ladder();
        let m = Metrics::new();
        assert_eq!(tick(&l, &m, 0.5), LadderLevel::Heal);
        assert_eq!(m.counter("serve.escalations"), 2);
    }

    #[test]
    fn absent_gauge_holds_rather_than_deescalating() {
        // A storm escalates to Heal; afterwards only Unprotected traffic
        // flows, so no check verdict ever publishes the EWMA gauge. The
        // ladder must hold — an absent gauge is missing evidence, not a
        // measured-zero fault rate.
        let l = ladder();
        let m = Metrics::new();
        assert_eq!(tick(&l, &m, 0.5), LadderLevel::Heal);
        let blind = Metrics::new(); // no abft.fault_rate_ewma at all
        for _ in 0..6 {
            assert_eq!(l.observe(&blind), LadderLevel::Heal, "absent gauge holds");
        }
        assert_eq!(blind.counter("serve.deescalations"), 0);
        // The level gauge still mirrors, so dashboards see the hold.
        assert_eq!(blind.gauge("serve.ladder_level"), Some(2.0));
        // Quiet-streak state is untouched: two *measured* zeros still
        // step down exactly one level.
        assert_eq!(tick(&l, &m, 0.0), LadderLevel::Heal);
        assert_eq!(tick(&l, &m, 0.0), LadderLevel::Verify);
    }

    #[test]
    fn apply_upgrades_but_never_weakens() {
        let l = ladder();
        let un = ProtectionPolicy::Unprotected;
        let ab = ProtectionPolicy::AAbft;
        let heal9 = ProtectionPolicy::SelfHealing { budget: 9 };

        assert_eq!(l.apply(un, LadderLevel::Base), un);
        assert_eq!(l.apply(un, LadderLevel::Verify), ab);
        assert_eq!(
            l.apply(un, LadderLevel::Heal),
            ProtectionPolicy::SelfHealing { budget: l.cfg.heal_budget }
        );
        assert_eq!(l.apply(ab, LadderLevel::Verify), ab);
        assert_eq!(
            l.apply(ab, LadderLevel::Heal),
            ProtectionPolicy::SelfHealing { budget: l.cfg.heal_budget }
        );
        // A tenant's own larger budget survives the floor.
        assert_eq!(l.apply(heal9, LadderLevel::Heal), heal9);
        assert_eq!(l.apply(heal9, LadderLevel::Verify), heal9);
    }
}
