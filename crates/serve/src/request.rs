//! Request, admission-rejection and terminal-outcome types, plus the
//! [`Ticket`] a caller waits on.
//!
//! Every request accepted by [`Server::submit`] resolves to **exactly
//! one** [`ServeOutcome`]; a request that is not accepted is rejected
//! synchronously with a [`Rejected`] (load shedding happens at the
//! admission edge, never silently inside the server).
//!
//! [`Server::submit`]: crate::server::Server::submit

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use aabft_core::batch::ProtectionPolicy;
use aabft_core::error::AbftError;
use aabft_matrix::Matrix;

/// Latency class of a request: how long it may sit in the queue before
/// the server cancels it with [`ServeOutcome::DeadlineMissed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlineClass {
    /// Interactive traffic: the short deadline
    /// ([`ServeConfig::interactive_deadline`]).
    ///
    /// [`ServeConfig::interactive_deadline`]: crate::server::ServeConfig::interactive_deadline
    Interactive,
    /// Throughput traffic: the long deadline
    /// ([`ServeConfig::batch_deadline`]). The default.
    ///
    /// [`ServeConfig::batch_deadline`]: crate::server::ServeConfig::batch_deadline
    #[default]
    Batch,
    /// No deadline: waits however long the queue takes.
    Unbounded,
}

impl DeadlineClass {
    /// Short label for metrics and report tables.
    pub fn label(self) -> &'static str {
        match self {
            DeadlineClass::Interactive => "interactive",
            DeadlineClass::Batch => "batch",
            DeadlineClass::Unbounded => "unbounded",
        }
    }
}

/// One service request: compute `C = A · B` under the tenant's protection
/// policy and deadline class.
///
/// The `policy` is the tenant's *requested* baseline; the escalation
/// ladder ([`crate::ladder::EscalationLadder`]) may upgrade it at
/// dispatch time while the observed fault rate is elevated (it never
/// downgrades below the request).
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Left operand (`m × n`).
    pub a: Matrix<f64>,
    /// Right operand (`n × q`).
    pub b: Matrix<f64>,
    /// Requested fault-tolerance policy (the ladder's floor is OR-ed in).
    pub policy: ProtectionPolicy,
    /// Deadline class.
    pub class: DeadlineClass,
}

impl ServeRequest {
    /// A request under the default policy (full A-ABFT) and the default
    /// class ([`DeadlineClass::Batch`]).
    pub fn new(a: Matrix<f64>, b: Matrix<f64>) -> Self {
        ServeRequest { a, b, policy: ProtectionPolicy::default(), class: DeadlineClass::default() }
    }

    /// Overrides the protection policy.
    pub fn with_policy(mut self, policy: ProtectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the deadline class.
    pub fn with_class(mut self, class: DeadlineClass) -> Self {
        self.class = class;
        self
    }
}

/// Synchronous admission rejection: the request was **not** enqueued and
/// will produce no outcome.
#[derive(Debug)]
pub enum Rejected {
    /// The bounded submission queue is full — explicit load shedding.
    QueueFull {
        /// The queue's configured capacity at the time of rejection.
        capacity: usize,
    },
    /// The server is shutting down and admits no new work.
    ShuttingDown,
    /// Operand shapes are incompatible (`A.cols != B.rows`); checked at
    /// the admission edge so the queue only ever holds executable work.
    ShapeMismatch(AbftError),
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity}): request shed")
            }
            Rejected::ShuttingDown => write!(f, "server shutting down"),
            Rejected::ShapeMismatch(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Rejected {}

/// A completed (verified or unverified per policy) multiplication.
#[derive(Debug)]
pub struct Completed {
    /// The product released to the caller.
    pub product: Matrix<f64>,
    /// The policy the request actually ran under (after ladder upgrades).
    pub policy: ProtectionPolicy,
    /// Recovery attempts performed by the heal loop (0 = clean first
    /// check, or unverified).
    pub attempts: u32,
    /// Whole-request retries performed by the resilience controller.
    pub retries: u32,
    /// `true` when the result arrived after the request's deadline (the
    /// product is still valid; the latency budget was missed).
    pub late: bool,
    /// Submit-to-resolve latency.
    pub latency: Duration,
    /// Replica (device index) that produced the result.
    pub replica: usize,
}

impl Completed {
    /// `true` if the heal loop had to repair anything.
    pub fn healed(&self) -> bool {
        self.attempts > 0
    }
}

/// The single terminal outcome of an accepted request.
#[derive(Debug)]
pub enum ServeOutcome {
    /// The product was computed (and verified, unless the effective
    /// policy was [`ProtectionPolicy::Unprotected`]).
    Completed(Completed),
    /// The request's deadline expired while it waited in the queue; it
    /// was cancelled without running.
    DeadlineMissed {
        /// The request's deadline class.
        class: DeadlineClass,
        /// How long it waited before cancellation.
        waited: Duration,
    },
    /// Every retry exhausted its heal budget: no trustworthy product
    /// exists and none is released (the fail-safe).
    Unrecovered {
        /// Heal attempts of the final try.
        attempts: u32,
        /// Whole-request retries performed before giving up.
        retries: u32,
    },
}

impl ServeOutcome {
    /// Short label for metrics and report tables.
    pub fn label(&self) -> &'static str {
        match self {
            ServeOutcome::Completed(_) => "completed",
            ServeOutcome::DeadlineMissed { .. } => "deadline-missed",
            ServeOutcome::Unrecovered { .. } => "unrecovered",
        }
    }
}

/// One-shot outcome slot shared between a [`Ticket`] and the dispatcher
/// that resolves it. `std::sync` primitives: the parking_lot shim has no
/// `Condvar`.
#[derive(Debug, Default)]
pub(crate) struct Slot {
    outcome: Mutex<Option<ServeOutcome>>,
    ready: Condvar,
}

impl Slot {
    pub(crate) fn resolve(&self, outcome: ServeOutcome) {
        let mut guard = self.outcome.lock().expect("slot lock");
        debug_assert!(guard.is_none(), "a request must resolve exactly once");
        *guard = Some(outcome);
        self.ready.notify_all();
    }
}

/// Handle to one accepted request; [`Ticket::wait`] blocks until the
/// server resolves it.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the request reaches its terminal outcome.
    pub fn wait(self) -> ServeOutcome {
        let mut guard = self.slot.outcome.lock().expect("slot lock");
        loop {
            if let Some(outcome) = guard.take() {
                return outcome;
            }
            guard = self.slot.ready.wait(guard).expect("slot lock");
        }
    }

    /// Non-blocking poll: the outcome if the request already resolved.
    pub fn try_wait(&self) -> Option<ServeOutcome> {
        self.slot.outcome.lock().expect("slot lock").take()
    }
}
