//! The bounded submission queue: admission control, deadline sweeping
//! and shape-coalescing wave extraction.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the parking_lot shim carries
//! no condvar). One queue is shared by every replica dispatcher; a
//! quarantined replica simply stops taking waves, so its share of the
//! queue drains to the healthy replicas with no hand-off machinery.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use aabft_core::batch::ProtectionPolicy;
use aabft_matrix::Matrix;

use crate::request::{DeadlineClass, Rejected, Slot};

/// Coalescing key: requests of equal `(m, n, q)` share a cached plan and
/// pooled buffers in the batch engine, so a wave sticks to one key.
pub(crate) type ShapeKey = (usize, usize, usize);

/// One admitted request waiting for dispatch.
#[derive(Debug)]
pub(crate) struct Pending {
    pub a: Matrix<f64>,
    pub b: Matrix<f64>,
    /// The tenant's requested policy (ladder floor OR-ed in at dispatch).
    pub policy: ProtectionPolicy,
    pub class: DeadlineClass,
    pub slot: Arc<Slot>,
    pub submitted: Instant,
    /// Absolute cancellation time (`None` = unbounded).
    pub deadline: Option<Instant>,
    /// Earliest dispatch time — retry backoff parks the entry without
    /// blocking the queue behind it.
    pub not_before: Option<Instant>,
    /// Whole-request retries already performed.
    pub retries: u32,
}

impl Pending {
    pub(crate) fn shape_key(&self) -> ShapeKey {
        (self.a.rows(), self.a.cols(), self.b.cols())
    }

    fn ready(&self, now: Instant) -> bool {
        self.not_before.is_none_or(|t| t <= now)
    }

    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// What a dispatcher got back from one [`Queue::take_wave`] call.
pub(crate) enum Taken {
    /// A coalesced wave (nonempty) plus any entries whose deadline
    /// expired during the sweep — the caller resolves those as missed.
    Wave { batch: Vec<Pending>, expired: Vec<Pending> },
    /// Nothing dispatchable right now (park elapsed, or only backed-off
    /// entries remain); expired entries are still swept and returned.
    Empty { expired: Vec<Pending> },
    /// The queue is closed and fully drained: the dispatcher exits.
    Drained,
}

#[derive(Debug, Default)]
struct Inner {
    items: VecDeque<Pending>,
    closed: bool,
}

/// Bounded MPMC submission queue.
#[derive(Debug)]
pub(crate) struct Queue {
    inner: Mutex<Inner>,
    nonempty: Condvar,
    capacity: usize,
}

impl Queue {
    pub(crate) fn new(capacity: usize) -> Self {
        Queue { inner: Mutex::new(Inner::default()), nonempty: Condvar::new(), capacity }
    }

    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Admits `p` or sheds it: full queue → [`Rejected::QueueFull`],
    /// closed queue → [`Rejected::ShuttingDown`].
    pub(crate) fn submit(&self, p: Pending) -> Result<(), Rejected> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(Rejected::ShuttingDown);
        }
        if inner.items.len() >= self.capacity {
            return Err(Rejected::QueueFull { capacity: self.capacity });
        }
        inner.items.push_back(p);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Re-enqueues a retrying entry at the front. Bypasses the capacity
    /// bound: the entry already holds an outstanding ticket, and dropping
    /// it here would break the exactly-one-outcome guarantee.
    pub(crate) fn requeue(&self, p: Pending) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.items.push_front(p);
        drop(inner);
        self.nonempty.notify_one();
    }

    /// Closes admission; dispatchers drain the remainder and then see
    /// [`Taken::Drained`].
    pub(crate) fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.nonempty.notify_all();
    }

    pub(crate) fn is_drained(&self) -> bool {
        let inner = self.inner.lock().expect("queue lock");
        inner.closed && inner.items.is_empty()
    }

    /// Sweeps expired entries, then extracts up to `max` ready entries
    /// sharing the shape key of the oldest ready entry (adaptive
    /// micro-batching: one wave, one plan, pooled buffers). Parks up to
    /// `park` when nothing is dispatchable.
    pub(crate) fn take_wave(&self, max: usize, park: Duration) -> Taken {
        debug_assert!(max >= 1);
        let mut inner = self.inner.lock().expect("queue lock");
        let now = Instant::now();

        let mut expired = Vec::new();
        let mut i = 0;
        while i < inner.items.len() {
            if inner.items[i].expired(now) {
                expired.push(inner.items.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }

        let first_ready = inner.items.iter().position(|p| p.ready(now));
        let Some(first) = first_ready else {
            if inner.closed && inner.items.is_empty() && expired.is_empty() {
                return Taken::Drained;
            }
            if expired.is_empty() && !inner.closed {
                // Nothing to do: park until a submit/requeue or timeout.
                let (_guard, _timeout) =
                    self.nonempty.wait_timeout(inner, park).expect("queue lock");
            }
            return Taken::Empty { expired };
        };

        let lead = inner.items.remove(first).expect("index in bounds");
        let key = lead.shape_key();
        let mut batch = vec![lead];
        let mut i = first; // entries before `first` are not ready; skip them
        while batch.len() < max && i < inner.items.len() {
            if inner.items[i].ready(now) && inner.items[i].shape_key() == key {
                batch.push(inner.items.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
        Taken::Wave { batch, expired }
    }
}
