//! The sharded admission plane: bounded admission, deadline sweeping,
//! per-shape-class shards, and policy-driven wave extraction with
//! PerfModel-costed placement and work stealing.
//!
//! PR 8 kept one shared FIFO; a wave could only coalesce same-shape
//! requests that happened to be adjacent, and placement was blind
//! first-come-first-served. Here admitted requests land in *shards*
//! keyed by their rounded shape class ([`shard_class`]), so the batch
//! engine's plan/pack caches stay hot per shard, and each dispatcher
//! asks [`ShardedQueue::take_wave`] for the shard it is *best suited
//! for* under the configured [`PlacePolicy`]:
//!
//! * `RoundRobin` — every request is stamped with a home replica at
//!   admission (blind rotation); a dispatcher takes only its own
//!   entries.
//! * `Costed` — a dispatcher takes a shard only when it is the argmin
//!   of `inflight + wave_cost` over live replicas, where wave costs are
//!   *calibrated*: each replica's scaled [`PerfModel`] estimate blended
//!   with the measured/modelled EWMA for that shape class (see
//!   [`Placement::calibrated_wave_costs`]).
//! * `CostedStealing` — costed, plus: an idle dispatcher drains the
//!   heaviest *eligible* shard instead of parking. A shard is eligible
//!   when its backlog on its best replica outlasts the thief's own
//!   calibrated wave cost, **or** when its observed queueing delay —
//!   the per-class EWMA of admit→dispatch age, maxed with the lead
//!   entry's current age — exceeds that cost: if work demonstrably
//!   waits longer than the thief needs to run it, the thief runs it,
//!   whatever the model claims about the backlog.
//!
//! The queue also maintains the observed-delay signal itself: every
//! dispatched entry contributes its admit→dispatch age to its shard
//! class's EWMA ([`ShardedQueue::queue_delays`]), which the server
//! exports as `serve.shard.{class}.queue_delay_us` gauges.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the parking_lot shim carries
//! no condvar); one mutex guards all shards, which keeps placement
//! decisions atomic with extraction. A closed queue drains policy-free:
//! any dispatcher takes the oldest ready wave, so no entry can strand
//! behind a policy constraint during shutdown.
//!
//! [`Placement`]: crate::placement::Placement
//! [`PerfModel`]: aabft_gpu_sim::perf::PerfModel

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use aabft_core::batch::ProtectionPolicy;
use aabft_matrix::Matrix;

use crate::placement::{shape_class, PlacePolicy, Placement};
use crate::request::{DeadlineClass, Rejected, Slot};

/// Coalescing key: requests of equal `(m, n, q)` share a cached plan and
/// pooled buffers in the batch engine, so a wave sticks to one key.
pub(crate) type ShapeKey = (usize, usize, usize);

/// A shape's shard class — the same power-of-two rounding the
/// calibration plane keys ratios by ([`shape_class`]), so a shard's
/// dispatch affinity and its cost calibration always agree. Shapes of
/// one class share a shard so plan and pack-buffer caches stay hot;
/// waves still coalesce on the *exact* key within a shard.
pub(crate) fn shard_class(key: ShapeKey) -> ShapeKey {
    shape_class(key)
}

/// EWMA smoothing for the per-class observed queueing delay; matched to
/// the calibration plane's pace so the steal signal and the cost signal
/// adapt on the same timescale.
const DELAY_ALPHA: f64 = 0.25;

/// Hysteresis on the observed-delay steal: the thief must beat the
/// class's observed wait by this factor, not merely undercut it. A
/// steal moves a whole wave off the replica the cost model still thinks
/// is best, and the observed-delay signal is the noisiest input the
/// scheduler has (a dispatch-age EWMA on a shared host), so it should
/// only override the model when the gap is clear — EWMA noise alone
/// must not open it.
const STEAL_MARGIN: f64 = 2.0;

/// Cycle-efficiency bound on any steal: the thief's host-cycle cost for
/// the wave (calibrated device cost × SM width) may exceed the best
/// replica's by at most this factor. Stealing buys latency with *spare*
/// capacity; a thief that would burn several times the silicon — e.g. a
/// scalar-engine replica grabbing work a packed-engine peer will drain
/// shortly — converts queueing delay into fleet-wide waste, slowing
/// every other tenant to rescue one.
const STEAL_EFFICIENCY: f64 = 1.5;

/// One admitted request waiting for dispatch.
#[derive(Debug)]
pub(crate) struct Pending {
    pub a: Matrix<f64>,
    pub b: Matrix<f64>,
    /// The tenant's requested policy (ladder floor OR-ed in at dispatch).
    pub policy: ProtectionPolicy,
    pub class: DeadlineClass,
    pub slot: Arc<Slot>,
    pub submitted: Instant,
    /// Absolute cancellation time (`None` = unbounded).
    pub deadline: Option<Instant>,
    /// Earliest dispatch time — retry backoff parks the entry without
    /// blocking the queue behind it.
    pub not_before: Option<Instant>,
    /// Whole-request retries already performed.
    pub retries: u32,
    /// Home replica under [`PlacePolicy::RoundRobin`] (stamped at
    /// admission; ignored by the costed policies).
    pub home: usize,
}

impl Pending {
    pub(crate) fn shape_key(&self) -> ShapeKey {
        (self.a.rows(), self.a.cols(), self.b.cols())
    }

    fn ready(&self, now: Instant) -> bool {
        self.not_before.is_none_or(|t| t <= now)
    }

    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// What a dispatcher got back from one [`ShardedQueue::take_wave`] call.
pub(crate) enum Taken {
    /// A coalesced wave (nonempty) plus any entries whose deadline
    /// expired during the sweep — the caller resolves those as missed.
    Wave {
        batch: Vec<Pending>,
        expired: Vec<Pending>,
        /// Calibrated cost of this wave on the taking replica; charged
        /// to its inflight account until [`ShardedQueue::finish`].
        cost: f64,
        /// Pure analytic-model cost of this wave on the taking replica —
        /// the denominator for the measured/modelled calibration sample
        /// the server records once the wave completes.
        modelled: f64,
        /// `true` when the wave was stolen (the taker was not the
        /// modelled best replica for its shard).
        stolen: bool,
    },
    /// Nothing dispatchable for this replica right now (park elapsed, or
    /// only backed-off / other-replica entries remain); expired entries
    /// are still swept and returned.
    Empty { expired: Vec<Pending> },
    /// The queue is closed and fully drained: the dispatcher exits.
    Drained,
}

/// One shape-class shard.
#[derive(Debug)]
struct Shard {
    class: ShapeKey,
    items: VecDeque<Pending>,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Shard>,
    /// Total queued entries across shards (capacity accounting).
    len: usize,
    closed: bool,
    /// Round-robin stamp for the next admission.
    rr_next: usize,
    /// Per-replica modelled cost of waves currently executing.
    inflight: Vec<f64>,
    /// Replicas currently accepting work (breaker-closed or probing).
    alive: Vec<bool>,
    /// Waves stolen so far (telemetry mirror).
    steals: u64,
    /// Observed queueing delay per shard class: EWMA of admit→dispatch
    /// age in seconds, fed at every wave extraction.
    delay: HashMap<ShapeKey, f64>,
}

impl Inner {
    fn shard_mut(&mut self, class: ShapeKey) -> &mut Shard {
        if let Some(i) = self.shards.iter().position(|s| s.class == class) {
            return &mut self.shards[i];
        }
        self.shards.push(Shard { class, items: VecDeque::new() });
        self.shards.last_mut().expect("just pushed")
    }

    /// Live replicas to cost against; falls back to *all* replicas when
    /// every breaker is open so placement stays total.
    fn live(&self) -> Vec<usize> {
        let live: Vec<usize> =
            (0..self.alive.len()).filter(|&r| self.alive[r]).collect();
        if live.is_empty() {
            (0..self.alive.len()).collect()
        } else {
            live
        }
    }
}

/// Bounded, sharded MPMC submission queue.
#[derive(Debug)]
pub(crate) struct ShardedQueue {
    inner: Mutex<Inner>,
    nonempty: Condvar,
    capacity: usize,
    policy: PlacePolicy,
    placement: Arc<Placement>,
}

/// Per-shard depth snapshot for gauges.
pub(crate) struct ShardDepth {
    pub class: ShapeKey,
    pub depth: usize,
}

impl ShardedQueue {
    pub(crate) fn new(capacity: usize, policy: PlacePolicy, placement: Arc<Placement>) -> Self {
        let replicas = placement.replicas();
        let inner = Inner {
            shards: Vec::new(),
            len: 0,
            closed: false,
            rr_next: 0,
            inflight: vec![0.0; replicas],
            alive: vec![true; replicas],
            steals: 0,
            delay: HashMap::new(),
        };
        ShardedQueue { inner: Mutex::new(inner), nonempty: Condvar::new(), capacity, policy, placement }
    }

    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").len
    }

    /// Depth of every shard (placement-balance gauges).
    pub(crate) fn shard_depths(&self) -> Vec<ShardDepth> {
        let inner = self.inner.lock().expect("queue lock");
        inner
            .shards
            .iter()
            .map(|s| ShardDepth { class: s.class, depth: s.items.len() })
            .collect()
    }

    /// Admits `p` or sheds it: full queue → [`Rejected::QueueFull`],
    /// closed queue → [`Rejected::ShuttingDown`]. Stamps the round-robin
    /// home and files the entry in its shape-class shard.
    pub(crate) fn submit(&self, mut p: Pending) -> Result<(), Rejected> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(Rejected::ShuttingDown);
        }
        if inner.len >= self.capacity {
            return Err(Rejected::QueueFull { capacity: self.capacity });
        }
        let live = inner.live();
        p.home = live[inner.rr_next % live.len()];
        inner.rr_next += 1;
        let class = shard_class(p.shape_key());
        inner.shard_mut(class).items.push_back(p);
        inner.len += 1;
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Re-enqueues a retrying entry at the front of its shard. Bypasses
    /// the capacity bound: the entry already holds an outstanding
    /// ticket, and dropping it here would break the exactly-one-outcome
    /// guarantee.
    pub(crate) fn requeue(&self, p: Pending) {
        let mut inner = self.inner.lock().expect("queue lock");
        let class = shard_class(p.shape_key());
        inner.shard_mut(class).items.push_front(p);
        inner.len += 1;
        drop(inner);
        self.nonempty.notify_one();
    }

    /// Closes admission; dispatchers drain the remainder (policy-free)
    /// and then see [`Taken::Drained`].
    pub(crate) fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.nonempty.notify_all();
    }

    pub(crate) fn is_drained(&self) -> bool {
        let inner = self.inner.lock().expect("queue lock");
        inner.closed && inner.len == 0
    }

    /// Marks a replica (not) accepting work. A quarantined replica's
    /// shard affinity redistributes immediately: round-robin homes are
    /// restamped onto live replicas, and the costed argmin simply stops
    /// considering it. Waking parked dispatchers lets them re-evaluate.
    pub(crate) fn set_alive(&self, replica: usize, alive: bool) {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.alive[replica] == alive {
            return;
        }
        inner.alive[replica] = alive;
        if !alive {
            let live = inner.live();
            let mut next = 0usize;
            for shard in &mut inner.shards {
                for p in &mut shard.items {
                    if p.home == replica {
                        p.home = live[next % live.len()];
                        next += 1;
                    }
                }
            }
        }
        drop(inner);
        self.nonempty.notify_all();
    }

    /// Credits back a completed wave's modelled cost and wakes parked
    /// dispatchers (the argmin may have shifted).
    pub(crate) fn finish(&self, replica: usize, cost: f64) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.inflight[replica] = (inner.inflight[replica] - cost).max(0.0);
        drop(inner);
        self.nonempty.notify_all();
    }

    /// Per-replica inflight modelled cost (gauges).
    pub(crate) fn inflight(&self) -> Vec<f64> {
        self.inner.lock().expect("queue lock").inflight.clone()
    }

    /// Waves stolen so far.
    pub(crate) fn steals(&self) -> u64 {
        self.inner.lock().expect("queue lock").steals
    }

    /// Observed queueing delay per shard class (EWMA of admit→dispatch
    /// age, seconds), sorted by class. Gauge surface.
    pub(crate) fn queue_delays(&self) -> Vec<(ShapeKey, f64)> {
        let inner = self.inner.lock().expect("queue lock");
        let mut out: Vec<_> = inner.delay.iter().map(|(&k, &v)| (k, v)).collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Sweeps expired entries, then extracts up to `max` ready entries of
    /// one exact shape from the shard this replica should serve under the
    /// placement policy (see module docs). Parks up to `park` when
    /// nothing is dispatchable for this replica.
    pub(crate) fn take_wave(&self, replica: usize, max: usize, park: Duration) -> Taken {
        debug_assert!(max >= 1);
        let mut inner = self.inner.lock().expect("queue lock");
        let now = Instant::now();

        let mut expired = Vec::new();
        for si in 0..inner.shards.len() {
            let mut i = 0;
            while i < inner.shards[si].items.len() {
                if inner.shards[si].items[i].expired(now) {
                    expired.push(inner.shards[si].items.remove(i).expect("index in bounds"));
                    inner.len -= 1;
                } else {
                    i += 1;
                }
            }
        }

        if inner.closed && inner.len == 0 {
            return if expired.is_empty() { Taken::Drained } else { Taken::Empty { expired } };
        }

        let choice = self.choose_shard(&inner, replica, max, now);
        let Some((si, stolen)) = choice else {
            if expired.is_empty() {
                // Nothing for this replica: park until a submit/requeue/
                // finish/close or timeout. Parking while closed is fine —
                // only backed-off entries remain, and they come ready
                // within a backoff period.
                let (_guard, _timeout) =
                    self.nonempty.wait_timeout(inner, park).expect("queue lock");
            }
            return Taken::Empty { expired };
        };

        // Extract the wave: the shard's oldest ready entry leads; up to
        // `max - 1` ready same-exact-shape followers coalesce behind it.
        // Round-robin placement additionally requires the taker's home
        // stamp (unless the queue is draining).
        let unconstrained = self.policy.costed() || inner.closed;
        let mine = move |p: &Pending| unconstrained || p.home == replica;
        let items = &mut inner.shards[si].items;
        let first = items
            .iter()
            .position(|p| p.ready(now) && mine(p))
            .expect("choose_shard found a ready entry");
        let lead = items.remove(first).expect("index in bounds");
        let key = lead.shape_key();
        let mut batch = vec![lead];
        let mut i = first; // entries before `first` were not eligible
        while batch.len() < max && i < items.len() {
            if items[i].ready(now) && items[i].shape_key() == key && mine(&items[i]) {
                batch.push(items.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
        inner.len -= batch.len();
        // Every dispatched entry is one admit→dispatch sample for its
        // class's observed-delay EWMA (the adaptive steal signal).
        let class = shard_class(key);
        for p in &batch {
            let waited = now.duration_since(p.submitted).as_secs_f64();
            let delay = inner.delay.entry(class).or_insert(waited);
            *delay += DELAY_ALPHA * (waited - *delay);
        }
        let cost = self.placement.calibrated_wave_costs(key, batch.len())[replica];
        let modelled = self.placement.wave_costs(key, batch.len())[replica];
        inner.inflight[replica] += cost;
        if stolen {
            inner.steals += 1;
        }
        Taken::Wave { batch, expired, cost, modelled, stolen }
    }

    /// Picks the shard `replica` should serve, or `None` to park.
    /// Returns `(shard index, stolen)`.
    fn choose_shard(
        &self,
        inner: &Inner,
        replica: usize,
        max: usize,
        now: Instant,
    ) -> Option<(usize, bool)> {
        // Draining: take the oldest ready wave regardless of policy so
        // shutdown cannot strand work behind a placement constraint.
        if inner.closed {
            return self
                .oldest_ready_shard(inner, now, |_| true)
                .map(|si| (si, false));
        }
        match self.policy {
            PlacePolicy::RoundRobin => self
                .oldest_ready_shard(inner, now, |p| p.home == replica)
                .map(|si| (si, false)),
            PlacePolicy::Costed | PlacePolicy::CostedStealing => {
                let live = inner.live();
                // Own takes: shards whose calibrated best replica is us.
                let mut own: Option<(usize, Instant)> = None;
                // Steal candidates: (shard, pressure) for shards whose
                // wait — modelled or observed — outlasts our own wave.
                let mut steal: Option<(usize, f64)> = None;
                for (si, shard) in inner.shards.iter().enumerate() {
                    let Some(lead) = shard.items.iter().find(|p| p.ready(now)) else {
                        continue;
                    };
                    let key = lead.shape_key();
                    let count = shard
                        .items
                        .iter()
                        .filter(|p| p.ready(now) && p.shape_key() == key)
                        .count()
                        .min(max);
                    let costs = self.placement.calibrated_wave_costs(key, count);
                    let best = live
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            (inner.inflight[a] + costs[a])
                                .partial_cmp(&(inner.inflight[b] + costs[b]))
                                .expect("costs are finite")
                        })
                        .expect("at least one live replica");
                    if best == replica {
                        let oldest = lead.submitted;
                        if own.is_none_or(|(_, t)| oldest < t) {
                            own = Some((si, oldest));
                        }
                    } else if self.policy.steals()
                        && (!self.placement.feedback() || self.placement.is_warm(replica))
                    {
                        // A steal is the thief betting its own price
                        // against the victim's backlog — with feedback
                        // on, a replica that has never produced a
                        // measured sample hasn't earned that trust (its
                        // spec may be the lie calibration exists to
                        // catch), so it serves only waves routed to it
                        // until its first measurement lands.
                        // Eligible when either signal says waiting beats
                        // doing it ourselves: (a) the calibrated backlog,
                        // drained by its best replica after that
                        // replica's current inflight work, outlasts our
                        // own wave; or (b) the shard's *observed*
                        // queueing delay — the dispatch-age EWMA maxed
                        // with the lead entry's current age — already
                        // exceeds our calibrated cost. (b) is what fires
                        // when the model lies: the backlog looks cheap on
                        // a replica that in truth drains it slowly, and
                        // only measured wait exposes that.
                        let backlog: f64 = shard
                            .items
                            .iter()
                            .map(|p| self.placement.calibrated_request_cost(p.shape_key(), best))
                            .sum();
                        let modelled_wait = inner.inflight[best] + backlog;
                        // Observed signal: the class's dispatch-age EWMA
                        // — what entries like this one *actually* waited
                        // recently. Deliberately not the lead entry's
                        // current age: under a blast every shard's lead
                        // is as old as the run, and that signal would
                        // tell every idle replica to steal everything.
                        let observed_wait =
                            inner.delay.get(&shard.class).copied().unwrap_or(0.0);
                        let ours = costs[replica];
                        // The observed comparison crosses unit systems:
                        // delays are host wall seconds, prices are
                        // calibrated device-seconds. Scale our price to
                        // host wall before comparing.
                        let ours_host = ours * self.placement.host_scale(replica);
                        let best_host =
                            costs[best] * self.placement.host_scale(best);
                        let efficient = ours_host <= best_host * STEAL_EFFICIENCY;
                        let pressure = modelled_wait.max(observed_wait);
                        if efficient
                            && (ours < modelled_wait
                                || ours_host * STEAL_MARGIN < observed_wait)
                            && steal.is_none_or(|(_, heaviest)| pressure > heaviest)
                        {
                            steal = Some((si, pressure));
                        }
                    }
                }
                own.map(|(si, _)| (si, false)).or(steal.map(|(si, _)| (si, true)))
            }
        }
    }

    /// The shard holding the oldest ready entry matching `eligible`.
    fn oldest_ready_shard(
        &self,
        inner: &Inner,
        now: Instant,
        eligible: impl Fn(&Pending) -> bool,
    ) -> Option<usize> {
        let mut found: Option<(usize, Instant)> = None;
        for (si, shard) in inner.shards.iter().enumerate() {
            for p in &shard.items {
                if p.ready(now) && eligible(p) {
                    if found.is_none_or(|(_, t)| p.submitted < t) {
                        found = Some((si, p.submitted));
                    }
                    break;
                }
            }
        }
        found.map(|(si, _)| si)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::ReplicaSpec;

    fn pending(n: usize) -> Pending {
        let a = Matrix::from_fn(n, n, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(n, n, |i, j| (i * j + 1) as f64);
        Pending {
            a,
            b,
            policy: ProtectionPolicy::AAbft,
            class: DeadlineClass::Unbounded,
            slot: Arc::new(Slot::default()),
            submitted: Instant::now(),
            deadline: None,
            not_before: None,
            retries: 0,
            home: 0,
        }
    }

    fn queue(capacity: usize, policy: PlacePolicy, specs: Vec<ReplicaSpec>) -> ShardedQueue {
        ShardedQueue::new(capacity, policy, Arc::new(Placement::new(specs)))
    }

    const NO_PARK: Duration = Duration::from_millis(0);

    #[test]
    fn shard_class_rounds_up_to_power_of_two() {
        assert_eq!(shard_class((48, 48, 48)), (64, 64, 64));
        assert_eq!(shard_class((8, 8, 8)), (8, 8, 8));
        assert_eq!(shard_class((3, 5, 9)), (8, 8, 16));
        assert_eq!(shard_class((64, 64, 64)), (64, 64, 64));
    }

    #[test]
    fn capacity_and_shutdown_shed() {
        let q = queue(2, PlacePolicy::RoundRobin, ReplicaSpec::defaults(1));
        assert!(q.submit(pending(8)).is_ok());
        assert!(q.submit(pending(8)).is_ok());
        assert!(matches!(q.submit(pending(8)), Err(Rejected::QueueFull { capacity: 2 })));
        q.close();
        assert!(matches!(q.submit(pending(8)), Err(Rejected::ShuttingDown)));
        // Requeue bypasses the bound: the entry holds a live ticket.
        q.requeue(pending(8));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn round_robin_homes_partition_the_stream() {
        let q = queue(16, PlacePolicy::RoundRobin, ReplicaSpec::defaults(2));
        for _ in 0..4 {
            q.submit(pending(8)).unwrap();
        }
        // Homes alternate 0,1,0,1 — each replica coalesces only its own.
        let Taken::Wave { batch, stolen, .. } = q.take_wave(0, 8, NO_PARK) else {
            panic!("replica 0 has work");
        };
        assert_eq!(batch.len(), 2);
        assert!(!stolen);
        assert!(batch.iter().all(|p| p.home == 0));
        let Taken::Wave { batch, .. } = q.take_wave(1, 8, NO_PARK) else {
            panic!("replica 1 has work");
        };
        assert_eq!(batch.len(), 2);
        assert!(matches!(q.take_wave(0, 8, NO_PARK), Taken::Empty { .. }));
    }

    #[test]
    fn waves_coalesce_exact_shape_within_a_shard() {
        // 48³ and 64³ share the (64,64,64) shard class but must not mix
        // in one wave (the engine plans per exact shape).
        let q = queue(16, PlacePolicy::CostedStealing, ReplicaSpec::defaults(1));
        q.submit(pending(48)).unwrap();
        q.submit(pending(64)).unwrap();
        q.submit(pending(48)).unwrap();
        assert_eq!(q.shard_depths().len(), 1, "one shared shard class");
        let Taken::Wave { batch, .. } = q.take_wave(0, 8, NO_PARK) else {
            panic!("expected a wave");
        };
        assert_eq!(batch.len(), 2, "the two 48³ entries coalesce past the 64³");
        assert!(batch.iter().all(|p| p.shape_key() == (48, 48, 48)));
    }

    #[test]
    fn costed_placement_keeps_heavy_shapes_off_slow_replicas() {
        let specs: Vec<ReplicaSpec> =
            vec!["26:packed".parse().unwrap(), "4:scalar".parse().unwrap()];
        let q = queue(16, PlacePolicy::Costed, specs);
        q.submit(pending(256)).unwrap();
        // The slow scalar replica is not the argmin: it parks.
        assert!(matches!(q.take_wave(1, 8, NO_PARK), Taken::Empty { .. }));
        let Taken::Wave { batch, cost, stolen, .. } = q.take_wave(0, 8, NO_PARK) else {
            panic!("fast replica takes the heavy shard");
        };
        assert_eq!(batch.len(), 1);
        assert!(cost > 0.0);
        assert!(!stolen);
        assert_eq!(q.inflight()[0], cost);
        q.finish(0, cost);
        assert_eq!(q.inflight()[0], 0.0);
    }

    #[test]
    fn idle_replica_steals_heavy_backlog_from_busy_best() {
        // 512³ puts the modelled cost well past the launch-overhead
        // floor, so the 8-SM thief runs ~2.5× the 26-SM replica's cost:
        // never the argmin while the fast replica holds one wave
        // (2.5s > 2s), yet far cheaper than waiting out an 11-deep
        // backlog.
        let specs: Vec<ReplicaSpec> =
            vec!["26:packed".parse().unwrap(), "8:packed".parse().unwrap()];
        let placement = Arc::new(Placement::new(specs));
        // One neutral sample (measured == modelled, ratio 1) warms the
        // thief without moving its price: a cold replica may not steal.
        placement.record_measured(1, (512, 512, 512), 1.0, 1.0);
        let q = ShardedQueue::new(16, PlacePolicy::CostedStealing, placement);
        for _ in 0..12 {
            q.submit(pending(512)).unwrap();
        }
        // Fast replica takes a wave and is now busy (inflight charged).
        let Taken::Wave { stolen, .. } = q.take_wave(0, 1, NO_PARK) else {
            panic!("fast replica takes first");
        };
        assert!(!stolen);
        // The slower replica is not the argmin, but the backlog on the
        // busy fast replica outlasts its own wave cost: it steals.
        let Taken::Wave { batch, stolen, .. } = q.take_wave(1, 1, NO_PARK) else {
            panic!("idle replica steals the backlog");
        };
        assert!(stolen);
        assert_eq!(batch.len(), 1);
        assert_eq!(q.steals(), 1);
    }

    #[test]
    fn costed_without_stealing_never_steals() {
        let specs: Vec<ReplicaSpec> =
            vec!["26:packed".parse().unwrap(), "8:packed".parse().unwrap()];
        let q = queue(16, PlacePolicy::Costed, specs);
        for _ in 0..12 {
            q.submit(pending(512)).unwrap();
        }
        let Taken::Wave { .. } = q.take_wave(0, 1, NO_PARK) else {
            panic!("fast replica takes first");
        };
        assert!(matches!(q.take_wave(1, 1, NO_PARK), Taken::Empty { .. }));
        assert_eq!(q.steals(), 0);
    }

    #[test]
    fn quarantine_restamps_homes_and_drain_ignores_policy() {
        let q = queue(16, PlacePolicy::RoundRobin, ReplicaSpec::defaults(2));
        for _ in 0..4 {
            q.submit(pending(8)).unwrap();
        }
        // Replica 1 quarantined: its homes restamp onto replica 0.
        q.set_alive(1, false);
        let Taken::Wave { batch, .. } = q.take_wave(0, 8, NO_PARK) else {
            panic!("replica 0 owns everything now");
        };
        assert_eq!(batch.len(), 4);
        assert!(batch.iter().all(|p| p.home == 0));

        // Draining: a closed queue hands work to any replica.
        q.set_alive(1, true);
        q.submit(pending(8)).unwrap();
        q.close();
        let Taken::Wave { batch, .. } = q.take_wave(1, 8, NO_PARK) else {
            panic!("drain ignores home stamps");
        };
        assert_eq!(batch.len(), 1);
        assert!(matches!(q.take_wave(0, 8, NO_PARK), Taken::Drained));
        assert!(q.is_drained());
    }

    #[test]
    fn measured_feedback_flips_the_costed_argmin() {
        // Replica 0 lies: it runs the scalar engine but its spec prices
        // it as packed, so the static model routes heavy work to it.
        let placement = Arc::new(Placement::new(vec![
            "6:scalar@packed".parse().unwrap(),
            "6:scalar".parse().unwrap(),
        ]));
        let q = ShardedQueue::new(16, PlacePolicy::Costed, placement.clone());
        q.submit(pending(256)).unwrap();
        // Cold calibration: the liar is the modelled argmin; the honest
        // replica parks, and the wave's calibrated cost equals modelled.
        assert!(matches!(q.take_wave(1, 8, NO_PARK), Taken::Empty { .. }));
        let Taken::Wave { batch, cost, modelled, .. } = q.take_wave(0, 8, NO_PARK) else {
            panic!("liar takes the wave while the model is trusted");
        };
        assert_eq!(batch.len(), 1);
        assert_eq!(cost, modelled, "cold ratio is 1.0");
        q.finish(0, cost);
        // Measured truth arrives: the liar ran 5× slower than modelled,
        // the honest replica exactly as modelled. (Both sides must be
        // measured: an unmeasured replica borrows the fleet-median
        // ratio — here the liar's own 5× — precisely so that cold
        // replicas don't look artificially cheap next to warm ones.)
        placement.record_measured(0, (256, 256, 256), 5.0 * modelled, modelled);
        let honest = placement.request_cost((256, 256, 256), 1);
        placement.record_measured(1, (256, 256, 256), honest, honest);
        q.submit(pending(256)).unwrap();
        // The calibrated argmin flips to the honest replica.
        assert!(matches!(q.take_wave(0, 8, NO_PARK), Taken::Empty { .. }));
        let Taken::Wave { batch, stolen, .. } = q.take_wave(1, 8, NO_PARK) else {
            panic!("honest replica wins once the lie is measured");
        };
        assert_eq!(batch.len(), 1);
        assert!(!stolen, "an argmin take is not a steal");
    }

    #[test]
    fn observed_queue_delay_triggers_adaptive_steal() {
        // 256³ on the 4-SM thief is ~6.5× pricier than on the fast
        // replica, so the modelled-backlog rule never fires (ours >
        // one-deep backlog-on-best). But this class's entries have
        // demonstrably waited ~30 s to dispatch — the observed
        // dispatch-age EWMA says the model is wrong about this shard,
        // and the warm, cycle-efficient (same engine) thief steals.
        let specs: Vec<ReplicaSpec> =
            vec!["26:packed".parse().unwrap(), "4:packed".parse().unwrap()];
        let placement = Arc::new(Placement::new(specs));
        placement.record_measured(1, (256, 256, 256), 1.0, 1.0);
        let q = ShardedQueue::new(16, PlacePolicy::CostedStealing, placement);
        // Seed the class's delay EWMA with a genuinely ancient dispatch.
        let mut stale = pending(256);
        stale.submitted = Instant::now() - Duration::from_secs(30);
        q.submit(stale).unwrap();
        let Taken::Wave { stolen, .. } = q.take_wave(0, 8, NO_PARK) else {
            panic!("fast replica drains the seed entry");
        };
        assert!(!stolen);
        // Fast replica is now loaded; the next entry of the class would
        // be its take again (still the argmin), but the observed wait
        // dwarfs the thief's host-scaled price.
        q.submit(pending(256)).unwrap();
        let Taken::Wave { batch, stolen, .. } = q.take_wave(1, 8, NO_PARK) else {
            panic!("observed wait must trigger the adaptive steal");
        };
        assert!(stolen);
        assert_eq!(batch.len(), 1);
        assert_eq!(q.steals(), 1);
    }

    #[test]
    fn dispatch_feeds_the_queue_delay_ewma() {
        let q = queue(16, PlacePolicy::CostedStealing, ReplicaSpec::defaults(1));
        assert!(q.queue_delays().is_empty(), "no samples before any dispatch");
        let mut p = pending(64);
        p.submitted = Instant::now() - Duration::from_millis(250);
        q.submit(p).unwrap();
        let Taken::Wave { .. } = q.take_wave(0, 8, NO_PARK) else {
            panic!("expected a wave");
        };
        let delays = q.queue_delays();
        assert_eq!(delays.len(), 1);
        assert_eq!(delays[0].0, (64, 64, 64));
        assert!(delays[0].1 >= 0.25, "EWMA seeds from the first sample: {delays:?}");
    }

    #[test]
    fn deadline_sweep_returns_expired_entries() {
        let q = queue(16, PlacePolicy::CostedStealing, ReplicaSpec::defaults(1));
        let mut dead = pending(8);
        dead.deadline = Some(Instant::now() - Duration::from_millis(1));
        q.submit(dead).unwrap();
        q.submit(pending(8)).unwrap();
        let Taken::Wave { batch, expired, .. } = q.take_wave(0, 8, NO_PARK) else {
            panic!("live entry still dispatches");
        };
        assert_eq!(batch.len(), 1);
        assert_eq!(expired.len(), 1);
        assert_eq!(q.len(), 0);
    }
}
