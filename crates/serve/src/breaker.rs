//! Per-replica circuit breaker.
//!
//! A replica that keeps exhausting heal budgets is presumed sick
//! (resident hard fault, not transient flips): after
//! [`BreakerConfig::trip_after`] *consecutive* `Unrecovered` results its
//! breaker opens and the replica's dispatcher stops taking waves — the
//! shared queue drains to the healthy replicas. After
//! [`BreakerConfig::cooloff`] the breaker half-opens and admits a single
//! probe wave: success re-closes it, another failure re-opens it for a
//! fresh cooloff.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker thresholds.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive `Unrecovered` results that open the breaker.
    pub trip_after: u32,
    /// Quarantine duration before a half-open probe.
    pub cooloff: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { trip_after: 3, cooloff: Duration::from_millis(50) }
    }
}

/// Breaker states (the classic three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: full waves.
    Closed,
    /// Quarantined: no dispatch until the cooloff elapses.
    Open,
    /// Probing: one single-request wave decides.
    HalfOpen,
}

/// What the dispatcher may do this iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Take a full wave.
    Full,
    /// Take a single-request probe wave.
    Probe,
    /// Take nothing; the replica is quarantined.
    Quarantined,
}

#[derive(Debug)]
struct State {
    state: BreakerState,
    consecutive: u32,
    open_until: Instant,
    trips: u32,
}

/// One replica's circuit breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        let state = State {
            state: BreakerState::Closed,
            consecutive: 0,
            open_until: Instant::now(),
            trips: 0,
        };
        CircuitBreaker { cfg, state: Mutex::new(state) }
    }

    /// The current state (open breakers whose cooloff elapsed still read
    /// as open until the next [`CircuitBreaker::admit`]).
    pub fn state(&self) -> BreakerState {
        self.state.lock().expect("breaker lock").state
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u32 {
        self.state.lock().expect("breaker lock").trips
    }

    /// Gate for one dispatcher iteration.
    pub fn admit(&self) -> Admission {
        let mut s = self.state.lock().expect("breaker lock");
        match s.state {
            BreakerState::Closed => Admission::Full,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open => {
                if Instant::now() >= s.open_until {
                    s.state = BreakerState::HalfOpen;
                    Admission::Probe
                } else {
                    Admission::Quarantined
                }
            }
        }
    }

    /// Records a request that resolved without exhausting its budget.
    pub fn record_success(&self) {
        let mut s = self.state.lock().expect("breaker lock");
        s.consecutive = 0;
        if s.state == BreakerState::HalfOpen {
            s.state = BreakerState::Closed;
        }
    }

    /// Records one `Unrecovered` result; returns `true` when this very
    /// call tripped the breaker open.
    pub fn record_unrecovered(&self) -> bool {
        let mut s = self.state.lock().expect("breaker lock");
        s.consecutive += 1;
        let trip = match s.state {
            BreakerState::HalfOpen => true, // failed probe: straight back open
            BreakerState::Closed => s.consecutive >= self.cfg.trip_after,
            BreakerState::Open => false,
        };
        if trip {
            s.state = BreakerState::Open;
            s.open_until = Instant::now() + self.cfg.cooloff;
            s.trips += 1;
            s.consecutive = 0;
        }
        trip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_consecutive_failures_only() {
        let b = CircuitBreaker::new(BreakerConfig {
            trip_after: 3,
            cooloff: Duration::from_secs(3600),
        });
        assert_eq!(b.admit(), Admission::Full);
        assert!(!b.record_unrecovered());
        assert!(!b.record_unrecovered());
        b.record_success(); // streak broken
        assert!(!b.record_unrecovered());
        assert!(!b.record_unrecovered());
        assert!(b.record_unrecovered());
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), Admission::Quarantined);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn half_open_probe_closes_on_success_and_reopens_on_failure() {
        let b = CircuitBreaker::new(BreakerConfig {
            trip_after: 1,
            cooloff: Duration::from_millis(1),
        });
        assert!(b.record_unrecovered());
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.admit(), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Failed probe: straight back to quarantine.
        assert!(b.record_unrecovered());
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.admit(), Admission::Probe);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Admission::Full);
    }
}
