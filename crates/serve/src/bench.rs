//! Open-loop load-and-chaos generator: drives seeded traffic (and
//! optional fault storms) at a ladder of offered rates through a fresh
//! [`Server`] per level, then judges every released product against a
//! host-computed reference.
//!
//! The generator is open-loop: submissions are paced by the offered
//! rate alone, never by completions, so overload genuinely overloads —
//! the bounded queue sheds and deadline classes miss, exactly the
//! behaviour under test. Latency is measured server-side (submit →
//! resolve) and recorded in each outcome, so the generator can collect
//! tickets after the fact without distorting the measurement.
//!
//! SDC judgment reuses the campaign classifier: a released product
//! whose deviation from the host reference exceeds the `ω·σ` bound
//! ([`GroundTruth::Critical`]) is a silent data corruption. Verified
//! completions passed the checksum check, so any `Critical` among them
//! is the exact failure A-ABFT exists to prevent — the zero-SDC gate.
//!
//! A second bench mode, [`run_policy_matrix`], measures the placement
//! plane itself: a seeded skewed-shape request stream (mostly small
//! GEMMs, every k-th a large one) over heterogeneous replicas, replayed
//! once per [`PlacePolicy`], reporting GEMMs/s and per-replica
//! utilization. Blind round-robin lands a share of the large GEMMs on
//! small/scalar replicas, which burn several times the compute per
//! product; costed placement keeps them on the replica the `PerfModel`
//! says finishes them soonest, so the same stream drains measurably
//! faster — the headline claim gated by `tier1.sh`.
//!
//! A third mode, [`run_feedback_matrix`], turns the lens on the cost
//! model itself: the fleet contains a *mis-modelled* replica (scalar
//! engine, priced as packed), so the static model confidently routes
//! heavy waves to the slowest machine. The matrix replays the stream
//! under static `Costed`, calibrated `Costed`, and calibrated
//! `CostedStealing`, recording each replica's end-of-run calibration
//! ratios — the liar's converge away from 1.0 — and the throughput the
//! feedback plane recovers.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aabft_core::batch::ProtectionPolicy;
use aabft_core::{AAbftConfig, AAbftGemm};
use aabft_faults::campaign::classify_product;
use aabft_faults::GroundTruth;
use aabft_matrix::gen::InputClass;
use aabft_matrix::Matrix;
use aabft_numerics::RoundingModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use aabft_obs::json::JsonObject;
use aabft_obs::Obs;

use crate::chaos::{Storm, StormConfig};
use crate::ladder::LadderLevel;
use crate::placement::{PlacePolicy, ReplicaSpec};
use crate::request::{DeadlineClass, Rejected, ServeOutcome, ServeRequest};
use crate::server::{ServeConfig, Server};

/// Tenant-policy mix cycled across submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantMix {
    /// Every tenant at least verifies (A-ABFT or self-healing). The mix
    /// for zero-SDC-gated chaos runs: every released product is
    /// checksum-checked, whatever the ladder does.
    Verified,
    /// Includes unprotected tenants (the economic baseline the ladder
    /// exists to upgrade during storms). A storm fault can strike an
    /// unprotected request before the ladder reacts, so this mix makes
    /// no zero-SDC promise — the report simply counts what happened.
    Mixed,
}

impl std::str::FromStr for TenantMix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "verified" => Ok(TenantMix::Verified),
            "mixed" => Ok(TenantMix::Mixed),
            other => Err(format!("unknown tenant mix {other:?} (verified|mixed)")),
        }
    }
}

impl TenantMix {
    /// The policy of submission `t` (deterministic 4-cycle).
    fn policy(self, t: usize) -> ProtectionPolicy {
        match (self, t % 4) {
            (TenantMix::Mixed, 1) => ProtectionPolicy::Unprotected,
            (_, 2) => ProtectionPolicy::SelfHealing { budget: 2 },
            _ => ProtectionPolicy::AAbft,
        }
    }
}

/// The deadline class of submission `t`: every fourth request is
/// interactive, the rest batch.
fn class_of(t: usize) -> DeadlineClass {
    if t % 4 == 3 {
        DeadlineClass::Interactive
    } else {
        DeadlineClass::Batch
    }
}

/// Bench shape: one run = one level per offered rate.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Square operand size.
    pub n: usize,
    /// Replica devices per level.
    pub replicas: usize,
    /// Offered rates (requests/second); `0` = submit as fast as
    /// possible (deterministic overload).
    pub rates: Vec<f64>,
    /// Submissions per level (before the cooldown trickle).
    pub requests: usize,
    /// Arm a seeded fault storm over the middle third of each level.
    pub storm: bool,
    /// During the storm window, strike on every `storm_every`-th
    /// submission.
    pub storm_every: usize,
    /// Extra post-storm submissions that feed the ladder's quiet window
    /// (only used when `storm` is set).
    pub cooldown: usize,
    /// Tenant-policy mix.
    pub mix: TenantMix,
    /// Storm seed.
    pub seed: u64,
    /// Server tuning.
    pub serve: ServeConfig,
    /// Protected-GEMM configuration shared by the engine, the storm
    /// calibration and the SDC classifier.
    pub config: AAbftConfig,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            n: 48,
            replicas: 2,
            rates: vec![200.0, 0.0],
            requests: 160,
            storm: false,
            storm_every: 3,
            cooldown: 96,
            mix: TenantMix::Verified,
            seed: 7,
            serve: ServeConfig::default(),
            config: AAbftConfig::default(),
        }
    }
}

/// Everything one level reports into `BENCH_serve.json`.
#[derive(Debug)]
pub struct LevelReport {
    /// Offered rate (0 = open blast).
    pub rate: f64,
    /// Submissions attempted (including the cooldown trickle).
    pub submitted: u64,
    /// Accepted into the queue.
    pub accepted: u64,
    /// Shed at admission (`Rejected::QueueFull`).
    pub shed: u64,
    /// Completed (product released).
    pub completed: u64,
    /// Completions that arrived after their deadline.
    pub late: u64,
    /// Cancelled in queue at deadline.
    pub deadline_missed: u64,
    /// Terminal heal-budget exhaustions.
    pub unrecovered: u64,
    /// Whole-request retries performed.
    pub retries: u64,
    /// Released products judged critically wrong — silent data
    /// corruptions.
    pub sdc: u64,
    /// Faults the storm armed on replica devices.
    pub strikes: u64,
    /// Median submit-to-resolve latency of completions, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Completions per wall-clock second, submission start to drain.
    pub gemms_per_sec: f64,
    /// Level wall time, seconds.
    pub wall_s: f64,
    /// Ladder escalations during the level.
    pub escalations: u64,
    /// Ladder de-escalations during the level.
    pub deescalations: u64,
    /// Strongest protection floor reached.
    pub ladder_peak: LadderLevel,
    /// Floor at level end (after cooldown).
    pub ladder_end: LadderLevel,
    /// Peak `abft.fault_rate_ewma` observed by the generator.
    pub ewma_peak: f64,
    /// Circuit-breaker trips across replicas.
    pub breaker_trips: u64,
}

impl LevelReport {
    /// Flat JSON record (one element of the `BENCH_serve.json` array),
    /// tagged `kind: "load"` so mixed-record files filter cleanly.
    pub fn to_json(&self) -> JsonObject {
        JsonObject::new()
            .str("kind", "load")
            .num("rate", self.rate)
            .int("submitted", self.submitted)
            .int("accepted", self.accepted)
            .int("shed", self.shed)
            .int("completed", self.completed)
            .int("late", self.late)
            .int("deadline_missed", self.deadline_missed)
            .int("unrecovered", self.unrecovered)
            .int("retries", self.retries)
            .int("sdc", self.sdc)
            .int("strikes", self.strikes)
            .num("p50_ms", self.p50_ms)
            .num("p99_ms", self.p99_ms)
            .num("gemms_per_sec", self.gemms_per_sec)
            .num("wall_s", self.wall_s)
            .int("escalations", self.escalations)
            .int("deescalations", self.deescalations)
            .str("ladder_peak", &format!("{:?}", self.ladder_peak))
            .str("ladder_end", &format!("{:?}", self.ladder_end))
            .num("ewma_peak", self.ewma_peak)
            .int("breaker_trips", self.breaker_trips)
    }
}

/// Seeded input pool: a few distinct operand pairs with host-computed
/// references, reused round-robin so SDC judgment stays O(pool), not
/// O(traffic). Operands are the paper's `[-1, 1]` uniform class —
/// structured lattice inputs (e.g. `sin(i·c)` grids) can sit above the
/// probabilistic `ω·σ` bound and fail the check with no fault present,
/// which would read as a phantom fault storm here.
struct InputPool {
    pairs: Vec<(Matrix<f64>, Matrix<f64>, Matrix<f64>)>,
}

impl InputPool {
    fn new(n: usize, count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let pairs = (0..count)
            .map(|_| {
                let a = InputClass::UNIT.generate(n, &mut rng);
                let b = InputClass::UNIT.generate(n, &mut rng);
                let clean = aabft_matrix::gemm::multiply(&a, &b);
                (a, b, clean)
            })
            .collect();
        InputPool { pairs }
    }

    fn get(&self, t: usize) -> &(Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        &self.pairs[t % self.pairs.len()]
    }
}

/// Exact percentile of a sorted latency vector (nearest-rank).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs every configured load level and returns one report per level.
/// All levels share `obs` (spans and metrics accumulate; the report
/// diffs counters per level).
pub fn run_bench(cfg: &BenchConfig, obs: &Arc<Obs>) -> Vec<LevelReport> {
    let pool = InputPool::new(cfg.n, 4, cfg.seed);
    cfg.rates.iter().map(|&rate| run_level(cfg, rate, &cfg.config, &pool, obs)).collect()
}

fn run_level(
    cfg: &BenchConfig,
    rate: f64,
    gemm_config: &AAbftConfig,
    pool: &InputPool,
    obs: &Arc<Obs>,
) -> LevelReport {
    let _level = aabft_obs::span!(obs, "serve", "bench_level", "rate" => rate, "n" => cfg.n);
    let metrics = &obs.metrics;
    let esc0 = metrics.counter("serve.escalations");
    let dees0 = metrics.counter("serve.deescalations");
    let retries0 = metrics.counter("serve.retries");
    let late0 = metrics.counter("serve.late_completions");

    let gemm = AAbftGemm::new(*gemm_config);
    let specs = ReplicaSpec::defaults(cfg.replicas.max(1));
    let server = Server::start(cfg.serve, AAbftGemm::new(*gemm_config), specs, obs.clone())
        .expect("bench ServeConfig is valid");
    let mut storm = cfg.storm.then(|| {
        let storm_cfg = StormConfig { seed: cfg.seed, ..StormConfig::default() };
        Storm::calibrate(&storm_cfg, &gemm, cfg.n)
    });

    let period = (rate > 0.0).then(|| Duration::from_secs_f64(1.0 / rate));
    let storm_window = cfg.requests / 3..2 * cfg.requests / 3;
    let total = cfg.requests + if cfg.storm { cfg.cooldown } else { 0 };

    let start = Instant::now();
    let mut tickets = Vec::with_capacity(total);
    let mut submitted = 0u64;
    let mut shed = 0u64;
    let mut ewma_peak = 0.0f64;
    let mut cooled = false;
    for t in 0..total {
        if cfg.storm && t >= cfg.requests && !cooled {
            // Cooldown boundary: clear unfired leftovers so the tail of
            // the storm does not bleed into the quiet window.
            for r in 0..server.replicas() {
                server.device(r).disarm_count();
            }
            cooled = true;
        }
        if let Some(storm) = storm.as_mut() {
            if storm_window.contains(&t) && t % cfg.storm_every == 0 {
                storm.strike(server.device(t % server.replicas()));
            }
        }
        let (a, b, _) = pool.get(t);
        let req = ServeRequest::new(a.clone(), b.clone())
            .with_policy(cfg.mix.policy(t))
            .with_class(class_of(t));
        submitted += 1;
        match server.submit(req) {
            Ok(ticket) => tickets.push((t, ticket)),
            Err(Rejected::QueueFull { .. }) => shed += 1,
            Err(rej) => panic!("unexpected rejection: {rej}"),
        }
        if let Some(e) = metrics.gauge("abft.fault_rate_ewma") {
            ewma_peak = ewma_peak.max(e);
        }
        if let Some(p) = period {
            std::thread::sleep(p);
        } else if cfg.storm && t >= storm_window.start {
            // Even in blast mode, the storm and cooldown phases are paced:
            // strikes must land on live waves (a microsecond blast would
            // arm every fault after the queue already drained), and the
            // ladder needs distinct quiet waves to step back down.
            std::thread::sleep(cfg.serve.park);
        }
    }

    let accepted = tickets.len() as u64;
    let ladder_peak = server.ladder().peak();
    // Drain: every accepted ticket resolves before shutdown returns.
    let breakers: u64 = (0..server.replicas()).map(|i| u64::from(server.breaker_trips(i))).sum();
    let strikes = storm.as_ref().map_or(0, Storm::strikes);
    let ladder_end = server.ladder().level();
    server.shutdown();
    let wall = start.elapsed();

    let model = RoundingModel::binary64();
    let bs = gemm_config.block_size;
    let mut completed = 0u64;
    let mut deadline_missed = 0u64;
    let mut unrecovered = 0u64;
    let mut sdc = 0u64;
    let mut latencies_ms = Vec::with_capacity(tickets.len());
    for (t, ticket) in tickets {
        match ticket.wait() {
            ServeOutcome::Completed(c) => {
                completed += 1;
                latencies_ms.push(c.latency.as_secs_f64() * 1e3);
                let (a, b, clean) = pool.get(t);
                let repair = c.healed().then_some(bs);
                let (truth, _) = classify_product(
                    &c.product,
                    clean,
                    a,
                    b,
                    &model,
                    gemm_config.omega,
                    repair,
                );
                if truth == GroundTruth::Critical {
                    sdc += 1;
                    metrics.counter_inc("serve.sdc");
                }
            }
            ServeOutcome::DeadlineMissed { .. } => deadline_missed += 1,
            ServeOutcome::Unrecovered { .. } => unrecovered += 1,
        }
    }
    latencies_ms.sort_by(f64::total_cmp);

    LevelReport {
        rate,
        submitted,
        accepted,
        shed,
        completed,
        late: metrics.counter("serve.late_completions") - late0,
        deadline_missed,
        unrecovered,
        retries: metrics.counter("serve.retries") - retries0,
        sdc,
        strikes,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        gemms_per_sec: completed as f64 / wall.as_secs_f64(),
        wall_s: wall.as_secs_f64(),
        escalations: metrics.counter("serve.escalations") - esc0,
        deescalations: metrics.counter("serve.deescalations") - dees0,
        ladder_peak,
        ladder_end,
        ewma_peak,
        breaker_trips: breakers,
    }
}

/// The skewed-shape, heterogeneous-replica placement bench: one seeded
/// request stream replayed once per placement policy over the same
/// replica fleet.
#[derive(Debug, Clone)]
pub struct MatrixBenchConfig {
    /// Dimension of the common (small) GEMMs.
    pub small_n: usize,
    /// Dimension of the heavy (large) GEMMs.
    pub big_n: usize,
    /// Every `big_every`-th submission is a large GEMM (the skew).
    pub big_every: usize,
    /// Submissions per policy run.
    pub requests: usize,
    /// The heterogeneous replica fleet (shared across policies).
    pub replicas: Vec<ReplicaSpec>,
    /// Input-pool seed.
    pub seed: u64,
    /// Rounds per (policy, feedback) row; the row reports its best
    /// round by GEMMs/s. On a loaded or single-core host the wall time
    /// of one short run carries scheduler noise comparable to the
    /// placement effect being measured — best-of-N gives every row the
    /// same number of tries at a quiet machine.
    pub rounds: usize,
    /// Server tuning (`policy` and `queue_capacity` are overridden per
    /// run: each policy gets its own server, and the queue is widened to
    /// hold the whole stream so shedding never skews the comparison).
    pub serve: ServeConfig,
    /// Protected-GEMM configuration.
    pub config: AAbftConfig,
}

impl Default for MatrixBenchConfig {
    fn default() -> Self {
        MatrixBenchConfig {
            small_n: 64,
            big_n: 256,
            big_every: 4,
            requests: 48,
            replicas: vec![
                "26:packed".parse().expect("valid default replica"),
                "6:scalar".parse().expect("valid default replica"),
                "6:scalar".parse().expect("valid default replica"),
            ],
            seed: 7,
            rounds: 1,
            serve: ServeConfig::default(),
            config: AAbftConfig::default(),
        }
    }
}

impl MatrixBenchConfig {
    /// Whether submission `t` is a large GEMM.
    fn is_big(&self, t: usize) -> bool {
        self.big_every > 0 && t.is_multiple_of(self.big_every)
    }
}

/// One replica's share of a policy run.
#[derive(Debug)]
pub struct ReplicaUtil {
    /// Replica label, e.g. `26sm:packed`.
    pub label: String,
    /// Waves this replica dispatched.
    pub waves: u64,
    /// Waves this replica stole.
    pub steals: u64,
    /// Wall time spent executing waves, seconds.
    pub busy_s: f64,
    /// Busy time over run wall time.
    pub utilization: f64,
    /// End-of-run calibration snapshot: `(shape class, measured/modelled
    /// EWMA)` per calibrated class.
    pub calibration: Vec<((usize, usize, usize), f64)>,
}

/// One policy's row in the placement matrix.
#[derive(Debug)]
pub struct PolicyReport {
    /// Record tag: `"policy-matrix"` or `"feedback-matrix"`.
    pub kind: &'static str,
    /// The placement policy measured.
    pub policy: PlacePolicy,
    /// Whether measured-cost feedback priced this run's waves.
    pub feedback: bool,
    /// Submissions (all admitted; the queue is sized to the stream).
    pub submitted: u64,
    /// Products released.
    pub completed: u64,
    /// Released products judged critically wrong.
    pub sdc: u64,
    /// Waves stolen across the fleet.
    pub steals: u64,
    /// Run wall time, seconds.
    pub wall_s: f64,
    /// Completions per wall-clock second — the headline metric.
    pub gemms_per_sec: f64,
    /// Median submit-to-resolve latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Calibration samples absorbed during the run.
    pub cal_updates: u64,
    /// Cold-class fallbacks taken during the run.
    pub cal_cold_hits: u64,
    /// Per-replica placement balance.
    pub per_replica: Vec<ReplicaUtil>,
}

impl PolicyReport {
    /// Flat JSON record (one element of the `BENCH_serve.json` array),
    /// tagged with its `kind` (`"policy-matrix"` or `"feedback-matrix"`).
    pub fn to_json(&self) -> JsonObject {
        let mut obj = JsonObject::new()
            .str("kind", self.kind)
            .str("policy", self.policy.label())
            .str("feedback", if self.feedback { "true" } else { "false" })
            .int("submitted", self.submitted)
            .int("completed", self.completed)
            .int("sdc", self.sdc)
            .int("steals", self.steals)
            .num("wall_s", self.wall_s)
            .num("gemms_per_sec", self.gemms_per_sec)
            .num("p50_ms", self.p50_ms)
            .num("p99_ms", self.p99_ms)
            .int("cal_updates", self.cal_updates)
            .int("cal_cold_hits", self.cal_cold_hits);
        for (idx, r) in self.per_replica.iter().enumerate() {
            obj = obj
                .str(&format!("replica{idx}"), &r.label)
                .int(&format!("replica{idx}_waves"), r.waves)
                .int(&format!("replica{idx}_steals"), r.steals)
                .num(&format!("replica{idx}_busy_s"), r.busy_s)
                .num(&format!("replica{idx}_utilization"), r.utilization);
            for &((m, n, q), ratio) in &r.calibration {
                obj = obj.num(&format!("replica{idx}_cal_{m}x{n}x{q}"), ratio);
            }
        }
        obj
    }
}

/// Runs the skewed-shape stream once per policy (round-robin, costed,
/// costed+stealing) and returns one report per policy, in that order.
/// All three runs price with measured-cost feedback (the production
/// default); the records tag as `"policy-matrix"`.
pub fn run_policy_matrix(cfg: &MatrixBenchConfig, obs: &Arc<Obs>) -> Vec<PolicyReport> {
    let small = InputPool::new(cfg.small_n, 3, cfg.seed);
    let big = InputPool::new(cfg.big_n, 2, cfg.seed ^ 0x5eed);
    [PlacePolicy::RoundRobin, PlacePolicy::Costed, PlacePolicy::CostedStealing]
        .into_iter()
        .map(|policy| run_policy(cfg, "policy-matrix", policy, true, &small, &big, obs))
        .collect()
}

/// The mis-modelled fleet the feedback matrix defaults to: an honest
/// replica next to a *liar* with the identical claimed spec — same SM
/// count, both priced as packed — whose device actually runs the scalar
/// engine, several times slower. The static model cannot tell them
/// apart, so it splits waves evenly and pays the liar's tax on half the
/// stream; only measured feedback can rig the split toward the honest
/// twin.
pub fn mis_modelled_fleet() -> Vec<ReplicaSpec> {
    vec![
        "13:packed".parse().expect("valid fleet spec"),
        "13:scalar@packed".parse().expect("valid fleet spec"),
    ]
}

/// The measured-cost-feedback shootout: the same seeded skewed stream
/// over a deliberately mis-modelled fleet (see [`mis_modelled_fleet`]),
/// three ways — static model-only `Costed` (the PR-9 behaviour, which
/// trusts the lying spec), calibrated `Costed`, and calibrated
/// `CostedStealing` with the adaptive observed-delay steal rule. Records
/// tag as `"feedback-matrix"`; the tier-1 gate compares the last row's
/// GEMMs/s against the first.
pub fn run_feedback_matrix(cfg: &MatrixBenchConfig, obs: &Arc<Obs>) -> Vec<PolicyReport> {
    let small = InputPool::new(cfg.small_n, 3, cfg.seed);
    let big = InputPool::new(cfg.big_n, 2, cfg.seed ^ 0x5eed);
    [
        (PlacePolicy::Costed, false),
        (PlacePolicy::Costed, true),
        (PlacePolicy::CostedStealing, true),
    ]
    .into_iter()
    .map(|(policy, feedback)| {
        run_policy(cfg, "feedback-matrix", policy, feedback, &small, &big, obs)
    })
    .collect()
}

fn run_policy(
    cfg: &MatrixBenchConfig,
    kind: &'static str,
    policy: PlacePolicy,
    feedback: bool,
    small: &InputPool,
    big: &InputPool,
    obs: &Arc<Obs>,
) -> PolicyReport {
    (0..cfg.rounds.max(1))
        .map(|round| run_policy_once(cfg, kind, policy, feedback, round, small, big, obs))
        .max_by(|a, b| a.gemms_per_sec.total_cmp(&b.gemms_per_sec))
        .expect("at least one round")
}

#[allow(clippy::too_many_arguments)]
fn run_policy_once(
    cfg: &MatrixBenchConfig,
    kind: &'static str,
    policy: PlacePolicy,
    feedback: bool,
    round: usize,
    small: &InputPool,
    big: &InputPool,
    obs: &Arc<Obs>,
) -> PolicyReport {
    let _run = aabft_obs::span!(
        obs, "serve", "policy_run",
        "policy" => policy.label(),
        "feedback" => u64::from(feedback),
        "round" => round as u64,
        "requests" => cfg.requests as u64,
    );
    let mut serve = cfg.serve;
    serve.policy = policy;
    serve.feedback = feedback;
    serve.queue_capacity = serve.queue_capacity.max(cfg.requests);
    let server = Server::start(
        serve,
        AAbftGemm::new(cfg.config),
        cfg.replicas.clone(),
        obs.clone(),
    )
    .expect("matrix bench ServeConfig is valid");

    let start = Instant::now();
    let mut tickets = Vec::with_capacity(cfg.requests);
    for t in 0..cfg.requests {
        let pool = if cfg.is_big(t) { big } else { small };
        let (a, b, _) = pool.get(t);
        // Unbounded + A-ABFT everywhere: the matrix isolates placement
        // throughput, so no deadline shedding and every product verified.
        let req = ServeRequest::new(a.clone(), b.clone())
            .with_policy(ProtectionPolicy::AAbft)
            .with_class(DeadlineClass::Unbounded);
        match server.submit(req) {
            Ok(ticket) => tickets.push((t, ticket)),
            Err(rej) => panic!("matrix bench queue sized to stream, yet: {rej}"),
        }
    }
    let submitted = tickets.len() as u64;
    // Wait for every ticket before reading the clock or the per-replica
    // accounts: under blast submission, nearly all the work happens
    // after the submit loop returns. SDC judgment runs outside the timed
    // window so host-side classification cost never skews the
    // policy-to-policy throughput ratio.
    let outcomes: Vec<(usize, ServeOutcome)> =
        tickets.into_iter().map(|(t, ticket)| (t, ticket.wait())).collect();
    let wall = start.elapsed();
    let steals = server.steals();
    let placement = server.placement();
    type ReplicaRaw = (String, u64, u64, Duration, Vec<((usize, usize, usize), f64)>);
    let per_replica_raw: Vec<ReplicaRaw> =
        (0..server.replicas())
            .map(|r| {
                (
                    server.replica_spec(r).label(),
                    server.replica_waves(r),
                    server.replica_steals(r),
                    server.replica_busy(r),
                    placement.calibration(r),
                )
            })
            .collect();
    let (cal_updates, cal_cold_hits) = (placement.cal_updates(), placement.cal_cold_hits());
    server.shutdown();

    let model = RoundingModel::binary64();
    let bs = cfg.config.block_size;
    let mut completed = 0u64;
    let mut sdc = 0u64;
    let mut latencies_ms = Vec::with_capacity(outcomes.len());
    for (t, outcome) in outcomes {
        match outcome {
            ServeOutcome::Completed(c) => {
                completed += 1;
                latencies_ms.push(c.latency.as_secs_f64() * 1e3);
                let pool = if cfg.is_big(t) { big } else { small };
                let (a, b, clean) = pool.get(t);
                let repair = c.healed().then_some(bs);
                let (truth, _) = classify_product(
                    &c.product, clean, a, b, &model, cfg.config.omega, repair,
                );
                if truth == GroundTruth::Critical {
                    sdc += 1;
                    obs.metrics.counter_inc("serve.sdc");
                }
            }
            other => panic!("unbounded verified request must complete, got {other:?}"),
        }
    }
    latencies_ms.sort_by(f64::total_cmp);

    PolicyReport {
        kind,
        policy,
        feedback,
        submitted,
        completed,
        sdc,
        steals,
        wall_s: wall.as_secs_f64(),
        gemms_per_sec: completed as f64 / wall.as_secs_f64(),
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        cal_updates,
        cal_cold_hits,
        per_replica: per_replica_raw
            .into_iter()
            .map(|(label, waves, steals, busy, calibration)| ReplicaUtil {
                label,
                waves,
                steals,
                busy_s: busy.as_secs_f64(),
                utilization: busy.as_secs_f64() / wall.as_secs_f64(),
                calibration,
            })
            .collect(),
    }
}
