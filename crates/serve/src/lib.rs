//! ABFT-as-a-service: a multi-tenant serving layer over the batch
//! engine, for the A-ABFT (DSN'14) reproduction.
//!
//! The library crates answer "is this one product trustworthy?"; this
//! crate answers the operational question that follows — what a service
//! does when trust costs latency and faults arrive in storms:
//!
//! * [`request`] — the tenant surface: [`ServeRequest`] (operands +
//!   protection policy + deadline class), synchronous [`Rejected`]
//!   admission errors, the exactly-once [`ServeOutcome`], and the
//!   [`Ticket`] a caller waits on;
//! * [`queue`] — the bounded, shape-sharded admission plane: explicit
//!   load shedding at capacity, deadline sweeping, and wave extraction
//!   from per-shape-class shards;
//! * [`placement`] — heterogeneous [`ReplicaSpec`]s (per-replica SM
//!   count and clean engine) and the [`PlacePolicy`] that costs ready
//!   waves against each replica's own `PerfModel`
//!   (round-robin / costed / costed+stealing), with an online
//!   calibration plane: per-(replica, shape-class) EWMAs of
//!   measured/modelled latency blend into every price, so placement
//!   corrects model error — including a replica whose spec lies about
//!   its engine — as it serves;
//! * [`ladder`] — the [`EscalationLadder`]: maps the
//!   `abft.fault_rate_ewma` gauge to a protection floor
//!   (`Base → Verify → Heal`) with hysteresis on the way down;
//! * [`breaker`] — per-replica [`CircuitBreaker`] quarantining a device
//!   after consecutive heal-budget exhaustions, draining its queue share
//!   to healthy replicas;
//! * [`server`] — [`Server`]: one dispatcher thread per replica device,
//!   waves through [`BatchGemm`], retry-with-backoff around heal
//!   budgets;
//! * [`chaos`] + [`bench`] — the seeded fault [`Storm`] and the
//!   open-loop load generator behind `aabft serve --bench` and
//!   `BENCH_serve.json`.
//!
//! [`BatchGemm`]: aabft_core::batch::BatchGemm
//!
//! # Example
//!
//! ```
//! use aabft_matrix::Matrix;
//! use aabft_serve::{ReplicaSpec, ServeConfig, ServeOutcome, ServeRequest, Server};
//!
//! let server = Server::start(
//!     ServeConfig::default(),
//!     aabft_core::AAbftGemm::default(),
//!     ReplicaSpec::defaults(1),
//!     aabft_obs::Obs::new_shared(),
//! )
//! .expect("valid config");
//! let a = Matrix::from_fn(8, 8, |i, j| (i + 2 * j) as f64);
//! let b = Matrix::from_fn(8, 8, |i, j| (i * j + 1) as f64);
//! let ticket = server.submit(ServeRequest::new(a, b)).expect("admitted");
//! match ticket.wait() {
//!     ServeOutcome::Completed(done) => assert_eq!(done.product.rows(), 8),
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod bench;
pub mod breaker;
pub mod chaos;
pub mod ladder;
pub mod placement;
pub mod queue;
pub mod request;
pub mod server;

pub use bench::{BenchConfig, LevelReport, MatrixBenchConfig, PolicyReport, TenantMix};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use chaos::{Storm, StormConfig};
pub use ladder::{EscalationLadder, LadderConfig, LadderLevel};
pub use placement::{shape_class, PlacePolicy, Placement, ReplicaSpec};
pub use request::{
    Completed, DeadlineClass, Rejected, ServeOutcome, ServeRequest, Ticket,
};
pub use server::{ServeConfig, ServeError, Server};
