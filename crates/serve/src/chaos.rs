//! Seeded fault-storm generator for load testing the server.
//!
//! Reuses the fault-campaign machinery: kernel-scope faults are drawn
//! from per-SM operation counts calibrated once against a clean run of
//! the same shape ([`scope_ops_per_sm`]), memory faults from the
//! augmented-layout regions of the shape's plan ([`mem_region_for`]).
//! Each [`Storm::strike`] arms one random fault on the given device;
//! the next wave that executes the struck scope (or lands the struck
//! phase boundary) absorbs it. Unfired plans persist across waves —
//! like real radiation, a strike does not politely wait for a victim.

use aabft_core::AAbftGemm;
use aabft_faults::bitflip::BitRegion;
use aabft_faults::plan::{
    mem_region_for, random_kernel_plan, random_memory_plan, scope_ops_per_sm, MemRegion,
};
use aabft_faults::{FaultSpec, MemScope};
use aabft_gpu_sim::device::Device;
use aabft_gpu_sim::inject::{FaultScope, FaultSite};
use aabft_matrix::Matrix;
use aabft_obs::Obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What one strike may arm.
#[derive(Debug)]
enum Arm {
    /// Kernel-scope fault with calibrated per-SM op counts.
    Kernel { scope: FaultScope, ops: Vec<u64> },
    /// Memory bit-flip in a buffer region at a phase boundary.
    Memory(MemRegion),
}

/// Storm shape: which scopes to draw from and the flipped-bit spec.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// RNG seed (the storm is fully deterministic given the seed).
    pub seed: u64,
    /// Pipeline kernel scopes to strike.
    pub kernel_scopes: Vec<FaultScope>,
    /// Device-buffer regions to strike.
    pub mem_scopes: Vec<MemScope>,
    /// Bit region flipped (exponent flips are the high-visibility
    /// default: large, detectable corruption).
    pub region: BitRegion,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            seed: 7,
            kernel_scopes: vec![FaultScope::Gemm, FaultScope::Encode, FaultScope::PMaxReduce],
            mem_scopes: vec![MemScope::Product, MemScope::ChecksumRows, MemScope::OperandA],
            region: BitRegion::Exponent,
        }
    }
}

/// A calibrated, seeded fault storm for one request shape.
#[derive(Debug)]
pub struct Storm {
    rng: StdRng,
    arms: Vec<Arm>,
    region: BitRegion,
    strikes: u64,
}

impl Storm {
    /// Calibrates a storm against a clean protected multiply of shape
    /// `n × n · n × n` under `gemm`'s configuration: per-SM op counts
    /// for each kernel scope, buffer regions from the plan's augmented
    /// layouts. Runs on a scratch device with private observability so
    /// calibration does not perturb server metrics.
    pub fn calibrate(cfg: &StormConfig, gemm: &AAbftGemm, n: usize) -> Storm {
        let mut device = Device::with_defaults();
        device.set_obs(Obs::new_shared());
        let a = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 7) as f64 * 0.19).sin());
        let b = Matrix::from_fn(n, n, |i, j| ((i * 11 + j) as f64 * 0.23).cos());
        gemm.multiply(&device, &a, &b);
        let log = device.take_log();
        let num_sms = device.config().num_sms;

        let plan = gemm.plan(n, n, n);
        let mut arms = Vec::new();
        for &scope in &cfg.kernel_scopes {
            let ops = scope_ops_per_sm(&log, scope, num_sms);
            if ops.iter().sum::<u64>() > 0 {
                arms.push(Arm::Kernel { scope, ops });
            }
        }
        for &scope in &cfg.mem_scopes {
            arms.push(Arm::Memory(mem_region_for(scope, &plan.rows, plan.inner, &plan.cols)));
        }
        assert!(!arms.is_empty(), "storm has no live scopes to draw from");
        Storm { rng: StdRng::seed_from_u64(cfg.seed), arms, region: cfg.region, strikes: 0 }
    }

    /// Arms one random fault on `device`; returns the struck scope's
    /// label. The flip is a single random bit in the configured region
    /// ([`StormConfig::region`]).
    pub fn strike(&mut self, device: &Device) -> &'static str {
        self.strikes += 1;
        let pick = self.rng.gen_range(0..self.arms.len() as u64) as usize;
        let spec = FaultSpec::single(FaultSite::InnerAdd, self.region);
        match &self.arms[pick] {
            Arm::Kernel { scope, ops } => {
                let plan = random_kernel_plan(*scope, spec, ops, &mut self.rng)
                    .expect("calibrated scope has operations");
                device.arm_kernel_fault(plan);
                scope.label()
            }
            Arm::Memory(region) => {
                let plan = random_memory_plan(*region, spec, &mut self.rng);
                device.arm_memory_fault(plan);
                region.buffer
            }
        }
    }

    /// Strikes issued so far.
    pub fn strikes(&self) -> u64 {
        self.strikes
    }
}
