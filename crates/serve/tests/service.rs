//! End-to-end service semantics: admission control under overload,
//! deadline cancellation, retry-with-backoff around heal budgets,
//! breaker quarantine, and the storm-time escalation ladder — with the
//! exactly-one-terminal-outcome accounting checked throughout.

use std::time::Duration;

use aabft_core::batch::ProtectionPolicy;
use aabft_core::{AAbftConfig, AAbftGemm};
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_gpu_sim::MemoryFaultPlan;
use aabft_matrix::Matrix;
use aabft_obs::Obs;
use aabft_serve::bench::{run_bench, BenchConfig, TenantMix};
use aabft_serve::ladder::LadderConfig;
use aabft_serve::{
    BreakerConfig, BreakerState, DeadlineClass, PlacePolicy, ReplicaSpec, ServeConfig,
    ServeError, ServeOutcome, ServeRequest, Server,
};

fn small_gemm() -> AAbftGemm {
    AAbftGemm::new(
        AAbftConfig::builder()
            .block_size(4)
            .tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
            .build()
            .expect("valid test config"),
    )
}

fn operands(r: usize) -> (Matrix<f64>, Matrix<f64>) {
    (
        Matrix::from_fn(16, 16, |i, j| ((r * 5 + i * 3 + j) as f64 * 0.17).sin()),
        Matrix::from_fn(16, 16, |i, j| ((r * 7 + i + j * 2) as f64 * 0.13).cos()),
    )
}

/// Overload: a tiny queue blasted with unpaced submissions must shed
/// explicitly at admission, and every accepted ticket must still resolve
/// to exactly one terminal outcome.
#[test]
fn overload_sheds_and_every_accepted_request_resolves() {
    let cfg = ServeConfig { queue_capacity: 2, max_wave: 2, ..ServeConfig::default() };
    let obs = Obs::new_shared();
    let server = Server::start(cfg, small_gemm(), ReplicaSpec::defaults(1), obs.clone())
        .expect("valid test config");

    let total = 200;
    let mut tickets = Vec::new();
    let mut shed = 0u64;
    for r in 0..total {
        let (a, b) = operands(r);
        let req = ServeRequest::new(a, b).with_class(DeadlineClass::Unbounded);
        match server.submit(req) {
            Ok(t) => tickets.push(t),
            Err(rej) => {
                assert!(
                    matches!(rej, aabft_serve::Rejected::QueueFull { capacity: 2 }),
                    "only QueueFull sheds here, got {rej}"
                );
                shed += 1;
            }
        }
    }
    assert!(shed > 0, "a 2-deep queue cannot absorb a 200-request blast");
    let accepted = tickets.len() as u64;
    server.shutdown();

    let mut completed = 0u64;
    for t in tickets {
        match t.wait() {
            ServeOutcome::Completed(c) => {
                assert_eq!(c.product.shape(), (16, 16));
                completed += 1;
            }
            other => panic!("unbounded fault-free requests complete, got {other:?}"),
        }
    }
    assert_eq!(completed, accepted);
    assert_eq!(completed + shed, total as u64, "every submission has one fate");
    assert_eq!(obs.metrics.counter("serve.shed"), shed);
    assert_eq!(obs.metrics.counter("serve.completed"), completed);
}

/// Deadline semantics: an interactive request whose deadline has already
/// passed is cancelled in the queue (never executed), while batch-class
/// traffic in the same queue completes.
#[test]
fn expired_interactive_requests_are_cancelled_not_run() {
    let cfg = ServeConfig {
        interactive_deadline: Duration::ZERO,
        ..ServeConfig::default()
    };
    let obs = Obs::new_shared();
    let server = Server::start(cfg, small_gemm(), ReplicaSpec::defaults(1), obs.clone())
        .expect("valid test config");

    let mut interactive = Vec::new();
    for r in 0..4 {
        let (a, b) = operands(r);
        let req = ServeRequest::new(a, b).with_class(DeadlineClass::Interactive);
        interactive.push(server.submit(req).expect("admitted"));
    }
    let (a, b) = operands(9);
    let batch = server.submit(ServeRequest::new(a, b)).expect("admitted");
    server.shutdown();

    for t in interactive {
        match t.wait() {
            ServeOutcome::DeadlineMissed { class, .. } => {
                assert_eq!(class, DeadlineClass::Interactive);
            }
            other => panic!("a zero deadline must cancel in queue, got {other:?}"),
        }
    }
    assert!(matches!(batch.wait(), ServeOutcome::Completed(_)));
    assert_eq!(obs.metrics.counter("serve.deadline-missed"), 4);
}

/// The resilience controller: a fail-fast `SelfHealing { budget: 0 }`
/// tenant struck by a one-shot fault resolves `Unrecovered` on the first
/// try, is retried with backoff, and completes cleanly on the retry.
#[test]
fn unrecovered_request_retries_and_completes() {
    let cfg = ServeConfig {
        max_retries: 1,
        retry_backoff: Duration::from_micros(100),
        ..ServeConfig::default()
    };
    let obs = Obs::new_shared();
    let gemm = small_gemm();
    let server = Server::start(cfg, gemm, ReplicaSpec::defaults(1), obs.clone())
        .expect("valid test config");

    let plan = gemm.plan(16, 16, 16);
    server.device(0).arm_memory_fault(MemoryFaultPlan {
        buffer: "c",
        word: 2 * plan.cols.total + 3,
        mask: 1 << 62,
        after_phase: "gemm",
    });
    let (a, b) = operands(3);
    let req = ServeRequest::new(a, b)
        .with_policy(ProtectionPolicy::SelfHealing { budget: 0 })
        .with_class(DeadlineClass::Unbounded);
    let ticket = server.submit(req).expect("admitted");
    server.shutdown();

    match ticket.wait() {
        ServeOutcome::Completed(c) => {
            assert_eq!(c.retries, 1, "first try hit the fault, the retry ran clean");
            assert_eq!(c.attempts, 0, "the clean retry needed no healing");
        }
        other => panic!("the retry must complete, got {other:?}"),
    }
    assert_eq!(obs.metrics.counter("serve.retries"), 1);
    assert_eq!(obs.metrics.counter("serve.unrecovered"), 0, "retry absorbed the failure");
}

/// With retries disabled the same failure is terminal: the caller gets an
/// explicit `Unrecovered` (no product released) and the breaker trips
/// after consecutive failures, then recovers through a half-open probe.
#[test]
fn terminal_unrecovered_trips_the_breaker_and_probe_recovers() {
    let cfg = ServeConfig {
        max_retries: 0,
        breaker: BreakerConfig { trip_after: 1, cooloff: Duration::from_millis(5) },
        ..ServeConfig::default()
    };
    let obs = Obs::new_shared();
    let gemm = small_gemm();
    let server = Server::start(cfg, gemm, ReplicaSpec::defaults(1), obs.clone())
        .expect("valid test config");

    let plan = gemm.plan(16, 16, 16);
    server.device(0).arm_memory_fault(MemoryFaultPlan {
        buffer: "c",
        word: 2 * plan.cols.total + 3,
        mask: 1 << 62,
        after_phase: "gemm",
    });
    let (a, b) = operands(4);
    let req = ServeRequest::new(a, b)
        .with_policy(ProtectionPolicy::SelfHealing { budget: 0 })
        .with_class(DeadlineClass::Unbounded);
    let doomed = server.submit(req).expect("admitted");

    // Wait for the trip so the follow-up demonstrably goes through a
    // quarantine + half-open probe rather than a still-closed breaker.
    match doomed.wait() {
        ServeOutcome::Unrecovered { attempts, retries } => {
            assert_eq!(attempts, 0);
            assert_eq!(retries, 0);
        }
        other => panic!("retries are disabled, got {other:?}"),
    }
    assert_eq!(server.breaker_trips(0), 1);

    let (a, b) = operands(5);
    let req = ServeRequest::new(a, b).with_class(DeadlineClass::Unbounded);
    let probe = server.submit(req).expect("admitted");
    match probe.wait() {
        ServeOutcome::Completed(c) => assert!(!c.healed()),
        other => panic!("the probe wave runs clean, got {other:?}"),
    }
    assert!(
        matches!(server.breaker_state(0), BreakerState::Closed),
        "a successful probe re-closes the breaker"
    );
    server.shutdown();
    assert_eq!(obs.metrics.counter("serve.breaker_trips"), 1);
}

/// The whole loop under a seeded storm, via the bench harness: the ladder
/// escalates while the fault-rate EWMA is elevated and de-escalates in
/// the quiet cooldown, no silent data corruption is released, and the
/// level's accounting closes (every accepted request has one outcome).
#[test]
fn storm_escalates_the_ladder_and_releases_no_sdc() {
    let cfg = BenchConfig {
        n: 16,
        replicas: 2,
        rates: vec![0.0],
        requests: 60,
        storm: true,
        storm_every: 3,
        cooldown: 120,
        mix: TenantMix::Verified,
        seed: 11,
        serve: ServeConfig {
            // The ladder's quiet window is under test, not deadline
            // pressure: give batch traffic room to complete so the
            // cooldown actually produces clean check samples.
            batch_deadline: Duration::from_secs(30),
            interactive_deadline: Duration::from_secs(30),
            // escalate_verify below the worst-case decay between a
            // detection and the next ladder observation: a detection
            // lifts the fault EWMA to >= 0.1 and each clean check decays
            // it by 0.9; with a detection first in a full 8-deep wave
            // plus the other replica's concurrent clean wave interleaved
            // (global gauge), up to ~15 clean samples can land before
            // the faulty wave's completion observation — 0.1 x 0.9^15
            // ~= 0.021, which the default 0.05 threshold misses. That
            // made this test timing-flaky; the quiet band moves down
            // with it so the cooldown still de-escalates.
            ladder: LadderConfig {
                quiet_ticks: 2,
                escalate_verify: 0.015,
                deescalate_below: 0.005,
                ..LadderConfig::default()
            },
            ..ServeConfig::default()
        },
        config: AAbftConfig::builder()
            .block_size(4)
            .tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
            .build()
            .expect("valid test config"),
    };
    let obs = Obs::new_shared();
    let reports = run_bench(&cfg, &obs);
    assert_eq!(reports.len(), 1);
    let r = &reports[0];

    assert_eq!(r.sdc, 0, "verified tenants must never release a critical product");
    assert!(r.strikes > 0, "the storm must actually strike");
    assert!(r.escalations > 0, "an elevated EWMA must raise the floor");
    assert!(r.deescalations > 0, "the quiet cooldown must lower it again");
    assert!(r.ewma_peak > 0.0);
    assert!(r.completed > 0);
    assert_eq!(
        r.accepted,
        r.completed + r.deadline_missed + r.unrecovered,
        "every accepted request resolves to exactly one terminal outcome"
    );
    assert_eq!(r.submitted, r.accepted + r.shed);
}

/// Satellite 1: a config that cannot run a correct server is refused
/// synchronously with a typed error — no dispatcher thread ever starts,
/// so nothing can panic later.
#[test]
fn invalid_configs_are_rejected_with_typed_errors() {
    let obs = Obs::new_shared();

    let cfg = ServeConfig { queue_capacity: 0, ..ServeConfig::default() };
    match Server::start(cfg, small_gemm(), ReplicaSpec::defaults(1), obs.clone()) {
        Err(ServeError::Config { field: "queue_capacity", .. }) => {}
        other => panic!("zero capacity must be refused, got {other:?}"),
    }

    let cfg = ServeConfig { max_wave: 0, ..ServeConfig::default() };
    match Server::start(cfg, small_gemm(), ReplicaSpec::defaults(1), obs.clone()) {
        Err(ServeError::Config { field: "max_wave", .. }) => {}
        other => panic!("zero wave must be refused, got {other:?}"),
    }

    match Server::start(ServeConfig::default(), small_gemm(), Vec::new(), obs.clone()) {
        Err(ServeError::Config { field: "replicas", .. }) => {}
        other => panic!("an empty replica set must be refused, got {other:?}"),
    }

    // The error carries enough to render a useful message.
    let err = Server::start(
        ServeConfig { queue_capacity: 0, ..ServeConfig::default() },
        small_gemm(),
        ReplicaSpec::defaults(1),
        obs,
    )
    .expect_err("refused");
    let msg = format!("{err}");
    assert!(msg.contains("queue_capacity"), "message names the field: {msg}");
}

/// Satellite 3: the same request stream over one fast and two slow
/// replicas yields bit-identical products under every placement policy —
/// placement and steal interleaving affect *where* a GEMM runs, never
/// its result — and the accounting closes under each.
#[test]
fn heterogeneous_replicas_are_bit_identical_across_policies() {
    let fleet: Vec<ReplicaSpec> = vec![
        "26:packed".parse().expect("valid spec"),
        "6:scalar".parse().expect("valid spec"),
        "6:scalar".parse().expect("valid spec"),
    ];
    let total = 24;
    let mut reference: Option<Vec<Matrix<f64>>> = None;

    for policy in [PlacePolicy::RoundRobin, PlacePolicy::Costed, PlacePolicy::CostedStealing] {
        let cfg = ServeConfig { policy, queue_capacity: 64, ..ServeConfig::default() };
        let obs = Obs::new_shared();
        let server = Server::start(cfg, small_gemm(), fleet.clone(), obs.clone())
            .expect("valid test config");
        let tickets: Vec<_> = (0..total)
            .map(|r| {
                let (a, b) = operands(r);
                // Mix shapes so both shard classes and both engines see
                // traffic under every policy.
                let (a, b) = if r % 3 == 0 {
                    (
                        Matrix::from_fn(32, 32, |i, j| ((r + i * 7 + j) as f64 * 0.11).sin()),
                        Matrix::from_fn(32, 32, |i, j| ((r * 3 + i + j) as f64 * 0.19).cos()),
                    )
                } else {
                    (a, b)
                };
                server
                    .submit(ServeRequest::new(a, b).with_class(DeadlineClass::Unbounded))
                    .expect("admitted")
            })
            .collect();
        server.shutdown();

        let products: Vec<Matrix<f64>> = tickets
            .into_iter()
            .map(|t| match t.wait() {
                ServeOutcome::Completed(c) => {
                    assert!(c.replica < fleet.len());
                    c.product
                }
                other => panic!("fault-free unbounded requests complete, got {other:?}"),
            })
            .collect();
        assert_eq!(obs.metrics.counter("serve.completed"), total as u64);
        match &reference {
            None => reference = Some(products),
            Some(reference) => {
                for (i, (got, want)) in products.iter().zip(reference).enumerate() {
                    assert_eq!(
                        got.as_slice(),
                        want.as_slice(),
                        "request {i} differs under {policy:?} — placement must not \
                         change numerics"
                    );
                }
            }
        }
    }
}

/// The costed policies place heavy shapes on the fast replica: after a
/// skewed stream drains, the big-GEMM waves ran on the packed 26-SM
/// replica, not the scalar stragglers.
#[test]
fn costed_placement_routes_heavy_shapes_to_the_fast_replica() {
    let fleet: Vec<ReplicaSpec> = vec![
        "26:packed".parse().expect("valid spec"),
        "6:scalar".parse().expect("valid spec"),
    ];
    let cfg = ServeConfig {
        policy: PlacePolicy::Costed,
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let obs = Obs::new_shared();
    let server =
        Server::start(cfg, small_gemm(), fleet, obs.clone()).expect("valid test config");
    let tickets: Vec<_> = (0..6)
        .map(|r| {
            // 256³ sits far enough past the launch-overhead floor that
            // the scalar replica is never the argmin, even against the
            // packed replica's worst-case inflight (smaller shapes are
            // overhead-dominated and the model is legitimately
            // indifferent about them).
            let a = Matrix::from_fn(256, 256, |i, j| ((r + i * 3 + j) as f64 * 0.07).sin());
            let b = Matrix::from_fn(256, 256, |i, j| ((r * 5 + i + j * 2) as f64 * 0.05).cos());
            server
                .submit(ServeRequest::new(a, b).with_class(DeadlineClass::Unbounded))
                .expect("admitted")
        })
        .collect();
    // Wait before shutdown: the post-close drain is deliberately
    // policy-free, so judging placement there would be meaningless.
    for t in tickets {
        match t.wait() {
            ServeOutcome::Completed(c) => assert_eq!(
                c.replica, 0,
                "a 256³ wave belongs on the 26-SM packed replica"
            ),
            other => panic!("fault-free unbounded requests complete, got {other:?}"),
        }
    }
    server.shutdown();
}

/// Measured-cost feedback corrects a lying `ReplicaSpec`: a fleet of two
/// replicas with *identical claimed specs* — one honestly packed, one a
/// scalar engine claiming packed — starts out model-indifferent, but after
/// each replica serves one measured heavy wave, every subsequent heavy
/// request lands on the honest replica because the liar's calibration
/// ratio has converged away from its twin's.
#[test]
fn feedback_calibration_stops_routing_heavy_waves_to_the_liar() {
    let fleet: Vec<ReplicaSpec> = vec![
        "13:packed".parse().expect("valid spec"),
        "13:scalar@packed".parse().expect("valid spec"),
    ];
    let cfg = ServeConfig {
        policy: PlacePolicy::Costed,
        queue_capacity: 64,
        // One request per wave: each request is one measured sample, so
        // the warm-up schedule below is exact.
        max_wave: 1,
        ..ServeConfig::default()
    };
    let obs = Obs::new_shared();
    let server =
        Server::start(cfg, small_gemm(), fleet, obs.clone()).expect("valid test config");

    let heavy = |r: usize| {
        let a = Matrix::from_fn(256, 256, |i, j| ((r + i * 3 + j) as f64 * 0.07).sin());
        let b = Matrix::from_fn(256, 256, |i, j| ((r * 5 + i + j * 2) as f64 * 0.05).cos());
        ServeRequest::new(a, b).with_class(DeadlineClass::Unbounded)
    };

    // Warm-up: two back-to-back submissions. The claimed specs price
    // identically, so inflight accounting sends one wave to each replica
    // and both earn a measured sample for the 256-class.
    let first = server.submit(heavy(0)).expect("admitted");
    let second = server.submit(heavy(1)).expect("admitted");
    for t in [first, second] {
        match t.wait() {
            ServeOutcome::Completed(_) => {}
            other => panic!("fault-free warm-up completes, got {other:?}"),
        }
    }
    let placement = server.placement();
    assert!(
        placement.is_warm(0) && placement.is_warm(1),
        "the symmetric warm-up leaves a measured sample on both replicas"
    );

    // Converged: serialized heavy requests (idle fleet each time) must all
    // land on the honest replica — the liar's blended price now carries
    // its measured ratio, which is several times its twin's.
    for r in 2..5 {
        match server.submit(heavy(r)).expect("admitted").wait() {
            ServeOutcome::Completed(c) => assert_eq!(
                c.replica, 0,
                "calibrated placement keeps heavy waves off the lying replica"
            ),
            other => panic!("fault-free unbounded requests complete, got {other:?}"),
        }
    }

    let key = (256, 256, 256);
    assert!(
        placement.ratio(1, key) > placement.ratio(0, key),
        "the scalar liar's measured/modelled ratio ({:.2}) exceeds its honest twin's ({:.2})",
        placement.ratio(1, key),
        placement.ratio(0, key),
    );
    server.shutdown();
}

/// A replica's calibration state is placement history, not breaker state:
/// tripping the breaker and recovering through a half-open probe must not
/// reset the measured ratios the replica earned before quarantine.
#[test]
fn calibration_survives_the_breaker_round_trip() {
    let cfg = ServeConfig {
        max_retries: 0,
        breaker: BreakerConfig { trip_after: 1, cooloff: Duration::from_millis(5) },
        ..ServeConfig::default()
    };
    let obs = Obs::new_shared();
    let gemm = small_gemm();
    let server = Server::start(cfg, gemm, ReplicaSpec::defaults(1), obs.clone())
        .expect("valid test config");

    // Warm a 64-class ratio with a clean wave, distinct from the 16-class
    // the doomed and probe waves will touch.
    let a = Matrix::from_fn(64, 64, |i, j| ((i * 3 + j) as f64 * 0.07).sin());
    let b = Matrix::from_fn(64, 64, |i, j| ((i + j * 2) as f64 * 0.05).cos());
    let warm = server
        .submit(ServeRequest::new(a, b).with_class(DeadlineClass::Unbounded))
        .expect("admitted");
    match warm.wait() {
        ServeOutcome::Completed(_) => {}
        other => panic!("the warm-up wave runs clean, got {other:?}"),
    }
    let placement = server.placement();
    let key = (64, 64, 64);
    let warmed = placement.ratio(0, key);
    assert!(placement.is_warm(0), "the clean wave left a measured sample");

    // Trip: a terminal Unrecovered on a 16x16 wave quarantines the replica.
    let plan = gemm.plan(16, 16, 16);
    server.device(0).arm_memory_fault(MemoryFaultPlan {
        buffer: "c",
        word: 2 * plan.cols.total + 3,
        mask: 1 << 62,
        after_phase: "gemm",
    });
    let (a, b) = operands(8);
    let req = ServeRequest::new(a, b)
        .with_policy(ProtectionPolicy::SelfHealing { budget: 0 })
        .with_class(DeadlineClass::Unbounded);
    match server.submit(req).expect("admitted").wait() {
        ServeOutcome::Unrecovered { .. } => {}
        other => panic!("retries are disabled, got {other:?}"),
    }
    assert_eq!(server.breaker_trips(0), 1);

    // Recover through the half-open probe, then check the round trip left
    // the 64-class calibration exactly where the clean wave put it.
    let (a, b) = operands(9);
    let req = ServeRequest::new(a, b).with_class(DeadlineClass::Unbounded);
    match server.submit(req).expect("admitted").wait() {
        ServeOutcome::Completed(c) => assert!(!c.healed()),
        other => panic!("the probe wave runs clean, got {other:?}"),
    }
    assert!(
        matches!(server.breaker_state(0), BreakerState::Closed),
        "a successful probe re-closes the breaker"
    );
    assert_eq!(
        placement.ratio(0, key),
        warmed,
        "quarantine and recovery must not touch the 64-class calibration"
    );
    assert!(
        placement.calibration(0).iter().any(|(class, _)| *class == key),
        "the warmed class is still present after the breaker round trip"
    );
    server.shutdown();
}
