//! End-to-end service semantics: admission control under overload,
//! deadline cancellation, retry-with-backoff around heal budgets,
//! breaker quarantine, and the storm-time escalation ladder — with the
//! exactly-one-terminal-outcome accounting checked throughout.

use std::time::Duration;

use aabft_core::batch::ProtectionPolicy;
use aabft_core::{AAbftConfig, AAbftGemm};
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_gpu_sim::{Device, MemoryFaultPlan};
use aabft_matrix::Matrix;
use aabft_obs::Obs;
use aabft_serve::bench::{run_bench, BenchConfig, TenantMix};
use aabft_serve::ladder::LadderConfig;
use aabft_serve::{
    BreakerConfig, BreakerState, DeadlineClass, ServeConfig, ServeOutcome, ServeRequest, Server,
};

fn small_gemm() -> AAbftGemm {
    AAbftGemm::new(
        AAbftConfig::builder()
            .block_size(4)
            .tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
            .build()
            .expect("valid test config"),
    )
}

fn operands(r: usize) -> (Matrix<f64>, Matrix<f64>) {
    (
        Matrix::from_fn(16, 16, |i, j| ((r * 5 + i * 3 + j) as f64 * 0.17).sin()),
        Matrix::from_fn(16, 16, |i, j| ((r * 7 + i + j * 2) as f64 * 0.13).cos()),
    )
}

/// Overload: a tiny queue blasted with unpaced submissions must shed
/// explicitly at admission, and every accepted ticket must still resolve
/// to exactly one terminal outcome.
#[test]
fn overload_sheds_and_every_accepted_request_resolves() {
    let cfg = ServeConfig { queue_capacity: 2, max_wave: 2, ..ServeConfig::default() };
    let obs = Obs::new_shared();
    let server = Server::start(cfg, small_gemm(), vec![Device::with_defaults()], obs.clone());

    let total = 200;
    let mut tickets = Vec::new();
    let mut shed = 0u64;
    for r in 0..total {
        let (a, b) = operands(r);
        let req = ServeRequest::new(a, b).with_class(DeadlineClass::Unbounded);
        match server.submit(req) {
            Ok(t) => tickets.push(t),
            Err(rej) => {
                assert!(
                    matches!(rej, aabft_serve::Rejected::QueueFull { capacity: 2 }),
                    "only QueueFull sheds here, got {rej}"
                );
                shed += 1;
            }
        }
    }
    assert!(shed > 0, "a 2-deep queue cannot absorb a 200-request blast");
    let accepted = tickets.len() as u64;
    server.shutdown();

    let mut completed = 0u64;
    for t in tickets {
        match t.wait() {
            ServeOutcome::Completed(c) => {
                assert_eq!(c.product.shape(), (16, 16));
                completed += 1;
            }
            other => panic!("unbounded fault-free requests complete, got {other:?}"),
        }
    }
    assert_eq!(completed, accepted);
    assert_eq!(completed + shed, total as u64, "every submission has one fate");
    assert_eq!(obs.metrics.counter("serve.shed"), shed);
    assert_eq!(obs.metrics.counter("serve.completed"), completed);
}

/// Deadline semantics: an interactive request whose deadline has already
/// passed is cancelled in the queue (never executed), while batch-class
/// traffic in the same queue completes.
#[test]
fn expired_interactive_requests_are_cancelled_not_run() {
    let cfg = ServeConfig {
        interactive_deadline: Duration::ZERO,
        ..ServeConfig::default()
    };
    let obs = Obs::new_shared();
    let server = Server::start(cfg, small_gemm(), vec![Device::with_defaults()], obs.clone());

    let mut interactive = Vec::new();
    for r in 0..4 {
        let (a, b) = operands(r);
        let req = ServeRequest::new(a, b).with_class(DeadlineClass::Interactive);
        interactive.push(server.submit(req).expect("admitted"));
    }
    let (a, b) = operands(9);
    let batch = server.submit(ServeRequest::new(a, b)).expect("admitted");
    server.shutdown();

    for t in interactive {
        match t.wait() {
            ServeOutcome::DeadlineMissed { class, .. } => {
                assert_eq!(class, DeadlineClass::Interactive);
            }
            other => panic!("a zero deadline must cancel in queue, got {other:?}"),
        }
    }
    assert!(matches!(batch.wait(), ServeOutcome::Completed(_)));
    assert_eq!(obs.metrics.counter("serve.deadline-missed"), 4);
}

/// The resilience controller: a fail-fast `SelfHealing { budget: 0 }`
/// tenant struck by a one-shot fault resolves `Unrecovered` on the first
/// try, is retried with backoff, and completes cleanly on the retry.
#[test]
fn unrecovered_request_retries_and_completes() {
    let cfg = ServeConfig {
        max_retries: 1,
        retry_backoff: Duration::from_micros(100),
        ..ServeConfig::default()
    };
    let obs = Obs::new_shared();
    let gemm = small_gemm();
    let server = Server::start(cfg, gemm, vec![Device::with_defaults()], obs.clone());

    let plan = gemm.plan(16, 16, 16);
    server.device(0).arm_memory_fault(MemoryFaultPlan {
        buffer: "c",
        word: 2 * plan.cols.total + 3,
        mask: 1 << 62,
        after_phase: "gemm",
    });
    let (a, b) = operands(3);
    let req = ServeRequest::new(a, b)
        .with_policy(ProtectionPolicy::SelfHealing { budget: 0 })
        .with_class(DeadlineClass::Unbounded);
    let ticket = server.submit(req).expect("admitted");
    server.shutdown();

    match ticket.wait() {
        ServeOutcome::Completed(c) => {
            assert_eq!(c.retries, 1, "first try hit the fault, the retry ran clean");
            assert_eq!(c.attempts, 0, "the clean retry needed no healing");
        }
        other => panic!("the retry must complete, got {other:?}"),
    }
    assert_eq!(obs.metrics.counter("serve.retries"), 1);
    assert_eq!(obs.metrics.counter("serve.unrecovered"), 0, "retry absorbed the failure");
}

/// With retries disabled the same failure is terminal: the caller gets an
/// explicit `Unrecovered` (no product released) and the breaker trips
/// after consecutive failures, then recovers through a half-open probe.
#[test]
fn terminal_unrecovered_trips_the_breaker_and_probe_recovers() {
    let cfg = ServeConfig {
        max_retries: 0,
        breaker: BreakerConfig { trip_after: 1, cooloff: Duration::from_millis(5) },
        ..ServeConfig::default()
    };
    let obs = Obs::new_shared();
    let gemm = small_gemm();
    let server = Server::start(cfg, gemm, vec![Device::with_defaults()], obs.clone());

    let plan = gemm.plan(16, 16, 16);
    server.device(0).arm_memory_fault(MemoryFaultPlan {
        buffer: "c",
        word: 2 * plan.cols.total + 3,
        mask: 1 << 62,
        after_phase: "gemm",
    });
    let (a, b) = operands(4);
    let req = ServeRequest::new(a, b)
        .with_policy(ProtectionPolicy::SelfHealing { budget: 0 })
        .with_class(DeadlineClass::Unbounded);
    let doomed = server.submit(req).expect("admitted");

    // Wait for the trip so the follow-up demonstrably goes through a
    // quarantine + half-open probe rather than a still-closed breaker.
    match doomed.wait() {
        ServeOutcome::Unrecovered { attempts, retries } => {
            assert_eq!(attempts, 0);
            assert_eq!(retries, 0);
        }
        other => panic!("retries are disabled, got {other:?}"),
    }
    assert_eq!(server.breaker_trips(0), 1);

    let (a, b) = operands(5);
    let req = ServeRequest::new(a, b).with_class(DeadlineClass::Unbounded);
    let probe = server.submit(req).expect("admitted");
    match probe.wait() {
        ServeOutcome::Completed(c) => assert!(!c.healed()),
        other => panic!("the probe wave runs clean, got {other:?}"),
    }
    assert!(
        matches!(server.breaker_state(0), BreakerState::Closed),
        "a successful probe re-closes the breaker"
    );
    server.shutdown();
    assert_eq!(obs.metrics.counter("serve.breaker_trips"), 1);
}

/// The whole loop under a seeded storm, via the bench harness: the ladder
/// escalates while the fault-rate EWMA is elevated and de-escalates in
/// the quiet cooldown, no silent data corruption is released, and the
/// level's accounting closes (every accepted request has one outcome).
#[test]
fn storm_escalates_the_ladder_and_releases_no_sdc() {
    let cfg = BenchConfig {
        n: 16,
        replicas: 2,
        rates: vec![0.0],
        requests: 60,
        storm: true,
        storm_every: 3,
        cooldown: 120,
        mix: TenantMix::Verified,
        seed: 11,
        serve: ServeConfig {
            // The ladder's quiet window is under test, not deadline
            // pressure: give batch traffic room to complete so the
            // cooldown actually produces clean check samples.
            batch_deadline: Duration::from_secs(30),
            interactive_deadline: Duration::from_secs(30),
            ladder: LadderConfig { quiet_ticks: 2, ..LadderConfig::default() },
            ..ServeConfig::default()
        },
        config: AAbftConfig::builder()
            .block_size(4)
            .tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
            .build()
            .expect("valid test config"),
    };
    let obs = Obs::new_shared();
    let reports = run_bench(&cfg, &obs);
    assert_eq!(reports.len(), 1);
    let r = &reports[0];

    assert_eq!(r.sdc, 0, "verified tenants must never release a critical product");
    assert!(r.strikes > 0, "the storm must actually strike");
    assert!(r.escalations > 0, "an elevated EWMA must raise the floor");
    assert!(r.deescalations > 0, "the quiet cooldown must lower it again");
    assert!(r.ewma_peak > 0.0);
    assert!(r.completed > 0);
    assert_eq!(
        r.accepted,
        r.completed + r.deadline_missed + r.unrecovered,
        "every accepted request resolves to exactly one terminal outcome"
    );
    assert_eq!(r.submitted, r.accepted + r.shed);
}
