//! Running any [`ProtectedGemm`] scheme under the multi-stream batch
//! engine, for Table-I-style throughput comparisons.
//!
//! [`run_batch`] distributes a slice of GEMM requests round-robin across
//! device streams and issues each request's kernels through an
//! [`ExecCtx`] on its stream. Because the simulator executes kernels
//! functionally at issue time, the results are bit-identical to running the
//! requests sequentially; only the *modelled* timeline changes — requests
//! on distinct streams share the device's SMs and overlap (see
//! `PerfModel::schedule`), which is where small-GEMM batches win back their
//! per-call overhead.
//!
//! The A-ABFT operator additionally has a phase-interleaved engine
//! (`aabft_core::BatchGemm`) that overlaps *phases* of different requests
//! and pools device buffers; this module is the scheme-generic counterpart.

use crate::scheme::{ProtectedGemm, ProtectedResult};
use aabft_core::AbftError;
use aabft_gpu_sim::device::Device;
use aabft_gpu_sim::ExecCtx;
use aabft_matrix::Matrix;

/// Runs every `(a, b)` request through `scheme`, spread round-robin over
/// `streams` device streams. Returns the per-request results in request
/// order.
///
/// All requests are shape-checked up front, so a bad request is rejected
/// with a typed error before any kernel of the batch launches.
///
/// # Examples
///
/// ```
/// use aabft_baselines::{batch::run_batch, TmrGemm};
/// use aabft_gpu_sim::Device;
/// use aabft_matrix::Matrix;
///
/// let device = Device::with_defaults();
/// let reqs: Vec<_> = (0..4)
///     .map(|k| {
///         let a = Matrix::from_fn(16, 16, move |i, j| ((i + j + k) as f64 * 0.2).sin());
///         (a, Matrix::identity(16))
///     })
///     .collect();
/// let results = run_batch(&device, &TmrGemm::new(), &reqs, 2).unwrap();
/// assert_eq!(results.len(), 4);
/// assert!(results.iter().all(|r| !r.errors_detected));
/// ```
pub fn run_batch<S: ProtectedGemm + ?Sized>(
    device: &Device,
    scheme: &S,
    requests: &[(Matrix<f64>, Matrix<f64>)],
    streams: usize,
) -> Result<Vec<ProtectedResult>, AbftError> {
    for (a, b) in requests {
        if a.cols() != b.rows() {
            return Err(AbftError::ShapeMismatch {
                op: "batch",
                left: (a.rows(), a.cols()),
                right: (b.rows(), b.cols()),
            });
        }
    }
    let obs = device.obs().clone();
    let lanes: Vec<_> =
        (0..streams.clamp(1, requests.len().max(1))).map(|_| device.create_stream()).collect();

    let mut results = Vec::with_capacity(requests.len());
    for (i, (a, b)) in requests.iter().enumerate() {
        let stream = lanes[i % lanes.len()];
        let ctx = ExecCtx::on_stream(device, stream);
        let mut span = aabft_obs::span!(
            obs,
            "batch",
            "request",
            "scheme" => scheme.name(),
            "request" => i as u64,
            "stream" => stream.raw(),
        );
        let r = scheme.multiply_on(&ctx, a, b)?;
        span.add_attr("detected", r.errors_detected);
        drop(span);
        obs.metrics.counter_inc(&format!("batch.stream.{}.requests", stream.raw()));
        results.push(r);
    }
    obs.metrics.counter_add("batch.requests", requests.len() as u64);
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FixedBoundAbft, TmrGemm, UnprotectedGemm};
    use aabft_gpu_sim::kernels::gemm::GemmTiling;
    use aabft_gpu_sim::{DeviceConfig, PerfModel};

    fn tiling() -> GemmTiling {
        GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 }
    }

    fn requests(n: usize) -> Vec<(Matrix<f64>, Matrix<f64>)> {
        (0..n)
            .map(|k| {
                (
                    Matrix::from_fn(16, 16, move |i, j| ((i * 3 + j + k) as f64 * 0.21).sin()),
                    Matrix::from_fn(16, 16, move |i, j| ((i + 2 * j + k) as f64 * 0.17).cos()),
                )
            })
            .collect()
    }

    #[test]
    fn batched_schemes_match_sequential_bitwise() {
        let reqs = requests(6);
        let schemes: Vec<Box<dyn ProtectedGemm>> = vec![
            Box::new(FixedBoundAbft::new(1e-9, 4).with_tiling(tiling())),
            Box::new(TmrGemm::new().with_tiling(tiling())),
            Box::new(UnprotectedGemm::new().with_tiling(tiling())),
        ];
        for scheme in &schemes {
            let device = Device::with_defaults();
            let batched = run_batch(&device, scheme.as_ref(), &reqs, 3).unwrap();
            let sequential: Vec<_> = reqs
                .iter()
                .map(|(a, b)| scheme.multiply(&Device::with_defaults(), a, b))
                .collect();
            for (bat, seq) in batched.iter().zip(&sequential) {
                assert_eq!(bat.product.as_slice(), seq.product.as_slice(), "{}", scheme.name());
                assert_eq!(bat.errors_detected, seq.errors_detected);
            }
        }
    }

    #[test]
    fn batched_log_overlaps_streams_in_the_model() {
        let reqs = requests(8);
        let config = DeviceConfig::builder().num_sms(13).build().expect("valid config");
        let device = Device::new(config);
        run_batch(&device, &TmrGemm::new().with_tiling(tiling()), &reqs, 4).unwrap();
        let log = device.take_log();
        let model = PerfModel::k20c();
        let overlapped = model.stream_makespan(&log, 13);
        let serial = model.pipeline_time(&log);
        assert!(
            overlapped < serial,
            "streams must overlap in the modelled timeline: {overlapped} vs {serial}"
        );
    }

    #[test]
    fn bad_request_is_rejected_before_any_launch() {
        let device = Device::with_defaults();
        let mut reqs = requests(2);
        reqs.push((Matrix::zeros(8, 8), Matrix::zeros(9, 8)));
        let e = run_batch(&device, &UnprotectedGemm::new().with_tiling(tiling()), &reqs, 2)
            .unwrap_err();
        assert!(matches!(e, AbftError::ShapeMismatch { op: "batch", .. }));
        assert!(device.take_log().is_empty(), "no kernels may have launched");
    }
}
