//! Triple modular redundancy (the third comparison scheme of Table I).
//!
//! Runs an identical multiplication kernel three times and compares the
//! results directly — no checksums, no rounding-error bounds (identical
//! kernels round identically, so replicas are bitwise equal in the absence
//! of faults; the paper notes that *diverse* kernels would reintroduce the
//! bound problem). Costs ~3× the compute, which Table I shows flattening at
//! a third of the unprotected throughput.

use crate::pipeline::{check_shapes, upload_padded};
use crate::scheme::{ProtectedGemm, ProtectedResult};
use aabft_core::AbftError;
use aabft_gpu_sim::kernels::compare::CompareKernel;
use aabft_gpu_sim::kernels::gemm::{GemmKernel, GemmTiling};
use aabft_gpu_sim::mem::DeviceBuffer;
use aabft_gpu_sim::{ExecCtx, Kernel};
use aabft_matrix::Matrix;

/// TMR matrix multiplication with majority voting.
#[derive(Debug, Clone, Copy, Default)]
pub struct TmrGemm {
    tiling: GemmTiling,
}

impl TmrGemm {
    /// Creates the scheme with the default tiling.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the GEMM tiling.
    pub fn with_tiling(mut self, tiling: GemmTiling) -> Self {
        tiling.validate();
        self.tiling = tiling;
        self
    }
}

impl ProtectedGemm for TmrGemm {
    fn name(&self) -> &'static str {
        "TMR"
    }

    fn multiply_on(
        &self,
        ctx: &ExecCtx<'_>,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) -> Result<ProtectedResult, AbftError> {
        check_shapes(a, b)?;
        let (m, q) = (a.rows(), b.cols());
        let t = self.tiling;
        let (a_buf, pm, pn) = upload_padded(a, t.bm, t.bk);
        let (b_buf, pn2, pq) = upload_padded(b, t.bk, t.bn);
        assert_eq!(pn, pn2, "inner padding must agree");

        // The three replicas write disjoint buffers, so on the clean path
        // they run as a single-stage fused dispatch (1 dispatch instead of
        // 3); armed fault plans degrade to three separate instrumented
        // launches in the same order, preserving the per-replica injection
        // behaviour the voting test below relies on.
        let replicas: Vec<DeviceBuffer> =
            (0..3).map(|_| DeviceBuffer::zeros(pm * pq)).collect();
        let kernels: Vec<GemmKernel<'_>> = replicas
            .iter()
            .map(|c| GemmKernel::new(&a_buf, &b_buf, c, pm, pn, pq, t))
            .collect();
        let parts: Vec<(aabft_gpu_sim::GridDim, &dyn Kernel)> =
            kernels.iter().map(|k| (k.grid(), k as &dyn Kernel)).collect();
        ctx.launch_fused(&[&parts]);

        // Vote: compare replica 0 against 1 and against 2.
        let blocks = 64.min(pm * pq);
        let counts01 = DeviceBuffer::zeros(blocks);
        let cmp01 = CompareKernel::new(&replicas[0], &replicas[1], &counts01, 0.0);
        ctx.launch(cmp01.grid(), &cmp01);
        let mismatch01 = cmp01.total_mismatches();

        let counts02 = DeviceBuffer::zeros(blocks);
        let cmp02 = CompareKernel::new(&replicas[0], &replicas[2], &counts02, 0.0);
        ctx.launch(cmp02.grid(), &cmp02);
        let mismatch02 = cmp02.total_mismatches();

        let detected = mismatch01 > 0 || mismatch02 > 0;
        // Majority: replica 0 agrees with at least one sibling -> take it;
        // otherwise replica 0 is the odd one out -> take replica 1.
        let winner = if mismatch01 == 0 || mismatch02 == 0 { &replicas[0] } else { &replicas[1] };
        let product = winner.to_matrix(pm, pq).block(0, 0, m, q);
        Ok(ProtectedResult {
            product,
            errors_detected: detected,
            located: Vec::new(),
            recovery: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_gpu_sim::device::Device;
    use aabft_gpu_sim::inject::{FaultSite, InjectionPlan};
    use aabft_matrix::gemm;

    fn small() -> TmrGemm {
        TmrGemm::new().with_tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
    }

    fn inputs() -> (Matrix<f64>, Matrix<f64>) {
        (
            Matrix::from_fn(16, 16, |i, j| ((i + j * 7) as f64 * 0.23).sin()),
            Matrix::from_fn(16, 16, |i, j| ((i * 2 + j) as f64 * 0.31).cos()),
        )
    }

    #[test]
    fn clean_run_votes_unanimously() {
        let (a, b) = inputs();
        let r = small().multiply(&Device::with_defaults(), &a, &b);
        assert!(!r.errors_detected);
        assert!(r.product.approx_eq(&gemm::multiply(&a, &b), 1e-12));
    }

    #[test]
    fn single_fault_is_outvoted() {
        let (a, b) = inputs();
        let device = Device::with_defaults();
        // The one-shot fault strikes the first replica only; the other two
        // replicas outvote it and the product stays correct.
        device.arm_injection(InjectionPlan {
            sm: 0,
            site: FaultSite::InnerAdd,
            module: 0,
            k_injection: 5,
            mask: 1 << 62,
        });
        let r = small().multiply(&device, &a, &b);
        assert!(device.disarm_injection());
        assert!(r.errors_detected, "replica divergence must be detected");
        assert!(
            r.product.approx_eq(&gemm::multiply(&a, &b), 1e-12),
            "majority vote must mask the fault"
        );
    }
}
