//! SEA-ABFT: ABFT with runtime bounds from the simplified error analysis of
//! Roy-Chowdhury & Banerjee \[28\] (the paper's closest autonomous
//! competitor, Section III).
//!
//! SEA derives the checksum tolerance from 2-norms of the rows/columns
//! entering each checksum:
//! `((n + 2m − 2)·‖b‖₂·Σᵢ‖aᵢ‖₂ + n·‖a_cs‖₂·‖b‖₂)·ε_M`. Autonomous like
//! A-ABFT, but (a) the norm computations utilise the GPU poorly and (b) the
//! bounds are roughly two orders of magnitude looser, missing smaller
//! critical errors (Tables II–IV, Fig. 4).

use crate::kernels::{BaselineCheckKernel, ColNormsKernel, EpsilonRule, RowNormsKernel};
use crate::pipeline::EncodedProduct;
use crate::scheme::{ProtectedGemm, ProtectedResult};
use aabft_core::check::CheckReport;
use aabft_core::AbftError;
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_gpu_sim::mem::DeviceBuffer;
use aabft_gpu_sim::ExecCtx;
use aabft_matrix::Matrix;

/// SEA-ABFT matrix multiplication.
#[derive(Debug, Clone, Copy)]
pub struct SeaAbft {
    block_size: usize,
    tiling: GemmTiling,
}

impl SeaAbft {
    /// Creates the scheme with the given partitioned-encoding block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not in `1..=52`.
    pub fn new(block_size: usize) -> Self {
        assert!((1..=52).contains(&block_size), "block_size must be in 1..=52");
        SeaAbft { block_size, tiling: GemmTiling::default() }
    }

    /// Overrides the GEMM tiling.
    pub fn with_tiling(mut self, tiling: GemmTiling) -> Self {
        tiling.validate();
        self.tiling = tiling;
        self
    }

    /// The SEA column-checksum bound for explicit inputs (used by the bound
    /// -quality experiments, Tables II–IV): block rows `a_rows`, checksum
    /// row `a_cs`, column `b`.
    pub fn column_bound(a_rows: &[&[f64]], a_cs: &[f64], b: &[f64]) -> f64 {
        let n = b.len() as f64;
        let m = a_rows.len() as f64;
        let sum_a: f64 = a_rows.iter().map(|r| aabft_matrix::norms::norm2(r)).sum();
        let b_norm = aabft_matrix::norms::norm2(b);
        let cs_norm = aabft_matrix::norms::norm2(a_cs);
        ((n + 2.0 * m - 2.0) * b_norm * sum_a + n * cs_norm * b_norm) * f64::EPSILON / 2.0
    }
}

impl ProtectedGemm for SeaAbft {
    fn name(&self) -> &'static str {
        "SEA-ABFT"
    }

    fn multiply_on(
        &self,
        ctx: &ExecCtx<'_>,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) -> Result<ProtectedResult, AbftError> {
        let enc = EncodedProduct::run(ctx, a, b, self.block_size, self.tiling)?;

        // Norm kernels over the augmented operands: each opposing result
        // block recomputes the full-length norms it needs (the utilization
        // sink the paper describes).
        let a_red = enc.cols.blocks;
        let a_norms = DeviceBuffer::zeros(enc.rows.total * a_red);
        let k = RowNormsKernel::new(&enc.a_buf, &a_norms, enc.rows.total, enc.inner, a_red);
        ctx.launch(k.grid(), &k);
        let b_red = enc.rows.blocks;
        let b_norms = DeviceBuffer::zeros(enc.cols.total * b_red);
        let k = ColNormsKernel::new(&enc.b_buf, &b_norms, enc.inner, enc.cols.total, b_red);
        ctx.launch(k.grid(), &k);

        let report_buf = enc.report_buffer();
        let check = BaselineCheckKernel::new(
            &enc.c_buf,
            &report_buf,
            enc.rows,
            enc.cols,
            EpsilonRule::Sea {
                a_row_norms: &a_norms,
                a_redundancy: a_red,
                b_col_norms: &b_norms,
                b_redundancy: b_red,
                inner: enc.inner,
            },
        );
        ctx.launch(check.grid(), &check);
        let report = CheckReport::from_raw(&report_buf.to_vec(), enc.rows, enc.cols);
        Ok(ProtectedResult {
            product: enc.product(a.rows(), b.cols()),
            errors_detected: report.errors_detected(),
            located: report.located,
            recovery: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_gpu_sim::device::Device;
    use aabft_gpu_sim::inject::{FaultSite, InjectionPlan};
    use aabft_matrix::gemm;

    fn small() -> SeaAbft {
        SeaAbft::new(4).with_tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
    }

    fn inputs() -> (Matrix<f64>, Matrix<f64>) {
        (
            Matrix::from_fn(16, 16, |i, j| ((i * 5 + j) as f64 * 0.19).sin()),
            Matrix::from_fn(16, 16, |i, j| ((i + 3 * j) as f64 * 0.13).cos()),
        )
    }

    #[test]
    fn clean_run_is_clean_and_correct() {
        let (a, b) = inputs();
        let r = small().multiply(&Device::with_defaults(), &a, &b);
        assert!(!r.errors_detected);
        assert!(r.product.approx_eq(&gemm::multiply(&a, &b), 1e-12));
    }

    #[test]
    fn detects_large_injected_fault() {
        let (a, b) = inputs();
        let device = Device::with_defaults();
        device.arm_injection(InjectionPlan {
            sm: 0,
            site: FaultSite::FinalAdd,
            module: 0,
            k_injection: 2,
            mask: 1 << 62,
        });
        let r = small().multiply(&device, &a, &b);
        assert!(device.disarm_injection());
        assert!(r.errors_detected);
    }

    #[test]
    fn sea_bound_is_looser_than_aabft() {
        // The headline of Tables II-IV: SEA bounds are orders of magnitude
        // above A-ABFT's for the same data.
        use aabft_core::bounds::checksum_epsilon;
        use aabft_numerics::RoundingModel;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 256;
        let bs = 32;
        let a: Matrix = Matrix::from_fn(bs, n, |_, _| rng.gen_range(-1.0..1.0));
        let b_col: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cs: Vec<f64> = (0..n).map(|j| (0..bs).map(|i| a[(i, j)]).sum()).collect();
        let rows: Vec<&[f64]> = (0..bs).map(|i| a.row(i)).collect();
        let sea = SeaAbft::column_bound(&rows, &cs, &b_col);
        // A-ABFT bound with the exact same data's y (product of checksum row
        // and b-column maxima).
        let y = cs
            .iter()
            .zip(&b_col)
            .map(|(x, v)| (x * v).abs())
            .fold(0.0f64, f64::max);
        let aabft = checksum_epsilon(n, y, 3.0, &RoundingModel::binary64());
        assert!(
            sea > 20.0 * aabft,
            "SEA bound {sea:e} should be far looser than A-ABFT {aabft:e}"
        );
    }
}
