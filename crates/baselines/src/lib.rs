//! Baseline fault-tolerance schemes the DSN'14 A-ABFT paper evaluates
//! against (Section VI-A), all running on the same simulated device:
//!
//! * [`FixedBoundAbft`] — standard ABFT with a manually chosen ε (fast, not
//!   autonomous);
//! * [`SeaAbft`] — ABFT with runtime bounds from the simplified error
//!   analysis \[28\] (autonomous, but loose bounds and poor GPU utilization);
//! * [`TmrGemm`] — triple modular redundancy with direct comparison;
//! * [`UnprotectedGemm`] — the raw-throughput reference;
//! * [`AAbftScheme`] — the A-ABFT operator from `aabft-core`, which
//!   implements [`ProtectedGemm`] directly (the name is an alias of
//!   `AAbftGemm`).
//!
//! Every scheme's required entry point is
//! [`ProtectedGemm::multiply_on`], which takes an
//! [`ExecCtx`](aabft_gpu_sim::ExecCtx) (device + stream + observability);
//! [`batch::run_batch`] runs any scheme over a slice of requests spread
//! across device streams, so all baselines are comparable under the
//! multi-stream engine.
//!
//! # Example
//!
//! ```
//! use aabft_baselines::{ProtectedGemm, TmrGemm, UnprotectedGemm};
//! use aabft_gpu_sim::Device;
//! use aabft_matrix::Matrix;
//!
//! let device = Device::with_defaults();
//! let a = Matrix::from_fn(32, 32, |i, j| ((i + j) as f64 * 0.2).sin());
//! let b = Matrix::identity(32);
//! for scheme in [&TmrGemm::new() as &dyn ProtectedGemm, &UnprotectedGemm::new()] {
//!     let r = scheme.multiply(&device, &a, &b);
//!     assert!(!r.errors_detected);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aabft_scheme;
pub mod batch;
pub mod fixed;
pub mod kernels;
mod pipeline;
pub mod scheme;
pub mod sea;
pub mod tmr;
pub mod unprotected;

pub use aabft_scheme::AAbftScheme;
pub use batch::run_batch;
pub use fixed::FixedBoundAbft;
pub use scheme::{ProtectedGemm, ProtectedResult};
pub use sea::SeaAbft;
pub use tmr::TmrGemm;
pub use unprotected::UnprotectedGemm;
