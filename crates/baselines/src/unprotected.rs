//! Unprotected matrix multiplication — the raw-throughput reference point
//! (the paper quotes ~1048 GFLOPS at 8192³, against which A-ABFT's 13.8 %
//! overhead is measured).

use crate::pipeline::{check_shapes, upload_padded};
use crate::scheme::{ProtectedGemm, ProtectedResult};
use aabft_core::AbftError;
use aabft_gpu_sim::kernels::gemm::{GemmKernel, GemmTiling};
use aabft_gpu_sim::mem::DeviceBuffer;
use aabft_gpu_sim::ExecCtx;
use aabft_matrix::Matrix;

/// Plain blocked GEMM with no fault tolerance.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnprotectedGemm {
    tiling: GemmTiling,
}

impl UnprotectedGemm {
    /// Creates the scheme with the default tiling.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the GEMM tiling.
    pub fn with_tiling(mut self, tiling: GemmTiling) -> Self {
        tiling.validate();
        self.tiling = tiling;
        self
    }
}

impl ProtectedGemm for UnprotectedGemm {
    fn name(&self) -> &'static str {
        "unprotected"
    }

    fn multiply_on(
        &self,
        ctx: &ExecCtx<'_>,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) -> Result<ProtectedResult, AbftError> {
        check_shapes(a, b)?;
        let (m, q) = (a.rows(), b.cols());
        let t = self.tiling;
        let (a_buf, pm, pn) = upload_padded(a, t.bm, t.bk);
        let (b_buf, pn2, pq) = upload_padded(b, t.bk, t.bn);
        assert_eq!(pn, pn2, "inner padding must agree");
        let c_buf = DeviceBuffer::zeros(pm * pq);
        let gemm = GemmKernel::new(&a_buf, &b_buf, &c_buf, pm, pn, pq, t);
        ctx.launch(gemm.grid(), &gemm);
        Ok(ProtectedResult {
            product: c_buf.to_matrix(pm, pq).block(0, 0, m, q),
            errors_detected: false,
            located: Vec::new(),
            recovery: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_gpu_sim::device::Device;
    use aabft_matrix::gemm;

    #[test]
    fn matches_reference() {
        let a: Matrix = Matrix::from_fn(12, 20, |i, j| ((i * 3 + j) as f64 * 0.17).sin());
        let b: Matrix = Matrix::from_fn(20, 10, |i, j| ((i + j * 5) as f64 * 0.29).cos());
        let scheme = UnprotectedGemm::new()
            .with_tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 });
        let r = scheme.multiply(&Device::with_defaults(), &a, &b);
        assert!(!r.errors_detected);
        assert!(r.product.approx_eq(&gemm::multiply(&a, &b), 1e-12));
    }
}
