//! Kernels used by the baseline schemes: plain checksum encoding (without
//! the p-max search A-ABFT fuses in), vector-norm computation for SEA-ABFT,
//! and a checking kernel whose error bound is either a fixed user constant
//! or the SEA norm formula.

use aabft_core::encoding::AugmentedLayout;
use aabft_core::kernels::check::REPORT_WORDS;
use aabft_gpu_sim::device::{BlockCtx, Kernel};
use aabft_gpu_sim::dim::GridDim;
use aabft_gpu_sim::mem::DeviceBuffer;

/// Modelled utilization of the plain encoding/checking kernels (same
/// occupancy class as A-ABFT's, minus the p-max work).
pub const BASELINE_CHECK_UTILIZATION: f64 = 0.012;

/// Modelled utilization of SEA-ABFT's norm kernels. The paper attributes
/// SEA's performance gap to the "compute-intensive evaluation of numerous
/// vector norms" at poor thread utilization: every result block evaluates
/// the full-length norms of its rows/columns without cross-block caching.
/// The redundant re-reads hit the L2 (counted as cached accesses; each
/// line's DRAM fetch is charged once), so the stage is compute-bound at
/// this low sequential-reduction utilization.
pub const NORM_UTILIZATION: f64 = 0.14;

/// Plain column-checksum encoding for `A` (no p-max search).
#[derive(Debug)]
pub struct EncodeColumnsPlain<'a> {
    a: &'a DeviceBuffer,
    rows: AugmentedLayout,
    cols: usize,
}

impl<'a> EncodeColumnsPlain<'a> {
    /// Creates the kernel over the augmented `A` buffer.
    ///
    /// # Panics
    ///
    /// Panics on extent mismatch.
    pub fn new(a: &'a DeviceBuffer, rows: AugmentedLayout, cols: usize) -> Self {
        assert_eq!(a.len(), rows.total * cols, "A buffer size mismatch");
        assert_eq!(cols % rows.block_size, 0, "cols must be a multiple of BS");
        EncodeColumnsPlain { a, rows, cols }
    }

    /// Launch grid: one block per `BS × BS` data sub-matrix.
    pub fn grid(&self) -> GridDim {
        GridDim::new(self.cols / self.rows.block_size, self.rows.blocks)
    }
}

impl Kernel for EncodeColumnsPlain<'_> {
    fn name(&self) -> &'static str {
        "abft_encode_a"
    }
    fn phase(&self) -> &'static str {
        "encode"
    }
    fn utilization(&self) -> f64 {
        BASELINE_CHECK_UTILIZATION
    }
    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let bs = self.rows.block_size;
        let (block_i, block_k) = (ctx.block().y, ctx.block().x);
        let (row0, col0) = (block_i * bs, block_k * bs);
        ctx.declare_threads(bs);
        for tid in 0..bs {
            let mut sum = 0.0;
            for i in 0..bs {
                let v = ctx.load(self.a, (row0 + i) * self.cols + col0 + tid);
                sum = ctx.add(sum, v);
            }
            ctx.store(self.a, self.rows.checksum_line(block_i) * self.cols + col0 + tid, sum);
        }
    }
}

/// Plain row-checksum encoding for `B` (no p-max search).
#[derive(Debug)]
pub struct EncodeRowsPlain<'a> {
    b: &'a DeviceBuffer,
    cols: AugmentedLayout,
    rows: usize,
}

impl<'a> EncodeRowsPlain<'a> {
    /// Creates the kernel over the augmented `B` buffer.
    ///
    /// # Panics
    ///
    /// Panics on extent mismatch.
    pub fn new(b: &'a DeviceBuffer, cols: AugmentedLayout, rows: usize) -> Self {
        assert_eq!(b.len(), rows * cols.total, "B buffer size mismatch");
        assert_eq!(rows % cols.block_size, 0, "rows must be a multiple of BS");
        EncodeRowsPlain { b, cols, rows }
    }

    /// Launch grid: one block per `BS × BS` data sub-matrix.
    pub fn grid(&self) -> GridDim {
        GridDim::new(self.cols.blocks, self.rows / self.cols.block_size)
    }
}

impl Kernel for EncodeRowsPlain<'_> {
    fn name(&self) -> &'static str {
        "abft_encode_b"
    }
    fn phase(&self) -> &'static str {
        "encode"
    }
    fn utilization(&self) -> f64 {
        BASELINE_CHECK_UTILIZATION
    }
    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let bs = self.cols.block_size;
        let (block_k, block_j) = (ctx.block().y, ctx.block().x);
        let (row0, col0) = (block_k * bs, block_j * bs);
        let width = self.cols.total;
        ctx.declare_threads(bs);
        for tid in 0..bs {
            let mut sum = 0.0;
            for j in 0..bs {
                let v = ctx.load(self.b, (row0 + tid) * width + col0 + j);
                sum = ctx.add(sum, v);
            }
            ctx.store(self.b, (row0 + tid) * width + self.cols.checksum_line(block_j), sum);
        }
    }
}

/// Row 2-norm kernel for SEA-ABFT. One block per (row, opposing result
/// block): every `BS`-wide block column of the result re-evaluates the
/// full-length row norms it needs (no cross-block caching — the naive
/// implementation whose cost the paper reports). Slot `[i·redundancy + r]`
/// of the norm buffer holds row `i`'s norm as computed for opposing block
/// `r`.
#[derive(Debug)]
pub struct RowNormsKernel<'a> {
    m: &'a DeviceBuffer,
    norms: &'a DeviceBuffer,
    rows: usize,
    cols: usize,
    redundancy: usize,
}

impl<'a> RowNormsKernel<'a> {
    /// Computes `norms[i·redundancy + r] = ||row i||₂` for every row and
    /// every opposing result block `r`.
    ///
    /// # Panics
    ///
    /// Panics on extent mismatch or zero redundancy.
    pub fn new(
        m: &'a DeviceBuffer,
        norms: &'a DeviceBuffer,
        rows: usize,
        cols: usize,
        redundancy: usize,
    ) -> Self {
        assert!(redundancy > 0, "redundancy must be positive");
        assert_eq!(m.len(), rows * cols, "matrix buffer size mismatch");
        assert_eq!(norms.len(), rows * redundancy, "norm buffer size mismatch");
        RowNormsKernel { m, norms, rows, cols, redundancy }
    }

    /// Launch grid: one block per (row, opposing block).
    pub fn grid(&self) -> GridDim {
        GridDim::new(self.redundancy, self.rows)
    }
}

impl Kernel for RowNormsKernel<'_> {
    fn name(&self) -> &'static str {
        "sea_row_norms"
    }
    fn phase(&self) -> &'static str {
        "encode"
    }
    fn utilization(&self) -> f64 {
        NORM_UTILIZATION
    }
    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let r = ctx.block().x;
        let i = ctx.block().y;
        ctx.declare_threads(1);
        // DRAM traffic for the line is charged once; the redundant
        // recomputations read it through the cache.
        if r == 0 {
            ctx.note_gmem_loads(self.cols as u64);
        }
        ctx.note_smem(self.cols as u64);
        let mut s = 0.0;
        for j in 0..self.cols {
            let v = self.m.get(i * self.cols + j);
            let sq = ctx.mul(v, v);
            s = ctx.add(s, sq);
        }
        ctx.note_ops(0, 0, 1); // sqrt
        ctx.store(self.norms, i * self.redundancy + r, s.sqrt());
    }
}

/// Column 2-norm kernel for SEA-ABFT; see [`RowNormsKernel`] for the
/// redundancy layout.
#[derive(Debug)]
pub struct ColNormsKernel<'a> {
    m: &'a DeviceBuffer,
    norms: &'a DeviceBuffer,
    rows: usize,
    cols: usize,
    redundancy: usize,
}

impl<'a> ColNormsKernel<'a> {
    /// Computes `norms[j·redundancy + r] = ||column j||₂` for every column
    /// and every opposing result block `r`.
    ///
    /// # Panics
    ///
    /// Panics on extent mismatch or zero redundancy.
    pub fn new(
        m: &'a DeviceBuffer,
        norms: &'a DeviceBuffer,
        rows: usize,
        cols: usize,
        redundancy: usize,
    ) -> Self {
        assert!(redundancy > 0, "redundancy must be positive");
        assert_eq!(m.len(), rows * cols, "matrix buffer size mismatch");
        assert_eq!(norms.len(), cols * redundancy, "norm buffer size mismatch");
        ColNormsKernel { m, norms, rows, cols, redundancy }
    }

    /// Launch grid: one block per (column, opposing block).
    pub fn grid(&self) -> GridDim {
        GridDim::new(self.redundancy, self.cols)
    }
}

impl Kernel for ColNormsKernel<'_> {
    fn name(&self) -> &'static str {
        "sea_col_norms"
    }
    fn phase(&self) -> &'static str {
        "encode"
    }
    fn utilization(&self) -> f64 {
        NORM_UTILIZATION
    }
    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let r = ctx.block().x;
        let j = ctx.block().y;
        ctx.declare_threads(1);
        if r == 0 {
            ctx.note_gmem_loads(self.rows as u64);
        }
        ctx.note_smem(self.rows as u64);
        let mut s = 0.0;
        for i in 0..self.rows {
            let v = self.m.get(i * self.cols + j);
            let sq = ctx.mul(v, v);
            s = ctx.add(s, sq);
        }
        ctx.note_ops(0, 0, 1); // sqrt
        ctx.store(self.norms, j * self.redundancy + r, s.sqrt());
    }
}

/// How the baseline checking kernel obtains its error bound.
#[derive(Debug)]
pub enum EpsilonRule<'a> {
    /// A user-supplied constant (the "manual" standard-ABFT scheme — fast
    /// but not autonomous).
    Fixed(f64),
    /// The simplified-error-analysis bound of Roy-Chowdhury/Banerjee \[28\]:
    /// `((n + 2·BS − 2)·‖b‖₂·Σᵢ‖aᵢ‖₂ + n·‖a_cs‖₂·‖b‖₂)·ε_M` per column
    /// checksum (and symmetrically per row checksum).
    Sea {
        /// 2-norms of the augmented `A` rows, one slot per (row, opposing
        /// block).
        a_row_norms: &'a DeviceBuffer,
        /// Redundancy (slots per row) of `a_row_norms`.
        a_redundancy: usize,
        /// 2-norms of the augmented `B` columns, one slot per (column,
        /// opposing block).
        b_col_norms: &'a DeviceBuffer,
        /// Redundancy (slots per column) of `b_col_norms`.
        b_redundancy: usize,
        /// Inner dimension `n` of the multiplication.
        inner: usize,
    },
}

/// Checking kernel for the fixed-bound and SEA-ABFT baselines: recomputes
/// the reference checksums per block and compares with the rule's ε.
/// Reports the same per-block bitmaps as the A-ABFT checker.
#[derive(Debug)]
pub struct BaselineCheckKernel<'a> {
    c: &'a DeviceBuffer,
    report: &'a DeviceBuffer,
    rows: AugmentedLayout,
    cols: AugmentedLayout,
    rule: EpsilonRule<'a>,
}

impl<'a> BaselineCheckKernel<'a> {
    /// Creates the checker.
    ///
    /// # Panics
    ///
    /// Panics on extent mismatch.
    pub fn new(
        c: &'a DeviceBuffer,
        report: &'a DeviceBuffer,
        rows: AugmentedLayout,
        cols: AugmentedLayout,
        rule: EpsilonRule<'a>,
    ) -> Self {
        assert_eq!(rows.block_size, cols.block_size, "row/column block sizes must agree");
        assert_eq!(c.len(), rows.total * cols.total, "C buffer size mismatch");
        assert_eq!(report.len(), REPORT_WORDS * rows.blocks * cols.blocks, "report size mismatch");
        if let EpsilonRule::Sea { a_row_norms, a_redundancy, b_col_norms, b_redundancy, .. } =
            &rule
        {
            assert!(*a_redundancy >= cols.blocks, "A norm redundancy too small");
            assert!(*b_redundancy >= rows.blocks, "B norm redundancy too small");
            assert!(
                a_row_norms.len() >= (rows.data + rows.blocks) * a_redundancy,
                "A norms too short"
            );
            assert!(
                b_col_norms.len() >= (cols.data + cols.blocks) * b_redundancy,
                "B norms too short"
            );
        }
        BaselineCheckKernel { c, report, rows, cols, rule }
    }

    /// Launch grid: one block per `BS × BS` data block.
    pub fn grid(&self) -> GridDim {
        GridDim::new(self.cols.blocks, self.rows.blocks)
    }

    /// SEA column-checksum bound for block `(bi, bj)`, column `j`.
    fn sea_col_eps(&self, ctx: &mut BlockCtx<'_>, bi: usize, bj: usize, j: usize) -> f64 {
        let EpsilonRule::Sea { a_row_norms, a_redundancy, b_col_norms, b_redundancy, inner } =
            &self.rule
        else {
            unreachable!("sea_col_eps called under fixed rule")
        };
        let bs = self.rows.block_size as f64;
        let n = *inner as f64;
        let b_norm = ctx.load(b_col_norms, j * b_redundancy + bi);
        let mut sum_a = 0.0;
        for i in bi * self.rows.block_size..(bi + 1) * self.rows.block_size {
            let a_norm = ctx.load(a_row_norms, i * a_redundancy + bj);
            sum_a = ctx.add(sum_a, a_norm);
        }
        let cs_norm = ctx.load(a_row_norms, self.rows.checksum_line(bi) * a_redundancy + bj);
        ctx.note_ops(2, 4, 0);
        ((n + 2.0 * bs - 2.0) * b_norm * sum_a + n * cs_norm * b_norm) * f64::EPSILON / 2.0
    }

    /// SEA row-checksum bound for row `i` in block `(bi, bj)`.
    fn sea_row_eps(&self, ctx: &mut BlockCtx<'_>, bi: usize, bj: usize, i: usize) -> f64 {
        let EpsilonRule::Sea { a_row_norms, a_redundancy, b_col_norms, b_redundancy, inner } =
            &self.rule
        else {
            unreachable!("sea_row_eps called under fixed rule")
        };
        let bs = self.cols.block_size as f64;
        let n = *inner as f64;
        let a_norm = ctx.load(a_row_norms, i * a_redundancy + bj);
        let mut sum_b = 0.0;
        for j in bj * self.cols.block_size..(bj + 1) * self.cols.block_size {
            let b_norm = ctx.load(b_col_norms, j * b_redundancy + bi);
            sum_b = ctx.add(sum_b, b_norm);
        }
        let cs_norm = ctx.load(b_col_norms, self.cols.checksum_line(bj) * b_redundancy + bi);
        ctx.note_ops(2, 4, 0);
        ((n + 2.0 * bs - 2.0) * a_norm * sum_b + n * cs_norm * a_norm) * f64::EPSILON / 2.0
    }
}

impl Kernel for BaselineCheckKernel<'_> {
    fn name(&self) -> &'static str {
        match self.rule {
            EpsilonRule::Fixed(_) => "abft_check_fixed",
            EpsilonRule::Sea { .. } => "sea_check",
        }
    }
    fn phase(&self) -> &'static str {
        "check"
    }
    fn utilization(&self) -> f64 {
        BASELINE_CHECK_UTILIZATION
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let bs = self.rows.block_size;
        let (block_j, block_i) = (ctx.block().x, ctx.block().y);
        let (row0, col0) = (block_i * bs, block_j * bs);
        let width = self.cols.total;
        ctx.declare_threads(bs);

        let cs_row = self.rows.checksum_line(block_i);
        let mut col_mask = 0u64;
        for tid in 0..bs {
            let j = col0 + tid;
            let mut reference = 0.0;
            for i in 0..bs {
                let v = ctx.load(self.c, (row0 + i) * width + j);
                reference = ctx.add(reference, v);
            }
            let checksum = ctx.load(self.c, cs_row * width + j);
            let eps = match self.rule {
                EpsilonRule::Fixed(e) => e,
                EpsilonRule::Sea { .. } => self.sea_col_eps(ctx, block_i, block_j, j),
            };
            let diff = ctx.sub(reference, checksum);
            if ctx.abs(diff) > eps {
                col_mask |= 1 << tid;
            }
        }

        let cs_col = self.cols.checksum_line(block_j);
        let mut row_mask = 0u64;
        for tid in 0..bs {
            let i = row0 + tid;
            let mut reference = 0.0;
            for j in 0..bs {
                let v = ctx.load(self.c, i * width + col0 + j);
                reference = ctx.add(reference, v);
            }
            let checksum = ctx.load(self.c, i * width + cs_col);
            let eps = match self.rule {
                EpsilonRule::Fixed(e) => e,
                EpsilonRule::Sea { .. } => self.sea_row_eps(ctx, block_i, block_j, i),
            };
            let diff = ctx.sub(reference, checksum);
            if ctx.abs(diff) > eps {
                row_mask |= 1 << tid;
            }
        }

        let slot = (block_i * self.cols.blocks + block_j) * REPORT_WORDS;
        ctx.store(self.report, slot, col_mask as f64);
        ctx.store(self.report, slot + 1, row_mask as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_core::encoding::encode_columns;
    use aabft_gpu_sim::device::Device;
    use aabft_matrix::{norms, Matrix};

    #[test]
    fn plain_encode_matches_host() {
        let bs = 4;
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i * 5 + j) as f64 * 0.3).sin());
        let host = encode_columns(&a, bs, 1, 1);
        let rows = host.rows;
        let mut init = host.matrix.clone();
        for b in 0..rows.blocks {
            for j in 0..8 {
                init[(rows.checksum_line(b), j)] = 0.0;
            }
        }
        let buf = DeviceBuffer::from_matrix(&init);
        let k = EncodeColumnsPlain::new(&buf, rows, 8);
        Device::with_defaults().launch(k.grid(), &k);
        assert!(buf.to_matrix(rows.total, 8).approx_eq(&host.matrix, 0.0));
    }

    #[test]
    fn norm_kernels_match_host() {
        let m: Matrix = Matrix::from_fn(6, 9, |i, j| ((i * 7 + j * 5) as f64 * 0.21).sin());
        let buf = DeviceBuffer::from_matrix(&m);
        let red = 3;
        let rn = DeviceBuffer::zeros(6 * red);
        let k = RowNormsKernel::new(&buf, &rn, 6, 9, red);
        Device::with_defaults().launch(k.grid(), &k);
        let rv = rn.to_vec();
        for i in 0..6 {
            for r in 0..red {
                assert!(
                    (rv[i * red + r] - norms::norm2(m.row(i))).abs() < 1e-13,
                    "row {i} slot {r}"
                );
            }
        }
        let cn = DeviceBuffer::zeros(9 * red);
        let k = ColNormsKernel::new(&buf, &cn, 6, 9, red);
        Device::with_defaults().launch(k.grid(), &k);
        let cv = cn.to_vec();
        for j in 0..9 {
            for r in 0..red {
                assert!(
                    (cv[j * red + r] - norms::norm2(&m.col(j))).abs() < 1e-13,
                    "col {j} slot {r}"
                );
            }
        }
    }

    #[test]
    fn fixed_check_flags_above_threshold_only() {
        let bs = 4;
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.11).sin());
        let b: Matrix = Matrix::from_fn(8, 8, |i, j| ((i * 2 + j) as f64 * 0.13).cos());
        let acc = aabft_core::encoding::encode_columns(&a, bs, 1, 1);
        let brc = aabft_core::encoding::encode_rows(&b, bs, 1, 1);
        let mut c = aabft_matrix::gemm::multiply(&acc.matrix, &brc.matrix);
        c[(2, 3)] += 1e-6;
        let dc = DeviceBuffer::from_matrix(&c);
        let report = DeviceBuffer::zeros(REPORT_WORDS * 4);
        let k = BaselineCheckKernel::new(&dc, &report, acc.rows, brc.cols, EpsilonRule::Fixed(1e-9));
        Device::with_defaults().launch(k.grid(), &k);
        let raw = report.to_vec();
        assert_eq!(raw[0] as u64, 1 << 3, "column 3 flagged in block (0,0)");
        assert_eq!(raw[1] as u64, 1 << 2, "row 2 flagged in block (0,0)");
        // With a loose threshold nothing is flagged.
        let report2 = DeviceBuffer::zeros(REPORT_WORDS * 4);
        let k = BaselineCheckKernel::new(&dc, &report2, acc.rows, brc.cols, EpsilonRule::Fixed(1e-3));
        Device::with_defaults().launch(k.grid(), &k);
        assert!(report2.to_vec().iter().all(|&w| w == 0.0));
    }
}
