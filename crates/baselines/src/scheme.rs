//! The common interface of all protected-multiplication schemes.
//!
//! Table I and Figure 4 of the paper compare four schemes — fixed-bound
//! ABFT, A-ABFT, SEA-ABFT and TMR — plus an unprotected reference. The
//! benchmark and fault-injection harnesses drive them uniformly through
//! [`ProtectedGemm`].
//!
//! The single required method is [`ProtectedGemm::multiply_on`], which
//! takes an [`ExecCtx`] (device + stream + observability sink) and returns
//! a typed [`AbftError`] on bad inputs. The historical conveniences —
//! panicking [`ProtectedGemm::multiply`] on the default stream, the
//! span-wrapped [`ProtectedGemm::multiply_observed`] — are provided methods
//! on top of it, so every scheme is automatically runnable under the batch
//! engine (see [`crate::batch`]) and on explicit streams.

use aabft_core::{AbftError, RecoveryAction};
use aabft_gpu_sim::device::Device;
use aabft_gpu_sim::ExecCtx;
use aabft_matrix::Matrix;

/// Outcome of one protected multiplication.
#[derive(Debug, Clone)]
pub struct ProtectedResult {
    /// The caller-visible product.
    pub product: Matrix<f64>,
    /// `true` if the scheme's check flagged an error.
    pub errors_detected: bool,
    /// Error locations (global data coordinates) for schemes that localise;
    /// empty otherwise.
    pub located: Vec<(usize, usize)>,
    /// Strongest recovery action the scheme performed; `None` for schemes
    /// without a recovery path (detection-only baselines).
    pub recovery: Option<RecoveryAction>,
}

/// A fault-tolerant (or reference) matrix-multiplication scheme running on
/// the simulated device.
pub trait ProtectedGemm {
    /// Scheme name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Runs `C = A · B` with this scheme's protection on an execution
    /// context — the one required entry point. Launches are issued to
    /// `ctx.stream`; spans and counters land in `ctx.obs`.
    ///
    /// Rejects incompatible operand shapes with a typed error instead of
    /// panicking.
    fn multiply_on(
        &self,
        ctx: &ExecCtx<'_>,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) -> Result<ProtectedResult, AbftError>;

    /// Convenience: runs on the device's default stream with the device's
    /// observability context.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    fn multiply(&self, device: &Device, a: &Matrix<f64>, b: &Matrix<f64>) -> ProtectedResult {
        match self.multiply_on(&ExecCtx::new(device), a, b) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking convenience: like [`ProtectedGemm::multiply`] but
    /// surfacing bad inputs as a typed error.
    fn try_multiply(
        &self,
        device: &Device,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) -> Result<ProtectedResult, AbftError> {
        self.multiply_on(&ExecCtx::new(device), a, b)
    }

    /// Runs [`ProtectedGemm::multiply`] inside a scheme-tagged span and
    /// counts the outcome into the device's metrics registry.
    ///
    /// The span carries `scheme`, the operand shape and whether the check
    /// flagged anything; counters land under `scheme.<name>.multiplies` and
    /// `scheme.<name>.detections`. The harnesses (fault campaigns, CLI)
    /// drive schemes through this wrapper so every baseline is observable
    /// without each implementation repeating the plumbing.
    fn multiply_observed(
        &self,
        device: &Device,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) -> ProtectedResult {
        let obs = device.obs().clone();
        let mut span = aabft_obs::span!(
            obs,
            "scheme",
            self.name(),
            "m" => a.rows() as u64,
            "n" => a.cols() as u64,
            "q" => b.cols() as u64,
        );
        let result = self.multiply(device, a, b);
        span.add_attr("detected", result.errors_detected);
        drop(span);
        obs.metrics.counter_inc(&format!("scheme.{}.multiplies", self.name()));
        if result.errors_detected {
            obs.metrics.counter_inc(&format!("scheme.{}.detections", self.name()));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unprotected::UnprotectedGemm;
    use aabft_gpu_sim::kernels::gemm::GemmTiling;

    #[test]
    fn multiply_observed_tags_span_and_counts() {
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.3).sin());
        let b: Matrix = Matrix::from_fn(8, 8, |i, j| ((i * 2 + j) as f64 * 0.2).cos());
        let mut device = Device::with_defaults();
        let obs = aabft_obs::Obs::new_shared();
        obs.recorder.set_enabled(true);
        device.set_obs(obs.clone());
        let scheme = UnprotectedGemm::new()
            .with_tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 });
        let r = scheme.multiply_observed(&device, &a, &b);
        assert!(!r.errors_detected);
        assert_eq!(obs.metrics.counter("scheme.unprotected.multiplies"), 1);
        assert_eq!(obs.metrics.counter("scheme.unprotected.detections"), 0);
        let spans = obs.recorder.spans();
        let s = spans
            .iter()
            .find(|s| s.cat == "scheme" && s.name == "unprotected")
            .expect("scheme span");
        assert!(s.args.iter().any(|(k, v)| k == "detected" && *v == false.into()));
        assert!(s.args.iter().any(|(k, v)| k == "m" && *v == 8u64.into()));
    }

    #[test]
    fn try_multiply_surfaces_shape_mismatch() {
        let a: Matrix = Matrix::zeros(8, 8);
        let b: Matrix = Matrix::zeros(9, 8);
        let scheme = UnprotectedGemm::new()
            .with_tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 });
        let e = scheme.try_multiply(&Device::with_defaults(), &a, &b).unwrap_err();
        assert!(matches!(e, AbftError::ShapeMismatch { left: (8, 8), right: (9, 8), .. }));
    }
}
