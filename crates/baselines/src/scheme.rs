//! The common interface of all protected-multiplication schemes.
//!
//! Table I and Figure 4 of the paper compare four schemes — fixed-bound
//! ABFT, A-ABFT, SEA-ABFT and TMR — plus an unprotected reference. The
//! benchmark and fault-injection harnesses drive them uniformly through
//! [`ProtectedGemm`].

use aabft_gpu_sim::device::Device;
use aabft_matrix::Matrix;

/// Outcome of one protected multiplication.
#[derive(Debug, Clone)]
pub struct ProtectedResult {
    /// The caller-visible product.
    pub product: Matrix<f64>,
    /// `true` if the scheme's check flagged an error.
    pub errors_detected: bool,
    /// Error locations (global data coordinates) for schemes that localise;
    /// empty otherwise.
    pub located: Vec<(usize, usize)>,
}

/// A fault-tolerant (or reference) matrix-multiplication scheme running on
/// the simulated device.
pub trait ProtectedGemm {
    /// Scheme name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Runs `C = A · B` with this scheme's protection.
    ///
    /// # Panics
    ///
    /// Implementations panic if `a.cols() != b.rows()`.
    fn multiply(&self, device: &Device, a: &Matrix<f64>, b: &Matrix<f64>) -> ProtectedResult;
}
