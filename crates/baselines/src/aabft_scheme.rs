//! [`ProtectedGemm`] adapter for the A-ABFT operator, so the harnesses can
//! drive all four schemes of the paper's evaluation uniformly.

use crate::scheme::{ProtectedGemm, ProtectedResult};
use aabft_core::{AAbftConfig, AAbftGemm};
use aabft_gpu_sim::device::Device;
use aabft_matrix::Matrix;

/// A-ABFT wrapped as a [`ProtectedGemm`] scheme.
#[derive(Debug, Clone, Copy)]
pub struct AAbftScheme {
    gemm: AAbftGemm,
}

impl AAbftScheme {
    /// Wraps an A-ABFT configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: AAbftConfig) -> Self {
        AAbftScheme { gemm: AAbftGemm::new(config) }
    }
}

impl Default for AAbftScheme {
    fn default() -> Self {
        Self::new(AAbftConfig::default())
    }
}

impl ProtectedGemm for AAbftScheme {
    fn name(&self) -> &'static str {
        "A-ABFT"
    }

    fn multiply(&self, device: &Device, a: &Matrix<f64>, b: &Matrix<f64>) -> ProtectedResult {
        let outcome = self.gemm.multiply(device, a, b);
        ProtectedResult {
            product: outcome.product,
            errors_detected: outcome.report.errors_detected(),
            located: outcome.report.located,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_gpu_sim::kernels::gemm::GemmTiling;
    use aabft_matrix::gemm;

    #[test]
    fn adapter_runs_the_pipeline() {
        let config = AAbftConfig::builder()
            .block_size(4)
            .tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
            .build();
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.41).sin());
        let b: Matrix = Matrix::from_fn(8, 8, |i, j| ((i * 3 + j) as f64 * 0.27).cos());
        let r = AAbftScheme::new(config).multiply(&Device::with_defaults(), &a, &b);
        assert!(!r.errors_detected);
        assert!(r.product.approx_eq(&gemm::multiply(&a, &b), 1e-12));
        assert_eq!(AAbftScheme::new(config).name(), "A-ABFT");
    }
}
