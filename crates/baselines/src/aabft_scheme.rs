//! The A-ABFT operator as a [`ProtectedGemm`] scheme — implemented
//! *directly* on [`AAbftGemm`], with no wrapper type, so the harnesses
//! drive all four schemes of the paper's evaluation uniformly and callers
//! keep the operator's full staged/batched API.

use crate::scheme::{ProtectedGemm, ProtectedResult};
use aabft_core::{AAbftGemm, AAbftOutcome, AbftError, RecoveryAction, SelfHealingGemm};
use aabft_gpu_sim::ExecCtx;
use aabft_matrix::Matrix;

/// Historical name of the A-ABFT scheme adapter. The wrapper type is gone:
/// [`AAbftGemm`] implements [`ProtectedGemm`] itself, and this alias keeps
/// `AAbftScheme::new(config)` call sites compiling.
pub type AAbftScheme = AAbftGemm;

impl From<AAbftOutcome> for ProtectedResult {
    fn from(outcome: AAbftOutcome) -> Self {
        let errors_detected = outcome.report.errors_detected();
        let recovery = if !outcome.recomputed_blocks.is_empty() {
            Some(RecoveryAction::Recomputed)
        } else if !outcome.corrections.is_empty() {
            Some(RecoveryAction::Corrected)
        } else {
            None
        };
        ProtectedResult {
            product: outcome.product,
            errors_detected,
            located: outcome.report.located,
            recovery,
        }
    }
}

impl ProtectedGemm for AAbftGemm {
    fn name(&self) -> &'static str {
        "A-ABFT"
    }

    fn multiply_on(
        &self,
        ctx: &ExecCtx<'_>,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) -> Result<ProtectedResult, AbftError> {
        Ok(self.execute(ctx, a, b)?.into())
    }
}

impl ProtectedGemm for SelfHealingGemm {
    fn name(&self) -> &'static str {
        "A-ABFT+heal"
    }

    /// Runs the verified self-healing pipeline. `errors_detected` reports
    /// whether *any* check pass flagged an error (the released product
    /// itself has always passed a final check); budget exhaustion surfaces
    /// as [`AbftError::Unrecovered`].
    fn multiply_on(
        &self,
        ctx: &ExecCtx<'_>,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) -> Result<ProtectedResult, AbftError> {
        let healed = self.execute(ctx, a, b)?;
        let detected = healed.healed();
        let located = healed.outcome.corrections.iter().map(|c| (c.row, c.col)).collect();
        Ok(ProtectedResult {
            product: healed.outcome.product,
            errors_detected: detected,
            located,
            recovery: Some(healed.action),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_core::AAbftConfig;
    use aabft_gpu_sim::device::Device;
    use aabft_gpu_sim::kernels::gemm::GemmTiling;
    use aabft_matrix::gemm;

    fn config() -> AAbftConfig {
        AAbftConfig::builder()
            .block_size(4)
            .tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
            .build()
            .expect("valid test config")
    }

    #[test]
    fn aabft_gemm_runs_as_a_protected_scheme_without_a_wrapper() {
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.41).sin());
        let b: Matrix = Matrix::from_fn(8, 8, |i, j| ((i * 3 + j) as f64 * 0.27).cos());
        let scheme: &dyn ProtectedGemm = &AAbftGemm::new(config());
        let r = scheme.multiply(&Device::with_defaults(), &a, &b);
        assert!(!r.errors_detected);
        assert!(r.product.approx_eq(&gemm::multiply(&a, &b), 1e-12));
        assert_eq!(scheme.name(), "A-ABFT");
    }

    #[test]
    fn alias_keeps_old_call_sites_compiling() {
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.41).sin());
        let b: Matrix = Matrix::from_fn(8, 8, |i, j| ((i * 3 + j) as f64 * 0.27).cos());
        let scheme = AAbftScheme::new(config());
        let outcome = scheme.execute(&ExecCtx::new(&Device::with_defaults()), &a, &b).unwrap();
        let r: ProtectedResult = outcome.into();
        assert!(!r.errors_detected);
    }

    #[test]
    fn trait_entry_rejects_shape_mismatch_with_typed_error() {
        let a: Matrix = Matrix::zeros(8, 8);
        let b: Matrix = Matrix::zeros(12, 8);
        let device = Device::with_defaults();
        let e = AAbftGemm::new(config()).try_multiply(&device, &a, &b).unwrap_err();
        assert!(matches!(e, AbftError::ShapeMismatch { .. }));
    }
}
