//! Standard ABFT with a manually set, fixed error bound (the first
//! comparison scheme of Table I).
//!
//! Fastest of the checksum schemes — no bound determination at runtime —
//! but *not autonomous*: the user must know the input characteristics and
//! pick ε per operation, which the paper argues is rarely possible in real
//! applications. Bounds that are too tight cause false positives; too loose,
//! false negatives.

use crate::kernels::{BaselineCheckKernel, EpsilonRule};
use crate::pipeline::EncodedProduct;
use crate::scheme::{ProtectedGemm, ProtectedResult};
use aabft_core::check::CheckReport;
use aabft_core::AbftError;
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_gpu_sim::ExecCtx;
use aabft_matrix::Matrix;

/// Fixed-bound ABFT matrix multiplication.
///
/// # Examples
///
/// ```
/// use aabft_baselines::{FixedBoundAbft, ProtectedGemm};
/// use aabft_gpu_sim::Device;
/// use aabft_matrix::Matrix;
///
/// let scheme = FixedBoundAbft::new(1e-9, 4).with_tiling(
///     aabft_gpu_sim::kernels::gemm::GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 },
/// );
/// let a = Matrix::from_fn(8, 8, |i, j| ((i + j) as f64 * 0.2).sin());
/// let b = Matrix::identity(8);
/// let result = scheme.multiply(&Device::with_defaults(), &a, &b);
/// assert!(!result.errors_detected);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FixedBoundAbft {
    epsilon: f64,
    block_size: usize,
    tiling: GemmTiling,
}

impl FixedBoundAbft {
    /// Creates the scheme with the user's checksum tolerance `epsilon` and
    /// partitioned-encoding block size.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not positive/finite or `block_size` is not in
    /// `1..=52`.
    pub fn new(epsilon: f64, block_size: usize) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive");
        assert!((1..=52).contains(&block_size), "block_size must be in 1..=52");
        FixedBoundAbft { epsilon, block_size, tiling: GemmTiling::default() }
    }

    /// Overrides the GEMM tiling.
    pub fn with_tiling(mut self, tiling: GemmTiling) -> Self {
        tiling.validate();
        self.tiling = tiling;
        self
    }

    /// The configured tolerance.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl ProtectedGemm for FixedBoundAbft {
    fn name(&self) -> &'static str {
        "ABFT"
    }

    fn multiply_on(
        &self,
        ctx: &ExecCtx<'_>,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
    ) -> Result<ProtectedResult, AbftError> {
        let enc = EncodedProduct::run(ctx, a, b, self.block_size, self.tiling)?;
        let report_buf = enc.report_buffer();
        let check = BaselineCheckKernel::new(
            &enc.c_buf,
            &report_buf,
            enc.rows,
            enc.cols,
            EpsilonRule::Fixed(self.epsilon),
        );
        ctx.launch(check.grid(), &check);
        let report = CheckReport::from_raw(&report_buf.to_vec(), enc.rows, enc.cols);
        Ok(ProtectedResult {
            product: enc.product(a.rows(), b.cols()),
            errors_detected: report.errors_detected(),
            located: report.located,
            recovery: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_gpu_sim::device::Device;
    use aabft_gpu_sim::inject::{FaultSite, InjectionPlan};
    use aabft_matrix::gemm;

    fn small() -> FixedBoundAbft {
        FixedBoundAbft::new(1e-9, 4)
            .with_tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
    }

    fn inputs() -> (Matrix<f64>, Matrix<f64>) {
        (
            Matrix::from_fn(16, 16, |i, j| ((i * 3 + j) as f64 * 0.21).sin()),
            Matrix::from_fn(16, 16, |i, j| ((i + 2 * j) as f64 * 0.17).cos()),
        )
    }

    #[test]
    fn clean_run_is_clean_and_correct() {
        let (a, b) = inputs();
        let r = small().multiply(&Device::with_defaults(), &a, &b);
        assert!(!r.errors_detected);
        assert!(r.product.approx_eq(&gemm::multiply(&a, &b), 1e-12));
    }

    #[test]
    fn detects_large_injected_fault() {
        let (a, b) = inputs();
        let device = Device::with_defaults();
        device.arm_injection(InjectionPlan {
            sm: 0,
            site: FaultSite::FinalAdd,
            module: 0,
            k_injection: 2,
            mask: 1 << 62,
        });
        let r = small().multiply(&device, &a, &b);
        assert!(device.disarm_injection());
        assert!(r.errors_detected);
    }

    #[test]
    fn too_loose_bound_misses_small_errors() {
        let (a, b) = inputs();
        let device = Device::with_defaults();
        // Mantissa bit 30 flip: relative error ~2^-22 of the element.
        device.arm_injection(InjectionPlan {
            sm: 0,
            site: FaultSite::FinalAdd,
            module: 0,
            k_injection: 2,
            mask: 1 << 30,
        });
        let loose = FixedBoundAbft::new(1.0, 4)
            .with_tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 });
        let r = loose.multiply(&device, &a, &b);
        assert!(device.disarm_injection());
        assert!(!r.errors_detected, "a bound of 1.0 should swallow a ~1e-7 error");
    }
}
