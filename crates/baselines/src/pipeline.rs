//! Shared plumbing for the checksum-based baseline schemes: operand upload
//! into augmented layouts, plain encoding, multiplication and report
//! decoding.

use crate::kernels::{EncodeColumnsPlain, EncodeRowsPlain};
use aabft_core::encoding::AugmentedLayout;
use aabft_core::kernels::check::REPORT_WORDS;
use aabft_core::AbftError;
use aabft_gpu_sim::kernels::gemm::{GemmKernel, GemmTiling};
use aabft_gpu_sim::mem::DeviceBuffer;
use aabft_gpu_sim::{ExecCtx, Kernel};
use aabft_matrix::Matrix;

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

pub(crate) fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

/// Rejects incompatible operand shapes with the scheme entry points' typed
/// error.
pub(crate) fn check_shapes(
    a: &Matrix<f64>,
    b: &Matrix<f64>,
) -> Result<(), AbftError> {
    if a.cols() != b.rows() {
        return Err(AbftError::ShapeMismatch {
            op: "multiply",
            left: (a.rows(), a.cols()),
            right: (b.rows(), b.cols()),
        });
    }
    Ok(())
}

/// Encoded-and-multiplied state shared by the fixed-bound and SEA schemes.
pub(crate) struct EncodedProduct {
    pub a_buf: DeviceBuffer,
    pub b_buf: DeviceBuffer,
    pub c_buf: DeviceBuffer,
    pub rows: AugmentedLayout,
    pub cols: AugmentedLayout,
    pub inner: usize,
}

impl EncodedProduct {
    /// Uploads, encodes (plain checksums) and multiplies on the context's
    /// stream, rejecting mismatched shapes with a typed error.
    pub fn run(
        ctx: &ExecCtx<'_>,
        a: &Matrix<f64>,
        b: &Matrix<f64>,
        bs: usize,
        tiling: GemmTiling,
    ) -> Result<Self, AbftError> {
        check_shapes(a, b)?;
        let (m, n, q) = (a.rows(), a.cols(), b.cols());
        let rows = AugmentedLayout::new(m, bs, tiling.bm);
        let cols = AugmentedLayout::new(q, bs, tiling.bn);
        let inner = n.div_ceil(lcm(bs, tiling.bk)) * lcm(bs, tiling.bk);

        let a_buf = {
            let mut aug = Matrix::zeros(rows.total, inner);
            for i in 0..m {
                aug.row_mut(i)[..n].copy_from_slice(a.row(i));
            }
            DeviceBuffer::from_matrix(&aug)
        };
        let b_buf = {
            let mut aug = Matrix::zeros(inner, cols.total);
            for i in 0..n {
                aug.row_mut(i)[..q].copy_from_slice(b.row(i));
            }
            DeviceBuffer::from_matrix(&aug)
        };

        // Encode + multiply as one fused dispatch on the clean path (the
        // same 3-launches-to-1 fusion the A-ABFT pipeline uses); with any
        // fault plan armed this degrades to the classic three separate
        // instrumented launches in identical order.
        let c_buf = DeviceBuffer::zeros(rows.total * cols.total);
        let enc_a = EncodeColumnsPlain::new(&a_buf, rows, inner);
        let enc_b = EncodeRowsPlain::new(&b_buf, cols, inner);
        let gemm = GemmKernel::new(&a_buf, &b_buf, &c_buf, rows.total, inner, cols.total, tiling);
        ctx.launch_fused(&[
            &[(enc_a.grid(), &enc_a as &dyn Kernel), (enc_b.grid(), &enc_b)],
            &[(gemm.grid(), &gemm)],
        ]);

        Ok(EncodedProduct { a_buf, b_buf, c_buf, rows, cols, inner })
    }

    /// Allocates a zeroed report buffer sized for the check kernels.
    pub fn report_buffer(&self) -> DeviceBuffer {
        DeviceBuffer::zeros(REPORT_WORDS * self.rows.blocks * self.cols.blocks)
    }

    /// Downloads the caller-visible `m × q` product region.
    pub fn product(&self, m: usize, q: usize) -> Matrix<f64> {
        self.c_buf.to_matrix(self.rows.total, self.cols.total).block(0, 0, m, q)
    }
}

/// Pads a plain matrix to tile multiples and uploads it (for the
/// unprotected and TMR schemes).
pub(crate) fn upload_padded(
    m: &Matrix<f64>,
    row_mult: usize,
    col_mult: usize,
) -> (DeviceBuffer, usize, usize) {
    let rows = m.rows().div_ceil(row_mult) * row_mult;
    let cols = m.cols().div_ceil(col_mult) * col_mult;
    let mut padded = Matrix::zeros(rows, cols);
    for i in 0..m.rows() {
        padded.row_mut(i)[..m.cols()].copy_from_slice(m.row(i));
    }
    (DeviceBuffer::from_matrix(&padded), rows, cols)
}
