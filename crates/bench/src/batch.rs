//! Measuring what the multi-stream batch engine buys: modelled wall time of
//! N protected multiplications run sequentially versus through
//! [`BatchGemm`], on the same device configuration.
//!
//! Both paths run on the simulator, so the comparison uses the *modelled*
//! timeline — [`PerfModel::stream_makespan`] over each run's launch log —
//! the same way Table I models GFLOPS from measured logs. The report also
//! carries a bit-identity verdict, pinning the engine's central contract:
//! batching reorders the modelled timeline, never the numerics.

use aabft_core::{AAbftConfig, AAbftGemm, BatchGemm};
use aabft_gpu_sim::device::Device;
use aabft_gpu_sim::perf::PerfModel;
use aabft_gpu_sim::DeviceConfig;
use aabft_matrix::gen::InputClass;
use aabft_matrix::Matrix;
use rand::SeedableRng;

/// Workload of one batch measurement.
#[derive(Debug, Clone, Copy)]
pub struct BatchWorkload {
    /// Number of GEMM requests in the batch.
    pub count: usize,
    /// Square operand size of each request.
    pub n: usize,
    /// Streams the batch engine spreads requests over.
    pub streams: usize,
    /// SMs of the device configuration both paths run on.
    pub num_sms: usize,
    /// Input distribution of the generated operands.
    pub input: InputClass,
    /// RNG seed for operand generation.
    pub seed: u64,
}

impl Default for BatchWorkload {
    fn default() -> Self {
        BatchWorkload {
            count: 64,
            n: 128,
            streams: BatchGemm::DEFAULT_STREAMS,
            num_sms: 13,
            input: InputClass::UNIT,
            seed: 1,
        }
    }
}

/// Outcome of one sequential-vs-batched comparison.
#[derive(Debug, Clone, Copy)]
pub struct BatchReport {
    /// Modelled wall time of the sequential path (seconds).
    pub sequential_s: f64,
    /// Modelled wall time of the batched path (seconds).
    pub batched_s: f64,
    /// `true` if every batched product is bit-identical to its sequential
    /// counterpart and detection outcomes agree.
    pub bit_identical: bool,
    /// Requests whose check flagged an error (same on both paths when
    /// `bit_identical`).
    pub detections: usize,
}

impl BatchReport {
    /// Sequential over batched modelled time.
    pub fn speedup(&self) -> f64 {
        self.sequential_s / self.batched_s
    }

    /// Batched throughput in requests per modelled second.
    pub fn requests_per_second(&self, count: usize) -> f64 {
        count as f64 / self.batched_s
    }
}

fn device(num_sms: usize) -> Device {
    Device::new(DeviceConfig::builder().num_sms(num_sms).build().expect("valid device config"))
}

/// Generates the workload's requests deterministically from its seed.
pub fn generate_requests(w: &BatchWorkload) -> Vec<(Matrix<f64>, Matrix<f64>)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(w.seed);
    (0..w.count).map(|_| (w.input.generate(w.n, &mut rng), w.input.generate(w.n, &mut rng))).collect()
}

/// Runs the workload both ways under `config` and reports modelled times,
/// speedup and the bit-identity verdict.
pub fn measure_batch(config: &AAbftConfig, w: &BatchWorkload) -> BatchReport {
    let requests = generate_requests(w);
    let gemm = AAbftGemm::new(*config);
    let model = PerfModel::k20c();

    let seq_device = device(w.num_sms);
    let sequential: Vec<_> = requests.iter().map(|(a, b)| gemm.multiply(&seq_device, a, b)).collect();
    let sequential_s = model.stream_makespan(&seq_device.take_log(), w.num_sms);

    let batch = BatchGemm::new(gemm).with_streams(w.streams);
    let bat_device = device(w.num_sms);
    let batched = batch.execute(&bat_device, &requests).expect("pre-validated requests");
    let batched_s = model.stream_makespan(&bat_device.take_log(), w.num_sms);

    let bit_identical = sequential.len() == batched.len()
        && sequential.iter().zip(&batched).all(|(s, o)| {
            s.product.as_slice() == o.product.as_slice()
                && s.errors_detected() == o.errors_detected()
        });
    let detections = batched.iter().filter(|o| o.errors_detected()).count();
    BatchReport { sequential_s, batched_s, bit_identical, detections }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_gpu_sim::kernels::gemm::GemmTiling;

    #[test]
    fn small_batch_overlaps_and_stays_bit_identical() {
        let config = AAbftConfig::builder()
            .block_size(4)
            .tiling(GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 })
            .build()
            .expect("valid config");
        let w = BatchWorkload { count: 8, n: 16, streams: 4, ..Default::default() };
        let r = measure_batch(&config, &w);
        assert!(r.bit_identical, "batched products must match sequential bitwise");
        assert!(r.speedup() > 1.0, "streams must overlap: speedup {}", r.speedup());
        assert_eq!(r.detections, 0);
    }
}
