//! Table I support: GFLOPS of every scheme across matrix sizes.
//!
//! Two modes: *modelled* (analytic launch logs through the roofline model,
//! usable at the paper's full 512–8192 sweep) and *simulated* (actually run
//! the schemes on the functional simulator at feasible sizes; the launch
//! logs are then measured, not predicted — `predict` is unit-tested to
//! match them exactly).

use crate::predict::{predict_launches, PredictShape, SchemeKind};
use aabft_baselines::{
    AAbftScheme, FixedBoundAbft, ProtectedGemm, SeaAbft, TmrGemm, UnprotectedGemm,
};
use aabft_core::AAbftConfig;
use aabft_gpu_sim::device::Device;
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_gpu_sim::perf::PerfModel;
use aabft_matrix::gen::InputClass;
use rand::SeedableRng;

/// One row of Table I: GFLOPS per scheme at one matrix size.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// Matrix dimension.
    pub n: usize,
    /// Fixed-bound ABFT.
    pub abft: f64,
    /// A-ABFT.
    pub aabft: f64,
    /// SEA-ABFT.
    pub sea: f64,
    /// TMR.
    pub tmr: f64,
    /// Unprotected reference.
    pub unprotected: f64,
}

/// Useful FLOPs of the caller's `n³` multiplication.
fn useful_flops(n: usize) -> u64 {
    2 * (n as u64).pow(3)
}

/// Computes a Table I row from analytic launch logs.
pub fn modelled_row(n: usize, bs: usize, p: usize, tiling: GemmTiling) -> Table1Row {
    let model = PerfModel::k20c();
    let shape = PredictShape { n, bs, p, tiling };
    let g = |kind| model.gflops(useful_flops(n), &predict_launches(kind, &shape));
    Table1Row {
        n,
        abft: g(SchemeKind::Abft),
        aabft: g(SchemeKind::AAbft),
        sea: g(SchemeKind::SeaAbft),
        tmr: g(SchemeKind::Tmr),
        unprotected: g(SchemeKind::Unprotected),
    }
}

/// Computes a Table I row by running every scheme on the simulator and
/// modelling time from the *measured* launch log.
pub fn simulated_row(n: usize, bs: usize, p: usize, tiling: GemmTiling, seed: u64) -> Table1Row {
    let model = PerfModel::k20c();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let a = InputClass::UNIT.generate(n, &mut rng);
    let b = InputClass::UNIT.generate(n, &mut rng);

    let run = |scheme: &dyn ProtectedGemm| {
        let device = Device::with_defaults();
        scheme.multiply(&device, &a, &b);
        model.gflops(useful_flops(n), &device.take_log())
    };

    Table1Row {
        n,
        abft: run(&FixedBoundAbft::new(1e-9, bs).with_tiling(tiling)),
        aabft: run(&AAbftScheme::new(
            AAbftConfig::builder().block_size(bs).p(p).tiling(tiling).build().expect("valid config"),
        )),
        sea: run(&SeaAbft::new(bs).with_tiling(tiling)),
        tmr: run(&TmrGemm::new().with_tiling(tiling)),
        unprotected: run(&UnprotectedGemm::new().with_tiling(tiling)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modelled_ordering_matches_paper_at_large_n() {
        let t = GemmTiling::default();
        let row = modelled_row(8192, 32, 2, t);
        // Paper Table I ordering: unprotected > ABFT > A-ABFT > SEA > TMR.
        assert!(row.unprotected > row.abft, "{row:?}");
        assert!(row.abft > row.aabft, "{row:?}");
        assert!(row.aabft > row.sea, "{row:?}");
        assert!(row.sea > row.tmr, "{row:?}");
        // TMR lands near a third of unprotected.
        let ratio = row.tmr / row.unprotected;
        assert!((0.25..0.37).contains(&ratio), "TMR/unprotected = {ratio}");
    }

    #[test]
    fn aabft_gap_closes_with_n() {
        let t = GemmTiling::default();
        let small = modelled_row(512, 32, 2, t);
        let large = modelled_row(8192, 32, 2, t);
        let gap_small = small.aabft / small.abft;
        let gap_large = large.aabft / large.abft;
        assert!(
            gap_large > gap_small,
            "A-ABFT/ABFT should converge: {gap_small} -> {gap_large}"
        );
        assert!(gap_large > 0.93, "gap at 8192 should be small: {gap_large}");
    }

    #[test]
    fn simulated_and_modelled_agree() {
        // The prediction formulas are exact; both paths must produce the
        // same GFLOPS at a simulator-feasible size.
        let t = GemmTiling { bm: 16, bn: 16, bk: 8, rx: 4, ry: 4 };
        let m = modelled_row(64, 8, 2, t);
        let s = simulated_row(64, 8, 2, t, 9);
        for (a, b) in [
            (m.abft, s.abft),
            (m.aabft, s.aabft),
            (m.sea, s.sea),
            (m.tmr, s.tmr),
            (m.unprotected, s.unprotected),
        ] {
            assert!((a - b).abs() < 1e-9 * a.max(1.0), "modelled {a} vs simulated {b}");
        }
    }
}
