//! Minimal command-line argument parsing for the experiment binaries
//! (`--key value` pairs; no external dependency).

use std::collections::HashMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// Panics on a flag without a value or a stray positional argument.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit argument iterator (testable).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = HashMap::new();
        let mut iter = iter.into_iter();
        while let Some(key) = iter.next() {
            let stripped = key
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --flag, got {key:?}"));
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("flag --{stripped} needs a value"));
            values.insert(stripped.to_string(), value);
        }
        Args { values }
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.values.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|e| panic!("--{key} {v:?}: {e:?}")),
        }
    }

    /// Comma-separated list of usize with default.
    pub fn sizes(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.values.get(key) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|s| s.trim().parse().unwrap_or_else(|e| panic!("--{key} {s:?}: {e:?}")))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pairs() {
        let a = Args::from_args(["--n".into(), "128".into(), "--seed".into(), "7".into()]);
        assert_eq!(a.get("n", 0usize), 128);
        assert_eq!(a.get("seed", 0u64), 7);
        assert_eq!(a.get("missing", 42u32), 42);
    }

    #[test]
    fn parses_size_lists() {
        let a = Args::from_args(["--sizes".into(), "64, 128,256".into()]);
        assert_eq!(a.sizes("sizes", &[1]), vec![64, 128, 256]);
        assert_eq!(a.sizes("other", &[512, 1024]), vec![512, 1024]);
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn missing_value_panics() {
        Args::from_args(["--flag".into()]);
    }
}
