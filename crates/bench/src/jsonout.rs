//! JSON emission for experiment results (`--json <path>` in the
//! table/figure binaries).
//!
//! The emitter now lives in `aabft-obs` (one JSON implementation serves
//! the CLI's `--trace`/`--metrics` exports and the experiment binaries
//! alike); this module re-exports it under the old path. The builder
//! still renders flat records byte-for-byte as before, and additionally
//! supports nested objects/arrays ([`JsonObject::object`],
//! [`JsonObject::array`]), exponent formatting for extreme floats, and
//! control-character escaping.

pub use aabft_obs::json::{write_array, JsonObject};

#[cfg(test)]
mod tests {
    use super::*;

    // The original flat-emitter behaviour the experiment binaries rely
    // on, now served by the shared implementation.
    #[test]
    fn renders_flat_objects() {
        let o = JsonObject::new().int("n", 512).num("gflops", 941.5).str("scheme", "A-ABFT");
        assert_eq!(o.render(), r#"{"n":512,"gflops":941.5,"scheme":"A-ABFT"}"#);
    }

    #[test]
    fn escapes_strings_and_handles_nan() {
        let o = JsonObject::new().str("s", "a\"b\\c").num("x", f64::NAN);
        assert_eq!(o.render(), r#"{"s":"a\"b\\c","x":null}"#);
    }

    #[test]
    fn writes_valid_array() {
        let dir = std::env::temp_dir().join("aabft_json_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("out.json");
        write_array(&path, &[JsonObject::new().int("a", 1), JsonObject::new().int("a", 2)]);
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.starts_with("[\n"));
        assert!(text.contains(r#"{"a":1},"#));
        assert!(text.trim_end().ends_with(']'));
        // The shared implementation can parse its own output back.
        assert!(aabft_obs::json::parse(&text).is_ok());
    }

    #[test]
    fn supports_nested_results() {
        let o = JsonObject::new().str("scheme", "A-ABFT").object(
            "stats",
            JsonObject::new().int("critical", 7).num("rate", 0.96),
        );
        assert_eq!(o.render(), r#"{"scheme":"A-ABFT","stats":{"critical":7,"rate":0.96}}"#);
    }
}
