//! Minimal JSON emission for experiment results (`--json <path>` in the
//! table/figure binaries). Hand-rolled: the result records are flat
//! numeric structs, and the offline dependency policy favours no extra
//! format crates.

use std::fmt::Write as _;
use std::path::Path;

/// A flat JSON object under construction.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a numeric field (serialised via Rust's shortest-round-trip
    /// float formatting; NaN/inf become null).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let v = if value.is_finite() { format!("{value}") } else { "null".to_string() };
        self.fields.push((key.to_string(), v));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a string field (escaping quotes and backslashes).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
        self.fields.push((key.to_string(), format!("\"{escaped}\"")));
        self
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push('}');
        out
    }
}

/// Writes an array of objects to `path` (pretty enough: one object per
/// line).
///
/// # Panics
///
/// Panics on I/O failure (experiment binaries treat that as fatal).
pub fn write_array(path: &Path, objects: &[JsonObject]) {
    let mut out = String::from("[\n");
    for (i, o) in objects.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&o.render());
        if i + 1 < objects.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_objects() {
        let o = JsonObject::new().int("n", 512).num("gflops", 941.5).str("scheme", "A-ABFT");
        assert_eq!(o.render(), r#"{"n":512,"gflops":941.5,"scheme":"A-ABFT"}"#);
    }

    #[test]
    fn escapes_strings_and_handles_nan() {
        let o = JsonObject::new().str("s", "a\"b\\c").num("x", f64::NAN);
        assert_eq!(o.render(), r#"{"s":"a\"b\\c","x":null}"#);
    }

    #[test]
    fn writes_valid_array() {
        let dir = std::env::temp_dir().join("aabft_json_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("out.json");
        write_array(&path, &[JsonObject::new().int("a", 1), JsonObject::new().int("a", 2)]);
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.starts_with("[\n"));
        assert!(text.contains(r#"{"a":1},"#));
        assert!(text.trim_end().ends_with(']'));
    }
}
