//! Benchmark and experiment harness regenerating every table and figure of
//! the DSN'14 A-ABFT paper.
//!
//! * [`predict`] — exact analytic launch logs per scheme (validated against
//!   measured logs), enabling Table I at the paper's full sizes;
//! * [`table1`] — GFLOPS rows (modelled and simulated paths);
//! * [`quality`] — bound-quality rows for Tables II–IV (exact rounding
//!   error vs A-ABFT vs SEA bounds);
//! * [`fig4`] — fault-injection detection-rate sweeps for Figure 4;
//! * [`batch`] — sequential-vs-batched modelled wall time of the
//!   multi-stream batch engine;
//! * [`args`] — tiny CLI parsing for the `table*`/`figure4`/`ablation_*`
//!   binaries.
//!
//! Each binary prints the corresponding table in the paper's layout; see
//! `EXPERIMENTS.md` at the repository root for paper-vs-measured numbers.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
pub mod batch;
pub mod fig4;
pub mod jsonout;
pub mod predict;
pub mod quality;
pub mod table1;
