//! Analytic launch-log prediction.
//!
//! Table I evaluates at sizes up to 8192³ — 1.1 TFLOPs of simulated work per
//! multiplication, far beyond what the functional simulator should grind
//! through. Every kernel's instruction and memory counts are, however,
//! exact closed-form functions of the launch geometry. This module builds
//! the same `LaunchRecord` log a real pipeline run would produce, purely
//! analytically; a test (and `tests/predict_validation.rs`) asserts *exact*
//! equality against measured logs at simulator-feasible sizes, so the
//! formulas cannot drift from the kernels.

use aabft_core::encoding::AugmentedLayout;
use aabft_core::kernels::check::CHECK_UTILIZATION;
use aabft_core::kernels::encode::ENCODE_UTILIZATION;
use aabft_core::kernels::reduce::REDUCE_UTILIZATION;
use aabft_baselines::kernels::{BASELINE_CHECK_UTILIZATION, NORM_UTILIZATION};
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_gpu_sim::stats::{KernelStats, LaunchRecord};

/// The five schemes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Fixed-bound standard ABFT.
    Abft,
    /// The paper's contribution.
    AAbft,
    /// Simplified-error-analysis ABFT.
    SeaAbft,
    /// Triple modular redundancy.
    Tmr,
    /// No protection (throughput reference).
    Unprotected,
}

impl SchemeKind {
    /// All schemes in Table I column order.
    pub const TABLE1: [SchemeKind; 4] =
        [SchemeKind::Abft, SchemeKind::AAbft, SchemeKind::SeaAbft, SchemeKind::Tmr];

    /// Display name matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Abft => "ABFT",
            SchemeKind::AAbft => "A-ABFT",
            SchemeKind::SeaAbft => "SEA-ABFT",
            SchemeKind::Tmr => "TMR",
            SchemeKind::Unprotected => "unprotected",
        }
    }
}

/// Geometry of a protected multiplication for prediction purposes.
#[derive(Debug, Clone, Copy)]
pub struct PredictShape {
    /// Caller matrix dimension (square `n × n · n × n`).
    pub n: usize,
    /// Partitioned-encoding block size.
    pub bs: usize,
    /// Number of tracked maxima (A-ABFT only).
    pub p: usize,
    /// Multiplication tiling.
    pub tiling: GemmTiling,
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

impl PredictShape {
    /// Augmented row layout, padded inner extent and augmented column layout.
    pub fn layouts(&self) -> (AugmentedLayout, usize, AugmentedLayout) {
        let rows = AugmentedLayout::new(self.n, self.bs, self.tiling.bm);
        let cols = AugmentedLayout::new(self.n, self.bs, self.tiling.bn);
        let mult = lcm(self.bs, self.tiling.bk);
        let inner = self.n.div_ceil(mult) * mult;
        (rows, inner, cols)
    }

    /// Plain-padded extents for the unprotected/TMR GEMM.
    pub fn plain(&self) -> (usize, usize, usize) {
        let t = self.tiling;
        (
            self.n.div_ceil(t.bm) * t.bm,
            self.n.div_ceil(t.bk) * t.bk,
            self.n.div_ceil(t.bn) * t.bn,
        )
    }
}

/// Stats of the blocked GEMM kernel for an `m × n · n × q` launch.
pub fn gemm_stats(m: usize, n: usize, q: usize, t: GemmTiling) -> KernelStats {
    let blocks = (m / t.bm) as u64 * (q / t.bn) as u64;
    let tpb = t.threads_per_block() as u64;
    let k_tiles = (n / t.bk) as u64;
    let tile_words = (t.bm * t.bk + t.bk * t.bn) as u64;
    let mnq = (m * q) as u64 * n as u64;
    KernelStats {
        fmul: mnq,
        fadd: mnq + (m * q) as u64,
        fpu_ticks: 2 * mnq + (m * q) as u64,
        ffma: 0,
        fcmp: 0,
        gmem_loads: blocks * k_tiles * tile_words + (m * q) as u64,
        gmem_stores: (m * q) as u64,
        smem_accesses: blocks * k_tiles * (tile_words + tpb * (t.bk * (t.rx + t.ry)) as u64),
        blocks,
        threads: blocks * tpb,
    }
}

/// Stats of a plain (no p-max) encoding kernel over `blocks_i × blocks_k`
/// sub-matrices of size `bs`.
fn encode_plain_stats(blocks_i: usize, blocks_k: usize, bs: usize) -> KernelStats {
    let blocks = (blocks_i * blocks_k) as u64;
    let bs = bs as u64;
    KernelStats {
        fadd: blocks * bs * bs,
        fpu_ticks: blocks * bs * bs,
        gmem_loads: blocks * bs * bs,
        gmem_stores: blocks * bs,
        blocks,
        threads: blocks * bs,
        ..Default::default()
    }
}

/// Stats of an A-ABFT fused encode + p-max kernel.
fn encode_aabft_stats(blocks_i: usize, blocks_k: usize, bs: usize, p: usize) -> KernelStats {
    let blocks = (blocks_i * blocks_k) as u64;
    let (bs, p) = (bs as u64, p as u64);
    KernelStats {
        fadd: blocks * bs * bs,
        fcmp: blocks * (bs * bs + p * (bs * bs + bs)),
        fpu_ticks: blocks * (2 * bs * bs + p * (bs * bs + bs)),
        gmem_loads: blocks * bs * bs,
        gmem_stores: blocks * (bs + p * (2 * bs + 2)),
        smem_accesses: blocks * (bs * bs + bs + p * bs * bs),
        blocks,
        threads: blocks * bs,
        ..Default::default()
    }
}

/// Stats of the p-max reduction over `lines` lines with `kblocks` partials.
fn reduce_stats(lines: usize, kblocks: usize, p: usize) -> KernelStats {
    let (lines, kblocks, p) = (lines as u64, kblocks as u64, p as u64);
    KernelStats {
        fcmp: lines * p * kblocks * p,
        fpu_ticks: lines * p * kblocks * p,
        gmem_loads: lines * 2 * kblocks * p,
        gmem_stores: lines * 2 * p,
        blocks: lines,
        threads: lines * p,
        ..Default::default()
    }
}

/// Stats of the A-ABFT checking kernel.
fn check_aabft_stats(row_blocks: usize, col_blocks: usize, bs: usize, p: usize) -> KernelStats {
    let blocks = (row_blocks * col_blocks) as u64;
    let (bs, p) = (bs as u64, p as u64);
    KernelStats {
        fadd: blocks * (2 * bs * (bs + 1) + 2 * bs * 4),
        fmul: blocks * 2 * bs * (p * p + 2 + 8),
        fcmp: blocks * 2 * bs * (4 + 2 + 1),
        fpu_ticks: blocks * 2 * bs * (bs + 2),
        gmem_loads: blocks * (4 * p + 2 * bs * (bs + 1 + 2 * p)),
        gmem_stores: blocks * 2,
        smem_accesses: blocks * bs * bs,
        blocks,
        threads: blocks * bs,
        ..Default::default()
    }
}

/// Stats of the baseline checking kernel (fixed or SEA rule).
fn check_baseline_stats(row_blocks: usize, col_blocks: usize, bs: usize, sea: bool) -> KernelStats {
    let blocks = (row_blocks * col_blocks) as u64;
    let bs = bs as u64;
    // Per checked line (bs per direction, 2 directions): reference sum bs
    // adds + bs loads, checksum load, diff add, abs; SEA adds the norm
    // gathering (bs + 2 loads, bs + 2 adds, 4 muls).
    let per_tid_loads = bs + 1 + if sea { bs + 2 } else { 0 };
    let per_tid_fadd = bs + 1 + if sea { bs + 2 } else { 0 };
    let per_tid_fmul = if sea { 4 } else { 0 };
    let per_tid_noted = if sea { 2 + 4 } else { 0 };
    KernelStats {
        fadd: blocks * 2 * bs * per_tid_fadd,
        fmul: blocks * 2 * bs * per_tid_fmul,
        fcmp: blocks * 2 * bs,
        fpu_ticks: blocks * 2 * bs * (per_tid_fadd + per_tid_fmul + 1 - per_tid_noted),
        gmem_loads: blocks * 2 * bs * per_tid_loads,
        gmem_stores: blocks * 2,
        blocks,
        threads: blocks * bs,
        ..Default::default()
    }
}

/// Stats of a norm kernel over `lines` lines of length `len`, each norm
/// recomputed `red` times (once per opposing result block). DRAM traffic
/// per line is charged once; the redundant reads are cached.
fn norm_stats(lines: usize, len: usize, red: usize) -> KernelStats {
    let blocks = (lines * red) as u64;
    let len = len as u64;
    KernelStats {
        fadd: blocks * len,
        fmul: blocks * len,
        fcmp: blocks,
        fpu_ticks: 2 * blocks * len,
        gmem_loads: lines as u64 * len,
        gmem_stores: blocks,
        smem_accesses: blocks * len,
        blocks,
        threads: blocks,
        ..Default::default()
    }
}

/// Stats of the TMR comparison kernel over `len` words in `nblocks` chunks.
fn compare_stats(len: usize, nblocks: usize) -> KernelStats {
    let chunk = len.div_ceil(nblocks);
    let threads_per_block = 32.min(chunk).max(1) as u64;
    let len = len as u64;
    KernelStats {
        fadd: len,
        fcmp: len,
        fpu_ticks: 2 * len,
        gmem_loads: 2 * len,
        gmem_stores: nblocks as u64,
        blocks: nblocks as u64,
        threads: nblocks as u64 * threads_per_block,
        ..Default::default()
    }
}

fn rec(name: &str, utilization: f64, stats: KernelStats) -> LaunchRecord {
    LaunchRecord::synthetic(name, utilization, stats)
}

/// Predicts the full launch log of one protected multiplication.
pub fn predict_launches(kind: SchemeKind, shape: &PredictShape) -> Vec<LaunchRecord> {
    let (rows, inner, cols) = shape.layouts();
    let bs = shape.bs;
    let p = shape.p;
    let t = shape.tiling;
    let gemm_util = 0.896;
    match kind {
        SchemeKind::Unprotected => {
            let (pm, pn, pq) = shape.plain();
            vec![rec("gemm", gemm_util, gemm_stats(pm, pn, pq, t))]
        }
        SchemeKind::Tmr => {
            let (pm, pn, pq) = shape.plain();
            let g = gemm_stats(pm, pn, pq, t);
            let nblocks = 64.min(pm * pq);
            vec![
                rec("gemm", gemm_util, g),
                rec("gemm", gemm_util, g),
                rec("gemm", gemm_util, g),
                rec("compare", 0.05, compare_stats(pm * pq, nblocks)),
                rec("compare", 0.05, compare_stats(pm * pq, nblocks)),
            ]
        }
        SchemeKind::Abft => vec![
            rec(
                "abft_encode_a",
                BASELINE_CHECK_UTILIZATION,
                encode_plain_stats(rows.blocks, inner / bs, bs),
            ),
            rec(
                "abft_encode_b",
                BASELINE_CHECK_UTILIZATION,
                encode_plain_stats(inner / bs, cols.blocks, bs),
            ),
            rec("gemm", gemm_util, gemm_stats(rows.total, inner, cols.total, t)),
            rec(
                "abft_check_fixed",
                BASELINE_CHECK_UTILIZATION,
                check_baseline_stats(rows.blocks, cols.blocks, bs, false),
            ),
        ],
        SchemeKind::SeaAbft => vec![
            rec(
                "abft_encode_a",
                BASELINE_CHECK_UTILIZATION,
                encode_plain_stats(rows.blocks, inner / bs, bs),
            ),
            rec(
                "abft_encode_b",
                BASELINE_CHECK_UTILIZATION,
                encode_plain_stats(inner / bs, cols.blocks, bs),
            ),
            rec("gemm", gemm_util, gemm_stats(rows.total, inner, cols.total, t)),
            rec("sea_row_norms", NORM_UTILIZATION, norm_stats(rows.total, inner, cols.blocks)),
            rec("sea_col_norms", NORM_UTILIZATION, norm_stats(cols.total, inner, rows.blocks)),
            rec(
                "sea_check",
                BASELINE_CHECK_UTILIZATION,
                check_baseline_stats(rows.blocks, cols.blocks, bs, true),
            ),
        ],
        SchemeKind::AAbft => vec![
            rec(
                "aabft_encode_a",
                ENCODE_UTILIZATION,
                encode_aabft_stats(rows.blocks, inner / bs, bs, p),
            ),
            rec(
                "aabft_encode_b",
                ENCODE_UTILIZATION,
                encode_aabft_stats(inner / bs, cols.blocks, bs, p),
            ),
            rec("gemm", gemm_util, gemm_stats(rows.total, inner, cols.total, t)),
            rec("aabft_reduce_pmax", REDUCE_UTILIZATION, reduce_stats(rows.total, inner / bs, p)),
            rec("aabft_reduce_pmax", REDUCE_UTILIZATION, reduce_stats(cols.total, inner / bs, p)),
            rec(
                "aabft_check",
                CHECK_UTILIZATION,
                check_aabft_stats(rows.blocks, cols.blocks, bs, p),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aabft_baselines::{
        AAbftScheme, FixedBoundAbft, ProtectedGemm, SeaAbft, TmrGemm, UnprotectedGemm,
    };
    use aabft_core::AAbftConfig;
    use aabft_gpu_sim::device::Device;
    use aabft_matrix::Matrix;

    fn shape() -> PredictShape {
        PredictShape {
            n: 40,
            bs: 8,
            p: 2,
            tiling: GemmTiling { bm: 16, bn: 16, bk: 8, rx: 4, ry: 4 },
        }
    }

    fn measured(kind: SchemeKind, shape: &PredictShape) -> Vec<LaunchRecord> {
        let n = shape.n;
        let a: Matrix = Matrix::from_fn(n, n, |i, j| ((i * 3 + j) as f64 * 0.1).sin());
        let b: Matrix = Matrix::from_fn(n, n, |i, j| ((i + 7 * j) as f64 * 0.1).cos());
        let device = Device::with_defaults();
        match kind {
            SchemeKind::Unprotected => {
                UnprotectedGemm::new().with_tiling(shape.tiling).multiply(&device, &a, &b);
            }
            SchemeKind::Tmr => {
                TmrGemm::new().with_tiling(shape.tiling).multiply(&device, &a, &b);
            }
            SchemeKind::Abft => {
                FixedBoundAbft::new(1e-9, shape.bs)
                    .with_tiling(shape.tiling)
                    .multiply(&device, &a, &b);
            }
            SchemeKind::SeaAbft => {
                SeaAbft::new(shape.bs).with_tiling(shape.tiling).multiply(&device, &a, &b);
            }
            SchemeKind::AAbft => {
                AAbftScheme::new(
                    AAbftConfig::builder()
                        .block_size(shape.bs)
                        .p(shape.p)
                        .tiling(shape.tiling)
                        .build().expect("valid config"),
                )
                .multiply(&device, &a, &b);
            }
        }
        device.take_log()
    }

    #[test]
    fn predictions_match_measured_logs_exactly() {
        let s = shape();
        for kind in [
            SchemeKind::Unprotected,
            SchemeKind::Tmr,
            SchemeKind::Abft,
            SchemeKind::SeaAbft,
            SchemeKind::AAbft,
        ] {
            let predicted = predict_launches(kind, &s);
            let actual = measured(kind, &s);
            assert_eq!(predicted.len(), actual.len(), "{kind:?}: launch count");
            for (p, a) in predicted.iter().zip(&actual) {
                assert_eq!(p.name, a.name, "{kind:?}");
                assert_eq!(p.utilization, a.utilization, "{kind:?}/{}", p.name);
                assert_eq!(p.stats, a.stats, "{kind:?}/{}", p.name);
            }
        }
    }
}
