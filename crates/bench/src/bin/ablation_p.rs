//! Ablation (paper Section IV-E): bound quality as a function of `p`, the
//! number of tracked largest absolute values.
//!
//! "The quality of the error bound can be improved by increasing the number
//! p of considered largest absolute values. However, this also increases
//! the computational overhead." — this study quantifies both sides: the
//! average bound tightness and the modelled GFLOPS cost of the extra
//! p-max work.
//!
//! ```text
//! cargo run --release -p aabft-bench --bin ablation_p -- --n 256
//! ```

use aabft_bench::args::Args;
use aabft_bench::predict::{predict_launches, PredictShape, SchemeKind};
use aabft_bench::quality::{measure, QualityConfig};
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_gpu_sim::perf::PerfModel;
use aabft_matrix::gen::InputClass;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 256usize);
    let bs = args.get("bs", 32usize);
    let perf_n = args.get("perf-n", 4096usize);
    let model = PerfModel::k20c();
    let tiling = GemmTiling::default();

    println!("Ablation: bound tightness and overhead vs p (n = {n}, inputs [-1,1])");
    println!(
        "{:>4} {:>14} {:>14} {:>12} {:>16}",
        "p", "avg A-ABFT", "avg rnd err", "bound/err", "GFLOPS@n=4096"
    );
    for p in [1, 2, 4, 8] {
        let config = QualityConfig { bs, p, samples: 1024, ..Default::default() };
        let row = measure(n, InputClass::UNIT, &config);
        let shape = PredictShape { n: perf_n, bs, p, tiling };
        let gflops =
            model.gflops(2 * (perf_n as u64).pow(3), &predict_launches(SchemeKind::AAbft, &shape));
        println!(
            "{:>4} {:>14.3e} {:>14.3e} {:>12.1} {:>16.2}",
            p,
            row.avg_aabft,
            row.avg_rnd_error,
            row.avg_aabft / row.avg_rnd_error,
            gflops
        );
    }
    println!();
    println!("expected: bounds tighten (ratio drops) as p grows, at slightly lower GFLOPS.");
}
