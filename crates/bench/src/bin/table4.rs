//! Regenerates Table IV: average exact rounding error vs A-ABFT vs
//! SEA-ABFT bounds for the high value-range-dynamic matrices of Eq. 47
//! with α = 0, κ = 2.
//!
//! ```text
//! cargo run --release -p aabft-bench --bin table4
//! cargo run --release -p aabft-bench --bin table4 -- --alpha 0 --kappa 2
//! ```

use aabft_bench::args::Args;
use aabft_bench::quality::print_quality_table;
use aabft_matrix::gen::InputClass;

fn main() {
    let args = Args::parse();
    let alpha = args.get("alpha", 0.0f64);
    let kappa = args.get("kappa", 2.0f64);
    print_quality_table(
        &args,
        InputClass::DynamicRange { alpha, kappa },
        &format!(
            "Table IV reproduction: rounding-error bounds, dynamic-range inputs \
             (10^{alpha} * U * D_{kappa} * V^T)"
        ),
    );
}
