//! Ablation: simultaneous multi-fault behaviour. The paper injects one
//! fault per multiplication; here 1–4 faults strike the same run. Detection
//! should stay high (checksums accumulate all deviations), while
//! *single-error correction* stops sufficing — the selective block-recompute
//! recovery policy keeps healing the product.
//!
//! ```text
//! cargo run --release -p aabft-bench --bin ablation_multifault -- --n 96 --trials 120
//! ```

use aabft_baselines::AAbftScheme;
use aabft_bench::args::Args;
use aabft_core::recover::RecoveryPolicy;
use aabft_core::AAbftConfig;
use aabft_faults::bitflip::BitRegion;
use aabft_faults::campaign::{run_campaign, CampaignConfig};
use aabft_faults::plan::{FaultSpec, InjectScope};
use aabft_gpu_sim::inject::FaultSite;
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_matrix::gen::InputClass;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 96usize);
    let trials = args.get("trials", 120usize);
    let bs = args.get("bs", 16usize);
    let tiling = GemmTiling { bm: 32, bn: 32, bk: 8, rx: 4, ry: 4 };

    println!(
        "Ablation: simultaneous faults per run (exponent flips, final-sum add, n = {n}, \
         {trials} trials)"
    );
    println!(
        "{:>7} {:>12} {:>12} {:>14} {:>14}",
        "faults", "detect %", "critical", "healed(rec) %", "unhealed(rec)"
    );
    for faults in 1..=4 {
        let config = CampaignConfig {
            n,
            input: InputClass::UNIT,
            spec: FaultSpec::single(FaultSite::FinalAdd, BitRegion::Exponent),
            trials,
            seed: 0xF0 + faults as u64,
            omega: 3.0,
            block_size: bs,
            tiling,
            faults_per_run: faults,
            scope: InjectScope::GemmSites,
        };
        // Without recovery: measure raw detection of the corrupted product.
        let plain =
            AAbftScheme::new(AAbftConfig::builder().block_size(bs).tiling(tiling).build().expect("valid config"));
        let rp = run_campaign(&plain, &config);
        // With recovery: the returned product should be healed. Checksum
        // reconstruction leaves a residue at checksum-rounding level
        // (~1e-13 here), far above the per-element sigma the strict
        // classifier uses, so judge healing by the worst deviation instead.
        let recovering = AAbftScheme::new(
            AAbftConfig::builder()
                .block_size(bs)
                .tiling(tiling)
                .recovery(RecoveryPolicy::CorrectOrRecompute)
                .build().expect("valid config"),
        );
        let rr = run_campaign(&recovering, &config);
        let healed = rr.trials.iter().filter(|t| t.max_deviation < 1e-9).count();
        let unhealed = rr.trials.iter().filter(|t| t.max_deviation >= 1e-9).count();
        println!(
            "{:>7} {:>12.1} {:>12} {:>14.1} {:>14}",
            faults,
            100.0 * rp.stats.detection_rate(),
            rp.stats.critical,
            100.0 * healed as f64 / rr.trials.len() as f64,
            unhealed,
        );
    }
    println!();
    println!("expected: detection stays at ~100% for exponent flips regardless of fault");
    println!("count; with the recompute policy the product is healed (deviation below");
    println!("1e-9) in (almost) every trial even when single-error correction is");
    println!("impossible.");
}
