//! Regenerates Table II: average exact rounding error vs A-ABFT vs SEA-ABFT
//! bounds for inputs uniform in [-1, 1].
//!
//! ```text
//! cargo run --release -p aabft-bench --bin table2
//! cargo run --release -p aabft-bench --bin table2 -- --sizes 512,1024 --samples 4096
//! ```

use aabft_bench::args::Args;
use aabft_bench::quality::print_quality_table;
use aabft_matrix::gen::InputClass;

fn main() {
    print_quality_table(
        &Args::parse(),
        InputClass::UNIT,
        "Table II reproduction: rounding-error bounds, inputs uniform in [-1, 1]",
    );
}
