//! Regenerates Table III: average exact rounding error vs A-ABFT vs
//! SEA-ABFT bounds for inputs uniform in [-100, 100].
//!
//! ```text
//! cargo run --release -p aabft-bench --bin table3
//! ```

use aabft_bench::args::Args;
use aabft_bench::quality::print_quality_table;
use aabft_matrix::gen::InputClass;

fn main() {
    print_quality_table(
        &Args::parse(),
        InputClass::HUNDRED,
        "Table III reproduction: rounding-error bounds, inputs uniform in [-100, 100]",
    );
}
