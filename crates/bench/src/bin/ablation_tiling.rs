//! Ablation: GEMM tile shape on the roofline model. Small tiles are
//! memory-bound (low arithmetic intensity); the default 64x64x16 tile is
//! compute-bound on K20c-class bandwidth — the difference the real tuning
//! literature (Volkov/Demmel, Tan et al.) documents for Fermi/Kepler.
//!
//! ```text
//! cargo run --release -p aabft-bench --bin ablation_tiling -- --n 8192
//! ```

use aabft_bench::args::Args;
use aabft_bench::predict::gemm_stats;
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_gpu_sim::perf::PerfModel;
use aabft_gpu_sim::stats::LaunchRecord;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 8192usize);
    let model = PerfModel::k20c();
    println!("Ablation: unprotected GEMM throughput vs tile shape (modelled, n = {n})");
    println!(
        "{:>16} {:>12} {:>12} {:>12} {:>10}",
        "tile (bm,bn,bk)", "bytes/flop", "compute s", "memory s", "GFLOPS"
    );
    for t in [
        GemmTiling { bm: 16, bn: 16, bk: 8, rx: 4, ry: 4 },
        GemmTiling { bm: 32, bn: 32, bk: 8, rx: 4, ry: 4 },
        GemmTiling { bm: 32, bn: 32, bk: 16, rx: 4, ry: 4 },
        GemmTiling { bm: 64, bn: 64, bk: 16, rx: 4, ry: 4 },
        GemmTiling { bm: 64, bn: 64, bk: 32, rx: 8, ry: 8 },
    ] {
        let stats = gemm_stats(n, n, n, t);
        let rec = LaunchRecord::synthetic("gemm", 0.896, stats);
        let flops = stats.flops() as f64;
        let compute = flops / (model.peak_dp_flops * 0.896);
        let memory = stats.gmem_bytes() as f64 / model.mem_bandwidth;
        let gflops = model.gflops(2 * (n as u64).pow(3), &[rec]);
        println!(
            "{:>16} {:>12.4} {:>12.3} {:>12.3} {:>10.1}",
            format!("({},{},{})", t.bm, t.bn, t.bk),
            stats.gmem_bytes() as f64 / flops,
            compute,
            memory,
            gflops
        );
    }
    println!();
    println!("expected: the (64,64,16) tile crosses into the compute-bound regime");
    println!("(memory time < compute time), reaching the ~1048 GFLOPS the paper's");
    println!("unprotected kernel achieves; smaller tiles stall on bandwidth.");
}
