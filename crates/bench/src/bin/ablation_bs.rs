//! Ablation: the partitioned-encoding block size `BS` (Fig. 1). Smaller
//! blocks keep checksum magnitudes (and thus the autonomous `y`) smaller —
//! tighter bounds — but spend more memory and check work per element;
//! larger blocks amortise overhead at looser bounds.
//!
//! ```text
//! cargo run --release -p aabft-bench --bin ablation_bs -- --n 256
//! ```

use aabft_bench::args::Args;
use aabft_bench::predict::{predict_launches, PredictShape, SchemeKind};
use aabft_bench::quality::{measure, QualityConfig};
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_gpu_sim::perf::PerfModel;
use aabft_matrix::gen::InputClass;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 256usize);
    let perf_n = args.get("perf-n", 4096usize);
    let model = PerfModel::k20c();
    let tiling = GemmTiling::default();

    println!("Ablation: bound tightness and overhead vs block size BS (n = {n}, inputs [-1,1])");
    println!(
        "{:>5} {:>14} {:>14} {:>12} {:>16}",
        "BS", "avg A-ABFT", "avg rnd err", "bound/err", "GFLOPS@n=4096"
    );
    for bs in [8usize, 16, 32] {
        let config = QualityConfig { bs, samples: 1024, ..Default::default() };
        let row = measure(n, InputClass::UNIT, &config);
        let shape = PredictShape { n: perf_n, bs, p: 2, tiling };
        let gflops =
            model.gflops(2 * (perf_n as u64).pow(3), &predict_launches(SchemeKind::AAbft, &shape));
        println!(
            "{:>5} {:>14.3e} {:>14.3e} {:>12.1} {:>16.2}",
            bs,
            row.avg_aabft,
            row.avg_rnd_error,
            row.avg_aabft / row.avg_rnd_error,
            gflops
        );
    }
    println!();
    println!("observed: absolute errors and bounds both scale with the checksum");
    println!("magnitude (~sqrt(BS)), so the tightness *ratio* stays flat — the BS");
    println!("trade-off is purely overhead (larger BS -> fewer checksum lines ->");
    println!("higher GFLOPS), which favours the paper-scale BS = 32.");
}
