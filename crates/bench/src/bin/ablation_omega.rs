//! Ablation (paper Section VI-B): confidence scaling `ω ∈ {1σ, 2σ, 3σ}`.
//!
//! The paper reports its tables at the conservative `3σ` and notes tighter
//! settings stay within the same order of magnitude. This study prints the
//! average bound per `ω` and the *false-positive rate*: the fraction of
//! fault-free checksum comparisons whose natural rounding residual exceeds
//! the bound.
//!
//! ```text
//! cargo run --release -p aabft-bench --bin ablation_omega -- --n 256
//! ```

use aabft_bench::args::Args;
use aabft_bench::quality::{collect_samples, QualityConfig};
use aabft_matrix::gen::InputClass;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 256usize);
    let bs = args.get("bs", 32usize);
    let samples = args.get("samples", 4096usize);

    println!("Ablation: bound scaling and false positives vs omega (n = {n}, inputs [-1,1])");
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "omega", "avg bound", "max resid/bnd", "false-pos rate"
    );
    for omega in [1.0, 2.0, 3.0] {
        let config = QualityConfig { bs, p: 2, omega, samples, seed: 7 };
        let recs = collect_samples(n, InputClass::UNIT, &config);
        let avg: f64 = recs.iter().map(|r| r.aabft_bound).sum::<f64>() / recs.len() as f64;
        let worst: f64 =
            recs.iter().map(|r| r.residual / r.aabft_bound).fold(0.0, f64::max);
        let fp = recs.iter().filter(|r| r.residual > r.aabft_bound).count();
        println!(
            "{:>6} {:>14.3e} {:>14.3} {:>14.5}",
            omega,
            avg,
            worst,
            fp as f64 / recs.len() as f64
        );
    }
    println!();
    println!("expected: bounds scale ~linearly with omega; false positives vanish by 3s.");
}
