//! Ablation: detection rate as a function of the flipped bit position — the
//! classic ABFT sensitivity curve. Low mantissa bits produce errors below
//! the rounding noise (benign by definition); detection of *critical*
//! errors should switch on as the flipped bit climbs toward the exponent,
//! and A-ABFT's tighter bounds should switch on earlier than SEA-ABFT's.
//!
//! ```text
//! cargo run --release -p aabft-bench --bin ablation_bitpos -- --n 96 --trials 120
//! ```

use aabft_baselines::{AAbftScheme, SeaAbft};
use aabft_bench::args::Args;
use aabft_core::AAbftConfig;
use aabft_faults::campaign::{run_campaign, CampaignConfig};
use aabft_faults::plan::{FaultSpec, InjectScope};
use aabft_gpu_sim::inject::FaultSite;
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_matrix::gen::InputClass;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 96usize);
    let trials = args.get("trials", 120usize);
    let bs = args.get("bs", 16usize);
    let tiling = GemmTiling { bm: 32, bn: 32, bk: 8, rx: 4, ry: 4 };

    println!("Ablation: detection vs flipped bit position (inner-loop add, n = {n}, {trials} trials/bit)");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "bit", "A-ABFT %", "SEA %", "critical", "benign", "masked"
    );
    for bit in [8u32, 16, 24, 32, 40, 44, 48, 51, 55, 58, 62, 63] {
        let config = CampaignConfig {
            n,
            input: InputClass::UNIT,
            spec: FaultSpec::at_bit(FaultSite::InnerAdd, bit),
            trials,
            seed: 0xB17 + bit as u64,
            omega: 3.0,
            block_size: bs,
            tiling,
            faults_per_run: 1,
            scope: InjectScope::GemmSites,
        };
        let aabft =
            AAbftScheme::new(AAbftConfig::builder().block_size(bs).tiling(tiling).build().expect("valid config"));
        let ra = run_campaign(&aabft, &config);
        let sea = SeaAbft::new(bs).with_tiling(tiling);
        let rs = run_campaign(&sea, &config);
        let pct = |c: u64, d: u64| if c == 0 { f64::NAN } else { 100.0 * d as f64 / c as f64 };
        println!(
            "{:>5} {:>10.1} {:>10.1} {:>10} {:>10} {:>9}",
            bit,
            pct(ra.stats.critical, ra.stats.critical_detected),
            pct(rs.stats.critical, rs.stats.critical_detected),
            ra.stats.critical,
            ra.stats.benign,
            ra.stats.masked,
        );
    }
    println!();
    println!("expected: low mantissa bits produce only benign errors (no critical");
    println!("column); once flips become critical, A-ABFT's detection switches on at");
    println!("lower bit positions than SEA-ABFT's (its bounds sit ~2 orders tighter).");
}
