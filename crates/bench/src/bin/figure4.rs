//! Regenerates Figure 4: percentage of detected errors for single-bit (or
//! multi-bit) mantissa flips per fault site × input class × matrix size,
//! A-ABFT vs SEA-ABFT.
//!
//! ```text
//! cargo run --release -p aabft-bench --bin figure4
//! cargo run --release -p aabft-bench --bin figure4 -- --sizes 64,128 --trials 100 --bits 3
//! ```

use aabft_bench::args::Args;
use aabft_bench::fig4::{sweep, Fig4Config};
use aabft_bench::jsonout::{write_array, JsonObject};
use aabft_matrix::gen::InputClass;

fn main() {
    let args = Args::parse();
    let config = Fig4Config {
        sizes: args.sizes("sizes", &[64, 128, 256]),
        trials: args.get("trials", 200usize),
        bits: args.get("bits", 1u32),
        seed: args.get("seed", 20140623u64),
        bs: args.get("bs", 32usize),
        ..Default::default()
    };

    println!(
        "Figure 4 reproduction: % of critical errors detected ({}-bit mantissa flips, \
         {} trials/cell)",
        config.bits, config.trials
    );
    println!(
        "{:<28} {:<22} {:>6} {:>10} {:>13} {:>10} {:>9} {:>8}",
        "operation", "inputs", "n", "A-ABFT %", "(95% CI)", "SEA %", "critical", "masked"
    );

    let cells = sweep(&config);
    let json = args.get("json", String::new());
    if !json.is_empty() {
        let rows: Vec<JsonObject> = cells
            .iter()
            .map(|c| {
                JsonObject::new()
                    .str("scheme", c.scheme)
                    .str("site", c.site.label())
                    .str(
                        "input",
                        &match c.input {
                            InputClass::Uniform { lo, hi } => format!("uniform[{lo},{hi}]"),
                            InputClass::DynamicRange { alpha, kappa } => {
                                format!("dynamic(a={alpha},k={kappa})")
                            }
                        },
                    )
                    .int("n", c.n as u64)
                    .int("bits", c.bits as u64)
                    .int("critical", c.stats.critical)
                    .int("critical_detected", c.stats.critical_detected)
                    .int("masked", c.stats.masked)
                    .num("detection_percent", c.detection_percent())
            })
            .collect();
        write_array(std::path::Path::new(&json), &rows);
        println!("(wrote {json})");
    }
    for pair in cells.chunks(2) {
        let (a, s) = (&pair[0], &pair[1]);
        let label = match a.input {
            InputClass::Uniform { lo, hi } => format!("uniform[{lo},{hi}]"),
            InputClass::DynamicRange { alpha, kappa } => format!("dynamic(a={alpha},k={kappa})"),
        };
        let (lo, hi) = a.stats.detection_interval();
        println!(
            "{:<28} {:<22} {:>6} {:>10.1} {:>13} {:>10.1} {:>9} {:>8}",
            a.site.label(),
            label,
            a.n,
            a.detection_percent(),
            format!("[{:.0}-{:.0}]", 100.0 * lo, 100.0 * hi),
            s.detection_percent(),
            a.stats.critical,
            a.stats.masked,
        );
    }

    println!();
    println!("expected shape (paper Fig. 4): A-ABFT detects well over 90% of critical");
    println!("errors, independent of n; SEA-ABFT detects fewer, degrading as n grows.");
    println!("(Sign/exponent flips are detected 100% by both schemes; mantissa flips");
    println!("shown here are the discriminating case.)");
}
