//! Regenerates Table I: GFLOPS of ABFT / A-ABFT / SEA-ABFT / TMR across
//! matrix sizes, on the calibrated K20c performance model.
//!
//! ```text
//! cargo run --release -p aabft-bench --bin table1
//! cargo run --release -p aabft-bench --bin table1 -- --sizes 512,1024 --simulate 128
//! ```
//!
//! `--simulate N` additionally runs every scheme on the functional
//! simulator at size `N` and prints the row derived from *measured* launch
//! logs (the analytic path is unit-tested to match it exactly).

use aabft_bench::args::Args;
use aabft_bench::jsonout::{write_array, JsonObject};
use aabft_bench::table1::{modelled_row, simulated_row, Table1Row};
use aabft_gpu_sim::kernels::gemm::GemmTiling;

fn print_row(r: &Table1Row) {
    println!(
        "{:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>12.2}",
        r.n, r.abft, r.aabft, r.sea, r.tmr, r.unprotected
    );
}

fn main() {
    let args = Args::parse();
    let sizes = args.sizes("sizes", &[512, 1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192]);
    let bs = args.get("bs", 32usize);
    let p = args.get("p", 2usize);
    let simulate = args.get("simulate", 0usize);
    let tiling = GemmTiling::default();

    println!("Table I reproduction: performance in GFLOPS (modelled K20c)");
    println!("scheme parameters: BS = {bs}, p = {p}, tiling = {tiling:?}");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "n", "ABFT", "A-ABFT", "SEA-ABFT", "TMR", "unprotected"
    );
    let mut json_rows = Vec::new();
    for &n in &sizes {
        let r = modelled_row(n, bs, p, tiling);
        print_row(&r);
        json_rows.push(
            JsonObject::new()
                .int("n", r.n as u64)
                .num("abft", r.abft)
                .num("aabft", r.aabft)
                .num("sea_abft", r.sea)
                .num("tmr", r.tmr)
                .num("unprotected", r.unprotected),
        );
    }
    let json = args.get("json", String::new());
    if !json.is_empty() {
        write_array(std::path::Path::new(&json), &json_rows);
        println!("(wrote {json})");
    }

    if simulate > 0 {
        println!();
        println!("cross-check row from the functional simulator at n = {simulate}:");
        print_row(&simulated_row(simulate, bs, p, tiling, 2014));
    }

    println!();
    println!("paper (Table I, K20c measured): n=8192 -> ABFT 942.61, A-ABFT 903.44,");
    println!("SEA-ABFT 712.75, TMR 348.09; unprotected ~1048.4 GFLOPS.");
}
