//! Bench regression gate: re-measures the packed clean-path GEMM and
//! fails (exit 1) when it regresses against the committed baseline.
//!
//! Reads one record (`--n`, packed engine) out of the `bench_gemm` JSON
//! baseline (`BENCH_gemm.json` at the repo root), runs a fresh
//! min-of-`--reps` measurement of the same protected multiply with the
//! same input generation, and compares host GFLOP/s. A fresh result more
//! than `--max-regress` percent below the baseline is a tier-1 failure;
//! an improvement beyond the same margin is reported (the baseline is
//! stale) but does not fail.
//!
//! ```text
//! cargo run --release -p aabft-bench --bin bench_check -- \
//!     --baseline BENCH_gemm.json --n 1024 --reps 3 --max-regress 15
//! ```
//!
//! Reads `clean_ms_min` from the baseline; the `clean_ms` alias that
//! shadowed it for one release is gone (DESIGN §13).
//!
//! The re-measurement pins its rayon worker count to the baseline
//! record's `threads` field (default 1), so the gate compares
//! like-for-like even on hosts with a different core count than the
//! machine that committed the baseline.

use aabft_bench::args::Args;
use aabft_core::{AAbftConfig, AAbftGemm};
use aabft_gpu_sim::device::{Device, DeviceConfig};
use aabft_gpu_sim::pack::CleanEngine;
use aabft_matrix::Matrix;
use aabft_obs::json::JsonValue;
use std::time::Instant;

/// Finds the baseline record for `(n, engine)` in the bench_gemm array.
fn find_record<'a>(records: &'a JsonValue, n: u64, engine: &str) -> Option<&'a JsonValue> {
    records.as_array()?.iter().find(|r| {
        r.get("n").and_then(|v| v.as_u64()) == Some(n)
            && r.get("engine").and_then(|v| v.as_str()) == Some(engine)
    })
}

fn main() {
    let args = Args::parse();
    let baseline_path = args.get("baseline", "BENCH_gemm.json".to_string());
    let n = args.get("n", 1024usize);
    let reps = args.get("reps", 3usize);
    let warmup = args.get("warmup", 1usize);
    let max_regress = args.get("max-regress", 15.0f64);

    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("reading baseline {baseline_path:?}: {e}"));
    let records = aabft_obs::json::parse(&text)
        .unwrap_or_else(|e| panic!("{baseline_path}: invalid JSON: {e}"));
    let rec = find_record(&records, n as u64, "packed")
        .unwrap_or_else(|| panic!("{baseline_path}: no packed record at n = {n}"));
    let base_ms = rec
        .get("clean_ms_min")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("{baseline_path}: record lacks clean_ms_min"));
    let base_gflops = rec
        .get("host_gflops")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("{baseline_path}: record lacks host_gflops"));
    // Host fairness: replay under the worker count the baseline was
    // measured with, not whatever this host happens to have.
    let threads = rec.get("threads").and_then(|v| v.as_u64()).unwrap_or(1) as usize;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool builds");

    // Same inputs and measurement discipline as bench_gemm: fault-free
    // device, packed clean engine, min over timed reps.
    let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) as f64 * 0.017).sin());
    let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 11) as f64 * 0.013).cos());
    let gemm = AAbftGemm::new(AAbftConfig::default());
    let dev = Device::new(
        DeviceConfig::builder()
            .clean_engine(CleanEngine::Packed)
            .build()
            .expect("default shape is valid"),
    );
    for _ in 0..warmup {
        pool.install(|| gemm.multiply(&dev, &a, &b));
    }
    let min_s = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            pool.install(|| gemm.multiply(&dev, &a, &b));
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    assert!(dev.clean_path_launches() > 0, "fault-free run must engage the clean path");

    let fresh_gflops = 2.0 * (n as f64).powi(3) / min_s / 1e9;
    let ratio = fresh_gflops / base_gflops;
    println!(
        "bench_check: packed clean GEMM at n = {n} \
         ({reps} reps, {warmup} warmup, {threads} threads pinned from baseline)"
    );
    println!("  baseline : {base_ms:>9.3} ms  {base_gflops:>8.2} GFLOP/s  ({baseline_path})");
    println!("  fresh    : {:>9.3} ms  {fresh_gflops:>8.2} GFLOP/s", min_s * 1e3);
    println!("  ratio    : {ratio:.3}x  (gate: >= {:.3}x)", 1.0 - max_regress / 100.0);

    if fresh_gflops < base_gflops * (1.0 - max_regress / 100.0) {
        eprintln!(
            "REGRESSION: fresh {fresh_gflops:.2} GFLOP/s is more than {max_regress}% below \
             baseline {base_gflops:.2} — rerun bench_gemm and investigate before re-baselining"
        );
        std::process::exit(1);
    }
    if fresh_gflops > base_gflops * (1.0 + max_regress / 100.0) {
        println!(
            "note: fresh result beats baseline by more than {max_regress}% — consider \
             regenerating {baseline_path} (cargo run --release -p aabft-bench --bin bench_gemm)"
        );
    }
    println!("bench_check: OK");
}
