//! Ablation: the model's mantissa-length parameterisation — the same
//! bound-quality experiment executed in binary32 vs binary64 arithmetic.
//! Errors and bounds should both scale by ~2^(53-24) = 2^29 while the
//! bound/error tightness ratio stays in the same regime.
//!
//! ```text
//! cargo run --release -p aabft-bench --bin ablation_precision -- --n 256
//! ```

use aabft_bench::args::Args;
use aabft_bench::quality::{measure, measure_binary32, QualityConfig};
use aabft_matrix::gen::InputClass;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 256usize);
    let config = QualityConfig {
        bs: args.get("bs", 32usize),
        samples: args.get("samples", 512usize),
        ..Default::default()
    };
    let d = measure(n, InputClass::UNIT, &config);
    let s = measure_binary32(n, InputClass::UNIT, &config);
    println!("Ablation: binary64 vs binary32 arithmetic + model (n = {n}, inputs [-1,1])");
    println!("{:>10} {:>14} {:>14} {:>12}", "format", "avg rnd err", "avg A-ABFT", "bound/err");
    println!(
        "{:>10} {:>14.3e} {:>14.3e} {:>12.1}",
        "binary64", d.avg_rnd_error, d.avg_aabft, d.avg_aabft / d.avg_rnd_error
    );
    println!(
        "{:>10} {:>14.3e} {:>14.3e} {:>12.1}",
        "binary32", s.avg_rnd_error, s.avg_aabft, s.avg_aabft / s.avg_rnd_error
    );
    let err_scale = s.avg_rnd_error / d.avg_rnd_error;
    let bound_scale = s.avg_aabft / d.avg_aabft;
    println!();
    println!(
        "error scale 2^{:.1}, bound scale 2^{:.1} (model predicts 2^29 = 2^{})",
        err_scale.log2(),
        bound_scale.log2(),
        53 - 24
    );
}
