//! Perf-trajectory benchmark: clean-path vs instrumented protected multiply.
//!
//! Times the full A-ABFT pipeline (fused encode+gemm → reduce → check) on a
//! fault-free device, where every dispatch takes the clean path, against the
//! same device with the instrumented per-op path forced — and proves on the
//! way that both paths produce bit-identical products and that armed fault
//! plans disable the clean path. `--engine both` additionally races the
//! packed clean engine (DESIGN §12) against the scalar one over the same
//! inputs, which is the engine-vs-engine speedup the perf trajectory in the
//! README tracks. `--threads t1,t2,...` repeats every measurement under each
//! worker count (0 = all hardware threads) and races the counts against each
//! other — the macro-parallel clean path (DESIGN §14) must scale without
//! changing a single bit of the product. Results land in `BENCH_gemm.json`
//! at the repo root so subsequent PRs can track regressions.
//!
//! ```text
//! cargo run --release -p aabft-bench --bin bench_gemm
//! cargo run --release -p aabft-bench --bin bench_gemm -- \
//!     --sizes 512 --reps 2 --engine both --instrumented false \
//!     --assert-speedup 2.5 --assert-dispatch packed
//! cargo run --release -p aabft-bench --bin bench_gemm -- \
//!     --sizes 2048 --reps 2 --engine packed --instrumented false \
//!     --threads 1,0 --assert-speedup 2.0
//! ```
//!
//! Flags: `--sizes a,b,c` problem sizes; `--reps k` timed repetitions
//! (min + median are reported); `--warmup w` untimed repetitions first;
//! `--engine packed|scalar|both` clean engine(s) to measure;
//! `--threads t1,t2,...` worker counts to race (0 = all hardware threads;
//! duplicates after resolution collapse); `--instrumented false` skips the
//! (slow) forced-instrumented reference; `--assert-speedup x` requires the
//! highest worker count ≥ x· the lowest when several thread counts run —
//! otherwise packed ≥ x· scalar, falling back to clean-vs-instrumented when
//! only one engine runs; `--assert-dispatch true` verifies armed plans
//! disable the clean path, `packed` additionally pins the fused 4-dispatch
//! shape and the packed-block telemetry.

use aabft_bench::args::Args;
use aabft_bench::jsonout::{write_array, JsonObject};
use aabft_core::{AAbftConfig, AAbftGemm};
use aabft_gpu_sim::device::{Device, DeviceConfig};
use aabft_gpu_sim::inject::{FaultScope, KernelFaultPlan};
use aabft_gpu_sim::pack::{self, CleanEngine};
use aabft_matrix::Matrix;
use std::time::Instant;

/// Runs `f` untimed `warmup` times, then timed `reps` times; returns
/// `(min, median)` wall seconds.
fn min_median<F: FnMut()>(warmup: usize, reps: usize, mut f: F) -> (f64, f64) {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let mid = times.len() / 2;
    let median = if times.len() % 2 == 1 {
        times[mid]
    } else {
        (times[mid - 1] + times[mid]) / 2.0
    };
    (times[0], median)
}

/// One engine's measurement over a fixed `(a, b)` pair and worker count.
struct EngineRun {
    engine: CleanEngine,
    min_s: f64,
    median_s: f64,
    product: Matrix<f64>,
    clean_launches_per_run: u64,
    dispatches_per_run: u64,
    dev: Device,
}

fn engine_name(e: CleanEngine) -> &'static str {
    match e {
        CleanEngine::Packed => "packed",
        CleanEngine::Scalar => "scalar",
    }
}

/// Resolves `--threads` entries (0 = all hardware threads) and collapses
/// duplicates, preserving first-seen order. On a single-core host `1,0`
/// therefore collapses to `[1]` and the thread race is skipped.
fn resolve_threads(raw: &[usize]) -> Vec<usize> {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = Vec::new();
    for &t in raw {
        let t = if t == 0 { hw } else { t };
        if !out.contains(&t) {
            out.push(t);
        }
    }
    out
}

fn measure_engine(
    gemm: &AAbftGemm,
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    engine: CleanEngine,
    warmup: usize,
    reps: usize,
    pool: &rayon::ThreadPool,
) -> EngineRun {
    // The engine is pinned per device via the config (DESIGN §12).
    let dev = Device::new(
        DeviceConfig::builder().clean_engine(engine).build().expect("default shape is valid"),
    );
    let mut product = None;
    let (min_s, median_s) = min_median(warmup, reps, || {
        product = Some(pool.install(|| gemm.multiply(&dev, a, b)).product);
    });
    let runs = (warmup + reps.max(1)) as u64;
    let clean_launches = dev.clean_path_launches();
    assert!(clean_launches > 0, "fault-free run must engage the clean path");
    EngineRun {
        engine,
        min_s,
        median_s,
        product: product.expect("ran"),
        clean_launches_per_run: clean_launches / runs,
        dispatches_per_run: dev.dispatches() / runs,
        dev,
    }
}

fn main() {
    let args = Args::parse();
    let sizes = args.sizes("sizes", &[256, 512, 1024, 2048]);
    let reps = args.get("reps", 3usize);
    let warmup = args.get("warmup", 1usize);
    let json = args.get("json", "BENCH_gemm.json".to_string());
    let assert_speedup = args.get("assert-speedup", 0.0f64);
    let assert_dispatch = args.get("assert-dispatch", "false".to_string());
    let engine_flag = args.get("engine", "both".to_string());
    let instrumented = args.get("instrumented", true);
    let threads = resolve_threads(&args.sizes("threads", &[0]));

    let engines: Vec<CleanEngine> = match engine_flag.as_str() {
        "both" => vec![CleanEngine::Packed, CleanEngine::Scalar],
        single => vec![single
            .parse()
            .unwrap_or_else(|e| panic!("--engine {single:?}: {e}, or use both"))],
    };
    if !matches!(assert_dispatch.as_str(), "false" | "true" | "packed") {
        panic!("--assert-dispatch {assert_dispatch:?}: expected false, true or packed");
    }

    let gemm = AAbftGemm::new(AAbftConfig::default());
    let mut records = Vec::new();

    println!(
        "Protected multiply, clean path vs instrumented ({reps} reps, {warmup} warmup, \
         threads {threads:?}):"
    );
    println!(
        "{:>6} {:>8} {:>4} {:>10} {:>10} {:>12} {:>9} {:>8}",
        "n", "engine", "thr", "min ms", "median ms", "instrum. ms", "speedup", "GFLOP/s"
    );
    for &n in &sizes {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) as f64 * 0.017).sin());
        let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 11) as f64 * 0.013).cos());

        // Reference product for the whole size: every engine and every
        // worker count must reproduce it bit for bit.
        let mut reference: Option<Matrix<f64>> = None;
        // Per-engine best time per worker count, for the thread race.
        let mut by_threads: Vec<(CleanEngine, usize, f64)> = Vec::new();

        for (ti, &t) in threads.iter().enumerate() {
            let pool =
                rayon::ThreadPoolBuilder::new().num_threads(t).build().expect("pool builds");

            let blocks_before = pack::packed_blocks();
            let runs: Vec<EngineRun> = engines
                .iter()
                .map(|&e| measure_engine(&gemm, &a, &b, e, warmup, reps, &pool))
                .collect();

            // The forced-instrumented reference (the slow path both engines
            // must agree with bit-for-bit).
            let inst = if instrumented {
                let inst_dev = Device::with_defaults();
                inst_dev.set_force_instrumented(true);
                let mut inst_product = None;
                let (inst_min, _) = min_median(warmup.min(1), reps, || {
                    inst_product = Some(pool.install(|| gemm.multiply(&inst_dev, &a, &b)).product);
                });
                assert_eq!(
                    inst_dev.clean_path_launches(),
                    0,
                    "forced device must stay instrumented"
                );
                Some((inst_min, inst_product.expect("ran")))
            } else {
                None
            };

            for r in &runs {
                let reference = reference.get_or_insert_with(|| r.product.clone());
                assert!(
                    r.product.approx_eq(reference, 0.0),
                    "products must be bit-identical across engines and worker counts"
                );
            }
            if let Some((_, ip)) = &inst {
                let reference = reference.as_ref().expect("at least one engine ran");
                assert!(
                    ip.approx_eq(reference, 0.0),
                    "clean and instrumented products must be bit-identical"
                );
            }

            if ti == 0 && assert_dispatch != "false" {
                // A plan that can never fire still must force the
                // instrumented path for as long as it is armed. Dispatch
                // shape is worker-count independent, so once per size.
                let dev = &runs[0].dev;
                let clean_launches = dev.clean_path_launches();
                dev.arm_kernel_fault(KernelFaultPlan {
                    scope: FaultScope::Any,
                    sm: 0,
                    k_injection: u64::MAX,
                    mask: 1,
                });
                gemm.multiply(dev, &a, &b);
                dev.disarm_count();
                assert_eq!(
                    dev.clean_path_launches(),
                    clean_launches,
                    "armed fault plan must disable the clean path"
                );
            }
            if ti == 0 && assert_dispatch == "packed" {
                let packed = runs
                    .iter()
                    .find(|r| r.engine == CleanEngine::Packed)
                    .expect("--assert-dispatch packed needs the packed engine in --engine");
                assert_eq!(
                    packed.dispatches_per_run, 4,
                    "fused encode+gemm must run the clean pipeline in 4 dispatches"
                );
                assert!(
                    pack::packed_blocks() > blocks_before,
                    "packed engine must report packed-block telemetry"
                );
            }

            let scalar_min =
                runs.iter().find(|r| r.engine == CleanEngine::Scalar).map(|r| r.min_s);
            for r in &runs {
                by_threads.push((r.engine, t, r.min_s));
                let speedup_vs_inst = inst.as_ref().map(|(im, _)| im / r.min_s);
                let speedup_vs_scalar = match (r.engine, scalar_min) {
                    (CleanEngine::Packed, Some(s)) => Some(s / r.min_s),
                    _ => None,
                };
                let gflops = 2.0 * (n as f64).powi(3) / r.min_s / 1e9;
                let inst_col =
                    inst.as_ref().map_or("-".into(), |(im, _)| format!("{:.3}", im * 1e3));
                let speed_col = speedup_vs_inst
                    .or(speedup_vs_scalar)
                    .map_or("-".into(), |s| format!("{s:.2}x"));
                println!(
                    "{n:>6} {:>8} {t:>4} {:>10.3} {:>10.3} {:>12} {speed_col:>9} {gflops:>8.2}",
                    engine_name(r.engine),
                    r.min_s * 1e3,
                    r.median_s * 1e3,
                    inst_col,
                );

                let mut rec = JsonObject::new()
                    .int("n", n as u64)
                    .str("engine", engine_name(r.engine))
                    .int("threads", t as u64)
                    .num("clean_ms_min", r.min_s * 1e3)
                    .num("clean_ms_median", r.median_s * 1e3)
                    .num("host_gflops", gflops)
                    .int("reps", reps as u64)
                    .int("warmup", warmup as u64)
                    .int("clean_launches_per_run", r.clean_launches_per_run)
                    .int("dispatches_per_run", r.dispatches_per_run);
                if let Some((im, _)) = &inst {
                    rec = rec.num("instrumented_ms", im * 1e3);
                }
                if let Some(s) = speedup_vs_inst {
                    rec = rec.num("speedup", s);
                }
                if let Some(s) = speedup_vs_scalar {
                    rec = rec.num("speedup_vs_scalar", s);
                }
                records.push(rec);

                // With a single worker count the floor applies to the
                // engine race when both engines ran, and to the
                // clean-vs-instrumented ratio otherwise. With several
                // worker counts it gates the thread race below instead.
                if threads.len() == 1 && assert_speedup > 0.0 {
                    if let Some(s) = speedup_vs_scalar.or(speedup_vs_inst) {
                        assert!(
                            s >= assert_speedup,
                            "speedup {s:.2}x at n = {n} ({}) below required {assert_speedup}x",
                            engine_name(r.engine)
                        );
                    }
                }
            }
        }

        // Thread race: highest worker count vs lowest, per engine. The
        // floor adapts to the host — a t_hi/t_lo ratio of r can at best
        // yield r·, so the requirement is min(asked, 0.7·r); on a
        // single-core host the counts collapse and the race is skipped.
        if threads.len() > 1 {
            let (t_lo, t_hi) = (threads[0], *threads.last().expect("non-empty"));
            for &e in &engines {
                let time_at = |t: usize| {
                    by_threads
                        .iter()
                        .find(|&&(be, bt, _)| be == e && bt == t)
                        .map(|&(_, _, s)| s)
                        .expect("measured")
                };
                let scaling = time_at(t_lo) / time_at(t_hi);
                println!(
                    "{n:>6} {:>8} thread race: {t_hi} workers {scaling:.2}x over {t_lo}",
                    engine_name(e)
                );
                records.push(
                    JsonObject::new()
                        .int("n", n as u64)
                        .str("engine", engine_name(e))
                        .int("threads_lo", t_lo as u64)
                        .int("threads_hi", t_hi as u64)
                        .num("thread_speedup", scaling),
                );
                if assert_speedup > 0.0 {
                    let floor = assert_speedup.min(0.7 * t_hi as f64 / t_lo as f64);
                    assert!(
                        scaling >= floor,
                        "thread scaling {scaling:.2}x at n = {n} ({}) below required \
                         {floor:.2}x ({t_hi} vs {t_lo} workers)",
                        engine_name(e)
                    );
                }
            }
        } else if assert_speedup > 0.0 && args.sizes("threads", &[0]).len() > 1 {
            println!(
                "{n:>6} thread race skipped: worker counts collapse to {threads:?} on this host"
            );
        }
    }

    write_array(std::path::Path::new(&json), &records);
    println!("wrote {json}");
}
