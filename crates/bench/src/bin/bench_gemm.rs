//! Perf-trajectory benchmark: clean-path vs instrumented protected multiply.
//!
//! Times the full A-ABFT pipeline (encode → gemm → reduce → check) on a
//! fault-free device, where every launch takes the clean path, against the
//! same device with the instrumented per-op path forced — and proves on the
//! way that both paths produce bit-identical products and that armed fault
//! plans disable the clean path. Results land in `BENCH_gemm.json` at the
//! repo root so subsequent PRs can track regressions.
//!
//! ```text
//! cargo run --release -p aabft-bench --bin bench_gemm
//! cargo run --release -p aabft-bench --bin bench_gemm -- \
//!     --sizes 256,512,1024 --reps 3 --json BENCH_gemm.json --assert-speedup 5
//! ```

use aabft_bench::args::Args;
use aabft_bench::jsonout::{write_array, JsonObject};
use aabft_core::{AAbftConfig, AAbftGemm};
use aabft_gpu_sim::device::Device;
use aabft_gpu_sim::inject::{FaultScope, KernelFaultPlan};
use aabft_matrix::Matrix;
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = Args::parse();
    let sizes = args.sizes("sizes", &[256, 512, 1024]);
    let reps = args.get("reps", 3usize);
    let json = args.get("json", "BENCH_gemm.json".to_string());
    let assert_speedup = args.get("assert-speedup", 0.0f64);
    let assert_dispatch = args.get("assert-dispatch", false);

    let gemm = AAbftGemm::new(AAbftConfig::default());
    let mut records = Vec::new();

    println!("Protected multiply, clean path vs instrumented (best of {reps}):");
    println!("{:>6} {:>12} {:>14} {:>9} {:>8}", "n", "clean ms", "instrum. ms", "speedup", "GFLOP/s");
    for &n in &sizes {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) as f64 * 0.017).sin());
        let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 11) as f64 * 0.013).cos());

        let clean_dev = Device::with_defaults();
        let mut clean_product = None;
        let clean_s = best_of(reps, || {
            clean_product = Some(gemm.multiply(&clean_dev, &a, &b).product);
        });
        let clean_launches = clean_dev.clean_path_launches();
        assert!(clean_launches > 0, "fault-free run must engage the clean path");

        let inst_dev = Device::with_defaults();
        inst_dev.set_force_instrumented(true);
        let mut inst_product = None;
        let inst_s = best_of(reps, || {
            inst_product = Some(gemm.multiply(&inst_dev, &a, &b).product);
        });
        assert_eq!(inst_dev.clean_path_launches(), 0, "forced device must stay instrumented");

        let (cp, ip) = (clean_product.expect("ran"), inst_product.expect("ran"));
        assert!(cp.approx_eq(&ip, 0.0), "clean and instrumented products must be bit-identical");

        if assert_dispatch {
            // A plan that can never fire still must force the instrumented
            // path for as long as it is armed.
            clean_dev.arm_kernel_fault(KernelFaultPlan {
                scope: FaultScope::Any,
                sm: 0,
                k_injection: u64::MAX,
                mask: 1,
            });
            gemm.multiply(&clean_dev, &a, &b);
            clean_dev.disarm_count();
            assert_eq!(
                clean_dev.clean_path_launches(),
                clean_launches,
                "armed fault plan must disable the clean path"
            );
        }

        let speedup = inst_s / clean_s;
        let gflops = 2.0 * (n as f64).powi(3) / clean_s / 1e9;
        println!("{n:>6} {:>12.3} {:>14.3} {speedup:>8.2}x {gflops:>8.2}", clean_s * 1e3, inst_s * 1e3);
        records.push(
            JsonObject::new()
                .int("n", n as u64)
                .num("clean_ms", clean_s * 1e3)
                .num("instrumented_ms", inst_s * 1e3)
                .num("speedup", speedup)
                .num("host_gflops", gflops)
                .int("reps", reps as u64)
                .int("clean_launches_per_run", clean_launches / reps.max(1) as u64),
        );
        if assert_speedup > 0.0 {
            assert!(
                speedup >= assert_speedup,
                "speedup {speedup:.2}x at n = {n} below required {assert_speedup}x"
            );
        }
    }

    write_array(std::path::Path::new(&json), &records);
    println!("wrote {json}");
}
