//! Ablation (paper Section IV-D): fused multiply-add vs separate
//! multiply + add.
//!
//! Under FMA the multiplication contributes no rounding error of its own,
//! so the inner-product bound reduces to the summation bound. This study
//! prints the closed-form `σ` ratio across sizes and cross-checks on the
//! simulator that an FMA-mode multiplication passes the FMA-model check
//! without false positives.
//!
//! ```text
//! cargo run --release -p aabft-bench --bin ablation_fma
//! ```

use aabft_bench::args::Args;
use aabft_core::bounds::inner_product_sigma;
use aabft_core::{AAbftConfig, AAbftGemm};
use aabft_gpu_sim::Device;
use aabft_matrix::gen::InputClass;
use aabft_numerics::{MulMode, RoundingModel};
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let sizes = args.sizes("sizes", &[128, 512, 2048, 8192]);

    println!("Ablation: inner-product bound under separate mul+add vs fused multiply-add");
    println!("{:>8} {:>14} {:>14} {:>10}", "n", "sigma sep", "sigma fma", "ratio");
    let sep = RoundingModel::binary64();
    let fma = RoundingModel::binary64().with_fma();
    for &n in &sizes {
        let s = inner_product_sigma(n, 1.0, &sep);
        let f = inner_product_sigma(n, 1.0, &fma);
        println!("{:>8} {:>14.3e} {:>14.3e} {:>10.4}", n, s, f, s / f);
    }

    // Simulator cross-check: FMA-mode multiplication with the FMA model.
    let n = args.get("n", 96usize);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let a = InputClass::UNIT.generate(n, &mut rng);
    let b = InputClass::UNIT.generate(n, &mut rng);
    let config = AAbftConfig::builder().mul_mode(MulMode::Fused).build().expect("valid config");
    let outcome = AAbftGemm::new(config).multiply(&Device::with_defaults(), &a, &b);
    println!();
    println!(
        "simulator cross-check at n = {n}: FMA-mode multiply, FMA-model bounds -> {}",
        if outcome.errors_detected() { "FALSE POSITIVES (unexpected)" } else { "clean (no false positives)" }
    );
    println!();
    println!("expected: the separate-mode sigma exceeds the FMA sigma by a modest, nearly");
    println!("n-independent factor (the summation term dominates for large n).");
}
