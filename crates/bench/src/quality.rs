//! Bound-quality experiments (paper Tables II–IV).
//!
//! For random checksum elements of an encoded multiplication, compare three
//! quantities: the *exact* rounding error of the checksum element (against
//! the superaccumulator oracle — the paper used GMP), the A-ABFT bound
//! (closed form of Eq. 46 with the autonomous `y`), and the SEA-ABFT bound
//! (norm formula). The paper reports their averages per matrix size.

use aabft_core::bounds::checksum_epsilon;
use aabft_core::encoding::{encode_columns, encode_rows};
use aabft_core::pmax::{upper_bound_y, PMaxTable};
use aabft_baselines::SeaAbft;
use aabft_matrix::gen::InputClass;
use aabft_numerics::exact::rounding_error_of;
use aabft_numerics::RoundingModel;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One row of a Table II–IV style comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityRow {
    /// Matrix dimension.
    pub n: usize,
    /// Average exact rounding error of the checksum elements (|fl − exact|).
    pub avg_rnd_error: f64,
    /// Average realized checksum residual |c* − c| (the quantity the check
    /// actually compares; not printed by the paper but useful context).
    pub avg_residual: f64,
    /// Average A-ABFT bound (`ω`-scaled).
    pub avg_aabft: f64,
    /// Average SEA-ABFT bound.
    pub avg_sea: f64,
    /// Number of checksum elements sampled.
    pub samples: usize,
}

/// Parameters of a bound-quality measurement.
#[derive(Debug, Clone, Copy)]
pub struct QualityConfig {
    /// Partitioned-encoding block size.
    pub bs: usize,
    /// Tracked maxima per line (the paper uses `p = 2`).
    pub p: usize,
    /// Confidence scaling (the paper reports `3σ`).
    pub omega: f64,
    /// Checksum elements sampled per size (0 = all).
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig { bs: 32, p: 2, omega: 3.0, samples: 1024, seed: 1 }
    }
}

/// One sampled checksum element's quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundSample {
    /// Exact rounding error of the checksum element (|fl − exact|).
    pub exact_error: f64,
    /// Realized comparison residual |c* − c|.
    pub residual: f64,
    /// The autonomous upper bound `y` for this element.
    pub y: f64,
    /// A-ABFT bound at the configured `ω`.
    pub aabft_bound: f64,
    /// SEA-ABFT bound.
    pub sea_bound: f64,
}

/// Measures bound quality for one `n × n` multiplication with inputs drawn
/// from `input`.
///
/// # Panics
///
/// Panics if `n` is not a multiple of `config.bs`.
pub fn measure(n: usize, input: InputClass, config: &QualityConfig) -> QualityRow {
    let samples = collect_samples(n, input, config);
    let count = samples.len() as f64;
    QualityRow {
        n,
        avg_rnd_error: samples.iter().map(|s| s.exact_error).sum::<f64>() / count,
        avg_residual: samples.iter().map(|s| s.residual).sum::<f64>() / count,
        avg_aabft: samples.iter().map(|s| s.aabft_bound).sum::<f64>() / count,
        avg_sea: samples.iter().map(|s| s.sea_bound).sum::<f64>() / count,
        samples: samples.len(),
    }
}

/// Collects the per-element records behind [`measure`] (used by the
/// ablation studies).
///
/// # Panics
///
/// Panics if `n` is not a multiple of `config.bs`.
pub fn collect_samples(n: usize, input: InputClass, config: &QualityConfig) -> Vec<BoundSample> {
    assert_eq!(n % config.bs, 0, "n = {n} must be a multiple of bs = {}", config.bs);
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let a = input.generate(n, &mut rng);
    let b = input.generate(n, &mut rng);

    let acc = encode_columns(&a, config.bs, 1, 1);
    let brc = encode_rows(&b, config.bs, 1, 1);
    let pmax_a = PMaxTable::of_rows(&acc.matrix, config.p);
    let pmax_b = PMaxTable::of_cols(&brc.matrix, config.p);
    let model = RoundingModel::binary64();
    let bt = brc.matrix.transpose();

    // Candidate checksum elements: (column-checksum, data column) and
    // (data row, row-checksum), identified by direction.
    #[derive(Clone, Copy)]
    enum Cand {
        Col { block: usize, j: usize },
        Row { i: usize, block: usize },
    }
    let mut cands = Vec::with_capacity(acc.rows.blocks * n + n * brc.cols.blocks);
    for block in 0..acc.rows.blocks {
        for j in 0..n {
            cands.push(Cand::Col { block, j });
        }
    }
    for i in 0..n {
        for block in 0..brc.cols.blocks {
            cands.push(Cand::Row { i, block });
        }
    }
    if config.samples > 0 && config.samples < cands.len() {
        cands.shuffle(&mut rng);
        cands.truncate(config.samples);
    }

    let mut out = Vec::with_capacity(cands.len());
    for &cand in &cands {
        let (cs_vec, other_vec, cs_line_a, cs_line_b, block, is_col) = match cand {
            Cand::Col { block, j } => {
                let cs = acc.matrix.row(acc.rows.checksum_line(block)).to_vec();
                let col = bt.row(j).to_vec();
                (cs, col, Some(acc.rows.checksum_line(block)), None, block, true)
            }
            Cand::Row { i, block } => {
                let row = acc.matrix.row(i).to_vec();
                let cs = bt.row(brc.cols.checksum_line(block)).to_vec();
                (row, cs, Some(i), Some(brc.cols.checksum_line(block)), block, false)
            }
        };

        // The checksum element as the GPU computes it (sequential dot).
        let checksum_fl: f64 = cs_vec.iter().zip(&other_vec).map(|(x, y)| x * y).sum();
        // Exact rounding error via the superaccumulator oracle.
        let exact_error = rounding_error_of(checksum_fl, &cs_vec, &other_vec).abs();

        // Realized residual: recomputed reference (sum of the block's
        // computed elements) minus the checksum element.
        let residual: f64 = if is_col {
            (block * config.bs..(block + 1) * config.bs)
                .map(|i| {
                    let row = acc.matrix.row(i);
                    row.iter().zip(&other_vec).map(|(x, y)| x * y).sum::<f64>()
                })
                .sum::<f64>()
                - checksum_fl
        } else {
            (block * config.bs..(block + 1) * config.bs)
                .map(|jj| {
                    let col = bt.row(jj);
                    cs_vec.iter().zip(col).map(|(x, y)| x * y).sum::<f64>()
                })
                .sum::<f64>()
                - checksum_fl
        };
        let residual = residual.abs();

        // A-ABFT bound.
        let (line_a, line_b) = match cand {
            Cand::Col { j, .. } => (cs_line_a.expect("col cand has a-line"), j),
            Cand::Row { .. } => (cs_line_a.expect("row cand has a-line"), cs_line_b.expect("row cand has b-line")),
        };
        let y = upper_bound_y(
            pmax_a.values(line_a),
            pmax_a.indices(line_a),
            pmax_b.values(line_b),
            pmax_b.indices(line_b),
        );
        let aabft_bound = checksum_epsilon(n, y, config.omega, &model);

        // SEA bound on the same element.
        let sea = if is_col {
            let rows: Vec<&[f64]> = (block * config.bs..(block + 1) * config.bs)
                .map(|i| acc.matrix.row(i))
                .collect();
            SeaAbft::column_bound(&rows, &cs_vec, &other_vec)
        } else {
            let cols: Vec<&[f64]> = (block * config.bs..(block + 1) * config.bs)
                .map(|jj| bt.row(jj))
                .collect();
            SeaAbft::column_bound(&cols, &other_vec, &cs_vec)
        };
        out.push(BoundSample { exact_error, residual, y, aabft_bound, sea_bound: sea });
    }
    out
}

/// Single-precision variant: the same bound-quality measurement with the
/// checksum dot products executed in binary32 (simulated by rounding every
/// operation through `f32`) and the bounds evaluated with the `t = 24`
/// model. Demonstrates the model's parameterisation over the mantissa
/// length (the paper's formulas carry `t` symbolically; its evaluation is
/// double-precision only).
///
/// # Panics
///
/// Panics if `n` is not a multiple of `config.bs`.
pub fn measure_binary32(n: usize, input: InputClass, config: &QualityConfig) -> QualityRow {
    assert_eq!(n % config.bs, 0, "n = {n} must be a multiple of bs = {}", config.bs);
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    // Generate in f64, then snap every entry to its nearest f32 so the
    // operand values are exactly representable in both formats.
    let snap = |m: aabft_matrix::Matrix<f64>| {
        aabft_matrix::Matrix::from_fn(m.rows(), m.cols(), |i, j| m[(i, j)] as f32 as f64)
    };
    let a = snap(input.generate(n, &mut rng));
    let b = snap(input.generate(n, &mut rng));

    // Checksums accumulated in f32.
    let f32_sum = |vals: &mut dyn Iterator<Item = f64>| -> f64 {
        let mut s = 0.0f32;
        for v in vals {
            s += v as f32;
        }
        s as f64
    };
    let bs = config.bs;
    let blocks = n / bs;
    let model = RoundingModel::binary32();
    let bt = b.transpose();

    // Per-block-row checksum rows in f32.
    let mut cs_rows = Vec::with_capacity(blocks);
    for block in 0..blocks {
        let row: Vec<f64> = (0..n)
            .map(|j| f32_sum(&mut (block * bs..(block + 1) * bs).map(|i| a[(i, j)])))
            .collect();
        cs_rows.push(row);
    }

    let mut sum_err = 0.0;
    let mut sum_residual = 0.0;
    let mut sum_aabft = 0.0;
    let mut sum_sea = 0.0;
    let mut count = 0usize;
    let per_block = (config.samples / blocks).max(1);
    for (block, cs_row) in cs_rows.iter().enumerate() {
        for j in (0..n).step_by((n / per_block).max(1)) {
            let col = bt.row(j);
            // f32 dot product of the checksum row with the column.
            let mut s = 0.0f32;
            for (x, y) in cs_row.iter().zip(col) {
                s += (*x as f32) * (*y as f32);
            }
            let checksum_fl = s as f64;
            sum_err += rounding_error_of(checksum_fl, cs_row, col).abs();

            // Reference: f32 sums of f32 element dot products.
            let mut reference = 0.0f32;
            for i in block * bs..(block + 1) * bs {
                let mut e = 0.0f32;
                for (x, y) in a.row(i).iter().zip(col) {
                    e += (*x as f32) * (*y as f32);
                }
                reference += e;
            }
            sum_residual += (reference as f64 - checksum_fl).abs();

            // Bounds: binary32 model with the same autonomous y machinery.
            let cs_m = aabft_matrix::Matrix::from_vec(1, n, cs_row.clone());
            let col_m = aabft_matrix::Matrix::from_vec(n, 1, col.to_vec());
            let ta = PMaxTable::of_rows(&cs_m, config.p);
            let tb = PMaxTable::of_cols(&col_m, config.p);
            let y = upper_bound_y(ta.values(0), ta.indices(0), tb.values(0), tb.indices(0));
            sum_aabft += checksum_epsilon(n, y, config.omega, &model);
            let rows: Vec<&[f64]> =
                (block * bs..(block + 1) * bs).map(|i| a.row(i)).collect();
            // SEA with the binary32 machine unit.
            sum_sea += SeaAbft::column_bound(&rows, cs_row, col) / f64::EPSILON
                * (2.0f64).powi(-24)
                * 2.0;
            count += 1;
        }
    }
    let c = count as f64;
    QualityRow {
        n,
        avg_rnd_error: sum_err / c,
        avg_residual: sum_residual / c,
        avg_aabft: sum_aabft / c,
        avg_sea: sum_sea / c,
        samples: count,
    }
}

/// Shared console driver for the `table2`/`table3`/`table4` binaries.
pub fn print_quality_table(args: &crate::args::Args, input: InputClass, title: &str) {
    let sizes = args.sizes("sizes", &[128, 256, 512, 1024]);
    let config = QualityConfig {
        bs: args.get("bs", 32usize),
        p: args.get("p", 2usize),
        omega: args.get("omega", 3.0f64),
        samples: args.get("samples", 1024usize),
        seed: args.get("seed", 1u64),
    };
    println!("{title}");
    println!(
        "parameters: BS = {}, p = {}, omega = {}, samples/size = {}",
        config.bs, config.p, config.omega, config.samples
    );
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "n", "avg rnd err", "avg residual", "avg A-ABFT", "avg SEA-ABFT"
    );
    let mut json_rows = Vec::new();
    for &n in &sizes {
        let row = measure(n, input, &config);
        println!(
            "{:>8} {:>14.3e} {:>14.3e} {:>14.3e} {:>14.3e}",
            row.n, row.avg_rnd_error, row.avg_residual, row.avg_aabft, row.avg_sea
        );
        json_rows.push(
            crate::jsonout::JsonObject::new()
                .str("input", &input.label())
                .int("n", row.n as u64)
                .int("samples", row.samples as u64)
                .num("avg_rnd_error", row.avg_rnd_error)
                .num("avg_residual", row.avg_residual)
                .num("avg_aabft", row.avg_aabft)
                .num("avg_sea", row.avg_sea),
        );
    }
    let json = args.get("json", String::new());
    if !json.is_empty() {
        crate::jsonout::write_array(std::path::Path::new(&json), &json_rows);
        println!("(wrote {json})");
    }
    println!();
    println!("expected shape (paper): A-ABFT bounds ~2 orders of magnitude tighter than");
    println!("SEA-ABFT, both well above the exact rounding error; all grow with n.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        // The paper's headline ordering per row: actual error << A-ABFT
        // bound << SEA bound.
        let config = QualityConfig { bs: 8, p: 2, omega: 3.0, samples: 200, seed: 3 };
        let row = measure(64, InputClass::UNIT, &config);
        assert!(row.avg_rnd_error > 0.0);
        assert!(
            row.avg_rnd_error < row.avg_aabft,
            "bound must cover error: {row:?}"
        );
        assert!(row.avg_aabft < row.avg_sea, "A-ABFT must be tighter than SEA: {row:?}");
        // Roughly two orders of magnitude, as in Tables II-IV.
        assert!(row.avg_sea / row.avg_aabft > 10.0, "{row:?}");
    }

    #[test]
    fn errors_grow_with_n() {
        let config = QualityConfig { bs: 8, p: 2, omega: 3.0, samples: 150, seed: 4 };
        let r1 = measure(32, InputClass::UNIT, &config);
        let r2 = measure(128, InputClass::UNIT, &config);
        assert!(r2.avg_rnd_error > r1.avg_rnd_error);
        assert!(r2.avg_aabft > r1.avg_aabft);
        assert!(r2.avg_sea > r1.avg_sea);
    }

    #[test]
    fn binary32_scales_by_mantissa_difference() {
        let config = QualityConfig { bs: 8, p: 2, omega: 3.0, samples: 128, seed: 9 };
        let d = measure(64, InputClass::UNIT, &config);
        let s = measure_binary32(64, InputClass::UNIT, &config);
        let err_scale = (s.avg_rnd_error / d.avg_rnd_error).log2();
        let bound_scale = (s.avg_aabft / d.avg_aabft).log2();
        assert!((err_scale - 29.0).abs() < 2.5, "error scale 2^{err_scale}");
        assert!((bound_scale - 29.0).abs() < 0.5, "bound scale 2^{bound_scale}");
        assert!(s.avg_rnd_error < s.avg_aabft && s.avg_aabft < s.avg_sea, "{s:?}");
    }

    #[test]
    fn value_range_scales_magnitudes() {
        let config = QualityConfig { bs: 8, p: 2, omega: 3.0, samples: 150, seed: 5 };
        let unit = measure(64, InputClass::UNIT, &config);
        let hundred = measure(64, InputClass::HUNDRED, &config);
        // [-100,100] inputs scale errors and bounds by ~1e4 (products).
        assert!(hundred.avg_rnd_error > 1e3 * unit.avg_rnd_error);
        assert!(hundred.avg_aabft > 1e3 * unit.avg_aabft);
    }
}
