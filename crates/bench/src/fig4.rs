//! Figure 4 support: fault-injection detection-rate sweeps.
//!
//! The figure reports, for single-bit mantissa flips, the percentage of
//! detected errors per fault site (inner-loop addition, final-sum addition,
//! inner-loop multiplication), input class and matrix size, comparing
//! A-ABFT against SEA-ABFT.

use aabft_baselines::{AAbftScheme, SeaAbft};
use aabft_core::AAbftConfig;
use aabft_faults::bitflip::BitRegion;
use aabft_faults::campaign::{run_campaign, CampaignConfig};
use aabft_faults::outcome::DetectionStats;
use aabft_faults::plan::{FaultSpec, InjectScope};
use aabft_gpu_sim::inject::FaultSite;
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_matrix::gen::InputClass;

/// One bar of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Cell {
    /// Scheme under test (`"A-ABFT"` / `"SEA-ABFT"`).
    pub scheme: &'static str,
    /// Targeted operation.
    pub site: FaultSite,
    /// Input-value distribution.
    pub input: InputClass,
    /// Matrix dimension.
    pub n: usize,
    /// Flipped bits per fault.
    pub bits: u32,
    /// Aggregated campaign statistics.
    pub stats: DetectionStats,
}

impl Fig4Cell {
    /// The plotted metric: percentage of critical errors detected.
    pub fn detection_percent(&self) -> f64 {
        100.0 * self.stats.detection_rate()
    }
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Matrix sizes.
    pub sizes: Vec<usize>,
    /// Input classes (the paper uses [-1,1], [-100,100] and the dynamic
    /// matrices with κ = 65536).
    pub inputs: Vec<InputClass>,
    /// Fault sites (all three of Algorithm 3).
    pub sites: Vec<FaultSite>,
    /// Bit field (Figure 4 shows mantissa flips; sign/exponent are all
    /// detected by both schemes).
    pub region: BitRegion,
    /// Flips per fault (1, 3 or 5 in the paper).
    pub bits: u32,
    /// Trials per cell.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Block size of both schemes.
    pub bs: usize,
    /// GEMM tiling of both schemes.
    pub tiling: GemmTiling,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            sizes: vec![64, 128, 256],
            inputs: vec![InputClass::UNIT, InputClass::HUNDRED, InputClass::DYNAMIC_K65536],
            sites: FaultSite::ALL.to_vec(),
            region: BitRegion::Mantissa,
            bits: 1,
            trials: 200,
            seed: 20140623,
            bs: 32,
            tiling: GemmTiling::default(),
        }
    }
}

/// Runs the full sweep; cells come out ordered (site, input, n, scheme).
pub fn sweep(config: &Fig4Config) -> Vec<Fig4Cell> {
    let mut cells = Vec::new();
    for &site in &config.sites {
        for &input in &config.inputs {
            for &n in &config.sizes {
                let campaign = CampaignConfig {
                    n,
                    input,
                    spec: FaultSpec { site, region: config.region, bits: config.bits, fixed_bit: None },
                    trials: config.trials,
                    seed: config.seed ^ (n as u64) << 3 ^ site.index() as u64,
                    omega: 3.0,
                    block_size: config.bs,
                    tiling: config.tiling,
                    faults_per_run: 1,
                    scope: InjectScope::GemmSites,
                };
                let aabft = AAbftScheme::new(
                    AAbftConfig::builder().block_size(config.bs).tiling(config.tiling).build().expect("valid config"),
                );
                let r = run_campaign(&aabft, &campaign);
                cells.push(Fig4Cell {
                    scheme: "A-ABFT",
                    site,
                    input,
                    n,
                    bits: config.bits,
                    stats: r.stats,
                });
                let sea = SeaAbft::new(config.bs).with_tiling(config.tiling);
                let r = run_campaign(&sea, &campaign);
                cells.push(Fig4Cell {
                    scheme: "SEA-ABFT",
                    site,
                    input,
                    n,
                    bits: config.bits,
                    stats: r.stats,
                });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_expected_cells() {
        let config = Fig4Config {
            sizes: vec![16],
            inputs: vec![InputClass::UNIT],
            sites: vec![FaultSite::FinalAdd],
            trials: 12,
            bs: 4,
            tiling: GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 },
            ..Default::default()
        };
        let cells = sweep(&config);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].scheme, "A-ABFT");
        assert_eq!(cells[1].scheme, "SEA-ABFT");
        for c in &cells {
            assert_eq!(c.stats.total() as usize, 12);
        }
    }
}
