//! Wall-clock Criterion benchmark of all protection schemes on the
//! functional simulator (Table I's real-time counterpart at CPU-feasible
//! sizes — the shape across schemes mirrors the modelled table).

use aabft_baselines::{
    AAbftScheme, FixedBoundAbft, ProtectedGemm, SeaAbft, TmrGemm, UnprotectedGemm,
};
use aabft_core::AAbftConfig;
use aabft_gpu_sim::device::Device;
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_matrix::gen::InputClass;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;

fn bench_schemes(c: &mut Criterion) {
    let tiling = GemmTiling { bm: 32, bn: 32, bk: 8, rx: 4, ry: 4 };
    let bs = 16;
    let mut group = c.benchmark_group("gemm_schemes");
    group.sample_size(10);
    for n in [64usize, 128] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = InputClass::UNIT.generate(n, &mut rng);
        let b = InputClass::UNIT.generate(n, &mut rng);
        group.throughput(Throughput::Elements(2 * (n as u64).pow(3)));

        let schemes: Vec<(&str, Box<dyn ProtectedGemm>)> = vec![
            ("unprotected", Box::new(UnprotectedGemm::new().with_tiling(tiling))),
            ("abft_fixed", Box::new(FixedBoundAbft::new(1e-9, bs).with_tiling(tiling))),
            (
                "aabft",
                Box::new(AAbftScheme::new(
                    AAbftConfig::builder().block_size(bs).tiling(tiling).build().expect("valid config"),
                )),
            ),
            ("sea_abft", Box::new(SeaAbft::new(bs).with_tiling(tiling))),
            ("tmr", Box::new(TmrGemm::new().with_tiling(tiling))),
        ];
        for (name, scheme) in &schemes {
            group.bench_with_input(BenchmarkId::new(*name, n), &n, |bench, _| {
                bench.iter(|| {
                    let device = Device::with_defaults();
                    scheme.multiply(&device, &a, &b)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
