//! Criterion benchmark of the exact-arithmetic oracles: the Kulisch
//! superaccumulator (our GMP replacement) vs expansion arithmetic vs a
//! plain floating-point dot product, for the Tables II–IV ground truth.

use aabft_numerics::expansion::dot_expansion;
use aabft_numerics::superacc::exact_dot;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};

fn bench_superacc(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_dot");
    for n in [256usize, 1024, 4096] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("plain_f64", n), &n, |bench, _| {
            bench.iter(|| black_box(a.iter().zip(&b).map(|(x, y)| x * y).sum::<f64>()));
        });
        group.bench_with_input(BenchmarkId::new("superaccumulator", n), &n, |bench, _| {
            bench.iter(|| black_box(exact_dot(&a, &b)));
        });
        if n <= 1024 {
            group.bench_with_input(BenchmarkId::new("expansion", n), &n, |bench, _| {
                bench.iter(|| black_box(dot_expansion(&a, &b).estimate()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_superacc);
criterion_main!(benches);
