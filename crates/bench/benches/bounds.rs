//! Criterion benchmark of the bound computations: the A-ABFT closed form
//! (Eq. 46 + three-case `y`) vs the SEA norm formula vs the data-driven
//! model walk — the per-checksum-element cost each approach pays at runtime.

use aabft_baselines::SeaAbft;
use aabft_core::bounds::checksum_epsilon;
use aabft_core::pmax::{upper_bound_y, PMaxTable};
use aabft_matrix::Matrix;
use aabft_numerics::RoundingModel;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_bounds(c: &mut Criterion) {
    let n = 1024;
    let bs = 32;
    let a: Matrix = Matrix::from_fn(bs, n, |i, j| ((i * 13 + j * 7) as f64 * 0.017).sin());
    let b_col: Vec<f64> = (0..n).map(|i| ((i * 11) as f64 * 0.013).cos()).collect();
    let cs: Vec<f64> = (0..n).map(|j| (0..bs).map(|i| a[(i, j)]).sum()).collect();
    let cs_m = Matrix::from_vec(1, n, cs.clone());
    let b_m = Matrix::from_vec(n, 1, b_col.clone());
    let pa = PMaxTable::of_rows(&cs_m, 2);
    let pb = PMaxTable::of_cols(&b_m, 2);
    let model = RoundingModel::binary64();

    c.bench_function("bounds/aabft_closed_form", |bench| {
        bench.iter(|| {
            let y = upper_bound_y(pa.values(0), pa.indices(0), pb.values(0), pb.indices(0));
            black_box(checksum_epsilon(n, y, 3.0, &model))
        });
    });

    let rows: Vec<&[f64]> = (0..bs).map(|i| a.row(i)).collect();
    c.bench_function("bounds/sea_norm_formula", |bench| {
        bench.iter(|| black_box(SeaAbft::column_bound(&rows, &cs, &b_col)));
    });

    c.bench_function("bounds/model_walk_data_driven", |bench| {
        bench.iter(|| black_box(model.inner_product_moments(&cs, &b_col)));
    });
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
