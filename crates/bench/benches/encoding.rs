//! Criterion benchmark of the checksum-encoding kernels: the plain baseline
//! encoder vs A-ABFT's fused encode + p-max kernel (the runtime price of
//! autonomy on the encoding side).

use aabft_baselines::kernels::EncodeColumnsPlain;
use aabft_core::encoding::AugmentedLayout;
use aabft_core::kernels::buffers::PMaxBuffers;
use aabft_core::kernels::encode::EncodeColumnsKernel;
use aabft_gpu_sim::device::Device;
use aabft_gpu_sim::mem::DeviceBuffer;
use aabft_matrix::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_encoding(c: &mut Criterion) {
    let bs = 32;
    let mut group = c.benchmark_group("encoding");
    for n in [128usize, 256] {
        let rows = AugmentedLayout::new(n, bs, 1);
        let mut base = Matrix::zeros(rows.total, n);
        for i in 0..n {
            for j in 0..n {
                base[(i, j)] = ((i * 31 + j * 17) as f64 * 0.013).sin();
            }
        }

        group.bench_with_input(BenchmarkId::new("plain", n), &n, |bench, _| {
            bench.iter(|| {
                let buf = DeviceBuffer::from_matrix(&base);
                let k = EncodeColumnsPlain::new(&buf, rows, n);
                Device::with_defaults().launch(k.grid(), &k)
            });
        });

        group.bench_with_input(BenchmarkId::new("aabft_fused_pmax", n), &n, |bench, _| {
            bench.iter(|| {
                let buf = DeviceBuffer::from_matrix(&base);
                let pm = PMaxBuffers::new(rows.total, n / bs, 2);
                let k = EncodeColumnsKernel::new(&buf, &pm, rows, n);
                Device::with_defaults().launch(k.grid(), &k)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
