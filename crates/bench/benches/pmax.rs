//! Criterion benchmark of the p-max machinery: host table construction and
//! the three-case upper-bound evaluation.

use aabft_core::pmax::{upper_bound_y, PMaxTable};
use aabft_matrix::Matrix;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmax");
    for n in [256usize, 1024] {
        let m: Matrix = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) as f64 * 0.013).sin());
        for p in [2usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("of_rows_p{p}"), n),
                &n,
                |bench, _| {
                    bench.iter(|| black_box(PMaxTable::of_rows(&m, p)));
                },
            );
        }
    }

    let m: Matrix = Matrix::from_fn(64, 512, |i, j| ((i * 7 + j * 3) as f64 * 0.019).sin());
    let ta = PMaxTable::of_rows(&m, 4);
    let tb = PMaxTable::of_cols(&m.transpose(), 4);
    group.bench_function("upper_bound_y_p4", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for line in 0..64 {
                acc += upper_bound_y(
                    ta.values(line),
                    ta.indices(line),
                    tb.values(line),
                    tb.indices(line),
                );
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pmax);
criterion_main!(benches);
