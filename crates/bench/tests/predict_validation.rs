//! Validates the analytic launch-log predictions against the functional
//! simulator across many (n, BS, p, tiling) shapes — the guarantee that the
//! paper-scale Table I rows are derived from *exact* kernel work counts.

use aabft_baselines::{
    AAbftScheme, FixedBoundAbft, ProtectedGemm, SeaAbft, TmrGemm, UnprotectedGemm,
};
use aabft_bench::predict::{predict_launches, PredictShape, SchemeKind};
use aabft_core::AAbftConfig;
use aabft_gpu_sim::device::Device;
use aabft_gpu_sim::kernels::gemm::GemmTiling;
use aabft_gpu_sim::stats::LaunchRecord;
use aabft_matrix::gen::InputClass;
use rand::SeedableRng;

fn measured(kind: SchemeKind, shape: &PredictShape, seed: u64) -> Vec<LaunchRecord> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let a = InputClass::UNIT.generate(shape.n, &mut rng);
    let b = InputClass::HUNDRED.generate(shape.n, &mut rng);
    let device = Device::with_defaults();
    match kind {
        SchemeKind::Unprotected => {
            UnprotectedGemm::new().with_tiling(shape.tiling).multiply(&device, &a, &b);
        }
        SchemeKind::Tmr => {
            TmrGemm::new().with_tiling(shape.tiling).multiply(&device, &a, &b);
        }
        SchemeKind::Abft => {
            FixedBoundAbft::new(1e-8, shape.bs).with_tiling(shape.tiling).multiply(&device, &a, &b);
        }
        SchemeKind::SeaAbft => {
            SeaAbft::new(shape.bs).with_tiling(shape.tiling).multiply(&device, &a, &b);
        }
        SchemeKind::AAbft => {
            AAbftScheme::new(
                AAbftConfig::builder()
                    .block_size(shape.bs)
                    .p(shape.p)
                    .tiling(shape.tiling)
                    .build().expect("valid config"),
            )
            .multiply(&device, &a, &b);
        }
    }
    device.take_log()
}

fn assert_match(kind: SchemeKind, shape: &PredictShape, seed: u64) {
    let predicted = predict_launches(kind, shape);
    let actual = measured(kind, shape, seed);
    assert_eq!(predicted.len(), actual.len(), "{kind:?} {shape:?}: launch count");
    for (p, a) in predicted.iter().zip(&actual) {
        assert_eq!(p.name, a.name, "{kind:?} {shape:?}");
        assert_eq!(p.utilization, a.utilization, "{kind:?} {shape:?} / {}", p.name);
        assert_eq!(p.stats, a.stats, "{kind:?} {shape:?} / {}", p.name);
    }
}

const ALL: [SchemeKind; 5] = [
    SchemeKind::Unprotected,
    SchemeKind::Tmr,
    SchemeKind::Abft,
    SchemeKind::SeaAbft,
    SchemeKind::AAbft,
];

#[test]
fn exact_shapes() {
    // n a clean multiple of everything.
    let shape = PredictShape {
        n: 64,
        bs: 16,
        p: 2,
        tiling: GemmTiling { bm: 16, bn: 16, bk: 8, rx: 4, ry: 4 },
    };
    for kind in ALL {
        assert_match(kind, &shape, 1);
    }
}

#[test]
fn padded_shapes() {
    // n requiring padding at every level.
    let shape = PredictShape {
        n: 50,
        bs: 8,
        p: 3,
        tiling: GemmTiling { bm: 16, bn: 16, bk: 4, rx: 2, ry: 4 },
    };
    for kind in ALL {
        assert_match(kind, &shape, 2);
    }
}

#[test]
fn default_tiling_small_bs() {
    let shape = PredictShape { n: 128, bs: 32, p: 2, tiling: GemmTiling::default() };
    for kind in ALL {
        assert_match(kind, &shape, 3);
    }
}

#[test]
fn large_p() {
    let shape = PredictShape {
        n: 48,
        bs: 12,
        p: 8,
        tiling: GemmTiling { bm: 24, bn: 24, bk: 6, rx: 3, ry: 3 },
    };
    assert_match(SchemeKind::AAbft, &shape, 4);
}

#[test]
fn asymmetric_register_tiles() {
    let shape = PredictShape {
        n: 40,
        bs: 10,
        p: 2,
        tiling: GemmTiling { bm: 8, bn: 20, bk: 5, rx: 2, ry: 5 },
    };
    for kind in ALL {
        assert_match(kind, &shape, 5);
    }
}
