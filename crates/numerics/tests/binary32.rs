//! Cross-format tests: the model's `t` parameterisation must hold for
//! binary32 as well (the paper's formulas are generic in the mantissa
//! length; the evaluation uses binary64).

use aabft_numerics::bits::Real;
use aabft_numerics::exact::rounding_error_of;
use aabft_numerics::RoundingModel;
use rand::{Rng, SeedableRng};

#[test]
fn binary32_model_covers_f32_dot_errors() {
    let model = RoundingModel::binary32();
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let mut covered = 0;
    let trials = 100;
    for _ in 0..trials {
        let n = 128;
        let a32: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b32: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        // Sequential f32 dot product.
        let mut s = 0.0f32;
        for (x, y) in a32.iter().zip(&b32) {
            s += x * y;
        }
        // Exact reference via f64 (every f32 op result is exactly
        // representable in f64, so the superaccumulator over the widened
        // values gives the exact dot).
        let a64: Vec<f64> = a32.iter().map(|&x| x as f64).collect();
        let b64: Vec<f64> = b32.iter().map(|&x| x as f64).collect();
        let err = rounding_error_of(s as f64, &a64, &b64);
        let moments = model_moments_f32(&a32, &b32, &model);
        if err.abs() <= moments {
            covered += 1;
        }
    }
    assert!(covered >= 95, "3-sigma coverage too low for binary32: {covered}/{trials}");
}

/// 3-sigma radius of the binary32 model evaluated on widened operands.
fn model_moments_f32(a: &[f32], b: &[f32], model: &RoundingModel) -> f64 {
    let a64: Vec<f64> = a.iter().map(|&x| x as f64).collect();
    let b64: Vec<f64> = b.iter().map(|&x| x as f64).collect();
    model.inner_product_moments(&a64, &b64).confidence_radius(3.0)
}

#[test]
fn binary32_bounds_are_much_looser_than_binary64() {
    use aabft_numerics::model::Moments;
    let m64 = RoundingModel::binary64();
    let m32 = RoundingModel::binary32();
    let scale = |m: &RoundingModel| -> Moments { m.beta_add() };
    let ratio = scale(&m32).variance / scale(&m64).variance;
    // 2^(2*(53-24)) = 2^58.
    assert!((ratio.log2() - 58.0).abs() < 1e-6, "ratio 2^{}", ratio.log2());
}

#[test]
fn real_trait_round_trips_f32() {
    let x = 1.5f32;
    assert_eq!(<f32 as Real>::from_bits_u64(x.to_bits_u64()), x);
    assert_eq!(f32::from_f64(x.to_f64()), x);
    assert_eq!(<f32 as Real>::MANTISSA_DIGITS, 24);
    assert_eq!(1.0f32.mul_add(2.0, 3.0), 5.0);
}
