//! Deep validation of the superaccumulator's correct rounding: exhaustive
//! small-mantissa cases against i128 integer arithmetic, boundary cases
//! around the normal/subnormal threshold, and randomized cross-checks of
//! the round-to-nearest-even rule.

use aabft_numerics::superacc::Superaccumulator;
use rand::{Rng, SeedableRng};

/// Reference: correctly rounded value of the exact integer `v · 2^e`
/// computed through i128 arithmetic and Rust's (correctly rounded) `f64`
/// conversion plus exact power-of-two scaling.
fn reference_round(v: i128, e: i32) -> f64 {
    // v fits in f64's exact range only if |v| < 2^53; otherwise shift down
    // while tracking guard/sticky manually — for test simplicity restrict
    // generators to |v| < 2^100 and use string-free ldexp via successive
    // halving with sticky OR into the low bit beyond 53 significant bits.
    let neg = v < 0;
    let mut mag = v.unsigned_abs();
    let mut e = e;
    // Normalise so mag has at most 54 significant bits with a sticky flag.
    let mut sticky = false;
    while mag >> 54 != 0 {
        sticky |= mag & 1 == 1;
        mag >>= 1;
        e += 1;
    }
    if sticky {
        // Represent the sticky contribution as an odd low bit.
        mag = mag << 1 | 1;
        e -= 1;
    }
    let base = mag as f64; // exact: mag < 2^55 needs care; mag < 2^55 but f64 exact to 2^53
    // mag may now have up to 55 bits; split exactly into two f64s.
    let hi = (mag >> 11 << 11) as f64;
    let lo = (mag & ((1 << 11) - 1)) as f64;
    let scale = (2.0f64).powi(e);
    // hi*scale and lo*scale are exact (few significant bits times a power
    // of two); the final addition performs the single correct rounding.
    let _ = base;
    let magnitude = (hi * scale) + lo * scale;
    if neg {
        -magnitude
    } else {
        magnitude
    }
}

#[test]
fn exhaustive_small_sums_match_integer_reference() {
    // All sums of pairs (a, b) with small integer mantissas across a range
    // of exponents: the accumulator must round exactly like f64 addition of
    // the exact value.
    for ma in -7i64..=7 {
        for ea in [-40i32, -3, 0, 5, 37] {
            for mb in -7i64..=7 {
                for eb in [-45i32, -1, 0, 8, 33] {
                    let a = ma as f64 * (2.0f64).powi(ea);
                    let b = mb as f64 * (2.0f64).powi(eb);
                    let mut acc = Superaccumulator::new();
                    acc.add(a);
                    acc.add(b);
                    // Exact integer value at scale 2^min(ea,eb).
                    let e0 = ea.min(eb);
                    let v = (ma as i128) << (ea - e0) as u32;
                    let w = (mb as i128) << (eb - e0) as u32;
                    let expect = reference_round(v + w, e0);
                    assert_eq!(
                        acc.round(),
                        expect,
                        "a = {ma}*2^{ea}, b = {mb}*2^{eb}"
                    );
                }
            }
        }
    }
}

#[test]
fn random_triples_round_like_exact_integer_math() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    for _ in 0..2000 {
        let e0: i32 = rng.gen_range(-60..60);
        let xs: Vec<(i128, i32)> = (0..3)
            .map(|_| (rng.gen_range(-(1i128 << 40)..(1i128 << 40)), rng.gen_range(0..20)))
            .collect();
        let mut acc = Superaccumulator::new();
        let mut exact: i128 = 0;
        for &(m, de) in &xs {
            // Value m * 2^(e0 + de); representable when m < 2^53.
            let v = m as f64 * (2.0f64).powi(e0 + de);
            acc.add(v);
            exact += m << de as u32;
        }
        let expect = reference_round(exact, e0);
        assert_eq!(acc.round(), expect, "xs = {xs:?} e0 = {e0}");
    }
}

#[test]
fn subnormal_boundary_cases() {
    let min_normal = f64::MIN_POSITIVE; // 2^-1022
    let min_sub = f64::from_bits(1); // 2^-1074
    // Just below the normal threshold.
    let mut acc = Superaccumulator::new();
    acc.add(min_normal);
    acc.sub(min_sub);
    assert_eq!(acc.round(), min_normal - min_sub);
    // Largest subnormal + smallest subnormal == next value up (exact).
    let max_sub = f64::from_bits((1u64 << 52) - 1);
    let mut acc = Superaccumulator::new();
    acc.add(max_sub);
    acc.add(min_sub);
    assert_eq!(acc.round(), min_normal);
    // Half the smallest subnormal ties to even (zero).
    let mut acc = Superaccumulator::new();
    acc.add_product(min_sub, 0.5);
    assert_eq!(acc.round(), 0.0);
    // Slightly above half rounds up to the smallest subnormal.
    let mut acc = Superaccumulator::new();
    acc.add_product(min_sub, 0.5);
    acc.add_product(min_sub, 0.25);
    assert_eq!(acc.round(), min_sub);
}

#[test]
fn near_overflow_rounding() {
    let max = f64::MAX;
    let mut acc = Superaccumulator::new();
    acc.add(max);
    acc.add(max / 2.0);
    assert_eq!(acc.round(), f64::INFINITY, "exact 1.5*MAX is out of range");
    let mut acc = Superaccumulator::new();
    acc.add(max);
    acc.sub(max / 2.0);
    assert_eq!(acc.round(), max / 2.0);
}

#[test]
fn ties_at_every_scale() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    for _ in 0..500 {
        let e: i32 = rng.gen_range(-300..300);
        let base = (2.0f64).powi(e);
        // value = (2k+1) * 2^(e-53): exactly halfway between consecutive
        // representables at scale 2^e when added to base... construct
        // explicitly: base + ulp/2 ties to even (base has even mantissa).
        let ulp = (2.0f64).powi(e - 52);
        let mut acc = Superaccumulator::new();
        acc.add(base);
        acc.add(ulp * 0.5);
        assert_eq!(acc.round(), base, "tie at 2^{e} must round to even");
        let mut acc = Superaccumulator::new();
        acc.add(base + ulp); // odd mantissa
        acc.add(ulp * 0.5);
        assert_eq!(acc.round(), base + 2.0 * ulp, "tie above odd rounds up");
    }
}
