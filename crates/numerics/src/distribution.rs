//! The reciprocal (Benford, base 2) mantissa distribution.
//!
//! The probabilistic model rests on the observation (Hamming 1970, Benford
//! 1938; paper Section IV-A) that mantissas of floating-point data tend to
//! follow the reciprocal density `r(x) = 1/(x·ln 2)` on `[1/2, 1)` (Eq. 14),
//! and that floating-point *operations* drive mantissas toward it. This
//! module provides the density, CDF, a sampler, and an empirical-distance
//! helper used by tests to validate the assumption on computed data.

use rand::Rng;

/// Density `r(x) = 1/(x ln 2)` of the base-2 reciprocal distribution
/// (Eq. 14), defined on `[1/2, 1)`.
///
/// # Examples
///
/// ```
/// use aabft_numerics::distribution::reciprocal_pdf;
///
/// assert!((reciprocal_pdf(0.5) - 2.0 / std::f64::consts::LN_2).abs() < 1e-12);
/// assert_eq!(reciprocal_pdf(0.4), 0.0); // outside the support
/// ```
pub fn reciprocal_pdf(x: f64) -> f64 {
    if !(0.5..1.0).contains(&x) {
        0.0
    } else {
        1.0 / (x * std::f64::consts::LN_2)
    }
}

/// CDF of the reciprocal distribution: `P(X <= x) = log2(2x)` on `[1/2, 1)`.
pub fn reciprocal_cdf(x: f64) -> f64 {
    if x < 0.5 {
        0.0
    } else if x >= 1.0 {
        1.0
    } else {
        (2.0 * x).log2()
    }
}

/// Draws a sample from the reciprocal distribution via inverse-CDF:
/// `X = 2^(U-1)` for `U ~ Uniform[0,1)`.
pub fn sample_reciprocal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen();
    (2.0f64).powf(u - 1.0)
}

/// Mantissa of `x` normalised to `[1/2, 1)` (the paper's convention, Eq. 9).
///
/// # Panics
///
/// Panics if `x` is zero, NaN or infinite.
pub fn mantissa_in_half_one(x: f64) -> f64 {
    assert!(x != 0.0 && x.is_finite(), "mantissa undefined for {x}");
    let mut m = x.abs();
    // frexp: scale into [1/2, 1) exactly (powers of two are exact).
    let e = crate::bits::ceil_log2_abs(x);
    m *= (2.0f64).powi(-e);
    // ceil_log2 puts exact powers of two at m == 1.0; fold to 1/2.
    if m >= 1.0 {
        m *= 0.5;
    }
    debug_assert!((0.5..1.0).contains(&m), "m = {m} for x = {x}");
    m
}

/// Kolmogorov–Smirnov distance between the empirical distribution of
/// `samples` (each in `[1/2, 1)`) and the reciprocal CDF.
///
/// Used by tests to check that mantissas of computed products approach the
/// reciprocal law — the model's core assumption.
pub fn ks_distance_to_reciprocal(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "need at least one sample");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = samples.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in samples.iter().enumerate() {
        let f = reciprocal_cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pdf_integrates_to_one() {
        // Simple trapezoid over [1/2, 1).
        let n = 100_000;
        let h = 0.5 / n as f64;
        let mut s = 0.0;
        for i in 0..n {
            let x0 = 0.5 + i as f64 * h;
            let x1 = x0 + h;
            s += 0.5 * (reciprocal_pdf(x0) + reciprocal_pdf(x1.min(1.0 - 1e-12))) * h;
        }
        assert!((s - 1.0).abs() < 1e-4, "integral = {s}");
    }

    #[test]
    fn cdf_endpoints() {
        assert_eq!(reciprocal_cdf(0.5), 0.0);
        assert_eq!(reciprocal_cdf(1.0), 1.0);
        assert!((reciprocal_cdf(0.75) - (1.5f64).log2()).abs() < 1e-15);
    }

    #[test]
    fn sampler_matches_cdf() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut samples: Vec<f64> = (0..20_000).map(|_| sample_reciprocal(&mut rng)).collect();
        let d = ks_distance_to_reciprocal(&mut samples);
        // KS critical value at alpha=0.001 for n=20000 is ~0.0138.
        assert!(d < 0.014, "KS distance {d} too large");
    }

    #[test]
    fn mantissa_normalisation() {
        assert_eq!(mantissa_in_half_one(1.0), 0.5);
        assert_eq!(mantissa_in_half_one(-2.0), 0.5);
        assert_eq!(mantissa_in_half_one(3.0), 0.75);
        assert_eq!(mantissa_in_half_one(0.3), 0.6);
    }

    #[test]
    fn products_of_uniforms_approach_reciprocal() {
        // Hamming's observation: multiplying random values drives mantissas
        // toward the reciprocal law. Products of several uniforms should be
        // much closer to it than the uniforms themselves.
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let n = 20_000;
        let mut prod_mantissas: Vec<f64> = (0..n)
            .map(|_| {
                let p: f64 = (0..6).map(|_| rng.gen_range(0.1..10.0)).product();
                mantissa_in_half_one(p)
            })
            .collect();
        let d_prod = ks_distance_to_reciprocal(&mut prod_mantissas);
        assert!(d_prod < 0.02, "product mantissas KS = {d_prod}");
    }
}
