//! Floating-point expansions (Shewchuk).
//!
//! An expansion represents an exact real value as a sum of non-overlapping
//! `f64` components. Together with the error-free transforms of [`crate::eft`]
//! it forms an exact adaptive-precision arithmetic that serves as an
//! independent oracle for the [`crate::superacc`] superaccumulator — the two
//! implementations cross-validate each other in tests, standing in for the
//! GMP library the paper used to compute exact rounding errors.

use crate::eft::{fast_two_sum, two_prod, two_sum};

/// An exact real value stored as a sum of floating-point components.
///
/// Invariant: components are finite; after [`Expansion::compress`] they are
/// non-overlapping and sorted by increasing magnitude. All arithmetic is
/// exact (no rounding) until [`Expansion::estimate`] collapses the value.
///
/// # Examples
///
/// ```
/// use aabft_numerics::expansion::Expansion;
///
/// let mut e = Expansion::new();
/// e.add(1e100);
/// e.add(1.0);
/// e.add(-1e100);
/// assert_eq!(e.estimate(), 1.0); // no catastrophic cancellation
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Expansion {
    components: Vec<f64>,
}

impl Expansion {
    /// Creates an empty expansion representing exactly zero.
    pub fn new() -> Self {
        Expansion { components: Vec::new() }
    }

    /// Creates an expansion holding the single value `x`.
    pub fn from_value(x: f64) -> Self {
        assert!(x.is_finite(), "expansion components must be finite");
        Expansion { components: if x == 0.0 { Vec::new() } else { vec![x] } }
    }

    /// Number of non-zero components currently stored.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` if the expansion represents exactly zero.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Borrow the raw components (increasing magnitude after compression).
    pub fn components(&self) -> &[f64] {
        &self.components
    }

    /// Adds `b` exactly (GROW-EXPANSION).
    ///
    /// # Panics
    ///
    /// Panics if `b` is not finite.
    pub fn add(&mut self, b: f64) {
        assert!(b.is_finite(), "expansion components must be finite");
        let mut q = b;
        let mut out = Vec::with_capacity(self.components.len() + 1);
        for &c in &self.components {
            let (sum, err) = two_sum(q, c);
            if err != 0.0 {
                out.push(err);
            }
            q = sum;
        }
        if q != 0.0 {
            out.push(q);
        }
        self.components = out;
    }

    /// Adds the exact product `a * b` (two components via `two_prod`).
    pub fn add_product(&mut self, a: f64, b: f64) {
        let (p, e) = two_prod(a, b);
        self.add(e);
        self.add(p);
    }

    /// Adds another expansion exactly.
    pub fn add_expansion(&mut self, other: &Expansion) {
        for &c in &other.components {
            self.add(c);
        }
    }

    /// Renormalises into a canonical non-overlapping form and drops zeros
    /// (COMPRESS). Keeps the value exactly; bounds the component count.
    pub fn compress(&mut self) {
        if self.components.is_empty() {
            return;
        }
        // Bottom-up pass: accumulate with fast_two_sum from largest down.
        let mut g = self.components.clone();
        g.sort_by(|a, b| a.abs().partial_cmp(&b.abs()).expect("finite components"));
        let mut q = *g.last().expect("non-empty");
        let mut bottom: Vec<f64> = Vec::with_capacity(g.len());
        for &c in g[..g.len() - 1].iter().rev() {
            let (sum, err) = fast_two_sum(q, c);
            q = sum;
            if err != 0.0 {
                bottom.push(err);
            }
        }
        bottom.push(q);
        // bottom is ordered largest-magnitude last? We pushed errors (small)
        // first and q (large) last; a second pass restores non-overlap.
        let mut out: Vec<f64> = Vec::with_capacity(bottom.len());
        let mut q = bottom[bottom.len() - 1];
        for &c in bottom[..bottom.len() - 1].iter().rev() {
            let (sum, err) = fast_two_sum(q, c);
            q = sum;
            if err != 0.0 {
                out.push(err);
            }
        }
        out.push(q);
        out.reverse(); // smallest first
        out.sort_by(|a, b| a.abs().partial_cmp(&b.abs()).expect("finite components"));
        self.components = out.into_iter().filter(|&c| c != 0.0).collect();
    }

    /// Best single-`f64` approximation of the exact value.
    ///
    /// After [`Expansion::compress`], summing components from smallest to
    /// largest yields a correctly rounded result for non-pathological cases;
    /// tests validate against the superaccumulator, which rounds correctly
    /// by construction.
    pub fn estimate(&self) -> f64 {
        let mut sorted = self.components.clone();
        sorted.sort_by(|a, b| a.abs().partial_cmp(&b.abs()).expect("finite components"));
        sorted.iter().sum()
    }

    /// Exact comparison of the represented value against zero.
    pub fn signum(&self) -> i8 {
        // After adds the largest-magnitude component dominates only post
        // compression; compress a clone to be safe.
        let mut c = self.clone();
        c.compress();
        match c.components.last() {
            None => 0,
            Some(&v) if v > 0.0 => 1,
            Some(_) => -1,
        }
    }
}

impl FromIterator<f64> for Expansion {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut e = Expansion::new();
        for x in iter {
            e.add(x);
        }
        e
    }
}

impl Extend<f64> for Expansion {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Exact dot product of two slices via expansion arithmetic.
///
/// Slow (quadratic worst case in component growth) but simple; used as an
/// oracle to validate the superaccumulator.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_expansion(a: &[f64], b: &[f64]) -> Expansion {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    let mut acc = Expansion::new();
    for (&x, &y) in a.iter().zip(b) {
        acc.add_product(x, y);
        if acc.len() > 64 {
            acc.compress();
        }
    }
    acc.compress();
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_expansion() {
        let e = Expansion::new();
        assert!(e.is_empty());
        assert_eq!(e.estimate(), 0.0);
        assert_eq!(e.signum(), 0);
    }

    #[test]
    fn exact_cancellation() {
        let mut e = Expansion::new();
        e.add(1e100);
        e.add(1.0);
        e.add(-1e100);
        e.compress();
        assert_eq!(e.estimate(), 1.0);
        assert_eq!(e.signum(), 1);
    }

    #[test]
    fn sum_of_tenths_exact() {
        // 0.1 ten times: naive sum is inexact; the expansion keeps the exact
        // value, which differs from 1.0 by a known tiny amount.
        let mut e = Expansion::new();
        for _ in 0..10 {
            e.add(0.1);
        }
        e.compress();
        let exact_tenth_error = 0.1f64 - 0.1; // zero; the real check below
        let _ = exact_tenth_error;
        // 0.1 = (1 + eps_rel) / 10 exactly in binary; 10*0.1 != 1.0 exactly.
        let est = e.estimate();
        assert!((est - 1.0).abs() < 1e-15);
        // But the exact expansion is NOT exactly 1.0:
        let mut minus_one = e.clone();
        minus_one.add(-1.0);
        minus_one.compress();
        assert_ne!(minus_one.signum(), 0);
    }

    #[test]
    fn add_product_exact() {
        let mut e = Expansion::new();
        e.add_product(0.1, 0.1);
        e.add_product(-0.1, 0.1);
        e.compress();
        assert_eq!(e.signum(), 0, "x*y - x*y must be exactly zero");
    }

    #[test]
    fn dot_matches_integer_arithmetic() {
        // Small integers: dot product is exactly representable.
        let a: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let b: Vec<f64> = (1..=50).map(|i| (51 - i) as f64).collect();
        let exact: i64 = (1..=50i64).map(|i| i * (51 - i)).sum();
        let e = dot_expansion(&a, &b);
        assert_eq!(e.estimate(), exact as f64);
    }

    #[test]
    fn compress_idempotent_and_value_preserving() {
        let mut e = Expansion::new();
        for i in 0..100 {
            e.add((i as f64).sin() * (10f64).powi(i % 40 - 20));
        }
        let before = e.estimate();
        e.compress();
        let after = e.estimate();
        assert_eq!(before, after);
        let len1 = e.len();
        e.compress();
        assert_eq!(e.len(), len1);
        assert_eq!(e.estimate(), after);
    }

    #[test]
    fn from_iterator_collects() {
        let e: Expansion = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(e.estimate(), 6.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let mut e = Expansion::new();
        e.add(f64::NAN);
    }
}
