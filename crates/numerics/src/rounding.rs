//! Exact simulation of alternative rounding modes on round-to-nearest
//! hardware.
//!
//! The paper's model covers symmetric rounding *and* truncation
//! (Section IV-D "with only minor changes"). Host floats round to nearest,
//! but the error-free transforms recover each operation's exact residual,
//! from which the correctly *truncated* (round-toward-zero) result is one
//! representable-neighbour step away. This lets the simulator execute
//! bit-exact truncating hardware.

use crate::eft::{two_prod, two_sum};
use crate::model::RoundingMode;

/// Adjusts a round-to-nearest result to round-toward-zero, given the exact
/// residual `err` (`exact = rn + err`).
///
/// If the nearest rounding overshot the exact value's magnitude, the
/// truncated result is the next representable value toward zero; otherwise
/// the nearest result already is the truncation.
#[inline]
pub fn truncate_adjust(rn: f64, err: f64) -> f64 {
    if rn == 0.0 || err == 0.0 {
        return rn;
    }
    // Overshoot: |rn| > |exact| iff the residual points back toward zero.
    if (rn > 0.0 && err < 0.0) || (rn < 0.0 && err > 0.0) {
        f64::from_bits(rn.to_bits() - 1)
    } else {
        rn
    }
}

/// `a + b` under the given rounding mode (bit-exact for both modes).
#[inline]
pub fn add_with_mode(a: f64, b: f64, mode: RoundingMode) -> f64 {
    match mode {
        RoundingMode::Nearest => a + b,
        RoundingMode::Truncation => {
            let (s, e) = two_sum(a, b);
            truncate_adjust(s, e)
        }
    }
}

/// `a * b` under the given rounding mode (bit-exact for both modes,
/// provided the product's residual does not underflow — the usual EFT
/// caveat).
#[inline]
pub fn mul_with_mode(a: f64, b: f64, mode: RoundingMode) -> f64 {
    match mode {
        RoundingMode::Nearest => a * b,
        RoundingMode::Truncation => {
            let (p, e) = two_prod(a, b);
            truncate_adjust(p, e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::superacc::Superaccumulator;
    use rand::{Rng, SeedableRng};

    /// Reference truncation via the superaccumulator: compute the exact
    /// value, then round and step toward zero if the rounding overshot.
    fn exact_trunc_add(a: f64, b: f64) -> f64 {
        let mut acc = Superaccumulator::new();
        acc.add(a);
        acc.add(b);
        let rn = acc.round();
        // residual = exact - rn
        acc.sub(rn);
        match acc.signum() {
            0 => rn,
            s => {
                // exact > rn (s=1): rn undershot; trunc = rn if rn>0... use
                // the same overshoot rule with err = exact - rn = -residual
                // of our convention (err here: exact = rn + resid).
                let resid_positive = s > 0;
                if (rn > 0.0 && !resid_positive) || (rn < 0.0 && resid_positive) {
                    f64::from_bits(rn.to_bits() - 1)
                } else {
                    rn
                }
            }
        }
    }

    #[test]
    fn truncation_matches_superacc_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..20_000 {
            let a = (rng.gen::<f64>() - 0.5) * (10f64).powi(rng.gen_range(-10..10));
            let b = (rng.gen::<f64>() - 0.5) * (10f64).powi(rng.gen_range(-10..10));
            let t = add_with_mode(a, b, RoundingMode::Truncation);
            let expect = exact_trunc_add(a, b);
            assert_eq!(t, expect, "a={a:e} b={b:e}");
        }
    }

    #[test]
    fn truncation_never_exceeds_magnitude_of_nearest() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.gen_range(-1e6..1e6);
            let b = rng.gen_range(-1e6..1e6);
            let t = mul_with_mode(a, b, RoundingMode::Truncation);
            let rn = a * b;
            assert!(t.abs() <= rn.abs(), "a={a} b={b}");
            // At most one ulp apart.
            assert!(rn.to_bits().abs_diff(t.to_bits()) <= 1);
        }
    }

    #[test]
    fn exact_operations_are_unchanged() {
        for mode in [RoundingMode::Nearest, RoundingMode::Truncation] {
            assert_eq!(add_with_mode(1.5, 2.25, mode), 3.75);
            assert_eq!(mul_with_mode(3.0, 4.0, mode), 12.0);
            assert_eq!(add_with_mode(0.0, 0.0, mode), 0.0);
            assert_eq!(mul_with_mode(-1.5, 2.0, mode), -3.0);
        }
    }

    #[test]
    fn known_truncation_cases() {
        // 1 + eps/2 is exactly halfway: RN ties to 1.0 (even); truncation
        // also gives 1.0 (exact value 1+eps/2 truncates down).
        assert_eq!(add_with_mode(1.0, f64::EPSILON / 2.0, RoundingMode::Truncation), 1.0);
        // 1 + 3eps/4: RN gives 1+eps (rounds up); truncation keeps 1.0.
        let x = 1.0 + 0.75 * f64::EPSILON;
        let rn = add_with_mode(1.0, 0.75 * f64::EPSILON, RoundingMode::Nearest);
        assert_eq!(rn, 1.0 + f64::EPSILON);
        assert_eq!(add_with_mode(1.0, 0.75 * f64::EPSILON, RoundingMode::Truncation), 1.0);
        let _ = x;
        // Negative mirror: -(1 + 3eps/4) truncates to -1.0 (toward zero).
        assert_eq!(
            add_with_mode(-1.0, -0.75 * f64::EPSILON, RoundingMode::Truncation),
            -1.0
        );
    }

    #[test]
    fn truncation_bias_is_one_sided() {
        // Summing many positive values with truncation always under-counts.
        let xs = vec![0.1; 10_000];
        let mut s = 0.0;
        for &x in &xs {
            s = add_with_mode(s, x, RoundingMode::Truncation);
        }
        let exact = crate::superacc::exact_sum(&xs);
        assert!(s < exact, "truncation must undershoot: {s} vs {exact}");
        // And the one-sided drift exceeds the (partially cancelling) RN
        // error. (RN on identical addends also drifts — 0.1's binary
        // representation error is same-signed — so the gap is a small
        // factor here, not orders of magnitude.)
        let rn: f64 = xs.iter().sum();
        assert!((exact - s) > 2.0 * (exact - rn).abs());
    }
}
