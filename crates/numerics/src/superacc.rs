//! Kulisch-style superaccumulator: exact accumulation of `f64` values and
//! `f64`×`f64` products.
//!
//! The paper computes its "exact rounding errors" (Tables II–IV) with GMP.
//! This module replaces that dependency with something strictly stronger for
//! the operations we need: a 4352-bit fixed-point accumulator wide enough to
//! hold *any* sum of up to 2⁶⁴ double-precision products without rounding.
//! Every `a·b` is added via exact 106-bit integer mantissa multiplication,
//! so even products that would underflow to subnormals in hardware are
//! accumulated exactly. The final [`Superaccumulator::round`] performs a
//! single correct round-to-nearest-even.

use crate::bits::FloatParts;

/// Number of 64-bit limbs. Bit `k` of the accumulator (counting from limb 0,
/// bit 0) has weight `2^(k + BASE_EXP)`.
const LIMBS: usize = 68;
/// Weight of the least significant accumulator bit. Products of two
/// subnormals reach down to 2^-2148; −2176 = −34·64 leaves slack and keeps
/// limb arithmetic aligned.
const BASE_EXP: i32 = -2176;

/// Exact accumulator for sums of `f64` values and products.
///
/// The value is stored in two's complement across 68 limbs, giving
/// headroom for at least 2⁶⁴ maximal-magnitude products before overflow.
///
/// # Examples
///
/// ```
/// use aabft_numerics::superacc::Superaccumulator;
///
/// let mut acc = Superaccumulator::new();
/// acc.add(1e308);
/// acc.add(-1e308);
/// acc.add(1e-300);
/// assert_eq!(acc.round(), 1e-300); // exact despite 600 orders of magnitude
/// ```
#[derive(Clone)]
pub struct Superaccumulator {
    limbs: [u64; LIMBS],
}

impl Default for Superaccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Superaccumulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Superaccumulator")
            .field("approx", &self.clone().round())
            .finish()
    }
}

impl PartialEq for Superaccumulator {
    fn eq(&self, other: &Self) -> bool {
        self.limbs == other.limbs
    }
}

/// Decomposition of a finite `f64` into `±m · 2^e` with integer `m < 2^53`.
fn integer_mantissa(x: f64) -> (bool, u64, i32) {
    let p = FloatParts::of(x);
    if p.is_subnormal_or_zero() {
        (p.sign, p.mantissa, -1074)
    } else {
        (p.sign, p.mantissa | (1u64 << 52), p.unbiased_exponent() - 52)
    }
}

impl Superaccumulator {
    /// Creates an accumulator holding exactly zero.
    pub fn new() -> Self {
        Superaccumulator { limbs: [0; LIMBS] }
    }

    /// `true` if the accumulated value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Sign of the exact value: −1, 0 or 1.
    pub fn signum(&self) -> i8 {
        if self.is_zero() {
            0
        } else if self.limbs[LIMBS - 1] >> 63 == 1 {
            -1
        } else {
            1
        }
    }

    /// Adds a 128-bit magnitude at bit offset `shift` (weight
    /// `2^(shift + BASE_EXP)`), with sign.
    fn add_shifted(&mut self, m: u128, shift: u32, negative: bool) {
        if m == 0 {
            return;
        }
        let limb = (shift / 64) as usize;
        let off = shift % 64;
        // m << off spans at most 3 limbs (128 + 63 bits).
        let lo: u64;
        let mid: u64;
        let hi: u64;
        if off == 0 {
            lo = m as u64;
            mid = (m >> 64) as u64;
            hi = 0;
        } else {
            lo = (m << off) as u64;
            mid = (m >> (64 - off)) as u64;
            hi = (m >> (128 - off)) as u64;
        }
        let parts = [lo, mid, hi];
        if negative {
            let mut borrow = 0u64;
            for (i, &p) in parts.iter().enumerate() {
                let idx = limb + i;
                debug_assert!(idx < LIMBS, "superaccumulator overflow");
                let (r1, b1) = self.limbs[idx].overflowing_sub(p);
                let (r2, b2) = r1.overflowing_sub(borrow);
                self.limbs[idx] = r2;
                borrow = (b1 as u64) + (b2 as u64);
            }
            let mut idx = limb + 3;
            while borrow != 0 && idx < LIMBS {
                let (r, b) = self.limbs[idx].overflowing_sub(borrow);
                self.limbs[idx] = r;
                borrow = b as u64;
                idx += 1;
            }
            // A remaining borrow past the top limb wraps two's complement,
            // which is exactly what we want for negative totals.
        } else {
            let mut carry = 0u64;
            for (i, &p) in parts.iter().enumerate() {
                let idx = limb + i;
                debug_assert!(idx < LIMBS, "superaccumulator overflow");
                let (r1, c1) = self.limbs[idx].overflowing_add(p);
                let (r2, c2) = r1.overflowing_add(carry);
                self.limbs[idx] = r2;
                carry = (c1 as u64) + (c2 as u64);
            }
            let mut idx = limb + 3;
            while carry != 0 && idx < LIMBS {
                let (r, c) = self.limbs[idx].overflowing_add(carry);
                self.limbs[idx] = r;
                carry = c as u64;
                idx += 1;
            }
        }
    }

    /// Adds `x` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN or infinite.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "cannot accumulate non-finite value {x}");
        if x == 0.0 {
            return;
        }
        let (neg, m, e) = integer_mantissa(x);
        let shift = (e - BASE_EXP) as u32;
        self.add_shifted(m as u128, shift, neg);
    }

    /// Adds the product `a · b` exactly via 106-bit integer mantissa
    /// multiplication — exact even where `two_prod` would underflow.
    ///
    /// # Panics
    ///
    /// Panics if either factor is NaN or infinite.
    pub fn add_product(&mut self, a: f64, b: f64) {
        assert!(
            a.is_finite() && b.is_finite(),
            "cannot accumulate non-finite product {a} * {b}"
        );
        if a == 0.0 || b == 0.0 {
            return;
        }
        let (na, ma, ea) = integer_mantissa(a);
        let (nb, mb, eb) = integer_mantissa(b);
        let m = ma as u128 * mb as u128;
        let e = ea + eb;
        let shift = (e - BASE_EXP) as u32;
        self.add_shifted(m, shift, na != nb);
    }

    /// Subtracts `x` exactly.
    pub fn sub(&mut self, x: f64) {
        self.add(-x);
    }

    /// Negates the accumulated value in place (two's complement negate).
    pub fn negate(&mut self) {
        let mut carry = 1u64;
        for limb in &mut self.limbs {
            let (r, c) = (!*limb).overflowing_add(carry);
            *limb = r;
            carry = c as u64;
        }
    }

    /// Adds another accumulator's exact value.
    pub fn add_acc(&mut self, other: &Superaccumulator) {
        let mut carry = 0u64;
        for (limb, &o) in self.limbs.iter_mut().zip(&other.limbs) {
            let (r1, c1) = limb.overflowing_add(o);
            let (r2, c2) = r1.overflowing_add(carry);
            *limb = r2;
            carry = (c1 as u64) + (c2 as u64);
        }
    }

    /// Magnitude limbs and sign of the current value.
    fn magnitude(&self) -> (i8, [u64; LIMBS]) {
        let s = self.signum();
        if s >= 0 {
            (s, self.limbs)
        } else {
            // Two's complement negate.
            let mut out = [0u64; LIMBS];
            let mut carry = 1u64;
            for (o, &limb) in out.iter_mut().zip(&self.limbs) {
                let (r1, c1) = (!limb).overflowing_add(carry);
                *o = r1;
                carry = c1 as u64;
            }
            (s, out)
        }
    }

    /// Rounds the exact value to the nearest `f64` (ties to even).
    ///
    /// Returns ±∞ if the exact value exceeds the `f64` range.
    pub fn round(&self) -> f64 {
        let (sign, mag) = self.magnitude();
        if sign == 0 {
            return 0.0;
        }
        // Highest set bit position (global bit index).
        let top_limb = (0..LIMBS)
            .rev()
            .find(|&i| mag[i] != 0)
            .expect("non-zero magnitude");
        let top_bit_in_limb = 63 - mag[top_limb].leading_zeros() as i32;
        let h = top_limb as i32 * 64 + top_bit_in_limb; // weight 2^(h+BASE_EXP)
        let value_exp = h + BASE_EXP; // floor(log2 |v|)

        // Number of mantissa bits we can keep: 53 for normal results,
        // fewer if the result is subnormal.
        let (keep, result_exp) = if value_exp >= -1022 {
            (53i32, value_exp)
        } else {
            // Subnormal: the least significant representable bit has weight
            // 2^-1074; keep h - (-1074 - BASE_EXP) + 1 bits.
            let keep = h - (-1074 - BASE_EXP) + 1;
            if keep <= 0 {
                // Entire value is below half the smallest subnormal except
                // possibly rounding up; handle via the sticky logic below
                // with keep = 0 semantics: round to 0 or MIN_POSITIVE sub.
                let half_min = -1075 - BASE_EXP; // bit index of 2^-1075
                let round_up = h == half_min && {
                    // Exactly at half the smallest subnormal => tie to even
                    // (zero); above it => up. Check any lower bit set.
                    let mut any = false;
                    for (i, &l) in mag.iter().enumerate() {
                        if l != 0 {
                            let base = i as i32 * 64;
                            for b in 0..64 {
                                if l >> b & 1 == 1 && base + b < h {
                                    any = true;
                                }
                            }
                        }
                    }
                    any
                };
                let v = if round_up { f64::from_bits(1) } else { 0.0 };
                return if sign < 0 { -v } else { v };
            }
            (keep, value_exp)
        };

        // Extract `keep` bits starting at h downwards, then guard + sticky.
        let get_bit = |idx: i32| -> u64 {
            if idx < 0 {
                0
            } else {
                mag[(idx / 64) as usize] >> (idx % 64) & 1
            }
        };
        let mut mant: u64 = 0;
        for i in 0..keep {
            mant = (mant << 1) | get_bit(h - i);
        }
        let guard_idx = h - keep;
        let guard = get_bit(guard_idx);
        let sticky = {
            let mut s = false;
            if guard_idx > 0 {
                // Any set bit strictly below guard_idx?
                let full_limbs = (guard_idx / 64) as usize;
                if mag[..full_limbs].iter().any(|&l| l != 0) {
                    s = true;
                }
                if !s {
                    let rem = guard_idx % 64;
                    if rem > 0 && mag[full_limbs] & ((1u64 << rem) - 1) != 0 {
                        s = true;
                    }
                }
            }
            s
        };
        if guard == 1 && (sticky || mant & 1 == 1) {
            mant += 1;
        }

        // The kept bits have LSB weight 2^(result_exp - keep + 1); this
        // formula stays correct even when rounding carried mant up to
        // keep+1 bits (the value then gains one exponent automatically).
        let v = ldexp_exact(mant, result_exp - keep + 1);
        if sign < 0 {
            -v
        } else {
            v
        }
    }
}

/// `m · 2^e` with `m` an integer of ≤ 54 bits; saturates to ±∞ on overflow
/// and rounds correctly on subnormal underflow (m already carries all
/// surviving bits, so the conversion is exact here).
fn ldexp_exact(m: u64, e: i32) -> f64 {
    let mut v = m as f64; // exact: m < 2^54
    let mut e = e;
    // Scale by powers of two, exactly, in safe chunks.
    while e > 0 {
        let step = e.min(512);
        v *= (2.0f64).powi(step);
        e -= step;
        if v.is_infinite() {
            return v;
        }
    }
    while e < 0 {
        let step = (-e).min(512);
        v *= (2.0f64).powi(-step);
        e += step;
    }
    v
}

/// Exact dot product of two slices, correctly rounded to `f64`.
///
/// This is the drop-in replacement for the paper's GMP-based reference
/// checksum computation.
///
/// # Panics
///
/// Panics if the slices differ in length or contain non-finite values.
///
/// # Examples
///
/// ```
/// use aabft_numerics::superacc::exact_dot;
///
/// let a = [1e16, 1.0, -1e16];
/// let b = [1.0, 1.0, 1.0];
/// assert_eq!(exact_dot(&a, &b), 1.0);
/// ```
pub fn exact_dot(a: &[f64], b: &[f64]) -> f64 {
    accumulate_dot(a, b).round()
}

/// Exact dot product returned as a still-exact accumulator.
pub fn accumulate_dot(a: &[f64], b: &[f64]) -> Superaccumulator {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    let mut acc = Superaccumulator::new();
    for (&x, &y) in a.iter().zip(b) {
        acc.add_product(x, y);
    }
    acc
}

/// Exact sum of a slice, correctly rounded to `f64`.
pub fn exact_sum(xs: &[f64]) -> f64 {
    let mut acc = Superaccumulator::new();
    for &x in xs {
        acc.add(x);
    }
    acc.round()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::dot_expansion;

    #[test]
    fn zero() {
        let acc = Superaccumulator::new();
        assert!(acc.is_zero());
        assert_eq!(acc.round(), 0.0);
        assert_eq!(acc.signum(), 0);
    }

    #[test]
    fn single_values_round_trip() {
        let vals = [
            1.0,
            -1.0,
            0.1,
            -12345.6789,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::from_bits(1),       // smallest subnormal
            f64::from_bits(0xfffff), // subnormal
            1e308,
            -1e-308,
        ];
        for &v in &vals {
            let mut acc = Superaccumulator::new();
            acc.add(v);
            assert_eq!(acc.round(), v, "value {v:e}");
        }
    }

    #[test]
    fn cancellation_across_range() {
        let mut acc = Superaccumulator::new();
        acc.add(1e308);
        acc.add(1e-308);
        acc.add(-1e308);
        assert_eq!(acc.round(), 1e-308);
    }

    #[test]
    fn signum_negative() {
        let mut acc = Superaccumulator::new();
        acc.add(1.0);
        acc.add(-3.0);
        assert_eq!(acc.signum(), -1);
        assert_eq!(acc.round(), -2.0);
    }

    #[test]
    fn product_exact_without_fma_path() {
        let mut acc = Superaccumulator::new();
        acc.add_product(0.1, 0.1);
        acc.add(-(0.1 * 0.1));
        // Residual is the exact rounding error of fl(0.01), non-zero.
        assert_ne!(acc.signum(), 0);
        let err = acc.round();
        let (p, e) = crate::eft::two_prod(0.1, 0.1);
        assert_eq!(p, 0.1 * 0.1);
        assert_eq!(err, e);
    }

    #[test]
    fn subnormal_product_exact() {
        // two_prod underflows here; the integer path must stay exact.
        let a = 1e-200;
        let b = 1e-200;
        let mut acc = Superaccumulator::new();
        acc.add_product(a, b);
        // Exact value 1e-400 is below f64 range -> rounds to subnormal/zero
        // region; just verify round() produces the correctly rounded result,
        // which for 1e-400 (≈ 2^-1328) is 0.
        assert_eq!(acc.round(), 0.0);
        // But the accumulator itself is not zero.
        assert!(!acc.is_zero());
        // Adding the negation cancels exactly.
        acc.add_product(-a, b);
        assert!(acc.is_zero());
    }

    #[test]
    fn rounding_ties_to_even() {
        // 1 + 2^-53 is exactly halfway between 1.0 and 1+eps: ties to even 1.0.
        let mut acc = Superaccumulator::new();
        acc.add(1.0);
        acc.add((2.0f64).powi(-53));
        assert_eq!(acc.round(), 1.0);
        // 1 + eps + 2^-53 is halfway between 1+eps and 1+2eps: ties to 1+2eps.
        let mut acc = Superaccumulator::new();
        acc.add(1.0 + f64::EPSILON);
        acc.add((2.0f64).powi(-53));
        assert_eq!(acc.round(), 1.0 + 2.0 * f64::EPSILON);
        // Slightly above the tie rounds up.
        let mut acc = Superaccumulator::new();
        acc.add(1.0);
        acc.add((2.0f64).powi(-53));
        acc.add((2.0f64).powi(-80));
        assert_eq!(acc.round(), 1.0 + f64::EPSILON);
    }

    #[test]
    fn exact_sum_of_tenths() {
        let xs = vec![0.1; 10];
        let s = exact_sum(&xs);
        // The exact sum of ten binary 0.1s rounds to a value 1 ulp above 1.0
        // (the binary representation of 0.1 is slightly above the decimal).
        let expansion: crate::expansion::Expansion = xs.iter().copied().collect();
        assert_eq!(s, expansion.estimate());
    }

    #[test]
    fn dot_matches_expansion_oracle_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..50 {
            let n = rng.gen_range(1..60);
            let a: Vec<f64> = (0..n)
                .map(|_| (rng.gen::<f64>() - 0.5) * (10f64).powi(rng.gen_range(-30..30)))
                .collect();
            let b: Vec<f64> = (0..n)
                .map(|_| (rng.gen::<f64>() - 0.5) * (10f64).powi(rng.gen_range(-30..30)))
                .collect();
            let sup = exact_dot(&a, &b);
            let exp = dot_expansion(&a, &b).estimate();
            assert_eq!(sup, exp, "trial {trial}");
        }
    }

    #[test]
    fn add_acc_merges() {
        let mut a = Superaccumulator::new();
        a.add(1.5);
        let mut b = Superaccumulator::new();
        b.add(2.5);
        a.add_acc(&b);
        assert_eq!(a.round(), 4.0);
    }

    #[test]
    fn huge_accumulation_no_overflow() {
        let mut acc = Superaccumulator::new();
        for _ in 0..1000 {
            acc.add(f64::MAX);
        }
        for _ in 0..1000 {
            acc.add(-f64::MAX);
        }
        assert!(acc.is_zero());
    }

    #[test]
    fn saturates_to_infinity() {
        let mut acc = Superaccumulator::new();
        for _ in 0..4 {
            acc.add(f64::MAX);
        }
        assert_eq!(acc.round(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        Superaccumulator::new().add(f64::NAN);
    }
}
