//! Floating-point substrate for the A-ABFT (DSN'14) reproduction.
//!
//! This crate provides everything the higher layers need to *reason about*
//! IEEE-754 arithmetic rather than merely perform it:
//!
//! * [`bits`] — sign/exponent/mantissa decomposition, the exponent function
//!   `E = ceil(log2 |s*|)` of the paper's Eq. 13, and the [`bits::Real`]
//!   abstraction over `f32`/`f64`;
//! * [`eft`] — error-free transforms (`two_sum`, `two_prod`);
//! * [`expansion`] — Shewchuk floating-point expansions (exact adaptive
//!   arithmetic, used as a cross-validation oracle);
//! * [`superacc`] — a Kulisch superaccumulator delivering *exact*, correctly
//!   rounded dot products; the reproduction's replacement for the GMP
//!   multi-precision library the paper used;
//! * [`exact`] — rounding-error oracles built on the superaccumulator;
//! * [`model`] — the Barlow/Bareiss probabilistic rounding-error model
//!   (Section IV of the paper): per-operation mantissa-error moments and
//!   data-driven inner-product error moments;
//! * [`distribution`] — the reciprocal (Benford, base-2) mantissa
//!   distribution underpinning the model's assumptions.
//!
//! # Example: exact rounding error of a dot product
//!
//! ```
//! use aabft_numerics::exact::dot_rounding_error;
//! use aabft_numerics::model::RoundingModel;
//!
//! let a: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
//! let b: Vec<f64> = (0..100).map(|i| (i as f64 * 0.73).cos()).collect();
//!
//! let (computed, actual_err) = dot_rounding_error(&a, &b);
//! let predicted = RoundingModel::binary64().inner_product_moments(&a, &b);
//! assert!(actual_err.abs() <= predicted.confidence_radius(6.0));
//! # let _ = computed;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bits;
pub mod compensated;
pub mod distribution;
pub mod eft;
pub mod exact;
pub mod expansion;
pub mod model;
pub mod rounding;
pub mod superacc;

pub use bits::Real;
pub use model::{Moments, MulMode, RoundingMode, RoundingModel};
