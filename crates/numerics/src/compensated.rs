//! Compensated and pairwise summation.
//!
//! The paper's model analyses plain recursive summation (Eq. 16–28), whose
//! error grows like `n^{3/2}` in the bound. Classical alternatives trade a
//! few extra FLOPs for dramatically smaller error: Kahan/Neumaier
//! compensation (O(1) ulps independent of `n`) and pairwise summation
//! (`O(log n)` growth). They matter here for two reasons: they provide
//! near-exact reference checksums at a fraction of the superaccumulator's
//! cost, and they quantify how much of the checksum-comparison noise is an
//! artifact of the summation *order* the hardware uses.

use crate::eft::two_sum;

/// Kahan compensated summation: a running compensation term absorbs the
/// low-order bits each addition loses.
///
/// # Examples
///
/// ```
/// use aabft_numerics::compensated::kahan_sum;
/// use aabft_numerics::superacc::exact_sum;
///
/// let xs = vec![0.1; 10_000];
/// let exact = exact_sum(&xs);
/// let plain: f64 = xs.iter().sum();
/// let kahan = kahan_sum(&xs);
/// assert!((kahan - exact).abs() < (plain - exact).abs());
/// assert!((kahan - exact).abs() <= f64::EPSILON * exact);
/// ```
pub fn kahan_sum(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut c = 0.0;
    for &x in xs {
        let y = x - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Neumaier's improvement: also compensates when the addend exceeds the
/// running sum (where Kahan's correction fails).
pub fn neumaier_sum(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut c = 0.0;
    for &x in xs {
        let (t, e) = two_sum(sum, x);
        c += e;
        sum = t;
    }
    sum + c
}

/// Pairwise (cascade) summation: recursive halving, `O(log n)` error growth.
pub fn pairwise_sum(xs: &[f64]) -> f64 {
    const CUTOFF: usize = 32;
    if xs.len() <= CUTOFF {
        return xs.iter().sum();
    }
    let mid = xs.len() / 2;
    pairwise_sum(&xs[..mid]) + pairwise_sum(&xs[mid..])
}

/// Dot product with Neumaier-compensated accumulation of exact product
/// pairs (`two_prod` + `two_sum`): a "dot2"-style algorithm with roughly
/// twice-working-precision accuracy.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn compensated_dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    let mut sum = 0.0;
    let mut c = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let (p, pe) = crate::eft::two_prod(x, y);
        let (t, se) = two_sum(sum, p);
        c += pe + se;
        sum = t;
    }
    sum + c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::sum_rounding_error;
    use crate::superacc::{exact_dot, exact_sum};
    use rand::{Rng, SeedableRng};

    fn random_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0) * (10f64).powi(rng.gen_range(-8..8))).collect()
    }

    #[test]
    fn all_summers_agree_on_exact_cases() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let expect = 5050.0;
        assert_eq!(kahan_sum(&xs), expect);
        assert_eq!(neumaier_sum(&xs), expect);
        assert_eq!(pairwise_sum(&xs), expect);
    }

    #[test]
    fn neumaier_handles_large_addend_after_small_sum() {
        // The classic case where Kahan fails: adding a value much larger
        // than the running sum.
        let xs = vec![1.0, 1e100, 1.0, -1e100];
        assert_eq!(neumaier_sum(&xs), 2.0);
        // (Kahan returns 0 here — documented weakness.)
        assert_eq!(kahan_sum(&xs), 0.0);
    }

    #[test]
    fn error_hierarchy_on_random_data() {
        // |plain error| >= |pairwise error| >= |neumaier error| (usually
        // strictly); all measured against the superaccumulator.
        let mut worse_than_pairwise = 0;
        let mut neumaier_exactish = 0;
        let trials = 30;
        for t in 0..trials {
            let xs = random_vec(4096, t);
            let exact = exact_sum(&xs);
            let err = |v: f64| (v - exact).abs();
            let plain: f64 = xs.iter().sum();
            let pw = pairwise_sum(&xs);
            let nm = neumaier_sum(&xs);
            if err(plain) >= err(pw) {
                worse_than_pairwise += 1;
            }
            if err(nm) <= f64::EPSILON * exact.abs().max(1e-300) * 2.0 {
                neumaier_exactish += 1;
            }
        }
        assert!(worse_than_pairwise >= trials * 8 / 10, "{worse_than_pairwise}/{trials}");
        assert!(neumaier_exactish >= trials * 9 / 10, "{neumaier_exactish}/{trials}");
    }

    #[test]
    fn compensated_dot_is_near_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let n = 2048;
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let exact = exact_dot(&a, &b);
            let comp = compensated_dot(&a, &b);
            let plain: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!(
                (comp - exact).abs() <= (plain - exact).abs(),
                "compensated must beat plain"
            );
            assert!(
                (comp - exact).abs() <= 4.0 * f64::EPSILON * exact.abs().max(1e-300),
                "comp err {:e}",
                (comp - exact).abs()
            );
        }
    }

    #[test]
    fn sum_rounding_error_of_compensated_is_smaller() {
        let xs = random_vec(8192, 99);
        let plain: f64 = xs.iter().sum();
        let nm = neumaier_sum(&xs);
        let e_plain = sum_rounding_error(plain, &xs).abs();
        let e_nm = sum_rounding_error(nm, &xs).abs();
        assert!(e_nm <= e_plain);
    }
}
