//! Bit-level access to IEEE-754 floating-point values.
//!
//! The probabilistic rounding-error model of the paper works on the
//! sign/exponent/mantissa decomposition of binary floating-point numbers
//! (Section IV, Eq. 9–13), and the fault-injection campaign (Section VI-C)
//! flips individual bits of those fields. This module provides the
//! decomposition, the exponent function `E = ceil(log2 |s*|)` of Eq. 13, and
//! the [`Real`] abstraction over `f32`/`f64` used throughout the workspace.

use std::fmt::{Debug, Display, LowerExp};

/// Decomposed view of an IEEE-754 binary64 value.
///
/// # Examples
///
/// ```
/// use aabft_numerics::bits::FloatParts;
///
/// let parts = FloatParts::of(-1.5f64);
/// assert!(parts.sign);
/// assert_eq!(parts.unbiased_exponent(), 0); // 1.5 = 1.1b * 2^0
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatParts {
    /// Sign bit; `true` for negative values.
    pub sign: bool,
    /// Biased exponent field (11 bits for binary64).
    pub biased_exponent: u32,
    /// Mantissa (fraction) field without the implicit leading bit (52 bits).
    pub mantissa: u64,
}

impl FloatParts {
    /// Decomposes `x` into its sign, exponent and mantissa fields.
    pub fn of(x: f64) -> Self {
        let bits = x.to_bits();
        FloatParts {
            sign: bits >> 63 == 1,
            biased_exponent: ((bits >> 52) & 0x7ff) as u32,
            mantissa: bits & ((1u64 << 52) - 1),
        }
    }

    /// Reassembles the fields into an `f64`.
    pub fn to_f64(self) -> f64 {
        let bits = ((self.sign as u64) << 63)
            | ((self.biased_exponent as u64 & 0x7ff) << 52)
            | (self.mantissa & ((1u64 << 52) - 1));
        f64::from_bits(bits)
    }

    /// Exponent with the IEEE bias removed (valid for normal numbers).
    pub fn unbiased_exponent(self) -> i32 {
        self.biased_exponent as i32 - 1023
    }

    /// `true` if the value is subnormal (or zero).
    pub fn is_subnormal_or_zero(self) -> bool {
        self.biased_exponent == 0
    }
}

/// Exponent `E = ceil(log2 |x|)` of Eq. 13, computed exactly from the bit
/// pattern (no transcendental functions, no rounding surprises).
///
/// For a normal `|x| = m · 2^e` with `m ∈ [1, 2)`, the result is `e` when
/// `m == 1` (exact power of two) and `e + 1` otherwise. Subnormals are
/// handled through their leading-zero count.
///
/// # Panics
///
/// Panics if `x` is zero, NaN or infinite — the model is undefined there.
///
/// # Examples
///
/// ```
/// use aabft_numerics::bits::ceil_log2_abs;
///
/// assert_eq!(ceil_log2_abs(8.0), 3);
/// assert_eq!(ceil_log2_abs(9.0), 4);
/// assert_eq!(ceil_log2_abs(-0.5), -1);
/// assert_eq!(ceil_log2_abs(0.75), 0);
/// ```
pub fn ceil_log2_abs(x: f64) -> i32 {
    assert!(
        x != 0.0 && x.is_finite(),
        "ceil_log2_abs requires a finite non-zero value, got {x}"
    );
    let parts = FloatParts::of(x);
    if parts.is_subnormal_or_zero() {
        // Subnormal: |x| = mantissa * 2^-1074 with mantissa in [1, 2^52).
        let m = parts.mantissa;
        let floor = 63 - m.leading_zeros() as i32; // floor(log2 m)
        let exact_pow2 = m & (m - 1) == 0;
        floor - 1074 + if exact_pow2 { 0 } else { 1 }
    } else {
        let e = parts.unbiased_exponent();
        if parts.mantissa == 0 {
            e
        } else {
            e + 1
        }
    }
}

/// Unit in the last place of `x`: the gap between `|x|` and the next larger
/// representable magnitude.
///
/// # Examples
///
/// ```
/// use aabft_numerics::bits::ulp;
///
/// assert_eq!(ulp(1.0), f64::EPSILON);
/// assert_eq!(ulp(2.0), 2.0 * f64::EPSILON);
/// ```
pub fn ulp(x: f64) -> f64 {
    let ax = x.abs();
    if !ax.is_finite() {
        return f64::NAN;
    }
    let next = f64::from_bits(ax.to_bits() + 1);
    next - ax
}

/// Abstraction over the IEEE-754 binary formats used by the library.
///
/// The paper evaluates in double precision, but the model is parameterised
/// over the mantissa length `t` (Eq. 21, 34–35 use `2^-2t`), so the library
/// is generic over `f32`/`f64`. This trait is sealed: its surface is exactly
/// what the workspace needs, and downstream implementations would not be
/// meaningful.
pub trait Real:
    Copy
    + PartialOrd
    + Default
    + Debug
    + Display
    + LowerExp
    + Send
    + Sync
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + 'static
    + sealed::Sealed
{
    /// Total mantissa digits `t` including the implicit leading bit
    /// (53 for binary64, 24 for binary32). This is the `t` of the paper's
    /// `ε_M = 2^-t`.
    const MANTISSA_DIGITS: u32;
    /// Width of the raw bit representation.
    const BITS: u32;
    /// Number of explicit mantissa (fraction) bits (52 / 23).
    const MANTISSA_BITS: u32;
    /// Number of exponent bits (11 / 8).
    const EXPONENT_BITS: u32;
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Raw bits, widened to `u64` (upper bits zero for `f32`).
    fn to_bits_u64(self) -> u64;
    /// Inverse of [`Real::to_bits_u64`]; upper bits are ignored for `f32`.
    fn from_bits_u64(bits: u64) -> Self;
    /// Lossless widening to `f64` (exact for both supported formats).
    fn to_f64(self) -> f64;
    /// Rounds an `f64` to this format (identity for `f64`).
    fn from_f64(x: f64) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused multiply-add `self * a + b` with a single rounding.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` for NaN or ±∞.
    fn is_finite(self) -> bool;

    /// The paper's machine unit rounding error `ε_M = 2^-t` (Section III).
    fn epsilon_m() -> f64 {
        (2.0f64).powi(-(Self::MANTISSA_DIGITS as i32))
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

impl Real for f64 {
    const MANTISSA_DIGITS: u32 = 53;
    const BITS: u32 = 64;
    const MANTISSA_BITS: u32 = 52;
    const EXPONENT_BITS: u32 = 11;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    fn from_bits_u64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(x: f64) -> Self {
        x
    }
    fn abs(self) -> Self {
        f64::abs(self)
    }
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl Real for f32 {
    const MANTISSA_DIGITS: u32 = 24;
    const BITS: u32 = 32;
    const MANTISSA_BITS: u32 = 23;
    const EXPONENT_BITS: u32 = 8;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    fn to_bits_u64(self) -> u64 {
        self.to_bits() as u64
    }
    fn from_bits_u64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    fn abs(self) -> Self {
        f32::abs(self)
    }
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_round_trip() {
        for &x in &[0.0, -0.0, 1.0, -1.5, 1e300, -1e-300, f64::MIN_POSITIVE / 8.0] {
            assert_eq!(FloatParts::of(x).to_f64().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn parts_fields() {
        let p = FloatParts::of(1.0);
        assert!(!p.sign);
        assert_eq!(p.biased_exponent, 1023);
        assert_eq!(p.mantissa, 0);
        assert_eq!(p.unbiased_exponent(), 0);
    }

    #[test]
    fn subnormal_detection() {
        assert!(FloatParts::of(f64::MIN_POSITIVE / 2.0).is_subnormal_or_zero());
        assert!(FloatParts::of(0.0).is_subnormal_or_zero());
        assert!(!FloatParts::of(1.0).is_subnormal_or_zero());
    }

    #[test]
    fn ceil_log2_powers_of_two() {
        for e in -100..100 {
            let x = (2.0f64).powi(e);
            assert_eq!(ceil_log2_abs(x), e, "x = 2^{e}");
            assert_eq!(ceil_log2_abs(-x), e, "x = -2^{e}");
        }
    }

    #[test]
    fn ceil_log2_general() {
        assert_eq!(ceil_log2_abs(3.0), 2);
        assert_eq!(ceil_log2_abs(5.0), 3);
        assert_eq!(ceil_log2_abs(0.3), -1);
        assert_eq!(ceil_log2_abs(1.0000000001), 1);
    }

    #[test]
    fn ceil_log2_matches_log2_for_non_powers() {
        // For values that are not powers of two the bit-level computation
        // must agree with the transcendental one.
        let mut x = 1.1f64;
        for _ in 0..200 {
            let expected = x.abs().log2().ceil() as i32;
            assert_eq!(ceil_log2_abs(x), expected, "x = {x}");
            x *= -1.7;
        }
    }

    #[test]
    fn ceil_log2_subnormals() {
        let min_sub = f64::from_bits(1); // 2^-1074
        assert_eq!(ceil_log2_abs(min_sub), -1074);
        assert_eq!(ceil_log2_abs(min_sub * 2.0), -1073);
        assert_eq!(ceil_log2_abs(min_sub * 3.0), -1072);
    }

    #[test]
    #[should_panic(expected = "finite non-zero")]
    fn ceil_log2_zero_panics() {
        ceil_log2_abs(0.0);
    }

    #[test]
    fn ulp_of_one_is_epsilon() {
        assert_eq!(ulp(1.0), f64::EPSILON);
        assert_eq!(ulp(-1.0), f64::EPSILON);
        assert_eq!(ulp(4.0), 4.0 * f64::EPSILON);
    }

    #[test]
    fn real_trait_constants() {
        assert_eq!(<f64 as Real>::MANTISSA_DIGITS, 53);
        assert_eq!(<f32 as Real>::MANTISSA_DIGITS, 24);
        assert_eq!(f64::epsilon_m(), (2.0f64).powi(-53));
        assert_eq!(f32::epsilon_m(), (2.0f64).powi(-24));
    }

    #[test]
    fn real_bits_round_trip() {
        let x = -123.456f64;
        assert_eq!(f64::from_bits_u64(x.to_bits_u64()), x);
        let y = -123.456f32;
        assert_eq!(f32::from_bits_u64(y.to_bits_u64()), y);
    }
}
