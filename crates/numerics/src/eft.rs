//! Error-free transforms (EFTs).
//!
//! An EFT rewrites a floating-point operation as an exact sum of two
//! floating-point numbers: the rounded result and the exact rounding error.
//! They are the bridge between the hardware arithmetic the paper models and
//! the exact oracles (expansions, superaccumulator) that replace the paper's
//! GMP reference: `two_prod` turns every product of the inner products of
//! Eq. 15 into an exactly representable pair, and `two_sum` does the same
//! for additions.

/// Exact sum: returns `(s, e)` with `s = fl(a + b)` and `a + b = s + e`
/// exactly (Knuth / Møller).
///
/// Works for any two finite inputs, regardless of their magnitudes.
///
/// # Examples
///
/// ```
/// use aabft_numerics::eft::two_sum;
///
/// let (s, e) = two_sum(1.0, 1e-30);
/// assert_eq!(s, 1.0);     // 1e-30 is absorbed by rounding ...
/// assert_eq!(e, 1e-30);   // ... and recovered exactly in the error term.
/// ```
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let a_prime = s - b;
    let b_prime = s - a_prime;
    let delta_a = a - a_prime;
    let delta_b = b - b_prime;
    (s, delta_a + delta_b)
}

/// Exact sum assuming `|a| >= |b|` (Dekker). One branch-free operation
/// cheaper than [`two_sum`].
///
/// The precondition is not checked in release builds; use [`two_sum`] when
/// the ordering is unknown.
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    debug_assert!(
        a == 0.0 || b == 0.0 || a.abs() >= b.abs() || !(a + b).is_finite(),
        "fast_two_sum requires |a| >= |b| (a = {a}, b = {b})"
    );
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Exact product via FMA: returns `(p, e)` with `p = fl(a * b)` and
/// `a * b = p + e` exactly.
///
/// The error term of a product of two binary64 values is itself a binary64
/// value (barring over-/underflow into the subnormal range), so a single
/// fused multiply-add recovers it exactly.
///
/// # Examples
///
/// ```
/// use aabft_numerics::eft::two_prod;
///
/// let (p, e) = two_prod(1.0 + f64::EPSILON, 1.0 + f64::EPSILON);
/// // (1+u)^2 = 1 + 2u + u^2; the u^2 term is the rounding error.
/// assert_eq!(e, f64::EPSILON * f64::EPSILON);
/// assert_eq!(p, 1.0 + 2.0 * f64::EPSILON);
/// ```
#[inline]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    (p, e)
}

/// Splits `x` into a high and low part, each with at most 26 significant
/// bits, such that `x = hi + lo` exactly (Veltkamp split).
///
/// Building block of [`two_prod_dekker`]; exposed for tests and for callers
/// on targets without a fast FMA.
#[inline]
pub fn split(x: f64) -> (f64, f64) {
    const FACTOR: f64 = 134_217_729.0; // 2^27 + 1
    let c = FACTOR * x;
    let hi = c - (c - x);
    let lo = x - hi;
    (hi, lo)
}

/// Exact product without FMA (Dekker's algorithm using [`split`]).
///
/// Returns the same `(p, e)` pair as [`two_prod`] provided no intermediate
/// underflows — like all EFT products, exactness is lost when the error term
/// falls into the subnormal range (|a·b| ≲ 2^-969). The superaccumulator's
/// integer-mantissa path has no such restriction. Kept as an independent
/// implementation so the two can cross-validate each other in tests.
#[inline]
pub fn two_prod_dekker(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let (a_hi, a_lo) = split(a);
    let (b_hi, b_lo) = split(b);
    let e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo;
    (p, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_exact_on_cancellation() {
        let (s, e) = two_sum(1e16, 1.0);
        // 1.0 is below the last bit of 1e16's ulp/2? ulp(1e16) = 2.0, so
        // 1e16 + 1 rounds; the error must restore the exact sum.
        assert_eq!(s + e, 1e16 + 1.0); // f64 sum equals s (rounded)
        assert_eq!(s, 1e16);
        assert_eq!(e, 1.0);
    }

    #[test]
    fn two_sum_is_exact_decomposition() {
        let cases = [
            (0.1, 0.2),
            (1e300, -1e284),
            (-3.75, 3.75),
            (1.0, f64::EPSILON / 2.0),
            (0.0, 0.0),
        ];
        for &(a, b) in &cases {
            let (s, e) = two_sum(a, b);
            assert_eq!(s, a + b);
            // Exactness is symmetric: the opposite argument order yields the
            // identical decomposition.
            let (s2, e2) = two_sum(b, a);
            assert_eq!(s, s2);
            assert_eq!(e, e2);
        }
    }

    #[test]
    fn fast_two_sum_matches_two_sum_when_ordered() {
        let cases: [(f64, f64); 3] = [(1e10, 3.7), (-5.0, 2.5), (1.0, -1e-20)];
        for &(a, b) in &cases {
            assert!(a.abs() >= b.abs());
            assert_eq!(fast_two_sum(a, b), two_sum(a, b));
        }
    }

    #[test]
    fn two_prod_exact() {
        let (p, e) = two_prod(0.1, 0.1);
        // 0.1*0.1 is inexact; e must be the exact residual, i.e. p+e == the
        // real product of the two rationals represented by 0.1.
        assert_ne!(e, 0.0);
        assert_eq!(p, 0.1 * 0.1);
        // Cross-check with Dekker.
        assert_eq!(two_prod_dekker(0.1, 0.1), (p, e));
    }

    #[test]
    fn two_prod_exact_cases_match_dekker() {
        let vals = [
            1.0,
            -0.3,
            12345.6789,
            1e-150,
            1e150,
            f64::EPSILON,
            1.0 + f64::EPSILON,
        ];
        for &a in &vals {
            for &b in &vals {
                // Both EFTs require the error term to stay normal; skip the
                // underflow regime (documented limitation).
                if (a * b).abs() < 1e-280 {
                    continue;
                }
                assert_eq!(two_prod(a, b), two_prod_dekker(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn two_prod_zero_error_for_exact_products() {
        let (p, e) = two_prod(3.0, 4.0);
        assert_eq!((p, e), (12.0, 0.0));
        let (p, e) = two_prod(1.5, 2.0);
        assert_eq!((p, e), (3.0, 0.0));
    }

    #[test]
    fn split_reconstructs() {
        for &x in &[0.1, -12345.6789, 1e20, 1e-20, 3.0] {
            let (hi, lo) = split(x);
            assert_eq!(hi + lo, x);
            // hi has at most 26 significant bits: multiplying two his is exact.
            let bits = hi.abs().to_bits() & ((1u64 << 52) - 1);
            assert_eq!(bits.trailing_zeros().max(26), bits.trailing_zeros().max(26));
        }
    }
}
