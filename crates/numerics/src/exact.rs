//! Exact-arithmetic oracles.
//!
//! Convenience layer over [`crate::superacc`] exposing the quantities the
//! paper obtains from GMP: exact dot products and the *exact rounding error*
//! of a floating-point computation relative to its infinitely precise value
//! (used as ground truth in Tables II–IV and for fault classification).

use crate::superacc::{accumulate_dot, Superaccumulator};

/// Exact rounding error of a sequentially computed floating-point dot
/// product: `fl(Σ a_k·b_k) − Σ a_k·b_k`, with the exact part correctly
/// rounded only at the very end of the subtraction.
///
/// Returns `(computed, error)` where `computed` is the plain left-to-right
/// floating-point result (the order the simulated GPU thread uses within a
/// dot product) and `error = computed − exact`, itself correctly rounded.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Examples
///
/// ```
/// use aabft_numerics::exact::dot_rounding_error;
///
/// let a = [0.1, 0.2, 0.3];
/// let b = [0.4, 0.5, 0.6];
/// let (computed, err) = dot_rounding_error(&a, &b);
/// assert!((computed - 0.32).abs() < 1e-15);
/// assert!(err.abs() < 1e-15);
/// ```
pub fn dot_rounding_error(a: &[f64], b: &[f64]) -> (f64, f64) {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    let computed: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let mut acc = accumulate_dot(a, b);
    // error = computed - exact: add computed, negate exact already inside.
    acc.negate();
    acc.add(computed);
    (computed, acc.round())
}

/// Exact rounding error of an already-computed value against the exact dot
/// product of `a`/`b` (use when the computed value came from elsewhere, e.g.
/// a blocked GPU-simulator kernel with a different summation order).
pub fn rounding_error_of(computed: f64, a: &[f64], b: &[f64]) -> f64 {
    let mut acc = accumulate_dot(a, b);
    acc.negate();
    acc.add(computed);
    acc.round()
}

/// Exact rounding error of a computed sum against the exact sum of `xs`.
pub fn sum_rounding_error(computed: f64, xs: &[f64]) -> f64 {
    let mut acc = Superaccumulator::new();
    for &x in xs {
        acc.add(x);
    }
    acc.negate();
    acc.add(computed);
    acc.round()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn error_zero_for_exact_cases() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        let (c, e) = dot_rounding_error(&a, &b);
        assert_eq!(c, 32.0);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn error_detects_inexactness() {
        let a = [0.1; 32];
        let b = [0.1; 32];
        let (_, e) = dot_rounding_error(&a, &b);
        assert_ne!(e, 0.0);
        assert!(e.abs() < 1e-15);
    }

    #[test]
    fn error_is_small_relative_to_model() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let n = 512;
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let (computed, e) = dot_rounding_error(&a, &b);
            // |computed - exact| <= n * eps * sum|a_k b_k| (classic bound).
            let bound: f64 =
                n as f64 * f64::EPSILON * a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum::<f64>();
            assert!(e.abs() <= bound, "err {e} bound {bound} computed {computed}");
        }
    }

    #[test]
    fn rounding_error_of_matches_dot_rounding_error() {
        let a = [0.1, 0.7, -0.3, 0.9];
        let b = [0.2, -0.8, 0.4, 0.5];
        let (c, e) = dot_rounding_error(&a, &b);
        assert_eq!(rounding_error_of(c, &a, &b), e);
    }

    #[test]
    fn sum_error() {
        let xs = vec![0.1; 10];
        let computed: f64 = xs.iter().sum();
        let e = sum_rounding_error(computed, &xs);
        // fl(sum of ten 0.1) differs from the exact sum by a tiny amount.
        assert!(e.abs() > 0.0 && e.abs() < 1e-15);
    }
}
