//! Probabilistic rounding-error model (Barlow/Bareiss, paper Section IV).
//!
//! The model describes the rounding error `ε` of a floating-point operation
//! via the *mantissa error* `β` with `ε = β · 2^E`, `E = ceil(log2 |s*|)`
//! (Eq. 10–13). Under the reciprocal-distribution assumption for mantissas,
//! `β` has known mean and variance per operation class:
//!
//! * addition/subtraction (symmetric rounding): `EV(β) = 0`,
//!   `Var(β) ≤ 1/8 · 2^-2t` (Eq. 20–21);
//! * multiplication/division (symmetric rounding): `EV(β) = 1/3 · 2^-2t`,
//!   `Var(β) = 1/12 · 2^-2t` (Eq. 34–35);
//! * fused multiply-add: the multiplication is exact, only the final
//!   addition rounds (Section IV-D), so the multiplication term vanishes.
//!
//! This module provides those constants, the `2^E` scaling of Eq. 11–12,
//! and a data-driven moment accumulator that walks an actual inner product
//! and returns the model's mean/variance for *that* element — the baseline
//! used for runtime error classification (Section VI-C).

use crate::bits::ceil_log2_abs;

/// How results are rounded by the simulated arithmetic.
///
/// The paper's model targets symmetric rounding (IEEE round-to-nearest) and
/// notes truncation works "with only minor changes"; for truncation we use
/// the uniform one-sided error model (`EV = 1/2·2^-t`, `Var = 1/12·2^-2t` at
/// mantissa scale), documented in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundingMode {
    /// IEEE-754 round-to-nearest-even (the paper's "symmetric rounding").
    #[default]
    Nearest,
    /// Truncation toward zero.
    Truncation,
}

/// Whether multiply and add round separately or as a fused multiply-add.
///
/// GPUs implementing IEEE-754-2008 provide FMA; under FMA the product incurs
/// no rounding of its own (Section IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MulMode {
    /// Separate multiply and add, each rounding once.
    #[default]
    Separate,
    /// Fused multiply-add: only the addition rounds.
    Fused,
}

/// Mean and variance of a random error quantity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Moments {
    /// Expectation value.
    pub mean: f64,
    /// Variance.
    pub variance: f64,
}

impl Moments {
    /// The zero distribution (an exact operation).
    pub const ZERO: Moments = Moments { mean: 0.0, variance: 0.0 };

    /// Standard deviation `σ = sqrt(Var)`.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Sum of independent error contributions (means and variances add).
    pub fn combine(self, other: Moments) -> Moments {
        Moments { mean: self.mean + other.mean, variance: self.variance + other.variance }
    }

    /// Confidence half-width `|mean| + ω·σ` (Eq. 7's interval radius around
    /// zero, conservatively shifted by the mean's magnitude).
    pub fn confidence_radius(&self, omega: f64) -> f64 {
        self.mean.abs() + omega * self.std_dev()
    }
}

/// The rounding-error model parameterised by mantissa length `t`, rounding
/// mode and multiply mode.
///
/// # Examples
///
/// ```
/// use aabft_numerics::model::RoundingModel;
///
/// let m = RoundingModel::binary64();
/// assert_eq!(m.t, 53);
/// // Var(beta) for addition is at most 1/8 * 2^-2t:
/// let add = m.beta_add();
/// assert!(add.variance <= 0.125 * (2.0f64).powi(-106) + f64::MIN_POSITIVE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoundingModel {
    /// Mantissa digits `t` including the implicit bit (53 for binary64).
    pub t: u32,
    /// Rounding behaviour of the simulated hardware.
    pub rounding: RoundingMode,
    /// Separate vs fused multiply-add.
    pub mul_mode: MulMode,
}

impl Default for RoundingModel {
    fn default() -> Self {
        Self::binary64()
    }
}

impl RoundingModel {
    /// Model for IEEE binary64 with round-to-nearest and separate mul/add —
    /// the configuration of the paper's experiments.
    pub fn binary64() -> Self {
        RoundingModel { t: 53, rounding: RoundingMode::Nearest, mul_mode: MulMode::Separate }
    }

    /// Model for IEEE binary32.
    pub fn binary32() -> Self {
        RoundingModel { t: 24, rounding: RoundingMode::Nearest, mul_mode: MulMode::Separate }
    }

    /// Returns a copy using fused multiply-add semantics.
    pub fn with_fma(mut self) -> Self {
        self.mul_mode = MulMode::Fused;
        self
    }

    /// Returns a copy using the given rounding mode.
    pub fn with_rounding(mut self, rounding: RoundingMode) -> Self {
        self.rounding = rounding;
        self
    }

    /// `2^-2t`, the squared machine unit.
    fn two_pow_m2t(&self) -> f64 {
        (2.0f64).powi(-2 * self.t as i32)
    }

    /// Mantissa-error moments for addition/subtraction (Eq. 20–21).
    pub fn beta_add(&self) -> Moments {
        match self.rounding {
            RoundingMode::Nearest => {
                Moments { mean: 0.0, variance: 0.125 * self.two_pow_m2t() }
            }
            RoundingMode::Truncation => Moments {
                mean: 0.5 * (2.0f64).powi(-(self.t as i32)),
                variance: self.two_pow_m2t() / 12.0,
            },
        }
    }

    /// Mantissa-error moments for multiplication/division (Eq. 34–35), or
    /// [`Moments::ZERO`] under fused multiply-add (Section IV-D).
    pub fn beta_mul(&self) -> Moments {
        if self.mul_mode == MulMode::Fused {
            return Moments::ZERO;
        }
        match self.rounding {
            RoundingMode::Nearest => Moments {
                mean: self.two_pow_m2t() / 3.0,
                variance: self.two_pow_m2t() / 12.0,
            },
            RoundingMode::Truncation => Moments {
                mean: 0.5 * (2.0f64).powi(-(self.t as i32)),
                variance: self.two_pow_m2t() / 12.0,
            },
        }
    }

    /// Scales mantissa-error moments to rounding-error moments for a result
    /// `s*` (Eq. 11–13): `EV(ε) = sgn(s*)·2^E·EV(β)`, `Var(ε) = 2^2E·Var(β)`
    /// with `E = ceil(log2 |s*|)`.
    ///
    /// Returns [`Moments::ZERO`] for `s* == 0` (an exact zero result carries
    /// no rounding error under this model).
    pub fn epsilon_for_result(&self, s_star: f64, beta: Moments) -> Moments {
        if s_star == 0.0 {
            return Moments::ZERO;
        }
        let e = ceil_log2_abs(s_star);
        let scale = (2.0f64).powi(e);
        Moments {
            mean: s_star.signum() * scale * beta.mean,
            variance: scale * scale * beta.variance,
        }
    }

    /// Walks the floating-point inner product `Σ a_k·b_k` exactly as the
    /// hardware would execute it (sequential accumulation) and returns the
    /// model's moments for the total rounding error `Δs_n` (Eq. 30–33),
    /// using the *actual* intermediate exponents rather than the closed-form
    /// upper bound — the paper's baseline for error classification
    /// (Section VI-C) and the "error function by-product" it mentions.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn inner_product_moments(&self, a: &[f64], b: &[f64]) -> Moments {
        assert_eq!(a.len(), b.len(), "inner product requires equal lengths");
        let beta_add = self.beta_add();
        let beta_mul = self.beta_mul();
        let mut total = Moments::ZERO;
        let mut s = 0.0f64;
        for (k, (&x, &y)) in a.iter().zip(b).enumerate() {
            let p = match self.mul_mode {
                MulMode::Separate => x * y,
                MulMode::Fused => x * y, // value identical; error model differs
            };
            if p != 0.0 {
                total = total.combine(self.epsilon_for_result(p, beta_mul));
            }
            s += p;
            // The first addition (k == 0) into a zero accumulator is exact.
            if k > 0 && s != 0.0 {
                total = total.combine(self.epsilon_for_result(s, beta_add));
            }
        }
        total
    }

    /// Model moments for a plain summation `Σ x_k` using the actual
    /// intermediate exponents (Eq. 18–26 with `E_k` from the data).
    pub fn sum_moments(&self, xs: &[f64]) -> Moments {
        let beta_add = self.beta_add();
        let mut total = Moments::ZERO;
        let mut s = 0.0f64;
        for (k, &x) in xs.iter().enumerate() {
            s += x;
            if k > 0 && s != 0.0 {
                total = total.combine(self.epsilon_for_result(s, beta_add));
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        let m = RoundingModel::binary64();
        let u2 = (2.0f64).powi(-106);
        assert_eq!(m.beta_add().mean, 0.0);
        assert!((m.beta_add().variance - u2 / 8.0).abs() < 1e-40);
        assert!((m.beta_mul().mean - u2 / 3.0).abs() < 1e-40);
        assert!((m.beta_mul().variance - u2 / 12.0).abs() < 1e-40);
    }

    #[test]
    fn fma_drops_multiplication_term() {
        let m = RoundingModel::binary64().with_fma();
        assert_eq!(m.beta_mul(), Moments::ZERO);
        // And the inner-product moments shrink accordingly.
        let a = vec![0.3; 100];
        let b = vec![0.7; 100];
        let sep = RoundingModel::binary64().inner_product_moments(&a, &b);
        let fma = m.inner_product_moments(&a, &b);
        assert!(fma.variance < sep.variance);
    }

    #[test]
    fn epsilon_scaling() {
        let m = RoundingModel::binary64();
        let beta = Moments { mean: 1.0, variance: 1.0 };
        // s* = 8 -> E = 3 -> mean scaled by 8, variance by 64.
        let eps = m.epsilon_for_result(8.0, beta);
        assert_eq!(eps.mean, 8.0);
        assert_eq!(eps.variance, 64.0);
        // Negative result flips the mean's sign.
        let eps = m.epsilon_for_result(-8.0, beta);
        assert_eq!(eps.mean, -8.0);
        assert_eq!(eps.variance, 64.0);
        // Zero result: no error.
        assert_eq!(m.epsilon_for_result(0.0, beta), Moments::ZERO);
    }

    #[test]
    fn moments_combine_additively() {
        let a = Moments { mean: 1.0, variance: 2.0 };
        let b = Moments { mean: -0.5, variance: 3.0 };
        let c = a.combine(b);
        assert_eq!(c.mean, 0.5);
        assert_eq!(c.variance, 5.0);
    }

    #[test]
    fn confidence_radius_scales_with_omega() {
        let m = Moments { mean: 0.0, variance: 4.0 };
        assert_eq!(m.confidence_radius(1.0), 2.0);
        assert_eq!(m.confidence_radius(3.0), 6.0);
    }

    #[test]
    fn inner_product_variance_grows_with_n() {
        let m = RoundingModel::binary64();
        let mk = |n: usize| {
            let a = vec![0.3; n];
            let b = vec![0.7; n];
            m.inner_product_moments(&a, &b).variance
        };
        assert!(mk(100) < mk(1000));
        assert!(mk(1000) < mk(10000));
    }

    #[test]
    fn model_covers_actual_error_most_of_the_time() {
        // 3 sigma of the model should upper-bound the actual rounding error
        // for the vast majority of random inner products.
        use crate::superacc::exact_dot;
        use rand::{Rng, SeedableRng};
        let m = RoundingModel::binary64();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut covered = 0;
        let trials = 200;
        for _ in 0..trials {
            let n = 256;
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let computed: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let exact = exact_dot(&a, &b);
            let err = (computed - exact).abs();
            let mom = m.inner_product_moments(&a, &b);
            if err <= mom.confidence_radius(3.0) {
                covered += 1;
            }
        }
        assert!(
            covered as f64 >= 0.95 * trials as f64,
            "3-sigma coverage too low: {covered}/{trials}"
        );
    }

    #[test]
    fn sum_moments_zero_for_single_element() {
        let m = RoundingModel::binary64();
        assert_eq!(m.sum_moments(&[5.0]), Moments::ZERO);
        assert_eq!(m.sum_moments(&[]), Moments::ZERO);
    }

    #[test]
    fn truncation_has_nonzero_add_mean() {
        let m = RoundingModel::binary64().with_rounding(RoundingMode::Truncation);
        assert!(m.beta_add().mean > 0.0);
    }

    #[test]
    fn truncation_model_covers_truncated_dot_errors() {
        // Execute dot products on simulated truncating hardware and verify
        // the truncation model's data-driven moments cover the actual error
        // (the drift term dominates and must be accounted for).
        use crate::rounding::{add_with_mode, mul_with_mode};
        use crate::superacc::exact_dot;
        use rand::{Rng, SeedableRng};
        let model = RoundingModel::binary64().with_rounding(RoundingMode::Truncation);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut covered = 0;
        let trials = 100;
        for _ in 0..trials {
            let n = 256;
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut s = 0.0;
            for (x, y) in a.iter().zip(&b) {
                let p = mul_with_mode(*x, *y, RoundingMode::Truncation);
                s = add_with_mode(s, p, RoundingMode::Truncation);
            }
            let err = (s - exact_dot(&a, &b)).abs();
            let mom = model.inner_product_moments(&a, &b);
            if err <= mom.confidence_radius(3.0) {
                covered += 1;
            }
        }
        assert!(covered >= 95, "truncation 3-sigma coverage: {covered}/{trials}");
    }
}
