//! Householder QR decomposition.
//!
//! Needed by the dynamic-range input generator of the paper's Eq. 47
//! (`A = 10^α · U · D_κ · Vᵀ`, proposed by Turmon et al. \[27\]): the random
//! orthogonal factors `U` and `V` are obtained as the Q factor of the QR
//! decomposition of a Gaussian random matrix, which yields a Haar-ish
//! distributed orthogonal matrix after sign normalisation.

use crate::dense::Matrix;
use crate::norms::norm2;

/// Result of a QR decomposition `A = Q · R`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Orthogonal factor (`m × m`).
    pub q: Matrix<f64>,
    /// Upper-triangular factor (`m × n`).
    pub r: Matrix<f64>,
}

/// Householder QR decomposition of a square or tall matrix.
///
/// # Panics
///
/// Panics if `a.rows() < a.cols()`.
///
/// # Examples
///
/// ```
/// use aabft_matrix::{qr::decompose, Matrix, gemm};
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 3.0][..]]);
/// let f = decompose(&a);
/// let back = gemm::multiply(&f.q, &f.r);
/// assert!(back.approx_eq(&a, 1e-12));
/// ```
pub fn decompose(a: &Matrix<f64>) -> Qr {
    let (m, n) = a.shape();
    assert!(m >= n, "QR requires rows >= cols, got {m}x{n}");
    let mut r = a.clone();
    let mut q = Matrix::identity(m);

    for k in 0..n.min(m - 1) {
        // Householder vector for column k below the diagonal.
        let x: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
        let nx = norm2(&x);
        if nx == 0.0 {
            continue;
        }
        let mut v = x.clone();
        // v = x + sign(x0) * ||x|| * e1 (avoids cancellation).
        let sign = if x[0] >= 0.0 { 1.0 } else { -1.0 };
        v[0] += sign * nx;
        let nv2: f64 = v.iter().map(|&t| t * t).sum();
        if nv2 == 0.0 {
            continue;
        }

        // R <- (I - 2 v vᵀ / vᵀv) R, applied to the trailing columns.
        for j in k..n {
            let dot: f64 = (k..m).map(|i| v[i - k] * r[(i, j)]).sum();
            let s = 2.0 * dot / nv2;
            for i in k..m {
                r[(i, j)] -= s * v[i - k];
            }
        }
        // Q <- Q (I - 2 v vᵀ / vᵀv): accumulate the reflections.
        for i in 0..m {
            let dot: f64 = (k..m).map(|l| q[(i, l)] * v[l - k]).sum();
            let s = 2.0 * dot / nv2;
            for l in k..m {
                q[(i, l)] -= s * v[l - k];
            }
        }
    }

    // Zero out the strict lower triangle of R (numerical dust).
    for i in 0..m {
        for j in 0..n.min(i) {
            r[(i, j)] = 0.0;
        }
    }
    Qr { q, r }
}

/// Sign-normalises a QR decomposition so the diagonal of `R` is positive —
/// this makes the Q of a Gaussian matrix Haar-distributed over the
/// orthogonal group.
pub fn normalize_signs(f: &mut Qr) {
    let n = f.r.cols().min(f.r.rows());
    for k in 0..n {
        if f.r[(k, k)] < 0.0 {
            for j in 0..f.r.cols() {
                f.r[(k, j)] = -f.r[(k, j)];
            }
            for i in 0..f.q.rows() {
                f.q[(i, k)] = -f.q[(i, k)];
            }
        }
    }
}

/// Measures how far `q` is from orthogonal: `max |QᵀQ − I|`.
pub fn orthogonality_defect(q: &Matrix<f64>) -> f64 {
    let qtq = crate::gemm::multiply(&q.transpose(), q);
    qtq.max_abs_diff(&Matrix::identity(q.cols()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::multiply;

    fn test_matrix(n: usize, seed: u64) -> Matrix<f64> {
        // Deterministic pseudo-random fill without pulling in rand here.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        Matrix::from_fn(n, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn reconstructs_input() {
        for n in [1, 2, 3, 8, 17] {
            let a = test_matrix(n, n as u64);
            let f = decompose(&a);
            assert!(multiply(&f.q, &f.r).approx_eq(&a, 1e-11), "n = {n}");
        }
    }

    #[test]
    fn q_is_orthogonal() {
        let a = test_matrix(16, 5);
        let f = decompose(&a);
        assert!(orthogonality_defect(&f.q) < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = test_matrix(10, 9);
        let f = decompose(&a);
        for i in 0..10 {
            for j in 0..i {
                assert_eq!(f.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn sign_normalisation_keeps_product() {
        let a = test_matrix(8, 3);
        let mut f = decompose(&a);
        normalize_signs(&mut f);
        assert!(multiply(&f.q, &f.r).approx_eq(&a, 1e-11));
        for k in 0..8 {
            assert!(f.r[(k, k)] >= 0.0);
        }
        assert!(orthogonality_defect(&f.q) < 1e-12);
    }

    #[test]
    fn tall_matrix() {
        let a = Matrix::from_fn(6, 3, |i, j| ((i * 7 + j * 3) as f64).sin());
        let f = decompose(&a);
        assert_eq!(f.q.shape(), (6, 6));
        assert_eq!(f.r.shape(), (6, 3));
        assert!(multiply(&f.q, &f.r).approx_eq(&a, 1e-12));
    }

    #[test]
    #[should_panic(expected = "rows >= cols")]
    fn wide_matrix_panics() {
        decompose(&Matrix::zeros(2, 3));
    }
}
