//! Vector and matrix norms.
//!
//! SEA-ABFT (paper Section III, \[28\]) derives its error bounds from 2-norms
//! of the rows and columns involved in each checksum — these are the
//! "compute-intensive evaluation of numerous vector norms" responsible for
//! its runtime overhead. The analytic bounds of Higham/Golub–Van-Loan style
//! analyses use the same ingredients.

use crate::dense::Matrix;
use aabft_numerics::Real;

/// Euclidean (2-) norm of a vector.
///
/// # Examples
///
/// ```
/// use aabft_matrix::norms::norm2;
///
/// assert_eq!(norm2(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm2<T: Real>(v: &[T]) -> f64 {
    v.iter().map(|&x| x.to_f64() * x.to_f64()).sum::<f64>().sqrt()
}

/// 1-norm of a vector (sum of absolute values).
pub fn norm1<T: Real>(v: &[T]) -> f64 {
    v.iter().map(|&x| x.to_f64().abs()).sum()
}

/// ∞-norm of a vector (maximum absolute value).
pub fn norm_inf<T: Real>(v: &[T]) -> f64 {
    v.iter().map(|&x| x.to_f64().abs()).fold(0.0, f64::max)
}

/// Frobenius norm of a matrix.
pub fn frobenius<T: Real>(m: &Matrix<T>) -> f64 {
    m.as_slice().iter().map(|&x| x.to_f64() * x.to_f64()).sum::<f64>().sqrt()
}

/// 2-norms of every row of `m`.
pub fn row_norms2<T: Real>(m: &Matrix<T>) -> Vec<f64> {
    (0..m.rows()).map(|i| norm2(m.row(i))).collect()
}

/// 2-norms of every column of `m`.
pub fn col_norms2<T: Real>(m: &Matrix<T>) -> Vec<f64> {
    (0..m.cols()).map(|j| norm2(&m.col(j))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_norms() {
        let v = [1.0, -2.0, 2.0];
        assert_eq!(norm2(&v), 3.0);
        assert_eq!(norm1(&v), 5.0);
        assert_eq!(norm_inf(&v), 2.0);
    }

    #[test]
    fn empty_vector() {
        let v: [f64; 0] = [];
        assert_eq!(norm2(&v), 0.0);
        assert_eq!(norm1(&v), 0.0);
        assert_eq!(norm_inf(&v), 0.0);
    }

    #[test]
    fn frobenius_matches_flat_norm2() {
        let m: Matrix = Matrix::from_fn(3, 4, |i, j| (i as f64 - j as f64) * 0.7);
        assert!((frobenius(&m) - norm2(m.as_slice())).abs() < 1e-15);
    }

    #[test]
    fn row_col_norms() {
        let m = Matrix::from_rows(&[&[3.0, 0.0][..], &[0.0, 4.0][..]]);
        assert_eq!(row_norms2(&m), vec![3.0, 4.0]);
        assert_eq!(col_norms2(&m), vec![3.0, 4.0]);
    }

    #[test]
    fn norms_nonnegative_and_scale() {
        let v = [0.3, -0.9, 1.7, -2.2];
        let scaled: Vec<f64> = v.iter().map(|x| x * -2.0).collect();
        assert!((norm2(&scaled) - 2.0 * norm2(&v)).abs() < 1e-14);
    }
}
