//! Dense row-major matrices.
//!
//! The minimal dense-matrix container used throughout the reproduction:
//! checksum-encoded matrices, GPU-simulator buffers and oracles all build on
//! it. Deliberately small — this is a substrate, not a linear-algebra
//! library.

use aabft_numerics::Real;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix over an IEEE-754 element type.
///
/// # Examples
///
/// ```
/// use aabft_matrix::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.col(1), vec![2.0, 4.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix<T = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Real> Matrix<T> {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix { rows, cols, data: vec![T::ZERO; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or have differing lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the backing row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrows the backing row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix and returns its backing storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrows row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a vector (columns are strided in row-major
    /// storage, so a borrow is not possible).
    pub fn col(&self, j: usize) -> Vec<T> {
        assert!(j < self.cols, "column index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self.data[i * self.cols + j]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Extracts the `block_rows × block_cols` sub-matrix whose top-left
    /// corner is at `(row0, col0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn block(&self, row0: usize, col0: usize, block_rows: usize, block_cols: usize) -> Matrix<T> {
        assert!(row0 + block_rows <= self.rows && col0 + block_cols <= self.cols,
            "block [{row0}+{block_rows}, {col0}+{block_cols}] out of bounds {:?}", self.shape());
        Matrix::from_fn(block_rows, block_cols, |i, j| self[(row0 + i, col0 + j)])
    }

    /// Writes `block` into this matrix at `(row0, col0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn set_block(&mut self, row0: usize, col0: usize, block: &Matrix<T>) {
        assert!(row0 + block.rows <= self.rows && col0 + block.cols <= self.cols,
            "block [{row0}+{}, {col0}+{}] out of bounds {:?}", block.rows, block.cols, self.shape());
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(row0 + i, col0 + j)] = block[(i, j)];
            }
        }
    }

    /// Pads the matrix with zeros so both dimensions become multiples of
    /// `multiple` (the block-based kernels require this; Alg. 1 operates on
    /// a "padded matrix A").
    ///
    /// Returns `self` unchanged if already aligned.
    pub fn pad_to_multiple(&self, multiple: usize) -> Matrix<T> {
        assert!(multiple > 0, "padding multiple must be positive");
        let pr = self.rows.div_ceil(multiple) * multiple;
        let pc = self.cols.div_ceil(multiple) * multiple;
        if pr == self.rows && pc == self.cols {
            return self.clone();
        }
        let mut out = Matrix::zeros(pr, pc);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
        }
        out
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// `true` if every element differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix<T>, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|&a| a.to_f64().abs()).fold(0.0, f64::max)
    }

    /// Converts every element through `f64` into another supported format.
    pub fn cast<U: Real>(&self) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| U::from_f64(x.to_f64())).collect(),
        }
    }
}

impl<T: Real> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    fn index(&self, (i, j): (usize, usize)) -> &T {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds {:?}", self.shape());
        &self.data[i * self.cols + j]
    }
}

impl<T: Real> IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds {:?}", self.shape());
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Real> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m: Matrix = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4., 5., 6.]);
        assert_eq!(m.col(2), vec![3., 6.]);
    }

    #[test]
    fn identity() {
        let i: Matrix = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let m: Matrix = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn block_round_trip() {
        let m: Matrix = Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let b = m.block(2, 3, 2, 2);
        assert_eq!(b[(0, 0)], m[(2, 3)]);
        let mut n: Matrix = Matrix::zeros(6, 6);
        n.set_block(2, 3, &b);
        assert_eq!(n[(3, 4)], m[(3, 4)]);
        assert_eq!(n[(0, 0)], 0.0);
    }

    #[test]
    fn padding() {
        let m: Matrix = Matrix::from_fn(5, 7, |i, j| (i + j) as f64 + 1.0);
        let p = m.pad_to_multiple(4);
        assert_eq!(p.shape(), (8, 8));
        assert_eq!(p[(4, 6)], m[(4, 6)]);
        assert_eq!(p[(5, 0)], 0.0);
        assert_eq!(p[(0, 7)], 0.0);
        // Already aligned: unchanged.
        let q = p.pad_to_multiple(4);
        assert_eq!(q, p);
    }

    #[test]
    fn approx_eq_and_diff() {
        let a: Matrix = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let mut b = a.clone();
        b[(1, 1)] += 1e-12;
        assert!(a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&b, 1e-14));
        // The stored difference is fl(2 + 1e-12) - 2, within an ulp of 1e-12.
        assert!((a.max_abs_diff(&b) - 1e-12).abs() < 1e-15);
    }

    #[test]
    fn cast_f32() {
        let a: Matrix<f64> = Matrix::from_fn(2, 2, |i, j| (i + j) as f64 + 0.5);
        let b: Matrix<f32> = a.cast();
        assert_eq!(b[(1, 1)], 2.5f32);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m: Matrix = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panic() {
        let _: Matrix = Matrix::zeros(0, 3);
    }
}
