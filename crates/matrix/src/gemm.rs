//! Reference matrix multiplication.
//!
//! A straightforward CPU GEMM used as the functional oracle for the GPU
//! simulator's kernels and as the "unprotected" baseline's semantics. Both a
//! naive triple loop (sequential accumulation — the summation order the
//! rounding model assumes, Eq. 16) and a transposed-B variant for speed on
//! larger oracles.

use crate::dense::Matrix;
use aabft_numerics::Real;

/// `C = A · B` with sequential (left-to-right) accumulation per element —
/// the exact summation order the probabilistic model of paper Section IV-B
/// analyses.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
///
/// # Examples
///
/// ```
/// use aabft_matrix::{gemm, Matrix};
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
/// let b = Matrix::identity(2);
/// assert_eq!(gemm::multiply(&a, &b), a);
/// ```
pub fn multiply<T: Real>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree: {:?} x {:?}", a.shape(), b.shape());
    let (m, n, q) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, q);
    // Transpose B once so the inner loop walks contiguous memory; the
    // per-element accumulation order is unchanged (still k = 0..n).
    let bt = b.transpose();
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..q {
            let bcol = bt.row(j);
            let mut s = T::ZERO;
            for k in 0..n {
                s += arow[k] * bcol[k];
            }
            c[(i, j)] = s;
        }
    }
    c
}

/// `C = A · B` using fused multiply-adds in the inner loop (the FMA
/// execution mode of paper Section IV-D).
pub fn multiply_fma<T: Real>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree: {:?} x {:?}", a.shape(), b.shape());
    let (m, n, q) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, q);
    let bt = b.transpose();
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..q {
            let bcol = bt.row(j);
            let mut s = T::ZERO;
            for k in 0..n {
                s = arow[k].mul_add(bcol[k], s);
            }
            c[(i, j)] = s;
        }
    }
    c
}

/// The 2·m·n·q floating-point operation count of a GEMM — the numerator of
/// every GFLOPS figure in the paper's Table I.
pub fn flop_count(m: usize, n: usize, q: usize) -> u64 {
    2 * m as u64 * n as u64 * q as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let a: Matrix = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        assert_eq!(multiply(&a, &Matrix::identity(4)), a);
        assert_eq!(multiply(&Matrix::identity(4), &a), a);
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0][..], &[7.0, 8.0][..]]);
        let c = multiply(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0][..], &[43.0, 50.0][..]]));
    }

    #[test]
    fn rectangular_shapes() {
        let a: Matrix = Matrix::from_fn(2, 5, |i, j| (i + j) as f64);
        let b: Matrix = Matrix::from_fn(5, 3, |i, j| (i * j) as f64 + 1.0);
        let c = multiply(&a, &b);
        assert_eq!(c.shape(), (2, 3));
        // Spot check c[1][2] = sum_k a[1][k] * b[k][2]
        let expect: f64 = (0..5).map(|k| (1 + k) as f64 * ((k * 2) as f64 + 1.0)).sum();
        assert_eq!(c[(1, 2)], expect);
    }

    #[test]
    fn fma_close_to_separate() {
        let a: Matrix = Matrix::from_fn(8, 8, |i, j| ((i * 31 + j * 17) as f64 * 0.013).sin());
        let b: Matrix = Matrix::from_fn(8, 8, |i, j| ((i * 13 + j * 7) as f64 * 0.029).cos());
        let c1 = multiply(&a, &b);
        let c2 = multiply_fma(&a, &b);
        assert!(c1.approx_eq(&c2, 1e-13));
    }

    #[test]
    fn flops() {
        assert_eq!(flop_count(2, 3, 4), 48);
        assert_eq!(flop_count(512, 512, 512), 2 * 512u64.pow(3));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a: Matrix = Matrix::zeros(2, 3);
        let b: Matrix = Matrix::zeros(2, 3);
        multiply(&a, &b);
    }
}
