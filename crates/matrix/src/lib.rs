//! Dense linear-algebra substrate for the A-ABFT (DSN'14) reproduction.
//!
//! Provides the [`Matrix`] container plus exactly the operations the paper's
//! evaluation needs:
//!
//! * [`gemm`] — reference matrix multiplication (functional oracle and
//!   unprotected baseline semantics);
//! * [`norms`] — vector/matrix norms (the ingredients of SEA-ABFT's bound);
//! * [`qr`] — Householder QR (random orthogonal factors);
//! * [`gen`] — the paper's input generators: uniform ranges and the
//!   dynamic-range matrices of Eq. 47 (`10^α · U · D_κ · Vᵀ`).
//!
//! # Example
//!
//! ```
//! use aabft_matrix::{gen::InputClass, gemm, Matrix};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let a = InputClass::UNIT.generate(32, &mut rng);
//! let b = InputClass::UNIT.generate(32, &mut rng);
//! let c = gemm::multiply(&a, &b);
//! assert_eq!(c.shape(), (32, 32));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dense;
pub mod gemm;
pub mod gen;
pub mod norms;
pub mod qr;

pub use dense::Matrix;
