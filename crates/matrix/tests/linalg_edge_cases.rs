//! Edge-case tests for the linear-algebra substrate: ill-conditioned QR,
//! generator determinism and spectrum properties, padding/blocking corners.

use aabft_matrix::gen::{dynamic_range, random_orthogonal, InputClass};
use aabft_matrix::qr::{decompose, orthogonality_defect};
use aabft_matrix::{gemm, norms, Matrix};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn qr_survives_hilbert_matrix() {
    // The Hilbert matrix is notoriously ill-conditioned; QR must still
    // reconstruct and stay orthogonal.
    let n = 12;
    let h = Matrix::from_fn(n, n, |i, j| 1.0 / (i + j + 1) as f64);
    let f = decompose(&h);
    assert!(orthogonality_defect(&f.q) < 1e-12);
    assert!(gemm::multiply(&f.q, &f.r).approx_eq(&h, 1e-12));
}

#[test]
fn qr_of_identity_is_identity_after_sign_normalisation() {
    // The Householder sign convention reflects positive leading entries, so
    // raw Q/R carry sign flips; normalising recovers exactly I = I · I.
    let i = Matrix::identity(9);
    let mut f = decompose(&i);
    aabft_matrix::qr::normalize_signs(&mut f);
    assert!(f.q.approx_eq(&i, 1e-14));
    assert!(f.r.approx_eq(&i, 1e-14));
}

#[test]
fn qr_with_dependent_columns() {
    // Rank-deficient input: reconstruction must still hold (R gains zero
    // diagonal entries).
    let a = Matrix::from_fn(8, 8, |i, j| ((i + 1) * (j + 1)) as f64); // rank 1
    let f = decompose(&a);
    assert!(gemm::multiply(&f.q, &f.r).approx_eq(&a, 1e-10));
    assert!(orthogonality_defect(&f.q) < 1e-12);
}

#[test]
fn dynamic_range_singular_values_are_kappa_spaced() {
    // Recover the singular values by transforming the canonical basis
    // through A^T A via norms of A e_j after rotating with V... simpler:
    // check ||A||_2 ~ 1 and ||A^-1||_2 ~ kappa via the generator's own U/V
    // being orthogonal: the Frobenius norm must equal the norm of the
    // singular-value vector.
    let n = 24;
    let kappa = 100.0;
    let a = dynamic_range(n, 0.0, kappa, &mut rng(5));
    let fro = norms::frobenius(&a);
    let expect: f64 = (0..n)
        .map(|j| {
            let frac = j as f64 / (n - 1) as f64;
            kappa.powf(-frac).powi(2)
        })
        .sum::<f64>()
        .sqrt();
    assert!(
        (fro - expect).abs() < 1e-10 * expect,
        "Frobenius {fro} vs singular-value norm {expect}"
    );
}

#[test]
fn dynamic_range_alpha_is_pure_scaling() {
    let a0 = dynamic_range(8, 0.0, 10.0, &mut rng(6));
    let a3 = dynamic_range(8, 3.0, 10.0, &mut rng(6));
    for (x, y) in a0.as_slice().iter().zip(a3.as_slice()) {
        assert!((y - x * 1000.0).abs() <= 1e-9 * y.abs().max(1e-300));
    }
}

#[test]
fn orthogonal_sampler_determinism_and_freshness() {
    let q1 = random_orthogonal(16, &mut rng(7));
    let q2 = random_orthogonal(16, &mut rng(7));
    assert_eq!(q1, q2, "same seed, same matrix");
    let q3 = random_orthogonal(16, &mut rng(8));
    assert!(q1.max_abs_diff(&q3) > 0.01, "different seeds must differ");
}

#[test]
fn generators_cover_requested_ranges() {
    let mut r = rng(9);
    for class in [InputClass::UNIT, InputClass::HUNDRED] {
        let m = class.generate(64, &mut r);
        let (lo, hi) = match class {
            InputClass::Uniform { lo, hi } => (lo, hi),
            _ => unreachable!(),
        };
        let max = m.max_abs();
        assert!(max <= hi.max(-lo));
        // Uniform samples should get close to the bounds.
        assert!(max > 0.9 * hi.max(-lo), "max {max} suspiciously small");
    }
}

#[test]
fn padding_preserves_products() {
    // Multiplying padded operands must reproduce the unpadded product in
    // the data region (zeros contribute nothing).
    let mut r = rng(10);
    let a = InputClass::UNIT.generate(10, &mut r);
    let b = InputClass::UNIT.generate(10, &mut r);
    let pa = a.pad_to_multiple(8);
    let pb = b.pad_to_multiple(8);
    let full = gemm::multiply(&pa, &pb);
    let plain = gemm::multiply(&a, &b);
    assert!(full.block(0, 0, 10, 10).approx_eq(&plain, 0.0), "padding must be exact");
    // Padded region of the product is exactly zero.
    for i in 0..16 {
        for j in 10..16 {
            assert_eq!(full[(i, j)], 0.0);
        }
    }
}

#[test]
fn block_extraction_round_trips_over_grid() {
    let m = Matrix::from_fn(12, 20, |i, j| (i * 20 + j) as f64);
    let mut rebuilt = Matrix::zeros(12, 20);
    for bi in 0..3 {
        for bj in 0..5 {
            let b = m.block(bi * 4, bj * 4, 4, 4);
            rebuilt.set_block(bi * 4, bj * 4, &b);
        }
    }
    assert_eq!(rebuilt, m);
}

#[test]
fn transpose_interacts_with_gemm() {
    let mut r = rng(11);
    let a = InputClass::UNIT.generate(16, &mut r);
    let b = InputClass::UNIT.generate(16, &mut r);
    // (A B)^T == B^T A^T up to the differing accumulation order.
    let left = gemm::multiply(&a, &b).transpose();
    let right = gemm::multiply(&b.transpose(), &a.transpose());
    assert!(left.approx_eq(&right, 1e-13));
}
