//! Integration tests of the device execution model: scheduling, launch
//! logs, multi-launch injections and GEMM/compare composition.

use aabft_gpu_sim::device::{BlockCtx, Device, DeviceConfig, Kernel};
use aabft_gpu_sim::dim::GridDim;
use aabft_gpu_sim::inject::{FaultSite, InjectionPlan};
use aabft_gpu_sim::kernels::compare::CompareKernel;
use aabft_gpu_sim::kernels::gemm::{GemmKernel, GemmTiling};
use aabft_gpu_sim::mem::DeviceBuffer;
use aabft_matrix::{gemm, Matrix};

struct SmRecorder<'a> {
    out: &'a DeviceBuffer,
}
impl Kernel for SmRecorder<'_> {
    fn name(&self) -> &'static str {
        "sm_recorder"
    }
    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let i = ctx.block().x;
        ctx.store(self.out, i, ctx.sm_id() as f64);
    }
}

#[test]
fn blocks_are_assigned_round_robin() {
    let device = Device::new(DeviceConfig { num_sms: 4, max_modules: 8, clean_engine: None });
    let out = DeviceBuffer::zeros(10);
    device.launch(GridDim::linear_1d(10), &SmRecorder { out: &out });
    let sms: Vec<usize> = out.to_vec().iter().map(|&v| v as usize).collect();
    for (i, &sm) in sms.iter().enumerate() {
        assert_eq!(sm, i % 4, "block {i}");
        assert_eq!(sm, device.sm_of_block(i));
    }
}

#[test]
fn launch_log_preserves_order_and_names() {
    let device = Device::with_defaults();
    let out = DeviceBuffer::zeros(4);
    device.launch(GridDim::linear_1d(4), &SmRecorder { out: &out });
    let x = DeviceBuffer::zeros(4);
    let counts = DeviceBuffer::zeros(2);
    let cmp = CompareKernel::new(&x, &out, &counts, 1e6);
    device.launch(cmp.grid(), &cmp);
    let log = device.take_log();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].name, "sm_recorder");
    assert_eq!(log[1].name, "compare");
    assert!(device.take_log().is_empty(), "log drained");
}

#[test]
fn injection_counters_span_multiple_launches() {
    // kInjection counts dynamic instances per (SM, site, module) across all
    // launches while armed — a fault can be scheduled into the second of
    // two identical launches (how TMR trials distribute over replicas).
    let t = GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 };
    let n = 8;
    let a = Matrix::from_fn(n, n, |i, j| ((i * 3 + j) as f64 * 0.31).sin());
    let da = DeviceBuffer::from_matrix(&a);
    let db = DeviceBuffer::from_matrix(&a);

    let device = Device::with_defaults();
    // One launch executes threads(16) * n inner adds on module 0 of SM 0
    // (single block). Target the instance right after: the second launch's
    // first.
    let per_launch = 16 * n as u64;
    device.arm_injection(InjectionPlan {
        sm: 0,
        site: FaultSite::InnerAdd,
        module: 0,
        k_injection: per_launch + 1,
        mask: 1 << 62,
    });
    let c1 = DeviceBuffer::zeros(n * n);
    let k1 = GemmKernel::new(&da, &db, &c1, n, n, n, t);
    device.launch(k1.grid(), &k1);
    let c2 = DeviceBuffer::zeros(n * n);
    let k2 = GemmKernel::new(&da, &db, &c2, n, n, n, t);
    device.launch(k2.grid(), &k2);
    assert!(device.disarm_injection(), "second launch must trigger instance n+1");
    // First replica clean (instances 1..=per_launch happened there),
    // second corrupted.
    let reference = gemm::multiply(&a, &a);
    assert!(c1.to_matrix(n, n).approx_eq(&reference, 1e-12));
    assert!(!c2.to_matrix(n, n).approx_eq(&reference, 1e-9));
}

#[test]
fn gemm_composes_with_compare() {
    let t = GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 };
    let n = 16;
    let a = Matrix::from_fn(n, n, |i, j| ((i + 2 * j) as f64 * 0.17).cos());
    let device = Device::with_defaults();
    let (da, db) = (DeviceBuffer::from_matrix(&a), DeviceBuffer::from_matrix(&a));
    let c1 = DeviceBuffer::zeros(n * n);
    let c2 = DeviceBuffer::zeros(n * n);
    for c in [&c1, &c2] {
        let k = GemmKernel::new(&da, &db, c, n, n, n, t);
        device.launch(k.grid(), &k);
    }
    let counts = DeviceBuffer::zeros(4);
    let cmp = CompareKernel::new(&c1, &c2, &counts, 0.0);
    device.launch(cmp.grid(), &cmp);
    assert_eq!(cmp.total_mismatches(), 0, "identical launches are bitwise equal");
}

#[test]
fn many_sms_with_few_blocks() {
    // More SMs than blocks: the tail SMs stay idle without issue.
    let device = Device::new(DeviceConfig { num_sms: 13, max_modules: 4, clean_engine: None });
    let out = DeviceBuffer::zeros(3);
    let stats = device.launch(GridDim::linear_1d(3), &SmRecorder { out: &out });
    assert_eq!(stats.blocks, 3);
    assert_eq!(out.to_vec(), vec![0.0, 1.0, 2.0]);
}
