//! Property tests for the packed clean-path GEMM engine (DESIGN §12).
//!
//! The packed engine re-tiles every block into 8×8 microtiles over packed
//! panels, so its correctness burden is the *edge* geometry: block shapes
//! the microkernel does not divide, panels narrower than a full microtile,
//! and degenerate one-row/one-column blocks. For every such tiling the
//! packed engine, the scalar engine and the instrumented reference path
//! must produce bit-identical products — the per-accumulator k-order is
//! part of the kernel's contract, not an implementation detail.

use aabft_gpu_sim::kernels::gemm::{GemmKernel, GemmTiling};
use aabft_gpu_sim::mem::DeviceBuffer;
use aabft_gpu_sim::pack::{self, PackPool};
use aabft_gpu_sim::{CleanEngine, Device};
use aabft_matrix::Matrix;
use aabft_numerics::MulMode;
use proptest::prelude::*;

fn inputs(m: usize, n: usize, q: usize) -> (Matrix<f64>, Matrix<f64>) {
    let a = Matrix::from_fn(m, n, |i, j| ((i * 13 + j * 7) as f64 * 0.011).sin());
    let b = Matrix::from_fn(n, q, |i, j| ((i * 3 + j * 17) as f64 * 0.019).cos());
    (a, b)
}

/// One GEMM launch with the requested engine (None = instrumented
/// reference); returns the raw C buffer.
fn run_gemm(
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    tiling: GemmTiling,
    mode: MulMode,
    engine: Option<CleanEngine>,
) -> Vec<f64> {
    let (m, n, q) = (a.rows(), a.cols(), b.cols());
    let device = Device::with_defaults();
    let da = DeviceBuffer::from_matrix(a);
    let db = DeviceBuffer::from_matrix(b);
    let dc = DeviceBuffer::zeros(m * q);
    let mut kernel = GemmKernel::new(&da, &db, &dc, m, n, q, tiling).with_mul_mode(mode);
    match engine {
        Some(e) => kernel = kernel.with_clean_engine(e),
        None => device.set_force_instrumented(true),
    }
    device.launch(kernel.grid(), &kernel);
    dc.to_vec()
}

proptest! {
    #[test]
    fn packed_engine_bit_identical_across_edge_tilings(
        // Block shapes chosen so the 8×8 microkernel sees every edge case:
        // ragged edges in both dimensions (12 = 8+4, 20 = 2·8+4), whole
        // blocks smaller than one microtile (4×4), an exact single
        // microtile (8×8), and a tall-narrow mix.
        tiling in prop_oneof![
            Just(GemmTiling { bm: 12, bn: 20, bk: 4, rx: 4, ry: 4 }),
            Just(GemmTiling { bm: 4, bn: 4, bk: 2, rx: 2, ry: 2 }),
            Just(GemmTiling { bm: 8, bn: 8, bk: 8, rx: 4, ry: 4 }),
            Just(GemmTiling { bm: 24, bn: 8, bk: 4, rx: 2, ry: 4 }),
            Just(GemmTiling::default()),
        ],
        mi in 1usize..4,
        ki in 1usize..5,
        qi in 1usize..4,
        mode in prop_oneof![Just(MulMode::Separate), Just(MulMode::Fused)],
    ) {
        let tiling: GemmTiling = tiling;
        let (m, n, q) = (tiling.bm * mi, tiling.bk * ki, tiling.bn * qi);
        let (a, b) = inputs(m, n, q);
        let reference = run_gemm(&a, &b, tiling, mode, None);
        let packed = run_gemm(&a, &b, tiling, mode, Some(CleanEngine::Packed));
        let scalar = run_gemm(&a, &b, tiling, mode, Some(CleanEngine::Scalar));
        prop_assert_eq!(&packed, &reference, "packed engine must match instrumented bits");
        prop_assert_eq!(&scalar, &reference, "scalar engine must match instrumented bits");
    }
}

#[test]
fn packed_engine_reports_telemetry() {
    let before = pack::packed_blocks();
    let (a, b) = inputs(16, 16, 16);
    let tiling = GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 };
    run_gemm(&a, &b, tiling, MulMode::Separate, Some(CleanEngine::Packed));
    assert!(pack::packed_blocks() > before, "packed blocks counter must advance");
}

#[test]
fn pack_pool_buffers_survive_across_launches() {
    let (a, b) = inputs(16, 16, 16);
    let tiling = GemmTiling { bm: 8, bn: 8, bk: 4, rx: 2, ry: 2 };
    let device = Device::with_defaults();
    let da = DeviceBuffer::from_matrix(&a);
    let db = DeviceBuffer::from_matrix(&b);
    let dc = DeviceBuffer::zeros(16 * 16);
    let pool = PackPool::new();
    let kernel = GemmKernel::new(&da, &db, &dc, 16, 16, 16, tiling)
        .with_clean_engine(CleanEngine::Packed)
        .with_pack_pool(&pool);
    device.launch(kernel.grid(), &kernel);
    let pooled = pool.len();
    assert!(pooled > 0, "workers must return their pack buffers to the pool");
    device.launch(kernel.grid(), &kernel);
    assert_eq!(pool.len(), pooled, "relaunching must reuse pooled buffers, not grow the pool");
}
