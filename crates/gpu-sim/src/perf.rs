//! Analytic performance model (Kepler-class, calibrated to the K20c).
//!
//! The paper reports wall-clock GFLOPS on an Nvidia K20c (Table I). The
//! simulator executes kernels functionally, so runtime is *modelled* from
//! the counters each launch produces: a kernel's time is its launch overhead
//! plus the maximum of its compute time (at the kernel's achievable fraction
//! of peak), its global-memory time, and its shared-memory time — the usual
//! roofline reasoning. Summing over a pipeline's launch log and dividing the
//! *useful* GEMM FLOPs by the total yields the Table-I-style GFLOPS figure.
//!
//! Calibration: `peak_dp_flops` is the K20c's 1.17 TFLOP/s; the default GEMM
//! utilization is set so an unprotected 8192³ multiplication models at the
//! ~1048 GFLOPS the paper measured; memory bandwidth is the K20c's 208 GB/s.
//! EXPERIMENTS.md discusses the calibration and its limits.

use crate::stats::LaunchRecord;

/// Aggregated modelled cost of one pipeline phase (see
/// [`PerfModel::phase_breakdown`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCost {
    /// Phase label (from [`LaunchRecord::phase`]).
    pub phase: String,
    /// Number of kernel launches in the phase.
    pub launches: u64,
    /// Modelled time in seconds (incl. per-launch overhead).
    pub time: f64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Global-memory traffic in bytes.
    pub gmem_bytes: u64,
}

/// Roofline-style device performance parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    /// Peak double-precision throughput in FLOP/s.
    pub peak_dp_flops: f64,
    /// Global-memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Shared-memory aggregate bandwidth in bytes/s.
    pub smem_bandwidth: f64,
    /// Fixed overhead per kernel launch in seconds.
    pub launch_overhead: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        Self::k20c()
    }
}

impl PerfModel {
    /// Parameters modelling the paper's Nvidia K20c (GK110).
    pub fn k20c() -> Self {
        PerfModel {
            peak_dp_flops: 1.17e12,
            mem_bandwidth: 208e9,
            smem_bandwidth: 2.5e12,
            // Effective per-launch cost: driver launch latency plus wave
            // quantization / kernel-tail effects, calibrated against the
            // paper's small-matrix rows of Table I.
            launch_overhead: 6e-5,
        }
    }

    /// Modelled execution time of one launch.
    pub fn kernel_time(&self, rec: &LaunchRecord) -> f64 {
        let compute = rec.stats.flops() as f64 / (self.peak_dp_flops * rec.utilization.max(1e-6));
        let gmem = rec.stats.gmem_bytes() as f64 / self.mem_bandwidth;
        let smem = (rec.stats.smem_accesses * 8) as f64 / self.smem_bandwidth;
        self.launch_overhead + compute.max(gmem).max(smem)
    }

    /// Modelled total time of a pipeline (sum over its launch log).
    pub fn pipeline_time(&self, log: &[LaunchRecord]) -> f64 {
        log.iter().map(|r| self.kernel_time(r)).sum()
    }

    /// Table-I-style GFLOPS: `useful_flops` (the 2·m·n·q of the *user's*
    /// multiplication, excluding protection overhead) over modelled time.
    pub fn gflops(&self, useful_flops: u64, log: &[LaunchRecord]) -> f64 {
        useful_flops as f64 / self.pipeline_time(log) / 1e9
    }

    /// Per-kernel time breakdown `(name, seconds)` for reporting.
    pub fn breakdown(&self, log: &[LaunchRecord]) -> Vec<(String, f64)> {
        log.iter().map(|r| (r.name.clone(), self.kernel_time(r))).collect()
    }

    /// Groups the launch log by pipeline phase (first-appearance order).
    /// The phase times sum to [`PerfModel::pipeline_time`] of the same log.
    pub fn phase_breakdown(&self, log: &[LaunchRecord]) -> Vec<PhaseCost> {
        let mut phases: Vec<PhaseCost> = Vec::new();
        for rec in log {
            let t = self.kernel_time(rec);
            let entry = match phases.iter_mut().find(|p| p.phase == rec.phase) {
                Some(p) => p,
                None => {
                    phases.push(PhaseCost {
                        phase: rec.phase.clone(),
                        launches: 0,
                        time: 0.0,
                        flops: 0,
                        gmem_bytes: 0,
                    });
                    phases.last_mut().unwrap()
                }
            };
            entry.launches += 1;
            entry.time += t;
            entry.flops += rec.stats.flops();
            entry.gmem_bytes += rec.stats.gmem_bytes();
        }
        phases
    }

    /// Modelled busy time of SM `sm` during launch `rec` (for per-SM
    /// trace tracks): the roofline at per-SM shares of the device rates,
    /// without launch overhead (driver time, not SM occupancy), clamped
    /// to the launch's busy window `kernel_time - launch_overhead`. The
    /// device-level model owns total time; per-SM load imbalance beyond
    /// it is clipped so SM slices never spill into the next launch.
    pub fn sm_time(&self, rec: &LaunchRecord, sm: usize) -> f64 {
        let Some(stats) = rec.per_sm.get(sm) else { return 0.0 };
        let n = rec.per_sm.len().max(1) as f64;
        let compute =
            stats.flops() as f64 / (self.peak_dp_flops / n * rec.utilization.max(1e-6));
        let gmem = stats.gmem_bytes() as f64 / (self.mem_bandwidth / n);
        let smem = (stats.smem_accesses * 8) as f64 / (self.smem_bandwidth / n);
        let busy = self.kernel_time(rec) - self.launch_overhead;
        compute.max(gmem).max(smem).min(busy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::KernelStats;

    fn rec(flops: u64, loads: u64, util: f64) -> LaunchRecord {
        LaunchRecord::synthetic(
            "k",
            util,
            KernelStats { fadd: flops, gmem_loads: loads, ..Default::default() },
        )
    }

    #[test]
    fn compute_bound_kernel() {
        let m = PerfModel::k20c();
        // 1.17e12 flops at utilization 1.0 => ~1 second.
        let t = m.kernel_time(&rec(1_170_000_000_000, 0, 1.0));
        assert!((t - 1.0).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn memory_bound_kernel() {
        let m = PerfModel::k20c();
        // 26e9 words = 208e9 bytes => ~1 second of memory time.
        let t = m.kernel_time(&rec(1000, 26_000_000_000, 1.0));
        assert!((t - 1.0).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn utilization_slows_compute() {
        let m = PerfModel::k20c();
        let fast = m.kernel_time(&rec(1_000_000_000, 0, 1.0));
        let slow = m.kernel_time(&rec(1_000_000_000, 0, 0.1));
        assert!(slow > 5.0 * fast);
    }

    #[test]
    fn pipeline_sums_and_gflops() {
        let m = PerfModel::k20c();
        let log = vec![rec(1_170_000_000_000, 0, 1.0), rec(1_170_000_000_000, 0, 1.0)];
        let t = m.pipeline_time(&log);
        assert!((t - 2.0).abs() < 1e-2);
        // Useful flops = total flops here: ~1170 GFLOPS over 2 s of work.
        let g = m.gflops(2 * 1_170_000_000_000, &log);
        assert!((g - 1170.0).abs() < 10.0, "g = {g}");
        assert_eq!(m.breakdown(&log).len(), 2);
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let m = PerfModel::k20c();
        let t = m.kernel_time(&rec(1, 1, 1.0));
        assert!(t >= m.launch_overhead);
    }

    #[test]
    fn phase_breakdown_partitions_pipeline_time() {
        let m = PerfModel::k20c();
        let mut log = vec![rec(1_000_000, 0, 1.0), rec(2_000_000, 10, 1.0), rec(500, 9000, 1.0)];
        log[0].phase = "gemm".into();
        log[1].phase = "gemm".into();
        log[2].phase = "check".into();
        let phases = m.phase_breakdown(&log);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].phase, "gemm");
        assert_eq!(phases[0].launches, 2);
        assert_eq!(phases[0].flops, 3_000_000);
        let total: f64 = phases.iter().map(|p| p.time).sum();
        let direct = m.pipeline_time(&log);
        assert!((total - direct).abs() <= 1e-12 * direct, "{total} vs {direct}");
    }

    #[test]
    fn sm_time_fits_inside_launch_busy_window() {
        let m = PerfModel::k20c();
        let mut r = rec(0, 0, 1.0);
        // 4 SMs, heavily imbalanced: SM 0 does almost everything.
        r.per_sm = vec![
            KernelStats { fadd: 900_000_000, ..Default::default() },
            KernelStats { fadd: 50_000_000, ..Default::default() },
            KernelStats { fadd: 50_000_000, ..Default::default() },
            KernelStats { fadd: 0, ..Default::default() },
        ];
        for s in &r.per_sm {
            r.stats.merge(s);
        }
        let busy = m.kernel_time(&r) - m.launch_overhead;
        for sm in 0..4 {
            let t = m.sm_time(&r, sm);
            assert!(t >= 0.0 && t <= busy + 1e-15, "sm {sm}: {t} vs busy {busy}");
        }
        // Balanced load models each SM busy for ~the whole window.
        let mut b = rec(0, 0, 1.0);
        b.per_sm = vec![KernelStats { fadd: 250_000_000, ..Default::default() }; 4];
        for s in &b.per_sm {
            b.stats.merge(s);
        }
        let busy = m.kernel_time(&b) - m.launch_overhead;
        let t = m.sm_time(&b, 0);
        assert!((t - busy).abs() <= 1e-9 * busy, "{t} vs {busy}");
        // Out-of-range SM is silent.
        assert_eq!(m.sm_time(&b, 99), 0.0);
    }
}
