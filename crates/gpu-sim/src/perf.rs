//! Analytic performance model (Kepler-class, calibrated to the K20c).
//!
//! The paper reports wall-clock GFLOPS on an Nvidia K20c (Table I). The
//! simulator executes kernels functionally, so runtime is *modelled* from
//! the counters each launch produces: a kernel's time is its launch overhead
//! plus the maximum of its compute time (at the kernel's achievable fraction
//! of peak), its global-memory time, and its shared-memory time — the usual
//! roofline reasoning. Summing over a pipeline's launch log and dividing the
//! *useful* GEMM FLOPs by the total yields the Table-I-style GFLOPS figure.
//!
//! Calibration: `peak_dp_flops` is the K20c's 1.17 TFLOP/s; the default GEMM
//! utilization is set so an unprotected 8192³ multiplication models at the
//! ~1048 GFLOPS the paper measured; memory bandwidth is the K20c's 208 GB/s.
//! EXPERIMENTS.md discusses the calibration and its limits.

use crate::stats::LaunchRecord;

/// Aggregated modelled cost of one pipeline phase (see
/// [`PerfModel::phase_breakdown`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCost {
    /// Phase label (from [`LaunchRecord::phase`]).
    pub phase: String,
    /// Number of kernel launches in the phase.
    pub launches: u64,
    /// Modelled time in seconds (incl. per-launch overhead).
    pub time: f64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Global-memory traffic in bytes.
    pub gmem_bytes: u64,
}

/// One launch's placement in a modelled multi-stream timeline (see
/// [`PerfModel::schedule`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledLaunch {
    /// Launch sequence number (submission order).
    pub seq: u64,
    /// Stream the launch was issued to.
    pub stream: u64,
    /// When the launch became ready (stream predecessor and event
    /// dependencies finished) and its driver overhead began.
    pub start: f64,
    /// When its SMs began executing (overhead paid, SM demand free).
    pub busy_start: f64,
    /// When it finished.
    pub finish: f64,
    /// The SMs the launch occupied (earliest-free-first allocation),
    /// ascending.
    pub sm_ids: Vec<usize>,
}

impl ScheduledLaunch {
    /// Number of SMs the launch occupied.
    pub fn sms(&self) -> usize {
        self.sm_ids.len()
    }
}

/// A modelled multi-stream timeline: per-launch windows plus the makespan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    /// Per-launch placements, in `seq` order.
    pub launches: Vec<ScheduledLaunch>,
    /// Modelled wall time: the latest finish across all launches.
    pub makespan: f64,
}

impl Schedule {
    /// Total busy time attributed to `stream` (sum of its launches'
    /// busy windows) — per-stream occupancy accounting for reports.
    pub fn stream_busy(&self, stream: u64) -> f64 {
        self.launches
            .iter()
            .filter(|l| l.stream == stream)
            .map(|l| l.finish - l.busy_start)
            .sum()
    }

    /// The distinct streams appearing in the schedule, ascending.
    pub fn streams(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.launches.iter().map(|l| l.stream).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Roofline-style device performance parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    /// Peak double-precision throughput in FLOP/s.
    pub peak_dp_flops: f64,
    /// Global-memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Shared-memory aggregate bandwidth in bytes/s.
    pub smem_bandwidth: f64,
    /// Fixed overhead per kernel launch in seconds.
    pub launch_overhead: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        Self::k20c()
    }
}

impl PerfModel {
    /// Parameters modelling the paper's Nvidia K20c (GK110).
    pub fn k20c() -> Self {
        PerfModel {
            peak_dp_flops: 1.17e12,
            mem_bandwidth: 208e9,
            smem_bandwidth: 2.5e12,
            // Effective per-launch cost: driver launch latency plus wave
            // quantization / kernel-tail effects, calibrated against the
            // paper's small-matrix rows of Table I.
            launch_overhead: 6e-5,
        }
    }

    /// Modelled execution time of one launch.
    pub fn kernel_time(&self, rec: &LaunchRecord) -> f64 {
        let compute = rec.stats.flops() as f64 / (self.peak_dp_flops * rec.utilization.max(1e-6));
        let gmem = rec.stats.gmem_bytes() as f64 / self.mem_bandwidth;
        let smem = (rec.stats.smem_accesses * 8) as f64 / self.smem_bandwidth;
        self.launch_overhead + compute.max(gmem).max(smem)
    }

    /// Modelled total time of a pipeline (sum over its launch log).
    pub fn pipeline_time(&self, log: &[LaunchRecord]) -> f64 {
        log.iter().map(|r| self.kernel_time(r)).sum()
    }

    /// Table-I-style GFLOPS: `useful_flops` (the 2·m·n·q of the *user's*
    /// multiplication, excluding protection overhead) over modelled time.
    pub fn gflops(&self, useful_flops: u64, log: &[LaunchRecord]) -> f64 {
        useful_flops as f64 / self.pipeline_time(log) / 1e9
    }

    /// Per-kernel time breakdown `(name, seconds)` for reporting.
    pub fn breakdown(&self, log: &[LaunchRecord]) -> Vec<(String, f64)> {
        log.iter().map(|r| (r.name.clone(), self.kernel_time(r))).collect()
    }

    /// Groups the launch log by pipeline phase (first-appearance order).
    /// The phase times sum to [`PerfModel::pipeline_time`] of the same log.
    pub fn phase_breakdown(&self, log: &[LaunchRecord]) -> Vec<PhaseCost> {
        let mut phases: Vec<PhaseCost> = Vec::new();
        for rec in log {
            let t = self.kernel_time(rec);
            let entry = match phases.iter_mut().find(|p| p.phase == rec.phase) {
                Some(p) => p,
                None => {
                    phases.push(PhaseCost {
                        phase: rec.phase.clone(),
                        launches: 0,
                        time: 0.0,
                        flops: 0,
                        gmem_bytes: 0,
                    });
                    phases.last_mut().unwrap()
                }
            };
            entry.launches += 1;
            entry.time += t;
            entry.flops += rec.stats.flops();
            entry.gmem_bytes += rec.stats.gmem_bytes();
        }
        phases
    }

    /// Schedules a (possibly multi-stream) launch log onto `num_sms`
    /// streaming multiprocessors and returns the modelled timeline.
    ///
    /// Model: every launch pays [`PerfModel::launch_overhead`] of driver
    /// time (streams are independent driver queues, so overheads of
    /// *different* streams pipeline), then occupies
    /// `min(blocks, num_sms)` SMs for its busy window
    /// (`kernel_time − launch_overhead`). A launch becomes ready once its
    /// stream predecessor and event dependencies have finished; it starts
    /// its busy window once its SM demand is free. SMs are allocated
    /// earliest-free-first, so overlapping streams share the device — the
    /// per-stream SM occupancy accounting behind Table-I-style batch
    /// throughput numbers.
    ///
    /// For a single-stream log this degenerates to the sequential model:
    /// the makespan equals [`PerfModel::pipeline_time`] exactly.
    pub fn schedule(&self, log: &[LaunchRecord], num_sms: usize) -> Schedule {
        let num_sms = num_sms.max(1);
        let mut ordered: Vec<&LaunchRecord> = log.iter().collect();
        ordered.sort_by_key(|r| r.seq);

        let mut finish_by_seq: std::collections::HashMap<u64, f64> =
            std::collections::HashMap::new();
        // Per-stream frontier, kept in addition to recorded deps so
        // same-stream ordering holds even for logs whose records carry no
        // dependency edges (synthetic records, hand-built test logs).
        let mut stream_frontier: std::collections::HashMap<u64, f64> =
            std::collections::HashMap::new();
        let mut sm_free = vec![0.0f64; num_sms];
        let mut launches = Vec::with_capacity(ordered.len());
        let mut makespan = 0.0f64;
        for rec in ordered {
            let ready = rec
                .deps
                .iter()
                .filter_map(|d| finish_by_seq.get(d).copied())
                .chain(stream_frontier.get(&rec.stream).copied())
                .fold(0.0f64, f64::max);
            let demand = (rec.stats.blocks.max(1) as usize).min(num_sms);
            // Earliest-free-first allocation: the launch waits for its
            // `demand` least-loaded SMs on top of its own driver overhead.
            let mut order: Vec<usize> = (0..num_sms).collect();
            order.sort_by(|&a, &b| sm_free[a].partial_cmp(&sm_free[b]).unwrap());
            let busy_start = (ready + self.launch_overhead).max(sm_free[order[demand - 1]]);
            let busy = self.kernel_time(rec) - self.launch_overhead;
            let finish = busy_start + busy;
            let mut sm_ids: Vec<usize> = order[..demand].to_vec();
            sm_ids.sort_unstable();
            for &sm in &sm_ids {
                sm_free[sm] = finish;
            }
            finish_by_seq.insert(rec.seq, finish);
            stream_frontier.insert(rec.stream, finish);
            makespan = makespan.max(finish);
            launches.push(ScheduledLaunch {
                seq: rec.seq,
                stream: rec.stream,
                start: ready,
                busy_start,
                finish,
                sm_ids,
            });
        }
        Schedule { launches, makespan }
    }

    /// Modelled wall time of a launch log under the stream scheduler (the
    /// batch-engine counterpart of [`PerfModel::pipeline_time`]).
    pub fn stream_makespan(&self, log: &[LaunchRecord], num_sms: usize) -> f64 {
        self.schedule(log, num_sms).makespan
    }

    /// A copy of this model with compute and memory rates scaled by
    /// `factor` (launch overhead is driver-side and does not scale).
    ///
    /// This is the heterogeneous-replica hook: a service replica with
    /// twice the SMs (or a faster clean engine) is modelled as the same
    /// roofline at `factor`× the rates, so placement decisions can cost
    /// the same wave against differently-sized devices.
    pub fn scaled(&self, factor: f64) -> PerfModel {
        let factor = factor.max(1e-6);
        PerfModel {
            peak_dp_flops: self.peak_dp_flops * factor,
            mem_bandwidth: self.mem_bandwidth * factor,
            smem_bandwidth: self.smem_bandwidth * factor,
            launch_overhead: self.launch_overhead,
        }
    }

    /// Synthetic launch record approximating one *protected* `m×n · n×q`
    /// multiplication request: the dominant GEMM FMAs plus the checksum
    /// encode/check traffic, placed on `stream` so a wave of requests
    /// overlaps in [`PerfModel::schedule`] exactly like the batch
    /// engine's per-request streams do.
    ///
    /// This is a *costing* record — block geometry assumes the default
    /// 32×32 macro tiling — used to rank placements before any kernel
    /// has run; it is never mixed into a real device log.
    pub fn gemm_request_record(m: usize, n: usize, q: usize, stream: u64) -> LaunchRecord {
        let (m64, n64, q64) = (m as u64, n as u64, q as u64);
        let tile = 32u64;
        let blocks = m64.div_ceil(tile) * q64.div_ceil(tile);
        let stats = crate::stats::KernelStats {
            // GEMM body plus the two checksum-row encodes and the check
            // GEMV (one extra row/col of the same inner dimension each).
            ffma: m64 * n64 * q64 + n64 * (m64 + q64) + n64 * q64,
            gmem_loads: m64 * n64 + n64 * q64,
            gmem_stores: m64 * q64,
            blocks: blocks.max(1),
            ..Default::default()
        };
        let mut rec = LaunchRecord::synthetic("gemm_request", 0.9, stats);
        rec.stream = stream;
        rec
    }

    /// Modelled makespan of a wave of protected GEMM requests (one
    /// synthetic record per shape, each on its own stream) run through
    /// the multi-stream scheduler on `num_sms` SMs.
    ///
    /// The service layer's placement cost: lower is a better fit. Costs
    /// from differently-scaled models ([`PerfModel::scaled`]) are
    /// directly comparable — they share one unit, modelled seconds.
    pub fn gemm_wave_cost(&self, shapes: &[(usize, usize, usize)], num_sms: usize) -> f64 {
        let log: Vec<LaunchRecord> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, n, q))| {
                let mut rec = Self::gemm_request_record(m, n, q, i as u64 + 1);
                rec.seq = i as u64;
                rec
            })
            .collect();
        self.stream_makespan(&log, num_sms)
    }

    /// Modelled cost of a single protected GEMM request — the
    /// denominator handle for measured/modelled calibration bookkeeping:
    /// the service layer's per-(replica, shape-class) EWMA ratios divide
    /// measured wall latency by exactly this quantity, so keeping it a
    /// named handle (rather than an ad-hoc one-shape wave) pins the
    /// contract that numerator and denominator price the same work.
    pub fn gemm_request_cost(&self, shape: (usize, usize, usize), num_sms: usize) -> f64 {
        self.gemm_wave_cost(&[shape], num_sms)
    }

    /// Modelled busy time of SM `sm` during launch `rec` (for per-SM
    /// trace tracks): the roofline at per-SM shares of the device rates,
    /// without launch overhead (driver time, not SM occupancy), clamped
    /// to the launch's busy window `kernel_time - launch_overhead`. The
    /// device-level model owns total time; per-SM load imbalance beyond
    /// it is clipped so SM slices never spill into the next launch.
    pub fn sm_time(&self, rec: &LaunchRecord, sm: usize) -> f64 {
        let Some(stats) = rec.per_sm.get(sm) else { return 0.0 };
        let n = rec.per_sm.len().max(1) as f64;
        let compute =
            stats.flops() as f64 / (self.peak_dp_flops / n * rec.utilization.max(1e-6));
        let gmem = stats.gmem_bytes() as f64 / (self.mem_bandwidth / n);
        let smem = (stats.smem_accesses * 8) as f64 / (self.smem_bandwidth / n);
        let busy = self.kernel_time(rec) - self.launch_overhead;
        compute.max(gmem).max(smem).min(busy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::KernelStats;

    fn rec(flops: u64, loads: u64, util: f64) -> LaunchRecord {
        LaunchRecord::synthetic(
            "k",
            util,
            KernelStats { fadd: flops, gmem_loads: loads, ..Default::default() },
        )
    }

    #[test]
    fn compute_bound_kernel() {
        let m = PerfModel::k20c();
        // 1.17e12 flops at utilization 1.0 => ~1 second.
        let t = m.kernel_time(&rec(1_170_000_000_000, 0, 1.0));
        assert!((t - 1.0).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn memory_bound_kernel() {
        let m = PerfModel::k20c();
        // 26e9 words = 208e9 bytes => ~1 second of memory time.
        let t = m.kernel_time(&rec(1000, 26_000_000_000, 1.0));
        assert!((t - 1.0).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn utilization_slows_compute() {
        let m = PerfModel::k20c();
        let fast = m.kernel_time(&rec(1_000_000_000, 0, 1.0));
        let slow = m.kernel_time(&rec(1_000_000_000, 0, 0.1));
        assert!(slow > 5.0 * fast);
    }

    #[test]
    fn pipeline_sums_and_gflops() {
        let m = PerfModel::k20c();
        let log = vec![rec(1_170_000_000_000, 0, 1.0), rec(1_170_000_000_000, 0, 1.0)];
        let t = m.pipeline_time(&log);
        assert!((t - 2.0).abs() < 1e-2);
        // Useful flops = total flops here: ~1170 GFLOPS over 2 s of work.
        let g = m.gflops(2 * 1_170_000_000_000, &log);
        assert!((g - 1170.0).abs() < 10.0, "g = {g}");
        assert_eq!(m.breakdown(&log).len(), 2);
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let m = PerfModel::k20c();
        let t = m.kernel_time(&rec(1, 1, 1.0));
        assert!(t >= m.launch_overhead);
    }

    #[test]
    fn phase_breakdown_partitions_pipeline_time() {
        let m = PerfModel::k20c();
        let mut log = vec![rec(1_000_000, 0, 1.0), rec(2_000_000, 10, 1.0), rec(500, 9000, 1.0)];
        log[0].phase = "gemm".into();
        log[1].phase = "gemm".into();
        log[2].phase = "check".into();
        let phases = m.phase_breakdown(&log);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].phase, "gemm");
        assert_eq!(phases[0].launches, 2);
        assert_eq!(phases[0].flops, 3_000_000);
        let total: f64 = phases.iter().map(|p| p.time).sum();
        let direct = m.pipeline_time(&log);
        assert!((total - direct).abs() <= 1e-12 * direct, "{total} vs {direct}");
    }

    fn streamed(seq: u64, stream: u64, deps: Vec<u64>, flops: u64, blocks: u64) -> LaunchRecord {
        let mut r = LaunchRecord::synthetic(
            "k",
            1.0,
            KernelStats { fadd: flops, blocks, ..Default::default() },
        );
        r.seq = seq;
        r.stream = stream;
        r.deps = deps;
        r
    }

    #[test]
    fn single_stream_schedule_matches_pipeline_time() {
        let m = PerfModel::k20c();
        let log = vec![
            streamed(0, 0, vec![], 1_000_000_000, 13),
            streamed(1, 0, vec![0], 2_000_000_000, 13),
            streamed(2, 0, vec![1], 500_000_000, 1),
        ];
        let s = m.schedule(&log, 13);
        let seq_time = m.pipeline_time(&log);
        assert!(
            (s.makespan - seq_time).abs() <= 1e-12 * seq_time,
            "makespan {} vs pipeline {}",
            s.makespan,
            seq_time
        );
        // In-stream order is preserved.
        for w in s.launches.windows(2) {
            assert!(w[1].busy_start >= w[0].finish - 1e-15);
        }
    }

    #[test]
    fn same_stream_serializes_even_without_recorded_deps() {
        // Synthetic logs carry no dependency edges; the scheduler's own
        // per-stream frontier must still serialize them.
        let m = PerfModel::k20c();
        let log = vec![
            streamed(0, 0, vec![], 1_000_000_000, 13),
            streamed(1, 0, vec![], 1_000_000_000, 13),
        ];
        let s = m.schedule(&log, 13);
        let seq_time = m.pipeline_time(&log);
        assert!((s.makespan - seq_time).abs() <= 1e-12 * seq_time);
    }

    #[test]
    fn independent_streams_overlap_on_disjoint_sms() {
        let m = PerfModel::k20c();
        // Two single-block kernels on different streams: each occupies one
        // SM, so on a 2-SM device they run concurrently.
        let log = vec![
            streamed(0, 1, vec![], 1_000_000_000, 1),
            streamed(1, 2, vec![], 1_000_000_000, 1),
        ];
        let overlapped = m.schedule(&log, 2).makespan;
        let sequential = m.pipeline_time(&log);
        assert!(
            overlapped < 0.6 * sequential,
            "overlapped {overlapped} vs sequential {sequential}"
        );
        // On a single SM they contend and (nearly) serialize; only the
        // second launch's driver overhead can hide under the first's busy
        // window.
        let contended = m.schedule(&log, 1).makespan;
        assert!(contended >= sequential - 2.0 * m.launch_overhead);
    }

    #[test]
    fn event_deps_order_across_streams() {
        let m = PerfModel::k20c();
        // Launch 1 (stream 2) waits on launch 0 (stream 1) via a dep edge.
        let log = vec![
            streamed(0, 1, vec![], 1_000_000_000, 1),
            streamed(1, 2, vec![0], 1_000_000_000, 1),
        ];
        let s = m.schedule(&log, 4);
        assert!(s.launches[1].busy_start >= s.launches[0].finish - 1e-15);
        assert_eq!(s.streams(), vec![1, 2]);
        assert!(s.stream_busy(1) > 0.0);
    }

    #[test]
    fn overheads_of_distinct_streams_pipeline() {
        let m = PerfModel::k20c();
        // Overhead-dominated kernels (tiny work) on many streams: driver
        // overheads pipeline, so the makespan is far below the sequential
        // sum of launch overheads.
        let n = 32u64;
        let log: Vec<LaunchRecord> =
            (0..n).map(|i| streamed(i, i + 1, vec![], 1000, 1)).collect();
        let overlapped = m.schedule(&log, 13).makespan;
        let sequential = m.pipeline_time(&log);
        assert!(
            overlapped < sequential / 2.0,
            "overlapped {overlapped} vs sequential {sequential}"
        );
    }

    #[test]
    fn scaled_model_speeds_up_work_but_not_overhead() {
        let m = PerfModel::k20c();
        let fast = m.scaled(2.0);
        let r = rec(1_170_000_000_000, 0, 1.0);
        let t_base = m.kernel_time(&r);
        let t_fast = fast.kernel_time(&r);
        // Compute halves; the launch overhead is unchanged.
        let expected = m.launch_overhead + (t_base - m.launch_overhead) / 2.0;
        assert!((t_fast - expected).abs() <= 1e-9 * expected, "{t_fast} vs {expected}");
        assert_eq!(fast.launch_overhead, m.launch_overhead);
    }

    #[test]
    fn wave_cost_monotone_in_shape_and_device() {
        let m = PerfModel::k20c();
        let small = m.gemm_wave_cost(&[(32, 32, 32)], 13);
        let big = m.gemm_wave_cost(&[(1024, 1024, 1024)], 13);
        assert!(big > 4.0 * small, "1024³ must dwarf 32³: {big} vs {small}");

        // More SMs never slow a wave down, and help a multi-request wave.
        let wave: Vec<(usize, usize, usize)> = vec![(128, 128, 128); 8];
        let narrow = m.gemm_wave_cost(&wave, 4);
        let wide = m.gemm_wave_cost(&wave, 52);
        assert!(wide < narrow, "52 SMs beat 4: {wide} vs {narrow}");

        // A scaled-up model is strictly cheaper on compute-bound waves.
        let fast = m.scaled(3.0).gemm_wave_cost(&wave, 4);
        assert!(fast < narrow, "3x rates beat 1x: {fast} vs {narrow}");

        // Costs add up: a two-request wave costs at least the bigger
        // request and at most the sequential sum.
        let one = m.gemm_wave_cost(&[(128, 128, 128)], 13);
        let two = m.gemm_wave_cost(&[(128, 128, 128), (128, 128, 128)], 13);
        assert!(two >= one && two <= 2.0 * one + m.launch_overhead);
    }

    #[test]
    fn request_cost_handle_matches_single_shape_wave() {
        // The calibration contract: the ratio denominator is exactly the
        // one-shape wave cost, across model scalings and SM counts.
        let m = PerfModel::k20c();
        for &(shape, sms) in
            &[((64, 64, 64), 13), ((256, 256, 256), 26), ((1024, 32, 512), 6)]
        {
            assert_eq!(m.gemm_request_cost(shape, sms), m.gemm_wave_cost(&[shape], sms));
            let scaled = m.scaled(0.5);
            assert_eq!(
                scaled.gemm_request_cost(shape, sms),
                scaled.gemm_wave_cost(&[shape], sms)
            );
        }
    }

    #[test]
    fn sm_time_fits_inside_launch_busy_window() {
        let m = PerfModel::k20c();
        let mut r = rec(0, 0, 1.0);
        // 4 SMs, heavily imbalanced: SM 0 does almost everything.
        r.per_sm = vec![
            KernelStats { fadd: 900_000_000, ..Default::default() },
            KernelStats { fadd: 50_000_000, ..Default::default() },
            KernelStats { fadd: 50_000_000, ..Default::default() },
            KernelStats { fadd: 0, ..Default::default() },
        ];
        for s in &r.per_sm {
            r.stats.merge(s);
        }
        let busy = m.kernel_time(&r) - m.launch_overhead;
        for sm in 0..4 {
            let t = m.sm_time(&r, sm);
            assert!(t >= 0.0 && t <= busy + 1e-15, "sm {sm}: {t} vs busy {busy}");
        }
        // Balanced load models each SM busy for ~the whole window.
        let mut b = rec(0, 0, 1.0);
        b.per_sm = vec![KernelStats { fadd: 250_000_000, ..Default::default() }; 4];
        for s in &b.per_sm {
            b.stats.merge(s);
        }
        let busy = m.kernel_time(&b) - m.launch_overhead;
        let t = m.sm_time(&b, 0);
        assert!((t - busy).abs() <= 1e-9 * busy, "{t} vs {busy}");
        // Out-of-range SM is silent.
        assert_eq!(m.sm_time(&b, 99), 0.0);
    }
}
