//! Analytic performance model (Kepler-class, calibrated to the K20c).
//!
//! The paper reports wall-clock GFLOPS on an Nvidia K20c (Table I). The
//! simulator executes kernels functionally, so runtime is *modelled* from
//! the counters each launch produces: a kernel's time is its launch overhead
//! plus the maximum of its compute time (at the kernel's achievable fraction
//! of peak), its global-memory time, and its shared-memory time — the usual
//! roofline reasoning. Summing over a pipeline's launch log and dividing the
//! *useful* GEMM FLOPs by the total yields the Table-I-style GFLOPS figure.
//!
//! Calibration: `peak_dp_flops` is the K20c's 1.17 TFLOP/s; the default GEMM
//! utilization is set so an unprotected 8192³ multiplication models at the
//! ~1048 GFLOPS the paper measured; memory bandwidth is the K20c's 208 GB/s.
//! EXPERIMENTS.md discusses the calibration and its limits.

use crate::stats::LaunchRecord;

/// Roofline-style device performance parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    /// Peak double-precision throughput in FLOP/s.
    pub peak_dp_flops: f64,
    /// Global-memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Shared-memory aggregate bandwidth in bytes/s.
    pub smem_bandwidth: f64,
    /// Fixed overhead per kernel launch in seconds.
    pub launch_overhead: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        Self::k20c()
    }
}

impl PerfModel {
    /// Parameters modelling the paper's Nvidia K20c (GK110).
    pub fn k20c() -> Self {
        PerfModel {
            peak_dp_flops: 1.17e12,
            mem_bandwidth: 208e9,
            smem_bandwidth: 2.5e12,
            // Effective per-launch cost: driver launch latency plus wave
            // quantization / kernel-tail effects, calibrated against the
            // paper's small-matrix rows of Table I.
            launch_overhead: 6e-5,
        }
    }

    /// Modelled execution time of one launch.
    pub fn kernel_time(&self, rec: &LaunchRecord) -> f64 {
        let compute = rec.stats.flops() as f64 / (self.peak_dp_flops * rec.utilization.max(1e-6));
        let gmem = rec.stats.gmem_bytes() as f64 / self.mem_bandwidth;
        let smem = (rec.stats.smem_accesses * 8) as f64 / self.smem_bandwidth;
        self.launch_overhead + compute.max(gmem).max(smem)
    }

    /// Modelled total time of a pipeline (sum over its launch log).
    pub fn pipeline_time(&self, log: &[LaunchRecord]) -> f64 {
        log.iter().map(|r| self.kernel_time(r)).sum()
    }

    /// Table-I-style GFLOPS: `useful_flops` (the 2·m·n·q of the *user's*
    /// multiplication, excluding protection overhead) over modelled time.
    pub fn gflops(&self, useful_flops: u64, log: &[LaunchRecord]) -> f64 {
        useful_flops as f64 / self.pipeline_time(log) / 1e9
    }

    /// Per-kernel time breakdown `(name, seconds)` for reporting.
    pub fn breakdown(&self, log: &[LaunchRecord]) -> Vec<(String, f64)> {
        log.iter().map(|r| (r.name.clone(), self.kernel_time(r))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::KernelStats;

    fn rec(flops: u64, loads: u64, util: f64) -> LaunchRecord {
        LaunchRecord {
            name: "k".into(),
            utilization: util,
            stats: KernelStats { fadd: flops, gmem_loads: loads, ..Default::default() },
        }
    }

    #[test]
    fn compute_bound_kernel() {
        let m = PerfModel::k20c();
        // 1.17e12 flops at utilization 1.0 => ~1 second.
        let t = m.kernel_time(&rec(1_170_000_000_000, 0, 1.0));
        assert!((t - 1.0).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn memory_bound_kernel() {
        let m = PerfModel::k20c();
        // 26e9 words = 208e9 bytes => ~1 second of memory time.
        let t = m.kernel_time(&rec(1000, 26_000_000_000, 1.0));
        assert!((t - 1.0).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn utilization_slows_compute() {
        let m = PerfModel::k20c();
        let fast = m.kernel_time(&rec(1_000_000_000, 0, 1.0));
        let slow = m.kernel_time(&rec(1_000_000_000, 0, 0.1));
        assert!(slow > 5.0 * fast);
    }

    #[test]
    fn pipeline_sums_and_gflops() {
        let m = PerfModel::k20c();
        let log = vec![rec(1_170_000_000_000, 0, 1.0), rec(1_170_000_000_000, 0, 1.0)];
        let t = m.pipeline_time(&log);
        assert!((t - 2.0).abs() < 1e-2);
        // Useful flops = total flops here: ~1170 GFLOPS over 2 s of work.
        let g = m.gflops(2 * 1_170_000_000_000, &log);
        assert!((g - 1170.0).abs() < 10.0, "g = {g}");
        assert_eq!(m.breakdown(&log).len(), 2);
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let m = PerfModel::k20c();
        let t = m.kernel_time(&rec(1, 1, 1.0));
        assert!(t >= m.launch_overhead);
    }
}
