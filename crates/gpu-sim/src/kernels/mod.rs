//! Generic kernels shared by the protection schemes: the blocked GEMM of
//! Algorithm 3 (with its fault-injection sites) and the element-wise
//! comparison used by TMR. Scheme-specific kernels (checksum encoding,
//! p-max search, bound determination) live in `aabft-core` and
//! `aabft-baselines`.

pub mod compare;
pub mod gemv;
pub mod gemm;
