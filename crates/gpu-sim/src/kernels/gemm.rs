//! Block-based GEMM kernel with register tiling and fault-injection sites —
//! the simulator counterpart of the paper's Algorithm 3.
//!
//! Each thread block computes a `BM × BN` tile of `C = A · B`; within the
//! block, every thread owns an `RX × RY` register micro-tile (its
//! "functional units", the `moduleID` coordinates of the fault-injection
//! interface). Tiles of `A` and `B` stream through shared memory `BK`
//! columns at a time. All three of the paper's fault sites are exercised:
//! the inner-loop multiply, the inner-loop add, and the final merge add.

use crate::device::{BlockCtx, Kernel};
use crate::dim::{BlockIdx, GridDim};
use crate::inject::FaultSite;
use crate::mem::{DeviceBuffer, SharedTile};
use crate::pack::{self, CleanEngine, PackBuf, PackPool, MR, NR};
use crate::stats::KernelStats;
use aabft_numerics::{MulMode, RoundingMode};
use std::cell::RefCell;

/// Per-worker-thread GEMM scratch: the shared-memory tiles and register
/// accumulators live once per thread and are reshaped per block, instead of
/// being reallocated inside every `run_block`.
#[derive(Debug)]
struct GemmScratch {
    sm_a: SharedTile,
    sm_b: SharedTile,
    accum: Vec<f64>,
}

impl GemmScratch {
    const fn new() -> Self {
        GemmScratch { sm_a: SharedTile::empty(), sm_b: SharedTile::empty(), accum: Vec::new() }
    }

    /// Reshapes the tiles and zeroes the accumulators for one block.
    fn reset(&mut self, bm: usize, bn: usize, bk: usize) {
        self.sm_a.reset(bm, bk);
        self.sm_b.reset(bk, bn);
        self.accum.clear();
        self.accum.resize(bm * bn, 0.0);
    }
}

thread_local! {
    static SCRATCH: RefCell<GemmScratch> = const { RefCell::new(GemmScratch::new()) };
}

/// Tile-shape parameters of the blocked GEMM (the `BM/BN/BK/RX/RY` of
/// Algorithm 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmTiling {
    /// Result-tile rows per block.
    pub bm: usize,
    /// Result-tile columns per block.
    pub bn: usize,
    /// Shared-memory depth per K iteration.
    pub bk: usize,
    /// Register-tile rows per thread.
    pub rx: usize,
    /// Register-tile columns per thread.
    pub ry: usize,
}

impl Default for GemmTiling {
    fn default() -> Self {
        // 64x64 tiles with BK = 16 give 0.125 bytes of global traffic per
        // FLOP -- compute-bound on K20c-class bandwidth, like the tuned
        // kernels of Tan et al. [19] the paper builds on.
        GemmTiling { bm: 64, bn: 64, bk: 16, rx: 4, ry: 4 }
    }
}

impl GemmTiling {
    /// Threads per block implied by the tiling.
    pub fn threads_per_block(&self) -> usize {
        (self.bm / self.rx) * (self.bn / self.ry)
    }

    /// Number of per-thread functional units (`moduleID` range).
    pub fn modules(&self) -> usize {
        self.rx * self.ry
    }

    /// Validates divisibility constraints.
    ///
    /// # Panics
    ///
    /// Panics if `bm % rx != 0` or `bn % ry != 0` or any field is zero.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Checks divisibility constraints, returning a typed error instead of
    /// panicking (validating config builders route through this).
    pub fn check(&self) -> Result<(), crate::error::ConfigError> {
        use crate::error::ConfigError;
        if self.bm == 0 || self.bn == 0 || self.bk == 0 || self.rx == 0 || self.ry == 0 {
            return Err(ConfigError::new(
                "tiling",
                format!("{self:?}"),
                "all tile-shape fields positive",
            ));
        }
        if !self.bm.is_multiple_of(self.rx) {
            return Err(ConfigError::new(
                "tiling.bm",
                format!("bm={} rx={}", self.bm, self.rx),
                "bm divisible by rx",
            ));
        }
        if !self.bn.is_multiple_of(self.ry) {
            return Err(ConfigError::new(
                "tiling.bn",
                format!("bn={} ry={}", self.bn, self.ry),
                "bn divisible by ry",
            ));
        }
        Ok(())
    }
}

/// The blocked matrix-multiplication kernel (Algorithm 3). `A` is `m × n`,
/// `B` is `n × q`, `C` (output, pre-zeroed) is `m × q`.
///
/// # Examples
///
/// ```
/// use aabft_gpu_sim::device::Device;
/// use aabft_gpu_sim::kernels::gemm::{GemmKernel, GemmTiling};
/// use aabft_gpu_sim::mem::DeviceBuffer;
/// use aabft_matrix::{gemm, Matrix};
///
/// let a = Matrix::from_fn(64, 64, |i, j| ((i + 2 * j) as f64 * 0.1).sin());
/// let b = Matrix::from_fn(64, 64, |i, j| ((3 * i + j) as f64 * 0.1).cos());
/// let device = Device::with_defaults();
/// let (da, db) = (DeviceBuffer::from_matrix(&a), DeviceBuffer::from_matrix(&b));
/// let dc = DeviceBuffer::zeros(64 * 64);
/// let kernel = GemmKernel::new(&da, &db, &dc, 64, 64, 64, GemmTiling::default());
/// device.launch(kernel.grid(), &kernel);
/// let c = dc.to_matrix(64, 64);
/// assert!(c.approx_eq(&gemm::multiply(&a, &b), 1e-12));
/// ```
#[derive(Debug)]
pub struct GemmKernel<'a> {
    a: &'a DeviceBuffer,
    b: &'a DeviceBuffer,
    c: &'a DeviceBuffer,
    m: usize,
    n: usize,
    q: usize,
    tiling: GemmTiling,
    mul_mode: MulMode,
    rounding: RoundingMode,
    utilization: f64,
    engine: Option<CleanEngine>,
    pack_pool: Option<&'a PackPool>,
    /// Process-unique pack epoch: a [`PackBuf`] holding this epoch's panels
    /// skips re-packing (operands cannot change between a kernel's blocks).
    pack_epoch: u64,
}

impl<'a> GemmKernel<'a> {
    /// Creates the kernel for `C = A · B` with the given tiling.
    ///
    /// # Panics
    ///
    /// Panics if buffer sizes don't match the dimensions, the dimensions are
    /// not multiples of the tile shape, or the tiling is invalid. Pad inputs
    /// first (the paper's kernels also operate on padded matrices).
    pub fn new(
        a: &'a DeviceBuffer,
        b: &'a DeviceBuffer,
        c: &'a DeviceBuffer,
        m: usize,
        n: usize,
        q: usize,
        tiling: GemmTiling,
    ) -> Self {
        tiling.validate();
        assert_eq!(a.len(), m * n, "A buffer size mismatch");
        assert_eq!(b.len(), n * q, "B buffer size mismatch");
        assert_eq!(c.len(), m * q, "C buffer size mismatch");
        assert_eq!(m % tiling.bm, 0, "m = {m} must be a multiple of bm = {}", tiling.bm);
        assert_eq!(q % tiling.bn, 0, "q = {q} must be a multiple of bn = {}", tiling.bn);
        assert_eq!(n % tiling.bk, 0, "n = {n} must be a multiple of bk = {}", tiling.bk);
        GemmKernel {
            a,
            b,
            c,
            m,
            n,
            q,
            tiling,
            mul_mode: MulMode::Separate,
            rounding: RoundingMode::Nearest,
            utilization: 0.896,
            engine: None,
            pack_pool: None,
            pack_epoch: pack::next_epoch(),
        }
    }

    /// Pins the clean-path engine for this kernel instance (tests and A/B
    /// benchmarks; the default is the packed engine).
    pub fn with_clean_engine(mut self, engine: CleanEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Attaches a [`PackPool`] whose buffers the packed clean engine checks
    /// out per block instead of using the thread-local arena — the batch
    /// engine threads one per pooled `RunBuffers`, so panel allocations
    /// are reused across batch requests of the same plan.
    pub fn with_pack_pool(mut self, pool: &'a PackPool) -> Self {
        self.pack_pool = Some(pool);
        self
    }

    /// Switches the kernel to fused multiply-add arithmetic
    /// (paper Section IV-D).
    pub fn with_mul_mode(mut self, mode: MulMode) -> Self {
        self.mul_mode = mode;
        self
    }

    /// Overrides the modelled utilization (occupancy class).
    pub fn with_utilization(mut self, utilization: f64) -> Self {
        self.utilization = utilization;
        self
    }

    /// Switches the arithmetic to the given rounding mode (truncating
    /// hardware, Section IV-D).
    ///
    /// # Panics
    ///
    /// Panics when combined with [`MulMode::Fused`] (unsupported).
    pub fn with_rounding(mut self, rounding: RoundingMode) -> Self {
        assert!(
            !(rounding == RoundingMode::Truncation && self.mul_mode == MulMode::Fused),
            "truncating fused multiply-add is not supported"
        );
        self.rounding = rounding;
        self
    }

    /// The launch grid covering the whole result matrix.
    pub fn grid(&self) -> GridDim {
        GridDim::new(self.q / self.tiling.bn, self.m / self.tiling.bm)
    }
}

impl Kernel for GemmKernel<'_> {
    fn name(&self) -> &'static str {
        match self.mul_mode {
            MulMode::Separate => "gemm",
            MulMode::Fused => "gemm_fma",
        }
    }

    fn phase(&self) -> &'static str {
        "gemm"
    }

    fn utilization(&self) -> f64 {
        self.utilization
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let GemmTiling { bm, bn, bk, rx, ry } = self.tiling;
        let (row0, col0) = (ctx.block().y * bm, ctx.block().x * bn);
        let threads_y = bm / rx;
        let threads_x = bn / ry;
        ctx.declare_threads(threads_y * threads_x);

        SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        scratch.reset(bm, bn, bk);
        let GemmScratch { sm_a, sm_b, accum } = &mut *scratch;

        let k_tiles = self.n / bk;
        for kt in 0..k_tiles {
            let k0 = kt * bk;
            // Cooperative tile loads (counted as bulk coalesced traffic).
            for i in 0..bm {
                for kk in 0..bk {
                    sm_a.set(i, kk, self.a.get((row0 + i) * self.n + k0 + kk));
                }
            }
            for kk in 0..bk {
                for j in 0..bn {
                    sm_b.set(kk, j, self.b.get((k0 + kk) * self.q + col0 + j));
                }
            }
            ctx.note_gmem_loads((bm * bk + bk * bn) as u64);
            ctx.note_smem((bm * bk + bk * bn) as u64);

            // Inner accumulation (Alg. 3's `ki` loop), per thread.
            for ty in 0..threads_y {
                for tx in 0..threads_x {
                    let base = (ty * threads_x + tx) * rx * ry;
                    for ki in 0..bk {
                        for i in 0..rx {
                            let a_val = sm_a.get(ty * rx + i, ki);
                            for j in 0..ry {
                                let module = i * ry + j;
                                let b_val = sm_b.get(ki, tx * ry + j);
                                let idx = base + module;
                                match self.mul_mode {
                                    MulMode::Separate => {
                                        let p = ctx.mul_at_rm(
                                            FaultSite::InnerMul,
                                            module,
                                            a_val,
                                            b_val,
                                            self.rounding,
                                        );
                                        accum[idx] = ctx.add_at_rm(
                                            FaultSite::InnerAdd,
                                            module,
                                            accum[idx],
                                            p,
                                            self.rounding,
                                        );
                                    }
                                    MulMode::Fused => {
                                        accum[idx] = ctx.fma_at(
                                            FaultSite::InnerAdd,
                                            module,
                                            a_val,
                                            b_val,
                                            accum[idx],
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
            ctx.note_smem((threads_y * threads_x * bk * (rx + ry)) as u64);
        }

        // Final merge into C (Alg. 3's closing accumulation — FinalAdd site).
        for ty in 0..threads_y {
            for tx in 0..threads_x {
                let base = (ty * threads_x + tx) * rx * ry;
                for i in 0..rx {
                    for j in 0..ry {
                        let module = i * ry + j;
                        let gi = row0 + ty * rx + i;
                        let gj = col0 + tx * ry + j;
                        let idx = gi * self.q + gj;
                        let cur = ctx.load(self.c, idx);
                        let merged = ctx.add_at_rm(
                            FaultSite::FinalAdd,
                            module,
                            cur,
                            accum[base + module],
                            self.rounding,
                        );
                        ctx.store(self.c, idx, merged);
                    }
                }
            }
        }
        });
    }

    fn supports_clean_path(&self) -> bool {
        // Truncating arithmetic goes through error-free transforms whose
        // cost is the whole point of measuring — no fast path for it.
        self.rounding == RoundingMode::Nearest
    }

    fn run_block_clean(&self, block: BlockIdx, stats: &mut KernelStats) {
        match self.engine.unwrap_or(CleanEngine::Packed) {
            CleanEngine::Packed => {
                match self.pack_pool {
                    Some(pool) => {
                        let mut buf = pool.take();
                        self.run_block_packed(block, &mut buf);
                        pool.put(buf);
                    }
                    None => pack::with_thread_buf(|buf| self.run_block_packed(block, buf)),
                }
                self.account_clean_block(stats);
            }
            CleanEngine::Scalar => self.run_block_scalar(block, stats),
        }
    }
}

impl GemmKernel<'_> {
    /// Packed clean block: pack the block's `A` rows and `B` columns into
    /// micro-panels, then run the 8×8 microkernel over every panel pair.
    /// Each accumulator still consumes its products in ascending-`k` order
    /// — the same per-accumulator sequence as the instrumented tile loops
    /// — so results are bit-identical for any tiling; only the iteration
    /// order *across* independent accumulators changes, which round-to-
    /// nearest arithmetic cannot observe.
    fn run_block_packed(&self, block: BlockIdx, buf: &mut PackBuf) {
        let GemmTiling { bm, bn, .. } = self.tiling;
        let (row0, col0) = (block.y * bm, block.x * bn);
        let (n, q) = (self.n, self.q);
        // No-op for every block after this worker's first (epoch hit).
        buf.pack_all(self.pack_epoch, self.a, self.b, self.m, bm, n, n, q, bn, q);
        pack::note_packed_block();
        let (ppa, ppb) = (bm.div_ceil(MR), bn.div_ceil(NR));

        for pi in 0..ppa {
            let mr = MR.min(bm - pi * MR);
            let ap = buf.a_panel(block.y * ppa + pi, mr, n);
            for pj in 0..ppb {
                let nr = NR.min(bn - pj * NR);
                let bp = buf.b_panel(block.x * ppb + pj, nr, n);
                let mut acc = [0.0f64; MR * NR];

                if mr == MR && nr == NR {
                    // Hot case: full 8×8 micro-tile, computed as two 4×8
                    // register sub-tiles. A sub-tile's 32 live accumulators
                    // plus the loaded panel fragments fit a 16×256-bit
                    // vector register file (the full 8×8 tile alone would
                    // consume it and spill every iteration); its four rows
                    // of two vectors give 8 independent FMA chains. Each
                    // accumulator still consumes its products in ascending
                    // k — splitting rows only reorders work *across*
                    // accumulators.
                    for half in 0..2 {
                        let i0 = half * 4;
                        let mut sub = [0.0f64; 4 * NR];
                        match self.mul_mode {
                            MulMode::Separate => {
                                for (af, bf) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
                                    for i in 0..4 {
                                        let av = af[i0 + i];
                                        for j in 0..NR {
                                            sub[i * NR + j] += av * bf[j];
                                        }
                                    }
                                }
                            }
                            MulMode::Fused => {
                                for (af, bf) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
                                    for i in 0..4 {
                                        let av = af[i0 + i];
                                        for j in 0..NR {
                                            sub[i * NR + j] =
                                                av.mul_add(bf[j], sub[i * NR + j]);
                                        }
                                    }
                                }
                            }
                        }
                        acc[i0 * NR..(i0 + 4) * NR].copy_from_slice(&sub);
                    }
                } else {
                    // Edge micro-tiles (bm or bn not a multiple of 8).
                    match self.mul_mode {
                        MulMode::Separate => {
                            for (af, bf) in ap.chunks_exact(mr).zip(bp.chunks_exact(nr)) {
                                for (i, &av) in af.iter().enumerate() {
                                    for (j, &bv) in bf.iter().enumerate() {
                                        acc[i * NR + j] += av * bv;
                                    }
                                }
                            }
                        }
                        MulMode::Fused => {
                            for (af, bf) in ap.chunks_exact(mr).zip(bp.chunks_exact(nr)) {
                                for (i, &av) in af.iter().enumerate() {
                                    for (j, &bv) in bf.iter().enumerate() {
                                        acc[i * NR + j] = av.mul_add(bv, acc[i * NR + j]);
                                    }
                                }
                            }
                        }
                    }
                }

                for i in 0..mr {
                    let base = (row0 + pi * MR + i) * q + col0 + pj * NR;
                    for j in 0..nr {
                        self.c.set(base + j, self.c.get(base + j) + acc[i * NR + j]);
                    }
                }
            }
        }
    }

    /// The PR-4 clean body (4×4 register blocking over direct buffer
    /// reads), kept as the `CleanEngine::Scalar` baseline `bench_gemm`
    /// measures the packed engine against.
    fn run_block_scalar(&self, block: BlockIdx, stats: &mut KernelStats) {
        let GemmTiling { bm, bn, bk, rx, ry } = self.tiling;
        let (row0, col0) = (block.y * bm, block.x * bn);
        let threads_y = bm / rx;
        let threads_x = bn / ry;

        if rx == 4 && ry == 4 {
            // Register-blocked specialization of the default micro-tile: the
            // 4×4 accumulator lives in a fixed-size array (registers), and
            // the k loop walks 0..n directly — the same per-accumulator
            // order as the instrumented path's kt-outer/ki-inner loops, so
            // results stay bit-identical while skipping the tile staging.
            let (n, q) = (self.n, self.q);
            for ty in 0..threads_y {
                let r0 = row0 + ty * 4;
                for tx in 0..threads_x {
                    let c0 = col0 + tx * 4;
                    let mut acc = [0.0f64; 16];
                    match self.mul_mode {
                        MulMode::Separate => {
                            for k in 0..n {
                                let bb = k * q + c0;
                                let b0 = self.b.get(bb);
                                let b1 = self.b.get(bb + 1);
                                let b2 = self.b.get(bb + 2);
                                let b3 = self.b.get(bb + 3);
                                for i in 0..4 {
                                    let av = self.a.get((r0 + i) * n + k);
                                    acc[i * 4] += av * b0;
                                    acc[i * 4 + 1] += av * b1;
                                    acc[i * 4 + 2] += av * b2;
                                    acc[i * 4 + 3] += av * b3;
                                }
                            }
                        }
                        MulMode::Fused => {
                            for k in 0..n {
                                let bb = k * q + c0;
                                let b0 = self.b.get(bb);
                                let b1 = self.b.get(bb + 1);
                                let b2 = self.b.get(bb + 2);
                                let b3 = self.b.get(bb + 3);
                                for i in 0..4 {
                                    let av = self.a.get((r0 + i) * n + k);
                                    acc[i * 4] = av.mul_add(b0, acc[i * 4]);
                                    acc[i * 4 + 1] = av.mul_add(b1, acc[i * 4 + 1]);
                                    acc[i * 4 + 2] = av.mul_add(b2, acc[i * 4 + 2]);
                                    acc[i * 4 + 3] = av.mul_add(b3, acc[i * 4 + 3]);
                                }
                            }
                        }
                    }
                    for i in 0..4 {
                        for j in 0..4 {
                            let idx = (r0 + i) * q + c0 + j;
                            self.c.set(idx, self.c.get(idx) + acc[i * 4 + j]);
                        }
                    }
                }
            }
            self.account_clean_block(stats);
            return;
        }

        SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            scratch.reset(bm, bn, bk);
            let GemmScratch { sm_a, sm_b, accum } = &mut *scratch;
            let sm_a = sm_a.as_mut_slice();
            let sm_b = sm_b.as_mut_slice();

            let k_tiles = self.n / bk;
            for kt in 0..k_tiles {
                let k0 = kt * bk;
                for i in 0..bm {
                    self.a.read_slice((row0 + i) * self.n + k0, &mut sm_a[i * bk..(i + 1) * bk]);
                }
                for kk in 0..bk {
                    self.b.read_slice((k0 + kk) * self.q + col0, &mut sm_b[kk * bn..(kk + 1) * bn]);
                }

                // Same ty → tx → ki → i → j order as the instrumented path:
                // each accumulator sees its products in the identical
                // sequence, so round-to-nearest results are bit-identical.
                for ty in 0..threads_y {
                    for tx in 0..threads_x {
                        let base = (ty * threads_x + tx) * rx * ry;
                        let acc = &mut accum[base..base + rx * ry];
                        for ki in 0..bk {
                            let b_row = &sm_b[ki * bn + tx * ry..ki * bn + tx * ry + ry];
                            for i in 0..rx {
                                let a_val = sm_a[(ty * rx + i) * bk + ki];
                                let acc_row = &mut acc[i * ry..i * ry + ry];
                                match self.mul_mode {
                                    MulMode::Separate => {
                                        for (c, &b_val) in acc_row.iter_mut().zip(b_row) {
                                            *c += a_val * b_val;
                                        }
                                    }
                                    MulMode::Fused => {
                                        for (c, &b_val) in acc_row.iter_mut().zip(b_row) {
                                            *c = a_val.mul_add(b_val, *c);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }

            for ty in 0..threads_y {
                for tx in 0..threads_x {
                    let base = (ty * threads_x + tx) * rx * ry;
                    for i in 0..rx {
                        let gi = row0 + ty * rx + i;
                        for j in 0..ry {
                            let gj = col0 + tx * ry + j;
                            let idx = gi * self.q + gj;
                            self.c.set(idx, self.c.get(idx) + accum[base + i * ry + j]);
                        }
                    }
                }
            }
        });

        self.account_clean_block(stats);
    }
}

impl GemmKernel<'_> {
    /// Closed-form accounting for one clean-path block, mirroring exactly
    /// what the instrumented path counts (derivation in DESIGN.md §11).
    fn account_clean_block(&self, stats: &mut KernelStats) {
        let GemmTiling { bm, bn, bk, rx, ry } = self.tiling;
        let threads = ((bm / rx) * (bn / ry)) as u64;
        let elems = (bm * bn) as u64;
        let k_tiles = (self.n / bk) as u64;
        let n = self.n as u64;
        stats.threads += threads;
        stats.gmem_loads += k_tiles * (bm * bk + bk * bn) as u64 + elems;
        stats.gmem_stores += elems;
        stats.smem_accesses += k_tiles * ((bm * bk + bk * bn) as u64 + threads * (bk * (rx + ry)) as u64);
        match self.mul_mode {
            MulMode::Separate => {
                stats.fmul += n * elems;
                stats.fadd += n * elems + elems;
                stats.fpu_ticks += 2 * n * elems + elems;
            }
            MulMode::Fused => {
                stats.ffma += n * elems;
                stats.fadd += elems;
                stats.fpu_ticks += n * elems + elems;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use aabft_matrix::{gemm, Matrix};

    fn run(m: usize, n: usize, q: usize, tiling: GemmTiling, mode: MulMode) -> (Matrix<f64>, Matrix<f64>) {
        let a = Matrix::from_fn(m, n, |i, j| ((i * 7 + j * 3) as f64 * 0.017).sin());
        let b = Matrix::from_fn(n, q, |i, j| ((i * 5 + j * 11) as f64 * 0.013).cos());
        let device = Device::with_defaults();
        let (da, db) = (DeviceBuffer::from_matrix(&a), DeviceBuffer::from_matrix(&b));
        let dc = DeviceBuffer::zeros(m * q);
        let kernel = GemmKernel::new(&da, &db, &dc, m, n, q, tiling).with_mul_mode(mode);
        device.launch(kernel.grid(), &kernel);
        (dc.to_matrix(m, q), gemm::multiply(&a, &b))
    }

    #[test]
    fn matches_reference_default_tiling() {
        let (c, expect) = run(64, 64, 64, GemmTiling::default(), MulMode::Separate);
        assert!(c.approx_eq(&expect, 1e-12), "max diff {}", c.max_abs_diff(&expect));
    }

    #[test]
    fn matches_reference_rectangular() {
        let t = GemmTiling { bm: 16, bn: 8, bk: 4, rx: 2, ry: 2 };
        let (c, expect) = run(32, 20, 24, t, MulMode::Separate);
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn fma_mode_close_to_reference() {
        let (c, expect) = run(64, 64, 64, GemmTiling::default(), MulMode::Fused);
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn stats_count_expected_flops() {
        let m = 64;
        let a = Matrix::from_fn(m, m, |_, _| 1.0);
        let device = Device::with_defaults();
        let (da, db) = (DeviceBuffer::from_matrix(&a), DeviceBuffer::from_matrix(&a));
        let dc = DeviceBuffer::zeros(m * m);
        let kernel = GemmKernel::new(&da, &db, &dc, m, m, m, GemmTiling::default());
        let stats = device.launch(kernel.grid(), &kernel);
        // n^3 multiplies, n^3 inner adds, n^2 final adds.
        assert_eq!(stats.fmul, (m * m * m) as u64);
        assert_eq!(stats.fadd, (m * m * m + m * m) as u64);
        assert_eq!(stats.gmem_stores, (m * m) as u64);
    }

    #[test]
    #[should_panic(expected = "multiple of bm")]
    fn non_multiple_dims_panic() {
        let da = DeviceBuffer::zeros(65 * 64);
        let db = DeviceBuffer::zeros(64 * 64);
        let dc = DeviceBuffer::zeros(65 * 64);
        GemmKernel::new(&da, &db, &dc, 65, 64, 64, GemmTiling::default());
    }
}
