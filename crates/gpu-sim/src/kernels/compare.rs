//! Element-wise comparison kernel (the TMR voter's building block).
//!
//! The paper's TMR baseline runs an identical GEMM three times and "performs
//! a direct comparison of the result matrices" (Section VI-A). This kernel
//! compares two buffers chunk-per-block and writes each block's mismatch
//! count to a per-block output slot; the host reduces those counts.

use crate::device::{BlockCtx, Kernel};
use crate::dim::{BlockIdx, GridDim};
use crate::mem::DeviceBuffer;
use crate::stats::KernelStats;

/// Compares two equal-length buffers; block `i` scans chunk `i` and writes
/// its mismatch count (as an f64 word) to `counts[i]`.
#[derive(Debug)]
pub struct CompareKernel<'a> {
    x: &'a DeviceBuffer,
    y: &'a DeviceBuffer,
    counts: &'a DeviceBuffer,
    chunk: usize,
    tolerance: f64,
}

impl<'a> CompareKernel<'a> {
    /// Creates a comparison of `x` against `y` with `counts.len()` blocks.
    /// `tolerance = 0.0` demands bitwise-equal values (identical replicas).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or `counts` is empty.
    pub fn new(
        x: &'a DeviceBuffer,
        y: &'a DeviceBuffer,
        counts: &'a DeviceBuffer,
        tolerance: f64,
    ) -> Self {
        assert_eq!(x.len(), y.len(), "compared buffers must have equal length");
        assert!(!counts.is_empty(), "need at least one counting block");
        let chunk = x.len().div_ceil(counts.len());
        CompareKernel { x, y, counts, chunk, tolerance }
    }

    /// The launch grid (one block per chunk).
    pub fn grid(&self) -> GridDim {
        GridDim::linear_1d(self.counts.len())
    }

    /// Host-side reduction of the per-block counts after the launch.
    pub fn total_mismatches(&self) -> u64 {
        self.counts.to_vec().iter().map(|&c| c as u64).sum()
    }
}

impl Kernel for CompareKernel<'_> {
    fn name(&self) -> &'static str {
        "compare"
    }
    fn phase(&self) -> &'static str {
        "compare"
    }

    // Pure streaming comparison: memory-bound by construction.
    fn utilization(&self) -> f64 {
        0.05
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let b = ctx.block().x;
        let start = b * self.chunk;
        let end = (start + self.chunk).min(self.x.len());
        // Fixed block geometry (warp-sized), independent of the tail chunk.
        ctx.declare_threads(32.min(self.chunk).max(1));
        let mut mismatches = 0u64;
        for i in start..end {
            let xv = ctx.load(self.x, i);
            let yv = ctx.load(self.y, i);
            let diff = ctx.sub(xv, yv);
            let d = ctx.abs(diff);
            if d > self.tolerance {
                mismatches += 1;
            }
        }
        ctx.store(self.counts, b, mismatches as f64);
    }

    fn supports_clean_path(&self) -> bool {
        true
    }

    fn run_block_clean(&self, block: BlockIdx, stats: &mut KernelStats) {
        let b = block.x;
        let start = b * self.chunk;
        let end = (start + self.chunk).min(self.x.len());
        let mut mismatches = 0u64;
        for i in start..end {
            if (self.x.get(i) - self.y.get(i)).abs() > self.tolerance {
                mismatches += 1;
            }
        }
        self.counts.set(b, mismatches as f64);
        let e = (end - start) as u64;
        stats.threads += 32.min(self.chunk).max(1) as u64;
        stats.gmem_loads += 2 * e;
        stats.gmem_stores += 1;
        stats.fadd += e;
        stats.fcmp += e;
        stats.fpu_ticks += 2 * e;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;

    #[test]
    fn identical_buffers_have_no_mismatches() {
        let device = Device::with_defaults();
        let x = DeviceBuffer::from_vec((0..100).map(|i| i as f64).collect());
        let y = DeviceBuffer::from_vec((0..100).map(|i| i as f64).collect());
        let counts = DeviceBuffer::zeros(7);
        let k = CompareKernel::new(&x, &y, &counts, 0.0);
        device.launch(k.grid(), &k);
        assert_eq!(k.total_mismatches(), 0);
    }

    #[test]
    fn counts_every_difference() {
        let device = Device::with_defaults();
        let x = DeviceBuffer::from_vec(vec![0.0; 50]);
        let y = DeviceBuffer::from_vec(
            (0..50).map(|i| if i % 10 == 3 { 1.0 } else { 0.0 }).collect(),
        );
        let counts = DeviceBuffer::zeros(4);
        let k = CompareKernel::new(&x, &y, &counts, 0.0);
        device.launch(k.grid(), &k);
        assert_eq!(k.total_mismatches(), 5);
    }

    #[test]
    fn tolerance_masks_small_differences() {
        let device = Device::with_defaults();
        let x = DeviceBuffer::from_vec(vec![1.0; 10]);
        let y = DeviceBuffer::from_vec(vec![1.0 + 1e-12; 10]);
        let counts = DeviceBuffer::zeros(2);
        let k = CompareKernel::new(&x, &y, &counts, 1e-9);
        device.launch(k.grid(), &k);
        assert_eq!(k.total_mismatches(), 0);
    }
}
