//! Blocked matrix–vector multiplication kernel with the same
//! fault-injection sites as the GEMM of Algorithm 3.
//!
//! One thread block computes a `BM`-row slice of `y = A · x`; each thread
//! owns `RX` rows (its `moduleID` coordinates are the register-tile row
//! indices). The inner loop walks the full row, so the inner-mul/inner-add
//! sites see the same dynamic-instance semantics as the GEMM kernel.

use crate::device::{BlockCtx, Kernel};
use crate::dim::{BlockIdx, GridDim};
use crate::inject::FaultSite;
use crate::mem::DeviceBuffer;
use crate::stats::KernelStats;

/// Tile shape of the blocked GEMV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemvTiling {
    /// Rows per thread block.
    pub bm: usize,
    /// Rows per thread (`moduleID` range).
    pub rx: usize,
}

impl Default for GemvTiling {
    fn default() -> Self {
        GemvTiling { bm: 64, rx: 4 }
    }
}

impl GemvTiling {
    /// Threads per block.
    pub fn threads_per_block(&self) -> usize {
        self.bm / self.rx
    }

    /// Validates divisibility.
    ///
    /// # Panics
    ///
    /// Panics if `bm` is not a positive multiple of `rx`.
    pub fn validate(&self) {
        assert!(self.bm > 0 && self.rx > 0, "tiling fields must be positive");
        assert_eq!(self.bm % self.rx, 0, "bm must be divisible by rx");
    }
}

/// The blocked GEMV kernel: `y = A · x` with `A` of shape `m × n`
/// (row-major), `x` of length `n`, `y` of length `m` (pre-zeroed).
#[derive(Debug)]
pub struct GemvKernel<'a> {
    a: &'a DeviceBuffer,
    x: &'a DeviceBuffer,
    y: &'a DeviceBuffer,
    m: usize,
    n: usize,
    tiling: GemvTiling,
    utilization: f64,
}

impl<'a> GemvKernel<'a> {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics on buffer-size mismatch or if `m` is not a multiple of `bm`.
    pub fn new(
        a: &'a DeviceBuffer,
        x: &'a DeviceBuffer,
        y: &'a DeviceBuffer,
        m: usize,
        n: usize,
        tiling: GemvTiling,
    ) -> Self {
        tiling.validate();
        assert_eq!(a.len(), m * n, "A buffer size mismatch");
        assert_eq!(x.len(), n, "x buffer size mismatch");
        assert_eq!(y.len(), m, "y buffer size mismatch");
        assert_eq!(m % tiling.bm, 0, "m = {m} must be a multiple of bm = {}", tiling.bm);
        // GEMV streams the whole matrix once: memory-bound by nature.
        GemvKernel { a, x, y, m, n, tiling, utilization: 0.12 }
    }

    /// The launch grid covering all rows.
    pub fn grid(&self) -> GridDim {
        GridDim::linear_1d(self.m / self.tiling.bm)
    }
}

impl Kernel for GemvKernel<'_> {
    fn name(&self) -> &'static str {
        "gemv"
    }
    fn phase(&self) -> &'static str {
        "gemv"
    }

    fn utilization(&self) -> f64 {
        self.utilization
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let GemvTiling { bm, rx } = self.tiling;
        let row0 = ctx.block().x * bm;
        let threads = bm / rx;
        ctx.declare_threads(threads);
        for t in 0..threads {
            for r in 0..rx {
                let module = r;
                let row = row0 + t * rx + r;
                let mut acc = 0.0;
                for k in 0..self.n {
                    let av = ctx.load(self.a, row * self.n + k);
                    let xv = ctx.load(self.x, k);
                    let p = ctx.mul_at(FaultSite::InnerMul, module, av, xv);
                    acc = ctx.add_at(FaultSite::InnerAdd, module, acc, p);
                }
                let cur = ctx.load(self.y, row);
                let merged = ctx.add_at(FaultSite::FinalAdd, module, cur, acc);
                ctx.store(self.y, row, merged);
            }
        }
    }

    fn supports_clean_path(&self) -> bool {
        true
    }

    fn run_block_clean(&self, block: BlockIdx, stats: &mut KernelStats) {
        let GemvTiling { bm, rx } = self.tiling;
        let row0 = block.x * bm;
        // Same row order (t, r) and inner k order as the instrumented path.
        for t in 0..(bm / rx) {
            for r in 0..rx {
                let row = row0 + t * rx + r;
                let mut acc = 0.0;
                for k in 0..self.n {
                    acc += self.a.get(row * self.n + k) * self.x.get(k);
                }
                self.y.set(row, self.y.get(row) + acc);
            }
        }
        let (bm, n) = (bm as u64, self.n as u64);
        stats.threads += bm / rx as u64;
        stats.gmem_loads += 2 * bm * n + bm;
        stats.gmem_stores += bm;
        stats.fmul += bm * n;
        stats.fadd += bm * n + bm;
        stats.fpu_ticks += 2 * bm * n + bm;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::inject::InjectionPlan;
    use aabft_matrix::Matrix;

    fn inputs(m: usize, n: usize) -> (Matrix<f64>, Vec<f64>) {
        (
            Matrix::from_fn(m, n, |i, j| ((i * 3 + j * 7) as f64 * 0.11).sin()),
            (0..n).map(|k| ((k * 5) as f64 * 0.13).cos()).collect(),
        )
    }

    fn reference(a: &Matrix<f64>, x: &[f64]) -> Vec<f64> {
        (0..a.rows()).map(|i| a.row(i).iter().zip(x).map(|(r, v)| r * v).sum()).collect()
    }

    #[test]
    fn matches_reference() {
        let (a, x) = inputs(32, 48);
        let device = Device::with_defaults();
        let da = DeviceBuffer::from_matrix(&a);
        let dx = DeviceBuffer::from_vec(x.clone());
        let dy = DeviceBuffer::zeros(32);
        let k = GemvKernel::new(&da, &dx, &dy, 32, 48, GemvTiling { bm: 8, rx: 2 });
        let stats = device.launch(k.grid(), &k);
        let expect = reference(&a, &x);
        for (i, (got, want)) in dy.to_vec().iter().zip(&expect).enumerate() {
            assert!((got - want).abs() < 1e-13, "row {i}");
        }
        assert_eq!(stats.fmul, 32 * 48);
        assert_eq!(stats.fadd, 32 * 48 + 32);
    }

    #[test]
    fn injection_corrupts_one_row() {
        let (a, x) = inputs(16, 16);
        let device = Device::with_defaults();
        let da = DeviceBuffer::from_matrix(&a);
        let dx = DeviceBuffer::from_vec(x.clone());
        let dy = DeviceBuffer::zeros(16);
        device.arm_injection(InjectionPlan {
            sm: 0,
            site: FaultSite::FinalAdd,
            module: 1,
            k_injection: 1,
            mask: 1 << 62,
        });
        let k = GemvKernel::new(&da, &dx, &dy, 16, 16, GemvTiling { bm: 16, rx: 2 });
        device.launch(k.grid(), &k);
        assert!(device.disarm_injection());
        let expect = reference(&a, &x);
        let got = dy.to_vec();
        let corrupted: Vec<usize> =
            (0..16).filter(|&i| (got[i] - expect[i]).abs() > 1e-9).collect();
        assert_eq!(corrupted.len(), 1, "exactly one row corrupted: {corrupted:?}");
    }
}
