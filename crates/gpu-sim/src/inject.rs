//! Fault-injection targeting of individual floating-point instructions.
//!
//! Implements the injection interface of the paper's Algorithm 3: a fault is
//! described by the streaming multiprocessor it strikes, the kind of
//! floating-point operation (inner-loop multiply, inner-loop add or
//! final-sum add), the module (which of the `RX·RY` per-thread adders or
//! multipliers), the dynamic instance `kInjection` at which it fires, and
//! the XOR error vector applied to the result word.

use std::sync::atomic::{AtomicBool, Ordering};

/// The three floating-point operation classes Algorithm 3 exposes as fault
/// targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Multiplication inside the inner accumulation loop.
    InnerMul,
    /// Addition inside the inner accumulation loop.
    InnerAdd,
    /// Addition when merging accumulators into the result matrix.
    FinalAdd,
}

impl FaultSite {
    /// Number of distinct sites.
    pub const COUNT: usize = 3;
    /// All sites, for campaign sweeps.
    pub const ALL: [FaultSite; 3] = [FaultSite::InnerMul, FaultSite::InnerAdd, FaultSite::FinalAdd];

    /// Dense index for per-site counters.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FaultSite::InnerMul => 0,
            FaultSite::InnerAdd => 1,
            FaultSite::FinalAdd => 2,
        }
    }

    /// Human-readable label matching the paper's Figure 4 panels.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::InnerMul => "inner loop multiplication",
            FaultSite::InnerAdd => "inner loop addition",
            FaultSite::FinalAdd => "final sum addition",
        }
    }
}

/// A single planned fault: *which* dynamic floating-point instruction to
/// corrupt and *how* (XOR mask).
///
/// # Examples
///
/// ```
/// use aabft_gpu_sim::inject::{FaultSite, InjectionPlan};
///
/// // Flip mantissa bit 12 of the 3rd inner-loop multiply executed by
/// // module 0 on SM 1.
/// let plan = InjectionPlan {
///     sm: 1,
///     site: FaultSite::InnerMul,
///     module: 0,
///     k_injection: 3,
///     mask: 1 << 12,
/// };
/// assert_eq!(plan.site, FaultSite::InnerMul);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionPlan {
    /// Streaming multiprocessor the fault strikes.
    pub sm: usize,
    /// Operation class targeted.
    pub site: FaultSite,
    /// Which of the per-thread functional units (`moduleID` in Alg. 3),
    /// i.e. the flattened `RX·RY` register-tile position.
    pub module: usize,
    /// 1-based dynamic instance of the (sm, site, module) operation at which
    /// the fault fires (`kInjection` in Alg. 3).
    pub k_injection: u64,
    /// Error vector XORed onto the result's bit pattern.
    pub mask: u64,
}

/// Shared state of one armed injection: the plan plus a fired flag so the
/// fault strikes exactly once.
#[derive(Debug)]
pub struct InjectionState {
    /// The planned fault.
    pub plan: InjectionPlan,
    fired: AtomicBool,
}

impl InjectionState {
    /// Arms a new injection.
    pub fn new(plan: InjectionPlan) -> Self {
        InjectionState { plan, fired: AtomicBool::new(false) }
    }

    /// `true` once the fault has struck.
    pub fn has_fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Applies the fault to `value` if `(sm, site, module, count)` matches
    /// the plan and it has not fired yet. Returns the (possibly corrupted)
    /// value.
    #[inline]
    pub fn apply(&self, sm: usize, site: FaultSite, module: usize, count: u64, value: f64) -> f64 {
        let p = &self.plan;
        if sm == p.sm
            && site == p.site
            && module == p.module
            && count == p.k_injection
            && !self.fired.swap(true, Ordering::Relaxed)
        {
            f64::from_bits(value.to_bits() ^ p.mask)
        } else {
            value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_indices_are_dense() {
        let mut seen = [false; FaultSite::COUNT];
        for s in FaultSite::ALL {
            seen[s.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn fires_exactly_once_at_match() {
        let st = InjectionState::new(InjectionPlan {
            sm: 0,
            site: FaultSite::InnerAdd,
            module: 2,
            k_injection: 5,
            mask: 1 << 52, // flip lowest exponent bit
        });
        // Non-matching coordinates leave the value alone.
        assert_eq!(st.apply(0, FaultSite::InnerAdd, 2, 4, 1.0), 1.0);
        assert_eq!(st.apply(1, FaultSite::InnerAdd, 2, 5, 1.0), 1.0);
        assert_eq!(st.apply(0, FaultSite::InnerMul, 2, 5, 1.0), 1.0);
        assert_eq!(st.apply(0, FaultSite::InnerAdd, 1, 5, 1.0), 1.0);
        assert!(!st.has_fired());
        // Exact match corrupts: 1.0 has biased exponent 0x3ff; clearing its
        // lowest bit gives 0x3fe, i.e. the value 0.5.
        assert_eq!(st.apply(0, FaultSite::InnerAdd, 2, 5, 1.0), 0.5);
        assert!(st.has_fired());
        // Second match is a no-op (single fault per run).
        assert_eq!(st.apply(0, FaultSite::InnerAdd, 2, 5, 1.0), 1.0);
    }

    #[test]
    fn xor_mask_is_bitwise() {
        let st = InjectionState::new(InjectionPlan {
            sm: 0,
            site: FaultSite::InnerMul,
            module: 0,
            k_injection: 1,
            mask: 0b1011,
        });
        let v = 3.75f64;
        let corrupted = st.apply(0, FaultSite::InnerMul, 0, 1, v);
        assert_eq!(corrupted.to_bits(), v.to_bits() ^ 0b1011);
    }
}
