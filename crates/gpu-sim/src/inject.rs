//! Fault-injection targeting of individual floating-point instructions.
//!
//! Implements the injection interface of the paper's Algorithm 3: a fault is
//! described by the streaming multiprocessor it strikes, the kind of
//! floating-point operation (inner-loop multiply, inner-loop add or
//! final-sum add), the module (which of the `RX·RY` per-thread adders or
//! multipliers), the dynamic instance `kInjection` at which it fires, and
//! the XOR error vector applied to the result word.
//!
//! Beyond the paper's GEMM-only sites, two further fault models make the
//! *whole* pipeline injectable:
//!
//! * [`KernelFaultPlan`] — a bit flip in the k-th floating-point operation
//!   (of any class) an SM executes inside launches of a given pipeline
//!   phase ([`FaultScope`]): encode, p-max reduce, check, recompute, or any
//!   kernel at all;
//! * [`MemoryFaultPlan`] — a bit flip in a named device buffer applied at a
//!   phase boundary, modelling corruption of data at rest (including the
//!   checksum rows the checker itself trusts).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The three floating-point operation classes Algorithm 3 exposes as fault
/// targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Multiplication inside the inner accumulation loop.
    InnerMul,
    /// Addition inside the inner accumulation loop.
    InnerAdd,
    /// Addition when merging accumulators into the result matrix.
    FinalAdd,
}

impl FaultSite {
    /// Number of distinct sites.
    pub const COUNT: usize = 3;
    /// All sites, for campaign sweeps.
    pub const ALL: [FaultSite; 3] = [FaultSite::InnerMul, FaultSite::InnerAdd, FaultSite::FinalAdd];

    /// Dense index for per-site counters.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FaultSite::InnerMul => 0,
            FaultSite::InnerAdd => 1,
            FaultSite::FinalAdd => 2,
        }
    }

    /// Human-readable label matching the paper's Figure 4 panels.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::InnerMul => "inner loop multiplication",
            FaultSite::InnerAdd => "inner loop addition",
            FaultSite::FinalAdd => "final sum addition",
        }
    }
}

/// A single planned fault: *which* dynamic floating-point instruction to
/// corrupt and *how* (XOR mask).
///
/// # Examples
///
/// ```
/// use aabft_gpu_sim::inject::{FaultSite, InjectionPlan};
///
/// // Flip mantissa bit 12 of the 3rd inner-loop multiply executed by
/// // module 0 on SM 1.
/// let plan = InjectionPlan {
///     sm: 1,
///     site: FaultSite::InnerMul,
///     module: 0,
///     k_injection: 3,
///     mask: 1 << 12,
/// };
/// assert_eq!(plan.site, FaultSite::InnerMul);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionPlan {
    /// Streaming multiprocessor the fault strikes.
    pub sm: usize,
    /// Operation class targeted.
    pub site: FaultSite,
    /// Which of the per-thread functional units (`moduleID` in Alg. 3),
    /// i.e. the flattened `RX·RY` register-tile position.
    pub module: usize,
    /// 1-based dynamic instance of the (sm, site, module) operation at which
    /// the fault fires (`kInjection` in Alg. 3).
    pub k_injection: u64,
    /// Error vector XORed onto the result's bit pattern.
    pub mask: u64,
}

/// Shared state of one armed injection: the plan plus a fired flag so the
/// fault strikes exactly once.
#[derive(Debug)]
pub struct InjectionState {
    /// The planned fault.
    pub plan: InjectionPlan,
    fired: AtomicBool,
}

impl InjectionState {
    /// Arms a new injection.
    pub fn new(plan: InjectionPlan) -> Self {
        InjectionState { plan, fired: AtomicBool::new(false) }
    }

    /// `true` once the fault has struck.
    pub fn has_fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Applies the fault to `value` if `(sm, site, module, count)` matches
    /// the plan and it has not fired yet. Returns the (possibly corrupted)
    /// value.
    #[inline]
    pub fn apply(&self, sm: usize, site: FaultSite, module: usize, count: u64, value: f64) -> f64 {
        let p = &self.plan;
        if sm == p.sm
            && site == p.site
            && module == p.module
            && count == p.k_injection
            && !self.fired.swap(true, Ordering::Relaxed)
        {
            f64::from_bits(value.to_bits() ^ p.mask)
        } else {
            value
        }
    }
}

/// Pipeline phase a kernel-level fault is armed against.
///
/// Scopes match on the `phase` string a kernel reports (see
/// `Kernel::phase`), so a fault armed for [`FaultScope::Check`] strikes the
/// checker itself — the case where the detector is the corrupted party.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultScope {
    /// Checksum/p-max encoding kernels (`phase == "encode"`).
    Encode,
    /// The protected multiply itself (`phase == "gemm"`).
    Gemm,
    /// The p-max tree reduction (`phase == "pmax_reduce"`).
    PMaxReduce,
    /// The bound-compare check kernel (`phase == "check"`).
    Check,
    /// Block recomputation during recovery (`phase == "recompute"`).
    Recompute,
    /// Any launched kernel, whatever its phase.
    Any,
}

impl FaultScope {
    /// The concrete (non-`Any`) scopes, for campaign sweeps.
    pub const ALL: [FaultScope; 5] = [
        FaultScope::Encode,
        FaultScope::Gemm,
        FaultScope::PMaxReduce,
        FaultScope::Check,
        FaultScope::Recompute,
    ];

    /// The phase string this scope matches (`"any"` for [`FaultScope::Any`]).
    pub fn label(self) -> &'static str {
        match self {
            FaultScope::Encode => "encode",
            FaultScope::Gemm => "gemm",
            FaultScope::PMaxReduce => "pmax_reduce",
            FaultScope::Check => "check",
            FaultScope::Recompute => "recompute",
            FaultScope::Any => "any",
        }
    }

    /// Whether a kernel launched under `phase` is inside this scope.
    #[inline]
    pub fn matches(self, phase: &str) -> bool {
        self == FaultScope::Any || phase == self.label()
    }
}

/// A planned fault in an arbitrary pipeline kernel: the `k_injection`-th
/// floating-point operation (of any class) that SM `sm` executes inside
/// launches whose phase matches `scope` has `mask` XORed onto its result.
///
/// Unlike [`InjectionPlan`], which addresses the GEMM inner loop by
/// `(site, module)`, this counts every FPU operation the SM performs in
/// scope — the same count `KernelStats::fpu_ticks` reports, so a clean
/// run's launch log calibrates the sampling range exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelFaultPlan {
    /// Pipeline phase(s) the fault is armed against.
    pub scope: FaultScope,
    /// Streaming multiprocessor the fault strikes.
    pub sm: usize,
    /// 1-based dynamic FPU-operation count on `sm` (within scope) at which
    /// the fault fires.
    pub k_injection: u64,
    /// Error vector XORed onto the result's bit pattern.
    pub mask: u64,
}

/// Shared state of one armed kernel-scope fault: the plan, the per-SM
/// operation counter, and a fired flag so it strikes exactly once.
#[derive(Debug)]
pub struct KernelFaultState {
    /// The planned fault.
    pub plan: KernelFaultPlan,
    count: AtomicU64,
    fired: AtomicBool,
}

impl KernelFaultState {
    /// Arms a new kernel-scope fault.
    pub fn new(plan: KernelFaultPlan) -> Self {
        KernelFaultState { plan, count: AtomicU64::new(0), fired: AtomicBool::new(false) }
    }

    /// `true` once the fault has struck.
    pub fn has_fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Number of in-scope FPU operations the target SM has executed so far.
    pub fn ops_seen(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Advances the per-SM operation count and applies the fault to `value`
    /// when the count reaches `k_injection`. Callers only invoke this for
    /// launches whose phase matched `plan.scope`.
    #[inline]
    pub fn tick(&self, sm: usize, value: f64) -> f64 {
        if sm != self.plan.sm {
            return value;
        }
        let count = self.count.fetch_add(1, Ordering::Relaxed) + 1;
        if count == self.plan.k_injection && !self.fired.swap(true, Ordering::Relaxed) {
            f64::from_bits(value.to_bits() ^ self.plan.mask)
        } else {
            value
        }
    }
}

/// A planned fault in device memory at rest: after the next launch of
/// phase `after_phase` completes, `mask` is XORed onto word `word` of the
/// buffer the pipeline exposes under `buffer`.
///
/// This models corruption between kernels — DRAM/cache upsets that ECC-less
/// parts cannot see — and can target the checksum rows themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFaultPlan {
    /// Label of the device buffer to corrupt (e.g. `"a"`, `"b"`, `"c"`).
    pub buffer: &'static str,
    /// Word index within the buffer (taken modulo the buffer length).
    pub word: usize,
    /// Error vector XORed onto the word's bit pattern.
    pub mask: u64,
    /// Pipeline phase after which the flip is applied (e.g. `"gemm"` flips
    /// the product before the check reads it).
    pub after_phase: &'static str,
}

/// Shared state of one armed memory fault: the plan plus a fired flag so
/// the flip lands exactly once.
#[derive(Debug)]
pub struct MemoryFaultState {
    /// The planned fault.
    pub plan: MemoryFaultPlan,
    fired: AtomicBool,
}

impl MemoryFaultState {
    /// Arms a new memory fault.
    pub fn new(plan: MemoryFaultPlan) -> Self {
        MemoryFaultState { plan, fired: AtomicBool::new(false) }
    }

    /// `true` once the flip has landed.
    pub fn has_fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Marks the fault as fired; returns `false` if it had already fired.
    #[inline]
    pub fn mark_fired(&self) -> bool {
        !self.fired.swap(true, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_indices_are_dense() {
        let mut seen = [false; FaultSite::COUNT];
        for s in FaultSite::ALL {
            seen[s.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn fires_exactly_once_at_match() {
        let st = InjectionState::new(InjectionPlan {
            sm: 0,
            site: FaultSite::InnerAdd,
            module: 2,
            k_injection: 5,
            mask: 1 << 52, // flip lowest exponent bit
        });
        // Non-matching coordinates leave the value alone.
        assert_eq!(st.apply(0, FaultSite::InnerAdd, 2, 4, 1.0), 1.0);
        assert_eq!(st.apply(1, FaultSite::InnerAdd, 2, 5, 1.0), 1.0);
        assert_eq!(st.apply(0, FaultSite::InnerMul, 2, 5, 1.0), 1.0);
        assert_eq!(st.apply(0, FaultSite::InnerAdd, 1, 5, 1.0), 1.0);
        assert!(!st.has_fired());
        // Exact match corrupts: 1.0 has biased exponent 0x3ff; clearing its
        // lowest bit gives 0x3fe, i.e. the value 0.5.
        assert_eq!(st.apply(0, FaultSite::InnerAdd, 2, 5, 1.0), 0.5);
        assert!(st.has_fired());
        // Second match is a no-op (single fault per run).
        assert_eq!(st.apply(0, FaultSite::InnerAdd, 2, 5, 1.0), 1.0);
    }

    #[test]
    fn xor_mask_is_bitwise() {
        let st = InjectionState::new(InjectionPlan {
            sm: 0,
            site: FaultSite::InnerMul,
            module: 0,
            k_injection: 1,
            mask: 0b1011,
        });
        let v = 3.75f64;
        let corrupted = st.apply(0, FaultSite::InnerMul, 0, 1, v);
        assert_eq!(corrupted.to_bits(), v.to_bits() ^ 0b1011);
    }

    #[test]
    fn scope_matches_phase_strings() {
        for scope in FaultScope::ALL {
            assert!(scope.matches(scope.label()));
            assert!(FaultScope::Any.matches(scope.label()));
        }
        assert!(!FaultScope::Encode.matches("gemm"));
        assert!(!FaultScope::Check.matches("recompute"));
    }

    #[test]
    fn kernel_fault_fires_once_at_kth_op_on_target_sm() {
        let st = KernelFaultState::new(KernelFaultPlan {
            scope: FaultScope::Check,
            sm: 2,
            k_injection: 3,
            mask: 1 << 52,
        });
        // Other SMs never advance the count.
        assert_eq!(st.tick(0, 1.0), 1.0);
        assert_eq!(st.ops_seen(), 0);
        // Ops 1 and 2 on the target SM pass through.
        assert_eq!(st.tick(2, 1.0), 1.0);
        assert_eq!(st.tick(2, 1.0), 1.0);
        assert!(!st.has_fired());
        // Op 3 corrupts (1.0 -> 0.5 under a low-exponent-bit flip).
        assert_eq!(st.tick(2, 1.0), 0.5);
        assert!(st.has_fired());
        // And never again.
        assert_eq!(st.tick(2, 1.0), 1.0);
        assert_eq!(st.ops_seen(), 4);
    }

    #[test]
    fn memory_fault_marks_fired_once() {
        let st = MemoryFaultState::new(MemoryFaultPlan {
            buffer: "c",
            word: 7,
            mask: 1 << 62,
            after_phase: "gemm",
        });
        assert!(!st.has_fired());
        assert!(st.mark_fired());
        assert!(st.has_fired());
        assert!(!st.mark_fired());
    }
}
