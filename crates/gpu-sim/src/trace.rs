//! Chrome-trace reconstruction of a device's launch log.
//!
//! The simulator executes kernels functionally and *models* time, so the
//! trace is rebuilt after the fact: the launch log is run through the
//! stream scheduler ([`PerfModel::schedule`]), each launch occupies the
//! busy window the schedule assigned it, and within a launch every active
//! SM gets a slice on its own track sized by [`PerfModel::sm_time`] of its
//! share of the work. Launches of a single stream tile one after another
//! (the historical sequential layout); overlapping streams appear side by
//! side on the SM tracks the scheduler allocated them. Host-side spans
//! (wall clock, from the [`aabft_obs::Recorder`]) go on a separate process
//! so the two time bases are never mixed on one track.

use aabft_obs::{ChromeTrace, JsonValue, SpanRecord};

use crate::perf::PerfModel;
use crate::stats::LaunchRecord;

/// Chrome-trace process id for host-side (wall-clock) spans.
pub const HOST_PID: u32 = 1;

/// Chrome-trace process id for the modelled device timeline.
pub const DEVICE_PID: u32 = 2;

/// Appends the modelled device timeline to `trace` under [`DEVICE_PID`]:
/// one named track per simulated SM, launches placed at the busy windows
/// the stream scheduler assigned them, SM slices clamped inside their
/// launch window (tracks never overlap). Each launch's active per-SM work
/// shares are drawn on the SM tracks the scheduler allocated to it, so
/// concurrent streams show up side by side. Returns the modelled end time
/// (the schedule makespan) in microseconds.
pub fn add_device_timeline(
    trace: &mut ChromeTrace,
    log: &[LaunchRecord],
    model: &PerfModel,
) -> f64 {
    let num_sms = log.iter().map(|r| r.per_sm.len()).max().unwrap_or(0);
    trace.name_process(DEVICE_PID, "gpu-sim device (modelled time)");
    for sm in 0..num_sms {
        trace.name_thread(DEVICE_PID, sm as u32, &format!("SM {sm}"));
    }

    let schedule = model.schedule(log, num_sms.max(1));
    let by_seq: std::collections::HashMap<u64, &LaunchRecord> =
        log.iter().map(|r| (r.seq, r)).collect();
    for placed in &schedule.launches {
        let rec = by_seq[&placed.seq];
        let start_us = placed.busy_start * 1e6;
        // The k-th active per-SM work share lands on the k-th SM the
        // scheduler allocated (the functional executor's round-robin SM
        // indices and the scheduler's allocation are independent
        // labellings, so the trace uses the scheduler's).
        let active = rec.per_sm.iter().enumerate().filter(|(_, stats)| {
            stats.blocks != 0 || stats.flops() != 0 || stats.gmem_bytes() != 0
        });
        for (k, (sm, stats)) in active.enumerate() {
            let track = placed.sm_ids.get(k).copied().unwrap_or(sm);
            let dur_us = model.sm_time(rec, sm) * 1e6;
            trace.complete(
                DEVICE_PID,
                track as u32,
                &rec.name,
                &format!("kernel,{}", rec.phase),
                start_us,
                dur_us,
                vec![
                    ("seq".to_string(), JsonValue::UInt(rec.seq)),
                    ("stream".to_string(), JsonValue::UInt(rec.stream)),
                    ("phase".to_string(), JsonValue::Str(rec.phase.clone())),
                    ("flops".to_string(), JsonValue::UInt(stats.flops())),
                    ("blocks".to_string(), JsonValue::UInt(stats.blocks)),
                    ("gmem_bytes".to_string(), JsonValue::UInt(stats.gmem_bytes())),
                ],
            );
        }
    }
    schedule.makespan * 1e6
}

/// Builds a complete trace: host spans under [`HOST_PID`] (if any) plus
/// the modelled device timeline under [`DEVICE_PID`].
pub fn build_trace(
    host_spans: &[SpanRecord],
    log: &[LaunchRecord],
    model: &PerfModel,
) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    if !host_spans.is_empty() {
        trace.name_process(HOST_PID, "host (wall clock)");
        trace.add_host_spans(HOST_PID, host_spans);
    }
    add_device_timeline(&mut trace, log, model);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::KernelStats;

    fn launch(seq: u64, phase: &str, per_sm_flops: &[u64]) -> LaunchRecord {
        let per_sm: Vec<KernelStats> = per_sm_flops
            .iter()
            .map(|&f| KernelStats { fadd: f, blocks: u64::from(f > 0), ..Default::default() })
            .collect();
        let mut stats = KernelStats::default();
        for s in &per_sm {
            stats.merge(s);
        }
        LaunchRecord {
            seq,
            stream: 0,
            deps: if seq == 0 { vec![] } else { vec![seq - 1] },
            name: format!("k{seq}"),
            phase: phase.to_string(),
            utilization: 0.9,
            stats,
            per_sm,
            clean: false,
        }
    }

    #[test]
    fn tracks_are_per_sm_and_non_overlapping() {
        let model = PerfModel::k20c();
        let log = vec![
            launch(0, "encode", &[1_000_000, 2_000_000, 500_000]),
            launch(1, "gemm", &[8_000_000, 8_000_000, 8_000_000]),
            launch(2, "check", &[100, 0, 200]),
        ];
        let mut trace = ChromeTrace::new();
        let end_us = add_device_timeline(&mut trace, &log, &model);
        assert!((end_us - model.pipeline_time(&log) * 1e6).abs() < 1e-6);

        let json = aabft_obs::json::parse(&trace.render()).expect("valid json");
        let events = json.get("traceEvents").and_then(|e| e.as_array()).expect("array");
        // Per-tid slices must be disjoint in time.
        let mut per_tid: std::collections::BTreeMap<u64, Vec<(f64, f64)>> =
            std::collections::BTreeMap::new();
        for e in events {
            if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
                continue;
            }
            let tid = e.get("tid").and_then(|t| t.as_u64()).unwrap();
            let ts = e.get("ts").and_then(|t| t.as_f64()).unwrap();
            let dur = e.get("dur").and_then(|d| d.as_f64()).unwrap();
            per_tid.entry(tid).or_default().push((ts, ts + dur));
        }
        assert_eq!(per_tid.len(), 3, "one track per SM");
        for (tid, mut slices) in per_tid {
            slices.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in slices.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-9, "tid {tid}: {w:?} overlap");
            }
        }
    }

    #[test]
    fn launches_are_ordered_by_seq_not_log_position() {
        let model = PerfModel::k20c();
        // Log shuffled relative to submission order.
        let log = vec![launch(1, "gemm", &[100]), launch(0, "encode", &[100])];
        let mut trace = ChromeTrace::new();
        add_device_timeline(&mut trace, &log, &model);
        let json = aabft_obs::json::parse(&trace.render()).expect("valid json");
        let events = json.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let slices: Vec<(&str, f64)> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .map(|e| {
                (
                    e.get("name").and_then(|n| n.as_str()).unwrap(),
                    e.get("ts").and_then(|t| t.as_f64()).unwrap(),
                )
            })
            .collect();
        assert_eq!(slices.len(), 2);
        let k0 = slices.iter().find(|(n, _)| *n == "k0").unwrap().1;
        let k1 = slices.iter().find(|(n, _)| *n == "k1").unwrap().1;
        assert!(k0 < k1, "seq 0 must precede seq 1");
    }

    #[test]
    fn idle_sms_get_no_slices() {
        let model = PerfModel::k20c();
        let log = vec![launch(0, "check", &[100, 0])];
        let mut trace = ChromeTrace::new();
        add_device_timeline(&mut trace, &log, &model);
        let json = aabft_obs::json::parse(&trace.render()).expect("valid json");
        let events = json.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let slices: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 1, "SM 1 did nothing");
    }

    #[test]
    fn concurrent_streams_share_the_timeline() {
        let model = PerfModel::k20c();
        // Two independent single-SM launches on different streams: the
        // schedule overlaps them, so the trace ends well before the
        // sequential pipeline time and uses two distinct tracks.
        let mut a = launch(0, "gemm", &[50_000_000, 0]);
        a.stream = 1;
        a.deps.clear();
        let mut b = launch(1, "gemm", &[50_000_000, 0]);
        b.stream = 2;
        b.deps.clear();
        let log = vec![a, b];
        let mut trace = ChromeTrace::new();
        let end_us = add_device_timeline(&mut trace, &log, &model);
        assert!(end_us < model.pipeline_time(&log) * 1e6 * 0.75, "end_us = {end_us}");
        let json = aabft_obs::json::parse(&trace.render()).expect("valid json");
        let events = json.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let tids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .map(|e| e.get("tid").and_then(|t| t.as_u64()).unwrap())
            .collect();
        assert_eq!(tids.len(), 2, "concurrent launches use distinct SM tracks");
    }

    #[test]
    fn build_trace_separates_host_and_device_pids() {
        let recorder = aabft_obs::Recorder::new();
        recorder.set_enabled(true);
        drop(recorder.span("phase", "multiply"));
        let model = PerfModel::k20c();
        let log = vec![launch(0, "gemm", &[100])];
        let trace = build_trace(&recorder.spans(), &log, &model);
        let json = aabft_obs::json::parse(&trace.render()).expect("valid json");
        let events = json.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let pids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .map(|e| e.get("pid").and_then(|p| p.as_u64()).unwrap())
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![HOST_PID as u64, DEVICE_PID as u64]);
    }
}
