//! Streams, events and the execution context.
//!
//! A [`StreamId`] names an ordered launch queue on a [`Device`], exactly
//! like a CUDA stream: launches issued to the same stream are modelled as
//! executing in issue order, launches on *different* streams may overlap in
//! the modelled timeline (sharing the device's SMs — see
//! [`crate::perf::PerfModel::schedule`]). [`Event`]s carry ordering across
//! streams: recording captures a stream's current frontier, waiting makes
//! another stream's subsequent launches depend on it.
//!
//! The simulator executes kernels functionally at issue time (host-side,
//! synchronously), so streams never change *results* — only the modelled
//! timeline and the dependency edges recorded in the launch log. Issuing
//! launches in a data-dependency-respecting order remains the caller's
//! contract, as it is on real hardware within one stream.
//!
//! [`ExecCtx`] bundles the device, the stream to issue on, and the
//! observability sink — the single execution-context argument the protected
//! GEMM entry points take.

use crate::device::{Device, Kernel};
use crate::dim::GridDim;
use crate::stats::KernelStats;
use aabft_obs::Obs;
use std::collections::HashMap;
use std::sync::Arc;

/// Handle of one ordered launch queue on a device.
///
/// Obtain via [`Device::default_stream`] or [`Device::create_stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub(crate) u64);

impl StreamId {
    /// The device's default stream (stream 0); plain
    /// [`Device::launch`](crate::device::Device::launch) issues here.
    pub const DEFAULT: StreamId = StreamId(0);

    /// The raw stream number (as recorded in
    /// [`LaunchRecord::stream`](crate::stats::LaunchRecord::stream)).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl Default for StreamId {
    fn default() -> Self {
        StreamId::DEFAULT
    }
}

/// A recorded point in a stream's launch order (CUDA `cudaEventRecord`
/// analogue). Waiting on it from another stream orders that stream's
/// subsequent launches after every launch the event captured.
#[derive(Debug, Clone)]
pub struct Event {
    /// `seq` of the last launch in the stream when the event was recorded;
    /// `None` if the stream had no launches yet (waiting is then a no-op).
    pub(crate) seq: Option<u64>,
}

impl Event {
    /// The launch sequence number this event captured, if any.
    pub fn seq(&self) -> Option<u64> {
        self.seq
    }
}

/// Per-device stream bookkeeping: the id counter, each stream's launch
/// frontier, and event waits pending for each stream's next launch.
#[derive(Debug, Default)]
pub(crate) struct StreamTable {
    next_id: u64,
    last_launch: HashMap<u64, u64>,
    pending_waits: HashMap<u64, Vec<u64>>,
}

impl StreamTable {
    /// Allocates a fresh non-default stream id.
    pub(crate) fn create(&mut self) -> StreamId {
        self.next_id += 1;
        StreamId(self.next_id)
    }

    /// Dependencies of the next launch on `stream`: its own frontier plus
    /// any event waits registered since the previous launch (drained).
    pub(crate) fn take_deps(&mut self, stream: StreamId) -> Vec<u64> {
        let mut deps = Vec::new();
        if let Some(&prev) = self.last_launch.get(&stream.0) {
            deps.push(prev);
        }
        if let Some(waits) = self.pending_waits.remove(&stream.0) {
            for w in waits {
                if !deps.contains(&w) {
                    deps.push(w);
                }
            }
        }
        deps
    }

    /// Advances `stream`'s frontier to launch `seq`.
    pub(crate) fn advance(&mut self, stream: StreamId, seq: u64) {
        self.last_launch.insert(stream.0, seq);
    }

    /// Captures `stream`'s current frontier as an event.
    pub(crate) fn record(&self, stream: StreamId) -> Event {
        Event { seq: self.last_launch.get(&stream.0).copied() }
    }

    /// Registers `event` as a dependency of `stream`'s next launch.
    pub(crate) fn wait(&mut self, stream: StreamId, event: &Event) {
        if let Some(seq) = event.seq {
            self.pending_waits.entry(stream.0).or_default().push(seq);
        }
    }
}

/// Execution context of a protected operation: the device to launch on,
/// the stream to issue to, and the observability sink spans/metrics land
/// in.
///
/// The convenience constructor [`ExecCtx::new`] targets the default stream
/// with the device's own observability context, which reproduces the
/// historical `multiply(&device, ...)` behaviour exactly; the batch engine
/// builds one context per request with [`ExecCtx::on_stream`].
///
/// # Examples
///
/// ```
/// use aabft_gpu_sim::{Device, ExecCtx};
///
/// let device = Device::with_defaults();
/// let ctx = ExecCtx::new(&device);
/// assert_eq!(ctx.stream, device.default_stream());
/// ```
#[derive(Debug, Clone)]
pub struct ExecCtx<'a> {
    /// The device kernels are launched on.
    pub device: &'a Device,
    /// The stream launches are issued to.
    pub stream: StreamId,
    /// Observability sink for spans and counters.
    pub obs: Arc<Obs>,
}

impl<'a> ExecCtx<'a> {
    /// Context on the device's default stream, reporting into the device's
    /// observability context — the drop-in equivalent of the pre-stream
    /// API.
    pub fn new(device: &'a Device) -> Self {
        ExecCtx { device, stream: device.default_stream(), obs: device.obs().clone() }
    }

    /// Context issuing to a specific stream.
    pub fn on_stream(device: &'a Device, stream: StreamId) -> Self {
        ExecCtx { device, stream, obs: device.obs().clone() }
    }

    /// Replaces the observability sink (tests attach fresh contexts).
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = obs;
        self
    }

    /// Launches `kernel` on this context's stream.
    pub fn launch<K: Kernel + ?Sized>(&self, grid: GridDim, kernel: &K) -> KernelStats {
        self.device.launch_on(self.stream, grid, kernel)
    }

    /// Issues a barrier-separated schedule of kernels as one fused clean
    /// dispatch on this context's stream when possible, falling back to
    /// separate (instrumented as required) launches otherwise — see
    /// [`Device::launch_fused_on`].
    pub fn launch_fused(&self, stages: &[&[(GridDim, &dyn Kernel)]]) -> Vec<KernelStats> {
        self.device.launch_fused_on(self.stream, stages)
    }

    /// Records an event at this context's stream frontier.
    pub fn record_event(&self) -> Event {
        self.device.record_event(self.stream)
    }

    /// Orders this context's subsequent launches after `event`.
    pub fn wait_event(&self, event: &Event) {
        self.device.wait_event(self.stream, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_table_chains_deps_within_a_stream() {
        let mut t = StreamTable::default();
        let s = t.create();
        assert!(t.take_deps(s).is_empty(), "first launch has no deps");
        t.advance(s, 7);
        assert_eq!(t.take_deps(s), vec![7]);
    }

    #[test]
    fn events_carry_cross_stream_deps_once() {
        let mut t = StreamTable::default();
        let s1 = t.create();
        let s2 = t.create();
        t.advance(s1, 3);
        let e = t.record(s1);
        assert_eq!(e.seq(), Some(3));
        t.wait(s2, &e);
        assert_eq!(t.take_deps(s2), vec![3]);
        assert!(t.take_deps(s2).is_empty(), "waits drain after one launch");
    }

    #[test]
    fn waiting_on_an_empty_stream_is_a_noop() {
        let mut t = StreamTable::default();
        let s1 = t.create();
        let s2 = t.create();
        let e = t.record(s1);
        assert_eq!(e.seq(), None);
        t.wait(s2, &e);
        assert!(t.take_deps(s2).is_empty());
    }

    #[test]
    fn duplicate_deps_are_collapsed() {
        let mut t = StreamTable::default();
        let s = t.create();
        t.advance(s, 4);
        let e = t.record(s);
        t.wait(s, &e); // self-wait duplicates the frontier dep
        assert_eq!(t.take_deps(s), vec![4]);
    }
}
